// Built-in example schemas for adept_lint --examples: a small catalog the
// CLI (and CI smoke checks) can lint without any input files. The set
// deliberately mixes a clean schema with schemas that trigger warning-level
// rules (AV006 lost update, AV007 data race, AV010 duplicate names) so the
// findings report is non-trivial — but none carry errors, so linting the
// catalog exits 0.

#ifndef ADEPT_TOOLS_EXAMPLE_SCHEMAS_H_
#define ADEPT_TOOLS_EXAMPLE_SCHEMAS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/schema.h"
#include "model/schema_builder.h"

namespace adept {
namespace tools {

struct ExampleSchema {
  std::string name;
  std::shared_ptr<const ProcessSchema> schema;
};

// The paper's running example (Fig. 1 shape): clean.
inline std::shared_ptr<const ProcessSchema> OnlineOrdering() {
  SchemaBuilder b("online_ordering", 1);
  DataId order = b.Data("order", DataType::kString);
  NodeId get = b.Activity("get order");
  b.Writes(get, order);
  NodeId collect = b.Activity("collect data");
  b.Reads(collect, order);
  b.Parallel({
      [&](SchemaBuilder& s) { s.Activity("confirm order"); },
      [&](SchemaBuilder& s) { s.Activity("compose order"); },
  });
  b.Activity("pack goods");
  b.Activity("deliver goods");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// Two parallel branches touch the same element unsynchronized: one
// write/write pair (lost update) and one write/read pair (data race).
inline std::shared_ptr<const ProcessSchema> ParallelAccounting() {
  SchemaBuilder b("parallel_accounting", 1);
  DataId total = b.Data("total", DataType::kInt);
  DataId audit = b.Data("audit", DataType::kString);
  NodeId init = b.Activity("open ledger");
  b.Writes(init, total);
  b.Writes(init, audit);
  b.Parallel({
      [&](SchemaBuilder& s) {
        NodeId post = s.Activity("post invoice");
        s.Writes(post, total);
        s.Writes(post, audit);
      },
      [&](SchemaBuilder& s) {
        NodeId refund = s.Activity("process refund");
        s.Writes(refund, total);
        NodeId review = s.Activity("review ledger");
        s.Reads(review, audit);
      },
  });
  b.Activity("close ledger");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// A copy-pasted review step left two activities with the same name.
inline std::shared_ptr<const ProcessSchema> DuplicateReview() {
  SchemaBuilder b("duplicate_review", 1);
  b.Activity("draft document");
  b.Activity("review document");
  b.Activity("incorporate feedback");
  b.Activity("review document");
  b.Activity("publish document");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

inline std::vector<ExampleSchema> ExampleCatalog() {
  std::vector<ExampleSchema> out;
  if (auto s = OnlineOrdering()) out.push_back({"online_ordering", std::move(s)});
  if (auto s = ParallelAccounting()) {
    out.push_back({"parallel_accounting", std::move(s)});
  }
  if (auto s = DuplicateReview()) {
    out.push_back({"duplicate_review", std::move(s)});
  }
  return out;
}

}  // namespace tools
}  // namespace adept

#endif  // ADEPT_TOOLS_EXAMPLE_SCHEMAS_H_
