// adept_lint: batch schema verification with a machine-readable report.
//
// Runs the src/verify/ analyzer over a set of process schemas and emits one
// JSON findings document (schema documented in src/verify/README.md).
// Sources:
//
//   adept_lint --examples
//       Lint the built-in example catalog (tools/example_schemas.h).
//   adept_lint --schema FILE.json [FILE.json ...]
//       Lint schemas serialized with SchemaToJson (model/serialization.h).
//   adept_lint --state WAL [--snapshot FILE] [--claims FILE]
//       Recover an AdeptSystem from its WAL (+ optional snapshot) and lint
//       every schema version stored in its repository, plus the runtime-
//       health rules over the recovered instances (AV011 stuck-activity,
//       AV012 orphaned-claim; see verify/state_lint.h). --claims points at
//       a worklist claim journal ("<cluster_wal>.worklist"); without it,
//       "<WAL>.worklist" is used when present.
//   adept_lint --wal-dump WAL
//       Decode a WAL without recovering from it: per-record-type counts
//       and payload bytes, split into full-state records (a complete
//       serialized artifact: deploy/repo/import, plus legacy cumulative
//       ad-hoc "bias" records) and delta records (everything the
//       delta-WAL refactor logs incrementally). The split is how to audit
//       what a log costs to ship and where legacy records still linger.
//
// Options: --out FILE writes the report there instead of stdout.
// Exit status: 0 = no error-severity findings, 1 = at least one error,
// 2 = usage or I/O failure.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/adept.h"
#include "model/schema.h"
#include "model/serialization.h"
#include "storage/schema_repository.h"
#include "storage/wal.h"
#include "tools/example_schemas.h"
#include "verify/state_lint.h"
#include "verify/verifier.h"

namespace adept {
namespace {

struct LintInput {
  std::string source;  // file path, "examples:<name>", or "state:<type>/vN"
  std::shared_ptr<const ProcessSchema> schema;
  const VerificationReport* stored = nullptr;  // reuse repository analysis
};

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --examples [--out FILE]\n"
      << "       " << argv0 << " --schema FILE.json [FILE.json ...] "
      << "[--out FILE]\n"
      << "       " << argv0 << " --state WAL [--snapshot FILE] "
      << "[--claims FILE] [--repl-status FILE] [--out FILE]\n"
      << "       " << argv0 << " --wal-dump WAL [--out FILE]\n";
  return 2;
}

// Whether a record carries a complete serialized artifact rather than an
// incremental change. Legacy ad-hoc records logged the whole cumulative
// bias under "bias"; the delta-WAL format logs only the appended ops
// under "delta".
bool IsFullStateRecord(const JsonValue& record) {
  const std::string& type = record.Get("t").as_string();
  if (type == "deploy" || type == "repo" || type == "import") return true;
  return type == "adhoc" && !record.Has("delta");
}

int RunWalDump(const std::string& wal_path, const std::string& out_path) {
  auto records = WriteAheadLog::ReadAll(wal_path);
  if (!records.ok()) {
    std::cerr << "adept_lint: read " << wal_path << ": "
              << records.status().message() << "\n";
    return 2;
  }
  struct Bucket {
    int64_t records = 0;
    int64_t bytes = 0;
  };
  std::map<std::string, Bucket> by_type;
  Bucket full_state;
  Bucket delta;
  for (const JsonValue& record : *records) {
    std::string type = record.Get("t").as_string();
    if (type.empty()) type = "unknown";
    if (type == "adhoc") {
      type = record.Has("delta") ? "adhoc.delta" : "adhoc.bias";
    }
    const auto bytes = static_cast<int64_t>(record.Dump().size());
    Bucket& bucket = by_type[type];
    ++bucket.records;
    bucket.bytes += bytes;
    Bucket& side = IsFullStateRecord(record) ? full_state : delta;
    ++side.records;
    side.bytes += bytes;
  }

  auto bucket_json = [](const Bucket& b) {
    JsonValue j = JsonValue::MakeObject();
    j.Set("records", JsonValue(b.records));
    j.Set("bytes", JsonValue(b.bytes));
    return j;
  };
  JsonValue types = JsonValue::MakeObject();
  for (const auto& [type, bucket] : by_type) {
    types.Set(type, bucket_json(bucket));
  }
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("tool", JsonValue(std::string("adept_lint")));
  doc.Set("mode", JsonValue(std::string("wal-dump")));
  doc.Set("wal", JsonValue(wal_path));
  doc.Set("records", JsonValue(static_cast<int64_t>(records->size())));
  doc.Set("by_type", std::move(types));
  doc.Set("full_state", bucket_json(full_state));
  doc.Set("delta", bucket_json(delta));

  const std::string text = doc.Dump();
  if (out_path.empty()) {
    std::cout << text << "\n";
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "adept_lint: cannot write " << out_path << "\n";
      return 2;
    }
    out << text << "\n";
  }
  return 0;
}

Result<std::shared_ptr<const ProcessSchema>> LoadSchemaFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  ADEPT_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(buf.str()));
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<ProcessSchema> schema,
                         SchemaFromJson(json));
  return std::shared_ptr<const ProcessSchema>(std::move(schema));
}

// One entry of the report's "schemas" array.
JsonValue LintOne(const LintInput& input, int& total_errors,
                  int& total_warnings) {
  VerificationReport local;
  const VerificationReport* report = input.stored;
  if (report == nullptr) {
    local = VerifySchema(*input.schema);
    report = &local;
  }
  JsonValue entry = JsonValue::MakeObject();
  entry.Set("source", JsonValue(input.source));
  entry.Set("type", JsonValue(input.schema->type_name()));
  entry.Set("schema_version",
            JsonValue(static_cast<int64_t>(input.schema->version())));
  entry.Set("nodes",
            JsonValue(static_cast<int64_t>(input.schema->node_count())));
  JsonValue findings = report->ToJson();
  total_errors += static_cast<int>(report->error_count());
  total_warnings += static_cast<int>(report->warning_count());
  entry.Set("report", std::move(findings));
  return entry;
}

int Run(int argc, char** argv) {
  std::vector<std::string> schema_files;
  std::string wal_path;
  std::string wal_dump_path;
  std::string snapshot_path;
  std::string claims_path;
  std::string repl_status_path;
  std::string out_path;
  bool examples = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--examples") {
      examples = true;
    } else if (arg == "--schema") {
      while (i + 1 < argc && argv[i + 1][0] != '-') {
        schema_files.emplace_back(argv[++i]);
      }
      if (schema_files.empty()) return Usage(argv[0]);
    } else if (arg == "--state") {
      if (i + 1 >= argc) return Usage(argv[0]);
      wal_path = argv[++i];
    } else if (arg == "--wal-dump") {
      if (i + 1 >= argc) return Usage(argv[0]);
      wal_dump_path = argv[++i];
    } else if (arg == "--snapshot") {
      if (i + 1 >= argc) return Usage(argv[0]);
      snapshot_path = argv[++i];
    } else if (arg == "--claims") {
      if (i + 1 >= argc) return Usage(argv[0]);
      claims_path = argv[++i];
    } else if (arg == "--repl-status") {
      if (i + 1 >= argc) return Usage(argv[0]);
      repl_status_path = argv[++i];
    } else if (arg == "--out") {
      if (i + 1 >= argc) return Usage(argv[0]);
      out_path = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  const int modes = (examples ? 1 : 0) + (schema_files.empty() ? 0 : 1) +
                    (wal_path.empty() ? 0 : 1) +
                    (wal_dump_path.empty() ? 0 : 1);
  if (modes != 1) return Usage(argv[0]);
  if (!wal_dump_path.empty()) return RunWalDump(wal_dump_path, out_path);

  std::vector<LintInput> inputs;
  std::unique_ptr<AdeptSystem> system;  // keeps stored reports alive

  if (examples) {
    for (auto& ex : tools::ExampleCatalog()) {
      inputs.push_back({"examples:" + ex.name, ex.schema, nullptr});
    }
  } else if (!schema_files.empty()) {
    for (const std::string& path : schema_files) {
      auto schema = LoadSchemaFile(path);
      if (!schema.ok()) {
        std::cerr << "adept_lint: " << path << ": "
                  << schema.status().message() << "\n";
        return 2;
      }
      inputs.push_back({path, *schema, nullptr});
    }
  } else {
    AdeptOptions options;
    options.wal_path = wal_path;
    options.snapshot_path = snapshot_path;
    auto recovered = AdeptSystem::Recover(options);
    if (!recovered.ok()) {
      std::cerr << "adept_lint: recover from " << wal_path << ": "
                << recovered.status().message() << "\n";
      return 2;
    }
    system = std::move(*recovered);
    for (SchemaId id : system->repository().AllIds()) {
      auto schema = system->repository().Get(id);
      auto report = system->repository().ReportFor(id);
      if (!schema.ok() || !report.ok()) continue;
      inputs.push_back({"state:" + (*schema)->type_name() + "/v" +
                            std::to_string((*schema)->version()),
                        *schema, *report});
    }
  }

  int total_errors = 0;
  int total_warnings = 0;
  JsonValue schemas = JsonValue::MakeArray();
  for (const LintInput& input : inputs) {
    schemas.Append(LintOne(input, total_errors, total_warnings));
  }

  // Runtime-health rules over the recovered instances (state mode only).
  JsonValue runtime;
  if (system != nullptr) {
    StateLintOptions state_options;
    if (!claims_path.empty()) {
      state_options.claims_journal_path = claims_path;
    } else if (std::filesystem::exists(wal_path + ".worklist")) {
      state_options.claims_journal_path = wal_path + ".worklist";
    }
    state_options.repl_status_path = repl_status_path;
    auto report = LintRuntimeState(system->engine(), state_options);
    if (!report.ok()) {
      std::cerr << "adept_lint: runtime lint: " << report.status().message()
                << "\n";
      return 2;
    }
    total_errors += static_cast<int>(report->error_count());
    total_warnings += static_cast<int>(report->warning_count());
    runtime = report->ToJson();
  }

  JsonValue doc = JsonValue::MakeObject();
  doc.Set("tool", JsonValue(std::string("adept_lint")));
  doc.Set("format_version", JsonValue(static_cast<int64_t>(1)));
  doc.Set("schemas_analyzed", JsonValue(static_cast<int64_t>(inputs.size())));
  doc.Set("total_errors", JsonValue(static_cast<int64_t>(total_errors)));
  doc.Set("total_warnings", JsonValue(static_cast<int64_t>(total_warnings)));
  doc.Set("schemas", std::move(schemas));
  if (system != nullptr) doc.Set("runtime", std::move(runtime));

  const std::string text = doc.Dump();
  if (out_path.empty()) {
    std::cout << text << "\n";
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "adept_lint: cannot write " << out_path << "\n";
      return 2;
    }
    out << text << "\n";
  }
  return total_errors > 0 ? 1 : 0;
}

}  // namespace
}  // namespace adept

int main(int argc, char** argv) { return adept::Run(argc, argv); }
