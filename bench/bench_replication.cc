// Replication cost and catch-up bandwidth ("repl" trajectory).
//
//   BM_ReplLocalFsyncCommit   baseline: one-shard cluster, kFsync WAL,
//                             no replication attached — the price of a
//                             commit that is durable on the local disk
//                             only.
//   BM_ReplQuorumCommit/q     the same commit with two loopback replica
//                             nodes attached and quorum q (1 = local +
//                             async shipping, 2 = local + one replica
//                             ack, 3 = every copy). The q=1 row isolates
//                             the hook/shipping overhead; q>=2 adds the
//                             synchronous network round trip.
//   BM_ReplCatchUp            a fresh replica joining a primary with a
//                             populated WAL: time from attach to full
//                             convergence, reported as bytes/second of
//                             WAL shipped (the catch-up bandwidth a
//                             rejoining peer sees).
//
// Everything runs in-process over 127.0.0.1 — the numbers exclude real
// network latency but include framing, checksums, JSON encode/decode,
// both WAL writes, and the ack round trip.
//
// Emit machine-readable results like every other bench:
//   ./build/bench_replication --benchmark_format=json

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "change/change_op.h"
#include "change/delta.h"
#include "cluster/adept_cluster.h"
#include "repl/replica_node.h"
#include "repl/replication.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

std::filesystem::path BenchDir(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

ClusterOptions PrimaryOptions(const std::filesystem::path& dir) {
  ClusterOptions options;
  options.shards = 1;
  options.wal_path = (dir / "primary.wal").string();
  options.snapshot_path = (dir / "primary.snapshot").string();
  options.sync = SyncMode::kFsync;
  return options;
}

std::unique_ptr<ReplicationReplica> StartReplicaNode(
    const std::filesystem::path& dir, const std::string& name) {
  ReplicaNodeOptions options;
  options.wal_path = (dir / (name + ".wal")).string();
  options.snapshot_path = (dir / (name + ".snapshot")).string();
  options.sync = SyncMode::kFlush;
  auto replica = ReplicationReplica::Start(options);
  return replica.ok() ? std::move(*replica) : nullptr;
}

ReplicationOptions ReplOptions(const std::vector<uint16_t>& ports,
                               int quorum) {
  ReplicationOptions options;
  for (uint16_t port : ports) {
    options.replicas.push_back({.host = "127.0.0.1", .port = port});
  }
  options.quorum = quorum;
  options.retry_ms = 20;
  options.ack_timeout_ms = 30000;
  return options;
}

// Shared fixture state; Setup/Teardown hooks run outside the timed loop.
std::filesystem::path g_dir;
std::unique_ptr<AdeptCluster> g_cluster;
std::vector<std::unique_ptr<ReplicationReplica>> g_replicas;

bool SetUpCluster(int replica_nodes, int quorum) {
  g_dir = BenchDir("adept_bench_repl");
  std::filesystem::remove_all(g_dir);
  std::filesystem::create_directories(g_dir);
  for (int i = 0; i < replica_nodes; ++i) {
    auto node = StartReplicaNode(g_dir, "replica" + std::to_string(i));
    if (node == nullptr) return false;
    g_replicas.push_back(std::move(node));
  }
  auto cluster = AdeptCluster::Create(PrimaryOptions(g_dir));
  if (!cluster.ok()) return false;
  g_cluster = std::move(*cluster);
  if (!g_cluster->DeployProcessType(testing_fixtures::SequenceSchema(4))
           .ok()) {
    return false;
  }
  if (replica_nodes > 0) {
    std::vector<uint16_t> ports;
    for (const auto& node : g_replicas) ports.push_back(node->port());
    if (!g_cluster->AttachReplication(ReplOptions(ports, quorum)).ok()) {
      return false;
    }
  }
  return true;
}

void TearDownCluster(const benchmark::State&) {
  if (g_cluster != nullptr) g_cluster->DetachReplication();
  g_cluster.reset();
  g_replicas.clear();
  std::filesystem::remove_all(g_dir);
}

void SetUpLocal(const benchmark::State&) { SetUpCluster(0, 1); }

void BM_ReplLocalFsyncCommit(benchmark::State& state) {
  if (g_cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  for (auto _ : state) {
    auto id = g_cluster->CreateInstance("seq");
    if (!id.ok()) {
      state.SkipWithError(id.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(*id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReplLocalFsyncCommit)
    ->Setup(SetUpLocal)
    ->Teardown(TearDownCluster)
    ->Unit(benchmark::kMicrosecond);

void SetUpQuorum(const benchmark::State& state) {
  SetUpCluster(2, static_cast<int>(state.range(0)));
}

void BM_ReplQuorumCommit(benchmark::State& state) {
  if (g_cluster == nullptr ||
      g_cluster->shard_replication(0) == nullptr) {
    state.SkipWithError("replicated cluster setup failed");
    return;
  }
  // q >= 2 stalls until the handshake finishes anyway; q == 1 would
  // otherwise time the pre-connection window.
  Status ready = g_cluster->shard_replication(0)->WaitForPeers(2, 10000);
  if (!ready.ok()) {
    state.SkipWithError("replicas did not connect");
    return;
  }
  for (auto _ : state) {
    auto id = g_cluster->CreateInstance("seq");
    if (!id.ok()) {
      state.SkipWithError(id.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(*id);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["quorum"] = benchmark::Counter(
      static_cast<double>(state.range(0)));
}
BENCHMARK(BM_ReplQuorumCommit)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Setup(SetUpQuorum)
    ->Teardown(TearDownCluster)
    ->Unit(benchmark::kMicrosecond);

// Ad-hoc change commit with the bytes it appends to (and ships from) the
// WAL. Since the delta-record refactor each commit logs only the ops the
// change appended — wal_bytes_per_commit stays flat as an instance's
// bias grows, where the legacy cumulative records grew linearly (see
// bench_fig2_storage BM_AdHocCommitRecordBytes for the record-level
// comparison). Replication ships these same records, so the counter is
// also the per-commit replication payload.
void BM_ReplAdHocCommitBytes(benchmark::State& state) {
  if (g_cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  auto schema = testing_fixtures::SequenceSchema(4);
  const std::filesystem::path wal = g_dir / "primary.wal.shard0";
  uintmax_t adhoc_bytes = 0;
  int commits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto id = g_cluster->CreateInstance("seq");
    if (!id.ok()) {
      state.SkipWithError(id.status().message().c_str());
      return;
    }
    const uintmax_t before = std::filesystem::file_size(wal);
    state.ResumeTiming();
    for (int i = 1; i < 4; ++i) {
      Delta delta;
      NewActivitySpec spec;
      spec.name = "x" + std::to_string(i);
      delta.Add(std::make_unique<SerialInsertOp>(
          spec, schema->FindNodeByName("a" + std::to_string(i)),
          schema->FindNodeByName("a" + std::to_string(i + 1))));
      Status applied = g_cluster->ApplyAdHocChange(*id, std::move(delta));
      if (!applied.ok()) {
        state.SkipWithError(applied.message().c_str());
        return;
      }
    }
    state.PauseTiming();
    adhoc_bytes += std::filesystem::file_size(wal) - before;
    commits += 3;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(commits);
  if (commits > 0) {
    state.counters["wal_bytes_per_commit"] =
        static_cast<double>(adhoc_bytes) / commits;
  }
}
BENCHMARK(BM_ReplAdHocCommitBytes)
    ->Setup(SetUpLocal)
    ->Teardown(TearDownCluster)
    ->Unit(benchmark::kMicrosecond);

// Populates a primary once, then times fresh replicas catching up from
// LSN 0. Quorum 1, so attach never blocks commits; convergence is polled.
void SetUpCatchUp(const benchmark::State&) {
  SetUpCluster(0, 1);
  if (g_cluster == nullptr) return;
  for (int i = 0; i < 400; ++i) {
    auto id = g_cluster->CreateInstance("seq");
    if (!id.ok()) {
      g_cluster.reset();
      return;
    }
  }
}

void BM_ReplCatchUp(benchmark::State& state) {
  if (g_cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  const uint64_t durable = g_cluster->shard(0).wal_writer()->durable_lsn();
  const auto wal_bytes = static_cast<int64_t>(
      std::filesystem::file_size(g_dir / "primary.wal.shard0"));
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto node =
        StartReplicaNode(g_dir, "catchup" + std::to_string(round++));
    if (node == nullptr) {
      state.SkipWithError("replica start failed");
      return;
    }
    state.ResumeTiming();
    Status attached =
        g_cluster->AttachReplication(ReplOptions({node->port()}, 1));
    if (!attached.ok()) {
      state.SkipWithError(attached.message().c_str());
      return;
    }
    while (node->ShardLastLsn(0) < durable) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    state.PauseTiming();
    g_cluster->DetachReplication();
    node.reset();
    state.ResumeTiming();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          wal_bytes);
  state.counters["wal_bytes"] =
      benchmark::Counter(static_cast<double>(wal_bytes));
}
BENCHMARK(BM_ReplCatchUp)
    ->Setup(SetUpCatchUp)
    ->Teardown(TearDownCluster)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
