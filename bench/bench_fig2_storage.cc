// E3 (paper Fig. 2): storage representation of schema and instance data.
//
// "Unchanged instances are stored in a redundant-free manner ... For each
// biased instance we maintain a minimal substitution block ... used to
// overlay parts of the original schema."
//
// Three representations are compared at varying biased-instance ratios:
//   kOverlay             the paper's hybrid (substitution block overlay)
//   kFullCopy            a materialized private schema per biased instance
//   kMaterializeOnDemand delta only; schema rebuilt on every access
//
// Reported:
//   BM_StorageFootprint  bytes attributable per instance (counter)
//   BM_SchemaAccess      node lookup + adjacency traversal latency
//
// Expected shape: overlay memory ~= full-copy / (schema size / delta size),
// far below full copies at low bias ratios; overlay access costs a modest
// constant factor over a materialized schema; materialize-on-demand access
// is orders of magnitude slower.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "compliance/adhoc.h"
#include "runtime/engine.h"
#include "storage/overlay_schema.h"

namespace adept {
namespace {

using bench::MakePopulation;
using bench::PopulationOptions;

StorageStrategy StrategyOf(int64_t arg) {
  switch (arg) {
    case 0:
      return StorageStrategy::kOverlay;
    case 1:
      return StorageStrategy::kFullCopy;
    default:
      return StorageStrategy::kMaterializeOnDemand;
  }
}

// Memory per strategy at 10% / 50% / 100% biased instances.
void BM_StorageFootprint(benchmark::State& state) {
  PopulationOptions options;
  options.instances = 2000;
  options.strategy = StrategyOf(state.range(0));
  options.biased_fraction = static_cast<double>(state.range(1)) / 100.0;
  auto pop = MakePopulation(options);

  for (auto _ : state) {
    auto stats = pop->store->Memory();
    benchmark::DoNotOptimize(stats);
  }
  auto stats = pop->store->Memory();
  state.SetLabel(StorageStrategyToString(options.strategy));
  state.counters["biased_pct"] = static_cast<double>(state.range(1));
  state.counters["shared_schema_bytes"] =
      static_cast<double>(stats.shared_schemas);
  state.counters["per_instance_bytes"] =
      static_cast<double>(stats.blocks + stats.full_copies + stats.records) /
      static_cast<double>(options.instances);
}
BENCHMARK(BM_StorageFootprint)
    ->ArgsProduct({{0, 1, 2}, {10, 50, 100}})
    ->Unit(benchmark::kMicrosecond);

// Access latency through each representation: resolve the execution schema
// and walk it (node lookups + successor traversal).
void BM_SchemaAccess(benchmark::State& state) {
  PopulationOptions options;
  options.instances = 64;
  options.strategy = StrategyOf(state.range(0));
  options.biased_fraction = 1.0;  // every instance biased: worst case
  auto pop = MakePopulation(options);

  size_t cursor = 0;
  for (auto _ : state) {
    InstanceId id = pop->ids[cursor++ % pop->ids.size()];
    auto view = pop->store->ExecutionSchema(id);
    size_t touched = 0;
    (*view)->VisitNodes([&](const Node& n) {
      (*view)->VisitOutEdges(n.id, [&](const Edge& e) {
        touched += e.dst.value();
      });
    });
    benchmark::DoNotOptimize(touched);
  }
  state.SetLabel(StorageStrategyToString(options.strategy));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchemaAccess)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// Pure overlay resolution overhead vs. direct schema access (the price of
// the hybrid representation on the hot path).
void BM_OverlayResolution(benchmark::State& state) {
  auto base = bench::OnlineOrderV1();
  Delta bias = bench::DisjointBias(*base);
  BiasIdAllocator alloc;
  auto biased = *bias.ApplyToSchema(*base, base->version(), &alloc);
  auto block = std::make_shared<const SubstitutionBlock>(
      ComputeSubstitutionBlock(*base, *biased));
  OverlaySchema overlay(base, block);

  const SchemaView* view =
      state.range(0) == 0 ? static_cast<const SchemaView*>(biased.get())
                          : static_cast<const SchemaView*>(&overlay);
  std::vector<NodeId> nodes = view->NodeIds();
  size_t cursor = 0;
  for (auto _ : state) {
    NodeId id = nodes[cursor++ % nodes.size()];
    const Node* n = view->FindNode(id);
    benchmark::DoNotOptimize(n);
    auto succs = view->Successors(id, EdgeType::kControl);
    benchmark::DoNotOptimize(succs);
  }
  state.SetLabel(state.range(0) == 0 ? "materialized" : "overlay");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OverlayResolution)->Arg(0)->Arg(1)->Unit(benchmark::kNanosecond);

// WAL bytes per ad-hoc commit: delta records (only the ops the change
// appended, the post-refactor format) vs the legacy cumulative-bias
// records (the whole bias re-serialized on every change). The measured
// work is record serialization for a K-commit history; the headline is
// the bytes-per-commit counter pair — legacy grows O(bias), delta stays
// O(change).
void BM_AdHocCommitRecordBytes(benchmark::State& state) {
  const int commits = static_cast<int>(state.range(0));
  SchemaBuilder b("chain", 1);
  for (int i = 0; i <= commits; ++i) {
    b.Activity("c" + std::to_string(i));
  }
  auto built = b.Build();
  if (!built.ok()) {
    state.SkipWithError("schema build failed");
    return;
  }
  auto schema = *built;
  SchemaRepository repo;
  SchemaId schema_id = *repo.Deploy(schema);
  InstanceStore store(&repo);
  Engine engine;
  ProcessInstance* instance = *engine.CreateInstance(schema, schema_id);
  (void)store.Register(instance->id(), schema_id);
  (void)instance->Start();
  // One serial insert per original chain edge: every commit appends
  // exactly one op to the bias.
  for (int i = 0; i < commits; ++i) {
    Delta delta;
    NewActivitySpec spec;
    spec.name = "x" + std::to_string(i);
    delta.Add(std::make_unique<SerialInsertOp>(
        spec, schema->FindNodeByName("c" + std::to_string(i)),
        schema->FindNodeByName("c" + std::to_string(i + 1))));
    Status applied = ApplyAdHocChange(*instance, store, std::move(delta));
    if (!applied.ok()) {
      state.SkipWithError("ad-hoc change failed");
      return;
    }
  }
  const auto& bias_ops = (*store.Get(instance->id()))->bias.ops();

  size_t delta_bytes = 0;
  size_t legacy_bytes = 0;
  for (auto _ : state) {
    delta_bytes = 0;
    legacy_bytes = 0;
    for (size_t k = 0; k < bias_ops.size(); ++k) {
      JsonValue delta_ops = JsonValue::MakeArray();
      delta_ops.Append(bias_ops[k]->ToJson());
      JsonValue delta_tail = JsonValue::MakeObject();
      delta_tail.Set("ops", std::move(delta_ops));
      JsonValue delta_record = JsonValue::MakeObject();
      delta_record.Set("t", JsonValue("adhoc"));
      delta_record.Set("id", JsonValue(instance->id().value()));
      delta_record.Set("delta", std::move(delta_tail));
      delta_bytes += delta_record.Dump().size();

      JsonValue cumulative = JsonValue::MakeArray();
      for (size_t i = 0; i <= k; ++i) cumulative.Append(bias_ops[i]->ToJson());
      JsonValue legacy_bias = JsonValue::MakeObject();
      legacy_bias.Set("ops", std::move(cumulative));
      JsonValue legacy_record = JsonValue::MakeObject();
      legacy_record.Set("t", JsonValue("adhoc"));
      legacy_record.Set("id", JsonValue(instance->id().value()));
      legacy_record.Set("bias", std::move(legacy_bias));
      legacy_bytes += legacy_record.Dump().size();
    }
    benchmark::DoNotOptimize(delta_bytes);
    benchmark::DoNotOptimize(legacy_bytes);
  }
  state.SetItemsProcessed(state.iterations() * commits);
  state.counters["delta_bytes_per_commit"] =
      static_cast<double>(delta_bytes) / commits;
  state.counters["legacy_bytes_per_commit"] =
      static_cast<double>(legacy_bytes) / commits;
}
BENCHMARK(BM_AdHocCommitRecordBytes)
    ->Arg(4)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
