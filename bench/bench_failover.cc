// Failover robustness trajectory ("failover" trajectory).
//
//   BM_FailoverDetectionToPromotion   wall time from the primary's crash
//                                     to the coordinator publishing the
//                                     promoted view: heartbeat silence
//                                     crossing the dead threshold, the
//                                     standby majority's confirmed vote,
//                                     and the promotion protocol itself
//                                     (longest-prefix assembly, epoch
//                                     bump, recovery, re-attach).
//   BM_FailoverMTTR                   wall time from the crash to the
//                                     first client write acked by the new
//                                     lineage — detection + promotion +
//                                     the ClusterClient's re-resolve and
//                                     retry/backoff, i.e. the outage a
//                                     well-behaved client actually sees.
//
// Topology: 3 standby nodes, commit quorum 2, 2 shards, heartbeats every
// 50ms with a 500ms dead threshold — so ~550-650ms of every measurement
// is the detection window set by configuration, and the rest is protocol
// cost. After each measured failover the deposed file set rejoins as a
// standby (outside the timed region), so iterations chain on one
// topology the way a long-lived deployment would.
//
// Emit machine-readable results like every other bench:
//   ./build/bench_failover --benchmark_format=json

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "cluster/adept_cluster.h"
#include "cluster/cluster_client.h"
#include "cluster/failover_coordinator.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

std::filesystem::path g_dir;
std::unique_ptr<FailoverCoordinator> g_coordinator;
std::unique_ptr<ClusterClient> g_client;

constexpr int kDeadAfterMs = 500;

bool SetUpFailover() {
  g_dir = std::filesystem::temp_directory_path() / "adept_bench_failover";
  std::filesystem::remove_all(g_dir);
  std::filesystem::create_directories(g_dir);

  FailoverOptions options;
  options.cluster.shards = 2;
  options.cluster.wal_path = (g_dir / "primary.wal").string();
  options.cluster.snapshot_path = (g_dir / "primary.snapshot").string();
  options.replicas = 3;
  options.quorum = 2;
  options.data_dir = (g_dir / "nodes").string();
  options.repl.retry_ms = 20;
  options.repl.io_timeout_ms = 1000;
  options.repl.ack_timeout_ms = 500;
  options.repl.heartbeat_interval_ms = 50;
  options.repl.suspect_after_ms = 200;
  options.repl.dead_after_ms = kDeadAfterMs;
  options.poll_interval_ms = 25;
  options.confirm_polls = 2;

  auto coordinator = FailoverCoordinator::Start(options);
  if (!coordinator.ok()) return false;
  g_coordinator = std::move(*coordinator);

  RetryPolicy policy;
  policy.max_attempts = 60;
  policy.base_backoff_ms = 10;
  policy.backoff_cap_ms = 100;
  g_client = std::make_unique<ClusterClient>(g_coordinator.get(), policy);

  PrimaryView view = g_coordinator->View();
  return view.cluster != nullptr &&
         view.cluster->DeployProcessType(testing_fixtures::SequenceSchema(4))
             .ok();
}

void SetUp(const benchmark::State&) {
  if (g_coordinator == nullptr) SetUpFailover();
}

void TearDown(const benchmark::State&) {
  g_client.reset();
  if (g_coordinator != nullptr) g_coordinator->Stop();
  g_coordinator.reset();
  std::filesystem::remove_all(g_dir);
}

// One measured failover; returns false on any protocol error. The fresh
// write before the kill pins healthy streams, the rejoin afterwards
// restores the 3-standby topology for the next iteration.
bool MeasureFailover(benchmark::State& state, bool wait_for_client_write) {
  auto probe = g_client->Create("seq");
  if (!probe.ok()) return false;
  const uint64_t version = g_coordinator->View().version;

  const auto start = std::chrono::steady_clock::now();
  if (!g_coordinator->KillPrimary().ok()) return false;
  if (wait_for_client_write) {
    auto written = g_client->Create("seq");
    if (!written.ok()) return false;
  } else {
    auto promoted = g_coordinator->WaitForFailover(version, 30000);
    if (!promoted.ok()) return false;
  }
  const auto end = std::chrono::steady_clock::now();
  state.SetIterationTime(
      std::chrono::duration<double>(end - start).count());

  // Outside the timed region: the deposed lineage rejoins as a standby.
  if (!wait_for_client_write) {
    // MTTR already proved the new lineage writable; the detection row
    // still needs a settled client before the next kill.
    auto settled = g_client->Create("seq");
    if (!settled.ok()) return false;
  }
  return g_coordinator->RejoinOldPrimaryAsReplica().ok();
}

void BM_FailoverDetectionToPromotion(benchmark::State& state) {
  if (g_coordinator == nullptr) {
    state.SkipWithError("coordinator setup failed");
    return;
  }
  for (auto _ : state) {
    if (!MeasureFailover(state, /*wait_for_client_write=*/false)) {
      state.SkipWithError("failover iteration failed");
      return;
    }
  }
  state.counters["dead_after_ms"] = kDeadAfterMs;
  state.counters["promotions"] =
      static_cast<double>(g_coordinator->promotions());
}
BENCHMARK(BM_FailoverDetectionToPromotion)
    ->Setup(SetUp)
    ->Teardown(TearDown)
    ->UseManualTime()
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

void BM_FailoverMTTR(benchmark::State& state) {
  if (g_coordinator == nullptr) {
    state.SkipWithError("coordinator setup failed");
    return;
  }
  for (auto _ : state) {
    if (!MeasureFailover(state, /*wait_for_client_write=*/true)) {
      state.SkipWithError("failover iteration failed");
      return;
    }
  }
  state.counters["dead_after_ms"] = kDeadAfterMs;
  state.counters["retry_rounds"] =
      static_cast<double>(g_client->retry_rounds());
  state.counters["reconciled_ops"] =
      static_cast<double>(g_client->reconciled_ops());
}
BENCHMARK(BM_FailoverMTTR)
    ->Setup(SetUp)
    ->Teardown(TearDown)
    ->UseManualTime()
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
