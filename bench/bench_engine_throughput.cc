// E7: engine execution throughput ("adaptive, high-performance process
// management").
//
//   BM_ActivityThroughput   start+complete cycles per second on a pool of
//                           concurrent instances
//   BM_UnbiasedVsBiased     the same workload where half the instances are
//                           ad-hoc modified and execute through overlay
//                           views — the paper's claim is that unchanged
//                           instances pay nothing and changed ones little
//
// Expected shape: biased execution within a small factor of unbiased;
// throughput independent of the number of co-resident instances.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace adept {
namespace {

using bench::MakePopulation;
using bench::PopulationOptions;

void BM_ActivityThroughput(benchmark::State& state) {
  PopulationOptions options;
  options.instances = static_cast<int>(state.range(0));
  options.max_progress = 0.0;  // fresh instances
  auto pop = MakePopulation(options);
  SimulationDriver driver({.seed = 99});

  size_t executed = 0;
  size_t cursor = 0;
  for (auto _ : state) {
    // Round-robin one activity per instance; recycle finished instances.
    InstanceId id = pop->ids[cursor++ % pop->ids.size()];
    ProcessInstance* inst = pop->engine.Find(id);
    if (inst->Finished()) {
      state.PauseTiming();
      ProcessInstance* fresh =
          *pop->engine.CreateInstance(pop->v1, pop->v1_id);
      (void)pop->store->Register(fresh->id(), pop->v1_id);
      (void)fresh->Start();
      pop->ids[(cursor - 1) % pop->ids.size()] = fresh->id();
      state.ResumeTiming();
      inst = fresh;
    }
    auto progressed = driver.Step(*inst);
    benchmark::DoNotOptimize(progressed);
    ++executed;
  }
  state.SetItemsProcessed(static_cast<int64_t>(executed));
}
BENCHMARK(BM_ActivityThroughput)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_UnbiasedVsBiased(benchmark::State& state) {
  const bool biased = state.range(0) != 0;
  PopulationOptions options;
  options.instances = 200;
  options.biased_fraction = biased ? 1.0 : 0.0;
  options.max_progress = 0.0;
  auto pop = MakePopulation(options);
  SimulationDriver driver({.seed = 5});

  size_t cursor = 0;
  size_t executed = 0;
  for (auto _ : state) {
    InstanceId id = pop->ids[cursor++ % pop->ids.size()];
    ProcessInstance* inst = pop->engine.Find(id);
    if (inst->Finished()) {
      state.PauseTiming();
      ProcessInstance* fresh =
          *pop->engine.CreateInstance(pop->v1, pop->v1_id);
      (void)pop->store->Register(fresh->id(), pop->v1_id);
      (void)fresh->Start();
      if (biased) {
        (void)ApplyAdHocChange(*fresh, *pop->store,
                               bench::DisjointBias(*pop->v1));
      }
      pop->ids[(cursor - 1) % pop->ids.size()] = fresh->id();
      state.ResumeTiming();
      inst = fresh;
    }
    auto progressed = driver.Step(*inst);
    benchmark::DoNotOptimize(progressed);
    ++executed;
  }
  state.SetLabel(biased ? "100% biased (overlay views)" : "unbiased");
  state.SetItemsProcessed(static_cast<int64_t>(executed));
}
BENCHMARK(BM_UnbiasedVsBiased)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// Instance creation + start cost (activation of the first activities).
void BM_InstanceCreation(benchmark::State& state) {
  auto pop = MakePopulation({.instances = 0});
  for (auto _ : state) {
    ProcessInstance* inst = *pop->engine.CreateInstance(pop->v1, pop->v1_id);
    (void)pop->store->Register(inst->id(), pop->v1_id);
    Status st = inst->Start();
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstanceCreation)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
