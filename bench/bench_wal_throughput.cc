// WAL durability scaling: appenders × sync mode ("async durability"
// trajectory).
//
//   BM_WalPerAppendSync  baseline: one mutex-serialized WriteAheadLog and
//                        one Sync per append — the discipline the engine
//                        used before group commit (every shard-locked
//                        append flushed on its own)
//   BM_WalGroupCommit    WalWriter: appenders enqueue + WaitDurable; the
//                        background thread coalesces every concurrent
//                        append into a single write burst + one Sync
//
// Arg(0) selects the SyncMode (0 none, 1 flush, 2 fsync); ->Threads(N)
// sets the number of concurrent appenders. Expected shape: identical at
// one appender (nothing to coalesce, the ticket round trip is overhead),
// group commit pulling ahead as appenders grow on the durable modes
// (kFlush/kFsync), because N syncs collapse into one per batch.
//
// Emit machine-readable results like every other bench:
//   ./build/bench_wal_throughput --benchmark_format=json

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"

namespace adept {
namespace {

std::string BenchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// A realistic activity-completion record (the hot WAL payload in practice).
JsonValue SampleRecord() {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("complete"));
  record.Set("id", JsonValue(123456789));
  record.Set("node", JsonValue(42));
  record.Set("writes", JsonValue::MakeArray());
  return record;
}

// Shared across the benchmark's worker threads; created/destroyed by the
// Setup/Teardown hooks, which run outside the threads.
std::unique_ptr<WriteAheadLog> g_log;
std::mutex g_log_mu;
std::unique_ptr<WalWriter> g_writer;

void SetUpPerAppendLog(const benchmark::State&) {
  std::string path = BenchPath("adept_bench_wal_baseline.log");
  std::remove(path.c_str());
  auto log = WriteAheadLog::Open(path);
  if (log.ok()) g_log = std::move(log).value();
}

void TearDownPerAppendLog(const benchmark::State&) {
  std::string path = g_log != nullptr ? g_log->path() : std::string();
  g_log.reset();
  if (!path.empty()) std::remove(path.c_str());
}

void BM_WalPerAppendSync(benchmark::State& state) {
  const SyncMode mode = static_cast<SyncMode>(state.range(0));
  if (g_log == nullptr) {
    state.SkipWithError("WAL setup failed");
    return;
  }
  const JsonValue record = SampleRecord();
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(g_log_mu);
    auto lsn = g_log->Append(record);
    benchmark::DoNotOptimize(lsn);
    Status st = g_log->Sync(mode);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sync"] = benchmark::Counter(
      static_cast<double>(mode), benchmark::Counter::kAvgThreads);
  state.counters["appenders"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_WalPerAppendSync)
    ->Setup(SetUpPerAppendLog)
    ->Teardown(TearDownPerAppendLog)
    ->Arg(static_cast<int>(SyncMode::kNone))
    ->Arg(static_cast<int>(SyncMode::kFlush))
    ->Arg(static_cast<int>(SyncMode::kFsync))
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void SetUpGroupCommit(const benchmark::State& state) {
  std::string path = BenchPath("adept_bench_wal_group.log");
  std::remove(path.c_str());
  WalWriterOptions options;
  options.sync = static_cast<SyncMode>(state.range(0));
  auto writer = WalWriter::Open(path, options);
  if (writer.ok()) g_writer = std::move(writer).value();
}

void TearDownGroupCommit(const benchmark::State&) {
  std::string path = g_writer != nullptr ? g_writer->path() : std::string();
  g_writer.reset();
  if (!path.empty()) std::remove(path.c_str());
}

void BM_WalGroupCommit(benchmark::State& state) {
  if (g_writer == nullptr) {
    state.SkipWithError("WalWriter setup failed");
    return;
  }
  const JsonValue record = SampleRecord();
  for (auto _ : state) {
    Status st = g_writer->Append(record);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sync"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kAvgThreads);
  state.counters["appenders"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_WalGroupCommit)
    ->Setup(SetUpGroupCommit)
    ->Teardown(TearDownGroupCommit)
    ->Arg(static_cast<int>(SyncMode::kNone))
    ->Arg(static_cast<int>(SyncMode::kFlush))
    ->Arg(static_cast<int>(SyncMode::kFsync))
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
