// WAL durability scaling: appenders × sync mode ("async durability"
// trajectory).
//
//   BM_WalPerAppendSync   baseline: one mutex-serialized WriteAheadLog and
//                         one Sync per append — the discipline the engine
//                         used before group commit (every shard-locked
//                         append flushed on its own)
//   BM_WalGroupCommit     WalWriter: appenders enqueue + WaitDurable; the
//                         first waiter leads the batch inline (leader-
//                         based group commit), coalescing every concurrent
//                         append into a single write burst + one Sync
//   BM_WalFlushCrossover  the low-appender-count crossover, measured
//                         head-to-head in one run: per iteration it times
//                         the same kFlush append load through both
//                         disciplines and reports the speedup. With the
//                         old writer-thread handoff, group commit paid two
//                         context switches per append and lost below ~4
//                         appenders on one core; leader commit runs the
//                         solo append entirely on the caller's thread, so
//                         the speedup should be >= ~1 from 1 appender up.
//
// Arg(0) selects the SyncMode (0 none, 1 flush, 2 fsync); ->Threads(N)
// sets the number of concurrent appenders. Expected shape: comparable at
// one appender (leader commit = append + flush inline), group commit
// pulling ahead as appenders grow on the durable modes (kFlush/kFsync),
// because N syncs collapse into one per batch.
//
// Emit machine-readable results like every other bench:
//   ./build/bench_wal_throughput --benchmark_format=json

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"

namespace adept {
namespace {

std::string BenchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// A realistic activity-completion record (the hot WAL payload in practice).
JsonValue SampleRecord() {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("complete"));
  record.Set("id", JsonValue(123456789));
  record.Set("node", JsonValue(42));
  record.Set("writes", JsonValue::MakeArray());
  return record;
}

// Shared across the benchmark's worker threads; created/destroyed by the
// Setup/Teardown hooks, which run outside the threads.
std::unique_ptr<WriteAheadLog> g_log;
std::mutex g_log_mu;
std::unique_ptr<WalWriter> g_writer;

void SetUpPerAppendLog(const benchmark::State&) {
  std::string path = BenchPath("adept_bench_wal_baseline.log");
  std::remove(path.c_str());
  auto log = WriteAheadLog::Open(path);
  if (log.ok()) g_log = std::move(log).value();
}

void TearDownPerAppendLog(const benchmark::State&) {
  std::string path = g_log != nullptr ? g_log->path() : std::string();
  g_log.reset();
  if (!path.empty()) std::remove(path.c_str());
}

void BM_WalPerAppendSync(benchmark::State& state) {
  const SyncMode mode = static_cast<SyncMode>(state.range(0));
  if (g_log == nullptr) {
    state.SkipWithError("WAL setup failed");
    return;
  }
  const JsonValue record = SampleRecord();
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(g_log_mu);
    auto lsn = g_log->Append(record);
    benchmark::DoNotOptimize(lsn);
    Status st = g_log->Sync(mode);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sync"] = benchmark::Counter(
      static_cast<double>(mode), benchmark::Counter::kAvgThreads);
  state.counters["appenders"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_WalPerAppendSync)
    ->Setup(SetUpPerAppendLog)
    ->Teardown(TearDownPerAppendLog)
    ->Arg(static_cast<int>(SyncMode::kNone))
    ->Arg(static_cast<int>(SyncMode::kFlush))
    ->Arg(static_cast<int>(SyncMode::kFsync))
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void SetUpGroupCommit(const benchmark::State& state) {
  std::string path = BenchPath("adept_bench_wal_group.log");
  std::remove(path.c_str());
  WalWriterOptions options;
  options.sync = static_cast<SyncMode>(state.range(0));
  auto writer = WalWriter::Open(path, options);
  if (writer.ok()) g_writer = std::move(writer).value();
}

void TearDownGroupCommit(const benchmark::State&) {
  std::string path = g_writer != nullptr ? g_writer->path() : std::string();
  g_writer.reset();
  if (!path.empty()) std::remove(path.c_str());
}

void BM_WalGroupCommit(benchmark::State& state) {
  if (g_writer == nullptr) {
    state.SkipWithError("WalWriter setup failed");
    return;
  }
  const JsonValue record = SampleRecord();
  for (auto _ : state) {
    Status st = g_writer->Append(record);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sync"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kAvgThreads);
  state.counters["appenders"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_WalGroupCommit)
    ->Setup(SetUpGroupCommit)
    ->Teardown(TearDownGroupCommit)
    ->Arg(static_cast<int>(SyncMode::kNone))
    ->Arg(static_cast<int>(SyncMode::kFlush))
    ->Arg(static_cast<int>(SyncMode::kFsync))
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// --- The kFlush crossover, head-to-head --------------------------------------

// Runs `appenders` threads each performing `ops` calls of `append`,
// returning the wall time of the whole run. A start gate keeps thread
// spawn cost out of the measured window.
double TimedAppendRun(int appenders, int ops,
                      const std::function<void()>& append) {
  std::atomic<bool> go{false};
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(appenders));
  for (int t = 0; t < appenders; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int k = 0; k < ops; ++k) append();
    });
  }
  while (ready.load(std::memory_order_acquire) < appenders) {
    std::this_thread::yield();
  }
  auto begin = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

// One iteration = the same kFlush append load pushed through the
// per-append-sync baseline and through the leader-commit WalWriter; the
// reported (manual) time is the group-commit side, the counters carry
// both throughputs and the speedup. Arg(0) = appender count — the
// interesting region is 1..4, where the old writer-thread handoff kept
// group commit behind plain flushing on one core.
void BM_WalFlushCrossover(benchmark::State& state) {
  const int appenders = static_cast<int>(state.range(0));
  const int kOps = 256;
  const JsonValue record = SampleRecord();
  double per_append_seconds = 0;
  double group_seconds = 0;
  size_t total_ops = 0;
  for (auto _ : state) {
    const std::string base_path = BenchPath("adept_bench_wal_crossover");
    std::remove((base_path + ".baseline").c_str());
    std::remove((base_path + ".group").c_str());
    double per_append = 0;
    {
      auto log = WriteAheadLog::Open(base_path + ".baseline");
      if (!log.ok()) {
        state.SkipWithError("baseline WAL setup failed");
        return;
      }
      std::mutex mu;
      per_append = TimedAppendRun(appenders, kOps, [&] {
        std::lock_guard<std::mutex> lock(mu);
        (void)(*log)->Append(record);
        (void)(*log)->Sync(SyncMode::kFlush);
      });
    }
    double group = 0;
    {
      WalWriterOptions options;
      options.sync = SyncMode::kFlush;
      auto writer = WalWriter::Open(base_path + ".group", options);
      if (!writer.ok()) {
        state.SkipWithError("WalWriter setup failed");
        return;
      }
      group = TimedAppendRun(appenders, kOps,
                             [&] { (void)(*writer)->Append(record); });
    }
    std::remove((base_path + ".baseline").c_str());
    std::remove((base_path + ".group").c_str());
    per_append_seconds += per_append;
    group_seconds += group;
    total_ops += static_cast<size_t>(appenders) * kOps;
    state.SetIterationTime(group);
  }
  state.SetItemsProcessed(static_cast<int64_t>(total_ops));
  state.counters["appenders"] = appenders;
  state.counters["per_append_ops_per_s"] =
      per_append_seconds > 0 ? total_ops / per_append_seconds : 0;
  state.counters["group_ops_per_s"] =
      group_seconds > 0 ? total_ops / group_seconds : 0;
  // > 1: leader-based group commit beats per-append flushing.
  state.counters["group_speedup"] =
      group_seconds > 0 ? per_append_seconds / group_seconds : 0;
}
BENCHMARK(BM_WalFlushCrossover)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime();

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
