// E8 (ablation): design choices of the storage layer.
//
//   BM_OverlayVsDeltaSize   overlay resolution cost as the substitution
//                           block grows (is "minimal block" worth it?)
//   BM_WalAppend            WAL record append+flush throughput
//   BM_Recovery             full recovery time vs. WAL length
//   BM_SnapshotCheckpoint   snapshot write + WAL truncation cost
//
// Expected shape: overlay lookups degrade gracefully with delta size
// (hash lookups); recovery is linear in WAL records; checkpointing turns
// long recoveries into O(state) loads.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "core/adept.h"
#include "storage/overlay_schema.h"
#include "storage/wal.h"

namespace adept {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void BM_OverlayVsDeltaSize(benchmark::State& state) {
  auto base = bench::ScaledSchema(200, 31, "ablation");
  // Build a bias with `k` serial inserts before the end node.
  int k = static_cast<int>(state.range(0));
  Delta bias;
  NodeId end = base->end_node();
  NodeId last = base->Predecessors(end, EdgeType::kControl)[0];
  for (int i = 0; i < k; ++i) {
    NewActivitySpec spec;
    spec.name = "pad" + std::to_string(i);
    bias.Add(std::make_unique<SerialInsertOp>(spec, last, end));
    // Chain: next insert goes between the new node and end; resolve after
    // first application below.
  }
  BiasIdAllocator alloc;
  // Apply ops one by one, rewiring the anchor to keep the chain valid.
  auto current = base->Clone();
  (void)current->Freeze();
  std::shared_ptr<ProcessSchema> biased;
  {
    Delta chained;
    NodeId anchor = last;
    for (int i = 0; i < k; ++i) {
      NewActivitySpec spec;
      spec.name = "pad" + std::to_string(i);
      auto* op = chained.Add(
          std::make_unique<SerialInsertOp>(spec, anchor, end));
      auto applied = chained.ApplyRaw(*base, base->version(), &alloc);
      if (!applied.ok()) {
        state.SkipWithError(applied.status().message().c_str());
        return;
      }
      biased = *applied;
      anchor = static_cast<SerialInsertOp*>(op)->inserted_node();
    }
  }
  auto block = std::make_shared<const SubstitutionBlock>(
      ComputeSubstitutionBlock(*base, *biased));
  OverlaySchema overlay(base, block);

  std::vector<NodeId> nodes = overlay.NodeIds();
  size_t cursor = 0;
  for (auto _ : state) {
    NodeId id = nodes[cursor++ % nodes.size()];
    const Node* n = overlay.FindNode(id);
    benchmark::DoNotOptimize(n);
    auto succs = overlay.Successors(id, EdgeType::kControl);
    benchmark::DoNotOptimize(succs);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["block_nodes"] = static_cast<double>(block->nodes.size());
  state.counters["block_bytes"] =
      static_cast<double>(block->MemoryFootprint());
}
BENCHMARK(BM_OverlayVsDeltaSize)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kNanosecond);

void BM_WalAppend(benchmark::State& state) {
  std::string path = TempPath("adept_bench_wal.log");
  std::remove(path.c_str());
  auto wal = std::move(WriteAheadLog::Open(path)).value();
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("complete"));
  record.Set("id", JsonValue(12345));
  record.Set("node", JsonValue(17));
  for (auto _ : state) {
    // Append + flush reproduces the historical per-append durability cost;
    // bench_wal_throughput covers the group-commit path.
    auto lsn = wal->Append(record);
    benchmark::DoNotOptimize(lsn);
    Status st = wal->Sync(SyncMode::kFlush);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
  wal.reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppend)->Unit(benchmark::kMicrosecond);

// Recovery time as a function of logged history length.
void BM_Recovery(benchmark::State& state) {
  AdeptOptions options;
  options.wal_path = TempPath("adept_bench_recovery.wal");
  options.snapshot_path = TempPath("adept_bench_recovery.snap");
  std::remove(options.wal_path.c_str());
  std::remove(options.snapshot_path.c_str());
  {
    auto system = std::move(AdeptSystem::Create(options)).value();
    (void)system->DeployProcessType(bench::OnlineOrderV1());
    SimulationDriver driver({.seed = 1});
    int instances = static_cast<int>(state.range(0));
    for (int i = 0; i < instances; ++i) {
      auto id = *system->CreateInstance("online_order");
      (void)system->DriveToCompletion(id, driver);
    }
  }
  for (auto _ : state) {
    auto recovered = AdeptSystem::Recover(options);
    benchmark::DoNotOptimize(recovered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["wal_bytes"] = static_cast<double>(
      std::filesystem::file_size(options.wal_path));
  std::remove(options.wal_path.c_str());
  std::remove(options.snapshot_path.c_str());
}
BENCHMARK(BM_Recovery)
    ->Arg(10)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotCheckpoint(benchmark::State& state) {
  AdeptOptions options;
  options.wal_path = TempPath("adept_bench_snap.wal");
  options.snapshot_path = TempPath("adept_bench_snap.snap");
  std::remove(options.wal_path.c_str());
  std::remove(options.snapshot_path.c_str());
  auto system = std::move(AdeptSystem::Create(options)).value();
  (void)system->DeployProcessType(bench::OnlineOrderV1());
  SimulationDriver driver({.seed = 2});
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    auto id = *system->CreateInstance("online_order");
    (void)system->DriveToCompletion(id, driver);
  }
  for (auto _ : state) {
    Status st = system->SaveSnapshot();
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["snapshot_bytes"] = static_cast<double>(
      std::filesystem::file_size(options.snapshot_path));
  std::remove(options.wal_path.c_str());
  std::remove(options.snapshot_path.c_str());
}
BENCHMARK(BM_SnapshotCheckpoint)
    ->Arg(100)
    ->Arg(500)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
