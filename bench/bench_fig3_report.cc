// E4 (paper Fig. 3): end-to-end schema evolution with migration report,
// "the concomitant migration of thousands of instances ... on-the-fly".
//
//   BM_EvolutionEndToEnd  derive V2, classify + migrate every instance,
//                         adapt states, render the Fig. 3 report
//   BM_LazyVsEager        eager full migration vs. lazy planning (dry-run
//                         classification now, per-instance migration later)
//
// Expected shape: ~linear in N up to 10^4+ instances; lazy classification
// is cheaper up front, and the deferred per-instance migrations cost the
// same total work.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "monitor/monitor.h"

namespace adept {
namespace {

using bench::Fig1TypeChange;
using bench::MakePopulation;
using bench::PopulationOptions;

void BM_EvolutionEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PopulationOptions options;
    options.instances = static_cast<int>(state.range(0));
    options.biased_fraction = 0.1;
    options.conflicting_fraction = 0.3;
    auto pop = MakePopulation(options);
    state.ResumeTiming();

    SchemaId v2 =
        *pop->repo.DeriveVersion(pop->v1_id, Fig1TypeChange(*pop->v1));
    auto report = pop->manager->MigrateAll(pop->v1_id, v2);
    std::string rendered = RenderMigrationReport(*report);
    benchmark::DoNotOptimize(rendered);

    state.counters["migrated"] = static_cast<double>(report->MigratedTotal());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvolutionEndToEnd)
    ->Arg(1000)
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_LazyVsEager(benchmark::State& state) {
  const bool lazy = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    PopulationOptions options;
    options.instances = static_cast<int>(state.range(0));
    options.biased_fraction = 0.1;
    auto pop = MakePopulation(options);
    SchemaId v2 =
        *pop->repo.DeriveVersion(pop->v1_id, Fig1TypeChange(*pop->v1));
    state.ResumeTiming();

    if (lazy) {
      // Upfront: classification only (what the user sees immediately).
      MigrationOptions dry;
      dry.dry_run = true;
      auto plan = pop->manager->MigrateAll(pop->v1_id, v2, dry);
      benchmark::DoNotOptimize(plan);
      // Deferred: instances migrate one by one on next access.
      const Delta* delta = *pop->repo.DeltaFor(v2);
      for (InstanceId id : pop->ids) {
        auto r = pop->manager->MigrateOne(id, pop->v1_id, v2, *delta, {});
        benchmark::DoNotOptimize(r);
      }
    } else {
      auto report = pop->manager->MigrateAll(pop->v1_id, v2);
      benchmark::DoNotOptimize(report);
    }
  }
  state.SetLabel(lazy ? "lazy (classify + on-demand)" : "eager");
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LazyVsEager)
    ->ArgsProduct({{2000}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

// Report rendering alone (the monitoring component's share).
void BM_ReportRendering(benchmark::State& state) {
  PopulationOptions options;
  options.instances = static_cast<int>(state.range(0));
  options.biased_fraction = 0.2;
  options.conflicting_fraction = 0.5;
  auto pop = MakePopulation(options);
  SchemaId v2 = *pop->repo.DeriveVersion(pop->v1_id, Fig1TypeChange(*pop->v1));
  MigrationOptions dry;
  dry.dry_run = true;
  auto report = *pop->manager->MigrateAll(pop->v1_id, v2, dry);

  for (auto _ : state) {
    std::string rendered = RenderMigrationReport(report);
    benchmark::DoNotOptimize(rendered);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReportRendering)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
