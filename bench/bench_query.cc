// Query-engine benchmarks (BENCH_query.json in CI).
//
//   BM_QueryIndexed          AdeptApi::Query with the snapshot-maintained
//                            secondary indexes: an exact-value data probe
//                            at 1k/10k/100k instances x 0.1%/1%/10%
//                            selectivity. Lock-free; takes no shard mutex.
//   BM_QueryScan             the same predicate as a full unindexed scan
//                            over the published snapshots (the
//                            ForEachSnapshot-style sweep every consumer
//                            ran before the query engine existed)
//   BM_QueryIndexMaintenance BM_ClusterBatchThroughput's write workload
//                            with indexes disabled (Arg 0) vs enabled
//                            (Arg 1) — the price of index deltas on the
//                            mutation path
//
// Expected shape: indexed selective queries are orders of magnitude
// faster than scans at 100k instances (the candidate set is the probe's
// posting list, not the population), and index maintenance costs a few
// percent of batch throughput.
//
// Emit machine-readable results:
//   ./build/bench_query --benchmark_format=json

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/adept_cluster.h"
#include "core/adept.h"
#include "model/schema_builder.h"
#include "query/query.h"

namespace adept {
namespace {

// intake writes three int cohort keys (i % 1000 / % 100 / % 10), then the
// instance parks on "work" — the population stays running, so the state
// index never collapses the candidate sets under test.
std::shared_ptr<const ProcessSchema> TaggedSchema() {
  SchemaBuilder b("tagged", 1);
  DataId priority = b.Data("priority", DataType::kInt);
  DataId cohort = b.Data("cohort", DataType::kInt);
  DataId bucket = b.Data("bucket", DataType::kInt);
  NodeId intake = b.Activity("intake");
  b.Writes(intake, priority);
  b.Writes(intake, cohort);
  b.Writes(intake, bucket);
  b.Activity("work");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// One population per size, shared across the indexed and scan benchmarks
// (building 100k instances is far more expensive than measuring them).
AdeptSystem* PopulatedSystem(int64_t population) {
  static std::map<int64_t, std::unique_ptr<AdeptSystem>> cache;
  auto it = cache.find(population);
  if (it != cache.end()) return it->second.get();

  auto system = AdeptSystem::Create();
  if (!system.ok()) return nullptr;
  auto schema = TaggedSchema();
  if (schema == nullptr || !(*system)->DeployProcessType(schema).ok()) {
    return nullptr;
  }
  NodeId intake = schema->FindNodeByName("intake");
  DataId priority = schema->FindDataByName("priority");
  DataId cohort = schema->FindDataByName("cohort");
  DataId bucket = schema->FindDataByName("bucket");
  for (int64_t i = 0; i < population; ++i) {
    auto id = (*system)->CreateInstance("tagged");
    if (!id.ok()) return nullptr;
    if (!(*system)->StartActivity(*id, intake).ok()) return nullptr;
    if (!(*system)
             ->CompleteActivity(*id, intake,
                                {{priority, DataValue::Int(i % 1000)},
                                 {cohort, DataValue::Int(i % 100)},
                                 {bucket, DataValue::Int(i % 10)}})
             .ok()) {
      return nullptr;
    }
  }
  AdeptSystem* raw = system->get();
  cache[population] = std::move(*system);
  return raw;
}

// range(1) selects the selectivity tier: the same key value (7) against
// the % 1000 / % 100 / % 10 cohort keys.
const char* kSelectivityQuery[] = {
    "data.priority == 7",  // 0.1%
    "data.cohort == 7",    // 1%
    "data.bucket == 7",    // 10%
};
const double kSelectivityPct[] = {0.1, 1.0, 10.0};

void BM_QueryIndexed(benchmark::State& state) {
  AdeptSystem* system = PopulatedSystem(state.range(0));
  if (system == nullptr) {
    state.SkipWithError("population setup failed");
    return;
  }
  const std::string query = kSelectivityQuery[state.range(1)];
  size_t matches = 0;
  for (auto _ : state) {
    auto result = system->Query(query);
    benchmark::DoNotOptimize(result);
    if (result.ok()) matches = result->size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["population"] = static_cast<double>(state.range(0));
  state.counters["selectivity_pct"] = kSelectivityPct[state.range(1)];
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_QueryIndexed)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

void BM_QueryScan(benchmark::State& state) {
  AdeptSystem* system = PopulatedSystem(state.range(0));
  if (system == nullptr) {
    state.SkipWithError("population setup failed");
    return;
  }
  const std::string query = kSelectivityQuery[state.range(1)];
  size_t matches = 0;
  for (auto _ : state) {
    // Compile inside the loop for symmetry with Query(); passing no index
    // forces the full sweep over every published snapshot.
    auto compiled = CompiledQuery::Compile(query);
    if (!compiled.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    QueryResult result = RunQuery(*compiled, system->snapshots(), nullptr);
    benchmark::DoNotOptimize(result.snapshots.data());
    matches = result.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["population"] = static_cast<double>(state.range(0));
  state.counters["selectivity_pct"] = kSelectivityPct[state.range(1)];
  state.counters["matches"] = static_cast<double>(matches);
}
BENCHMARK(BM_QueryScan)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

// --- Index maintenance overhead on the write path ----------------------------

constexpr int kWritePopulation = 256;

// BM_ClusterBatchThroughput's workload (bench_cluster_scaling.cc) with the
// query indexes toggled: every DriveStep publishes a snapshot, and with
// Arg(1) each publication also applies its delta to six index families.
void BM_QueryIndexMaintenance(benchmark::State& state) {
  const bool indexes = state.range(0) != 0;
  ClusterOptions options;
  options.shards = 4;
  options.driver.seed = 42;
  options.query_indexes = indexes;
  auto cluster = AdeptCluster::Create(options);
  if (!cluster.ok()) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  auto schema = bench::ScaledSchema(48, /*seed=*/7, "scaled_cluster");
  if (!(*cluster)->DeployProcessType(schema).ok()) {
    state.SkipWithError("deploy failed");
    return;
  }
  std::vector<InstanceId> ids;
  std::vector<AdeptCluster::BatchOp> creates(
      kWritePopulation, AdeptCluster::BatchOp::Create("scaled_cluster"));
  for (const auto& result : (*cluster)->SubmitBatch(creates)) {
    if (!result.status.ok()) {
      state.SkipWithError("population setup failed");
      return;
    }
    ids.push_back(result.id);
  }

  size_t executed = 0;
  std::vector<AdeptCluster::BatchOp> batch;
  for (auto _ : state) {
    batch.clear();
    for (InstanceId id : ids) {
      batch.push_back(AdeptCluster::BatchOp::DriveStep(id));
    }
    auto results = (*cluster)->SubmitBatch(batch);
    benchmark::DoNotOptimize(results.data());
    executed += results.size();

    state.PauseTiming();
    for (InstanceId& id : ids) {
      auto snapshot = (*cluster)->SnapshotOf(id);
      if (snapshot != nullptr && !snapshot->finished) continue;
      auto fresh = (*cluster)->CreateInstance("scaled_cluster");
      if (fresh.ok()) id = *fresh;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(executed));
  state.counters["indexes"] = indexes ? 1 : 0;
  state.counters["population"] = kWritePopulation;
}
BENCHMARK(BM_QueryIndexMaintenance)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
