// Shared workload generators for the benchmark harness.
//
// All benchmarks are seeded and deterministic. Two generators are provided:
//   * ScaledSchema: a random well-formed WSM net with ~`activities`
//     activities, nested AND/XOR/LOOP blocks, decision/loop data elements
//     wired so the data-flow verifier passes, and optional sync edges
//   * Population: the paper's online-ordering process instantiated N times,
//     each instance driven to a random progress point, an adjustable
//     fraction ad-hoc modified ("biased"), matching the migration scenario
//     of Figs. 1/3 at scale

#ifndef ADEPT_BENCH_BENCH_UTIL_H_
#define ADEPT_BENCH_BENCH_UTIL_H_

#include <memory>
#include <vector>

#include "change/change_op.h"
#include "change/delta.h"
#include "common/rng.h"
#include "compliance/adhoc.h"
#include "compliance/migration.h"
#include "model/schema_builder.h"
#include "runtime/driver.h"
#include "runtime/engine.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"

namespace adept {
namespace bench {

// --- Random scaled schemas ---------------------------------------------------

// `uid` makes generated names unique across sibling branches — parallel
// branches share a budget value, and budget-derived names alone would
// duplicate on every branch pair, drowning the verifier benchmarks in
// duplicate-name warnings instead of analysis work.
inline void BuildSegment(SchemaBuilder& b, Rng& rng, int& budget, int depth,
                         int& uid) {
  while (budget > 0) {
    int roll = static_cast<int>(rng.NextBelow(10));
    if (depth >= 3) roll = 0;  // cap nesting
    if (roll < 6 || budget < 4) {
      b.Activity("act" + std::to_string(++uid));
      --budget;
    } else if (roll < 8) {
      // AND block, two branches.
      int slice = std::max(1, budget / 4);
      budget -= 2 * slice;
      b.Parallel({
          [&, slice](SchemaBuilder& s) mutable {
            int sub = slice;
            BuildSegment(s, rng, sub, depth + 1, uid);
          },
          [&, slice](SchemaBuilder& s) mutable {
            int sub = slice;
            BuildSegment(s, rng, sub, depth + 1, uid);
          },
      });
    } else if (roll < 9) {
      // XOR block steered by a fresh element written just before.
      DataId sel = b.Data("sel" + std::to_string(++uid), DataType::kInt);
      NodeId writer = b.Activity("route" + std::to_string(uid));
      b.Writes(writer, sel);
      --budget;
      int slice = std::max(1, budget / 4);
      budget -= 2 * slice;
      b.Conditional(sel, {
          [&, slice](SchemaBuilder& s) mutable {
            int sub = slice;
            BuildSegment(s, rng, sub, depth + 1, uid);
          },
          [&, slice](SchemaBuilder& s) mutable {
            int sub = slice;
            BuildSegment(s, rng, sub, depth + 1, uid);
          },
      });
    } else {
      // Loop whose last body activity rewrites the condition.
      DataId again = b.Data("again" + std::to_string(++uid), DataType::kBool);
      int slice = std::max(1, budget / 4);
      budget -= slice;
      b.Loop(again, [&, slice, again](SchemaBuilder& s) mutable {
        int sub = slice - 1;
        if (sub > 0) BuildSegment(s, rng, sub, depth + 1, uid);
        NodeId last = s.Activity("body" + std::to_string(++uid));
        s.Writes(last, again);
      });
    }
  }
}

inline std::shared_ptr<const ProcessSchema> ScaledSchema(
    int activities, uint64_t seed, const std::string& name = "scaled") {
  SchemaBuilder b(name, 1);
  Rng rng(seed);
  int budget = activities;
  int uid = 0;
  BuildSegment(b, rng, budget, 0, uid);
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// --- Online-ordering population (Figs. 1/3 at scale) -------------------------

inline std::shared_ptr<const ProcessSchema> OnlineOrderV1() {
  SchemaBuilder b("online_order", 1);
  b.Activity("get order");
  b.Activity("collect data");
  b.Parallel({
      [](SchemaBuilder& s) { s.Activity("confirm order"); },
      [](SchemaBuilder& s) { s.Activity("compose order"); },
  });
  b.Activity("pack goods");
  b.Activity("deliver goods");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// The paper's Delta-T (pinned against `v1`).
inline Delta Fig1TypeChange(const ProcessSchema& v1) {
  Delta probe;
  NewActivitySpec spec;
  spec.name = "send questions";
  auto* op = probe.Add(std::make_unique<SerialInsertOp>(
      spec, v1.FindNodeByName("compose order"), v1.FindNodeByName("and_join")));
  (void)probe.ApplyToSchema(v1);
  Delta delta;
  delta.Add(op->Clone());
  delta.Add(std::make_unique<InsertSyncEdgeOp>(
      static_cast<SerialInsertOp*>(op)->inserted_node(),
      v1.FindNodeByName("confirm order")));
  return delta;
}

// A bias disjoint from Delta-T (migratable with bias kept).
inline Delta DisjointBias(const ProcessSchema& v1) {
  Delta delta;
  NewActivitySpec spec;
  spec.name = "gift wrap";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, v1.FindNodeByName("pack goods"),
      v1.FindNodeByName("deliver goods")));
  return delta;
}

// A bias conflicting with Delta-T (deadlock cycle; Fig. 1's I2).
inline Delta ConflictingBias(const ProcessSchema& v1) {
  Delta delta;
  delta.Add(std::make_unique<InsertSyncEdgeOp>(
      v1.FindNodeByName("confirm order"),
      v1.FindNodeByName("compose order")));
  return delta;
}

struct PopulationOptions {
  int instances = 1000;
  double biased_fraction = 0.0;       // of these...
  double conflicting_fraction = 0.0;  // ...this many get the conflicting bias
  double max_progress = 0.6;          // uniform progress in [0, max]
  uint64_t seed = 1;
  StorageStrategy strategy = StorageStrategy::kOverlay;
};

struct Population {
  std::shared_ptr<const ProcessSchema> v1;
  SchemaId v1_id;
  SchemaRepository repo;
  Engine engine;
  std::unique_ptr<InstanceStore> store;
  std::unique_ptr<MigrationManager> manager;
  std::vector<InstanceId> ids;
};

inline std::unique_ptr<Population> MakePopulation(
    const PopulationOptions& options) {
  auto pop = std::make_unique<Population>();
  pop->v1 = OnlineOrderV1();
  pop->v1_id = *pop->repo.Deploy(pop->v1);
  pop->store = std::make_unique<InstanceStore>(&pop->repo);
  pop->manager = std::make_unique<MigrationManager>(&pop->engine, &pop->repo,
                                                    pop->store.get());
  Rng rng(options.seed);
  SimulationDriver driver({.seed = options.seed + 1});
  for (int i = 0; i < options.instances; ++i) {
    ProcessInstance* inst = *pop->engine.CreateInstance(pop->v1, pop->v1_id);
    (void)pop->store->Register(inst->id(), pop->v1_id, options.strategy);
    (void)inst->Start();
    double roll = rng.NextDouble();
    if (roll < options.biased_fraction * options.conflicting_fraction) {
      (void)ApplyAdHocChange(*inst, *pop->store, ConflictingBias(*pop->v1));
    } else if (roll < options.biased_fraction) {
      (void)ApplyAdHocChange(*inst, *pop->store, DisjointBias(*pop->v1));
    }
    (void)driver.RunToProgress(*inst, rng.NextDouble() * options.max_progress);
    pop->ids.push_back(inst->id());
  }
  return pop;
}

}  // namespace bench
}  // namespace adept

#endif  // ADEPT_BENCH_BENCH_UTIL_H_
