// E6: buildtime verification cost vs. schema size.
//
// ADEPT2 "ensures schema correctness, like the absence of deadlock-causing
// cycles or erroneous data flows" — a prerequisite for every dynamic
// change, so re-verification sits on the change hot path. This measures
// the full verifier and its component passes on schemas from 10 to 5000
// activities.
//
// Expected shape: near-linear in nodes+edges for the structural passes;
// the data-race pass is the superlinear tail (pairwise reachability) but
// stays affordable at realistic schema sizes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "model/block_tree.h"
#include "verify/verifier.h"

namespace adept {
namespace {

void BM_FullVerification(benchmark::State& state) {
  auto schema =
      bench::ScaledSchema(static_cast<int>(state.range(0)), 17, "verify");
  if (schema == nullptr) {
    state.SkipWithError("schema generation failed");
    return;
  }
  for (auto _ : state) {
    VerificationReport report = VerifySchema(*schema);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * schema->node_count());
  state.counters["nodes"] = static_cast<double>(schema->node_count());
  state.counters["edges"] = static_cast<double>(schema->edge_count());
}
BENCHMARK(BM_FullVerification)
    ->Arg(10)
    ->Arg(50)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

void BM_BlockStructureParse(benchmark::State& state) {
  auto schema =
      bench::ScaledSchema(static_cast<int>(state.range(0)), 17, "blocks");
  for (auto _ : state) {
    auto tree = BlockTree::Build(*schema);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * schema->node_count());
}
BENCHMARK(BM_BlockStructureParse)
    ->Arg(50)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

// Deadlock-cycle detection on a wide parallel block with many sync edges
// (the check that catches Fig. 1's structural conflict).
void BM_DeadlockDetection(benchmark::State& state) {
  int lanes = static_cast<int>(state.range(0));
  SchemaBuilder b("sync_heavy", 1);
  std::vector<std::vector<NodeId>> lane_nodes(static_cast<size_t>(lanes));
  std::vector<SchemaBuilder::BranchFn> branches;
  for (int lane = 0; lane < lanes; ++lane) {
    branches.push_back([&, lane](SchemaBuilder& s) {
      for (int k = 0; k < 4; ++k) {
        lane_nodes[static_cast<size_t>(lane)].push_back(
            s.Activity("a" + std::to_string(lane) + "_" + std::to_string(k)));
      }
    });
  }
  b.Parallel(branches);
  // Forward sync edges lane i -> lane i+1 (acyclic).
  auto schema_result = b.Build();
  auto clone = (*schema_result)->Clone();
  for (int lane = 0; lane + 1 < lanes; ++lane) {
    (void)clone->AddEdge(lane_nodes[static_cast<size_t>(lane)][1],
                         lane_nodes[static_cast<size_t>(lane) + 1][2],
                         EdgeType::kSync);
  }
  (void)clone->Freeze();

  for (auto _ : state) {
    VerificationReport report = VerifySchema(*clone);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sync_edges"] = static_cast<double>(lanes - 1);
}
BENCHMARK(BM_DeadlockDetection)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Re-verification as part of a change transaction (clone + apply + verify):
// what every delta pays.
void BM_ChangeTransactionVerify(benchmark::State& state) {
  auto schema =
      bench::ScaledSchema(static_cast<int>(state.range(0)), 23, "txn");
  NodeId end = schema->end_node();
  NodeId last = schema->Predecessors(end, EdgeType::kControl)[0];
  int round = 0;
  for (auto _ : state) {
    Delta delta;
    NewActivitySpec spec;
    spec.name = "txn" + std::to_string(round++);
    delta.Add(std::make_unique<SerialInsertOp>(spec, last, end));
    auto derived = delta.ApplyToSchema(*schema);
    benchmark::DoNotOptimize(derived);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(schema->node_count());
}
BENCHMARK(BM_ChangeTransactionVerify)
    ->Arg(50)
    ->Arg(250)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// Incremental re-verification of a single-op change (the sixth report
// trajectory, paired with BM_FullVerification on the same seed-17
// schemas): the base analysis is cached, the candidate and its change
// region are pre-built, and each iteration re-analyzes only the dirty
// blocks and recomposes. The acceptance bar for the incremental engine is
// >= 10x over BM_FullVerification at 1000 nodes.
void BM_IncrementalDeltaVerify(benchmark::State& state) {
  auto schema =
      bench::ScaledSchema(static_cast<int>(state.range(0)), 17, "verify");
  if (schema == nullptr) {
    state.SkipWithError("schema generation failed");
    return;
  }
  AnalysisResult base = AnalyzeSchema(*schema);

  // One serial insert in front of the end node, region collected the way
  // Delta::ApplyVerified collects it.
  NodeId end = schema->end_node();
  NodeId last = schema->Predecessors(end, EdgeType::kControl)[0];
  Delta delta;
  NewActivitySpec spec;
  spec.name = "inc";
  delta.Add(std::make_unique<SerialInsertOp>(spec, last, end));
  SchemaIdAllocator alloc;
  std::shared_ptr<ProcessSchema> candidate = schema->Clone();
  candidate->set_version(schema->version() + 1);
  ChangeRegion region;
  for (const auto& op : delta.ops()) {
    op->RegionBefore(*candidate, region);
    if (!op->ApplyTo(*candidate, alloc).ok()) {
      state.SkipWithError("op application failed");
      return;
    }
    op->RegionAfter(*candidate, region);
  }
  if (!candidate->Freeze().ok()) {
    state.SkipWithError("freeze failed");
    return;
  }

  size_t reused = 0, total = 0;
  for (auto _ : state) {
    AnalysisResult r = AnalyzeDelta(*base.analysis, *candidate, region);
    reused = r.analysis->stats().blocks_reused;
    total = r.analysis->stats().blocks_total;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * candidate->node_count());
  state.counters["nodes"] = static_cast<double>(candidate->node_count());
  state.counters["blocks"] = static_cast<double>(total);
  state.counters["blocks_reused"] = static_cast<double>(reused);
}
BENCHMARK(BM_IncrementalDeltaVerify)
    ->Arg(10)
    ->Arg(50)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

// The same change through the full transaction path (clone + apply +
// incremental verify + analysis handoff) — what DeriveVersion/AddBias
// actually pay per delta, including the costs the cached analysis cannot
// remove (schema clone, tree parse at Freeze).
void BM_IncrementalChangeTransaction(benchmark::State& state) {
  auto schema =
      bench::ScaledSchema(static_cast<int>(state.range(0)), 23, "txn");
  AnalysisResult base = AnalyzeSchema(*schema);
  NodeId end = schema->end_node();
  NodeId last = schema->Predecessors(end, EdgeType::kControl)[0];
  int round = 0;
  for (auto _ : state) {
    Delta delta;
    NewActivitySpec spec;
    spec.name = "txn" + std::to_string(round++);
    delta.Add(std::make_unique<SerialInsertOp>(spec, last, end));
    auto verified = delta.ApplyVerified(*schema, base.analysis.get());
    benchmark::DoNotOptimize(verified);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(schema->node_count());
}
BENCHMARK(BM_IncrementalChangeTransaction)
    ->Arg(50)
    ->Arg(250)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
