// WorklistService scaling: offer fan-out, concurrent claim contention,
// and the revocation storm of a bulk migration.
//
//   BM_WorklistOfferFanout     OffersFor() against a pool of open items
//                              spread over 8 roles — exercises the
//                              per-role offer index (no full-table scan);
//                              Arg(0) = total open items
//   BM_WorklistClaimContention N threads race Claim()+Release() over a
//                              shared pool — exercises the exactly-once
//                              compare-and-swap and the claim journal's
//                              group commit; Arg(0) = journal mode
//                              (0 none, 1 flush, 2 fsync), ->Threads(N)
//                              sets the claimer count
//   BM_WorklistRevocationStorm one bulk MigrateToLatest() that demotes
//                              the offered/claimed activity of every
//                              instance — Arg(0) instances, half claimed
//
// Emit machine-readable results like every other bench:
//   ./build/bench_worklist --benchmark_format=json

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "change/change_op.h"
#include "cluster/adept_cluster.h"
#include "model/schema_builder.h"
#include "worklist/worklist_service.h"

namespace adept {
namespace {

constexpr int kRoles = 8;
constexpr int kShards = 4;

std::string BenchPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void RemoveBenchFiles(const std::string& base) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(
           std::filesystem::temp_directory_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(base, 0) == 0) std::filesystem::remove(entry.path(), ec);
  }
}

// One role-carrying activity per role, in sequence; instance k offers its
// first activity to role (k % kRoles).
std::shared_ptr<const ProcessSchema> BenchSchema(
    const std::vector<RoleId>& roles, int first_role) {
  SchemaBuilder b("bench_wl_" + std::to_string(first_role), 1);
  b.Activity("work", {.role = roles[static_cast<size_t>(first_role)]});
  b.Activity("finish", {.role = roles[0]});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

struct BenchCluster {
  std::unique_ptr<AdeptCluster> cluster;
  std::vector<RoleId> roles;
  std::vector<UserId> users;  // user u holds role (u % kRoles)
  std::vector<WorkItem> items;

  // A user authorized to claim `item` (role r's first member).
  UserId UserFor(const WorkItem& item) const {
    for (size_t r = 0; r < roles.size(); ++r) {
      if (roles[r] == item.role) return users[r];
    }
    return users[0];
  }
};

// items = open offers, one per instance, spread round-robin over roles.
std::unique_ptr<BenchCluster> MakeBenchCluster(int items, int users,
                                               const std::string& wal_base,
                                               SyncMode sync) {
  auto bc = std::make_unique<BenchCluster>();
  ClusterOptions options;
  options.shards = kShards;
  options.sync = sync;
  if (!wal_base.empty()) {
    RemoveBenchFiles(wal_base);
    options.wal_path = BenchPath(wal_base + ".wal");
    options.snapshot_path = BenchPath(wal_base + ".snapshot");
  }
  auto cluster = AdeptCluster::Create(options);
  if (!cluster.ok()) return nullptr;
  bc->cluster = std::move(cluster).value();
  OrgModel& org = bc->cluster->org();
  for (int r = 0; r < kRoles; ++r) {
    bc->roles.push_back(*org.AddRole("role" + std::to_string(r)));
  }
  for (int u = 0; u < users; ++u) {
    UserId user = *org.AddUser("user" + std::to_string(u));
    (void)org.AssignRole(user, bc->roles[static_cast<size_t>(u % kRoles)]);
    bc->users.push_back(user);
  }
  for (int r = 0; r < kRoles; ++r) {
    if (bc->cluster->DeployProcessType(BenchSchema(bc->roles, r)).ok() ==
        false) {
      return nullptr;
    }
  }
  for (int i = 0; i < items; ++i) {
    auto id = bc->cluster->CreateInstance("bench_wl_" +
                                          std::to_string(i % kRoles));
    if (!id.ok()) return nullptr;
  }
  // Collect every open item (via each role's first member).
  for (int r = 0; r < kRoles && r < users; ++r) {
    for (const WorkItem& item :
         bc->cluster->Worklist().OffersFor(bc->users[static_cast<size_t>(r)])) {
      bc->items.push_back(item);
    }
  }
  return bc;
}

std::unique_ptr<BenchCluster> g_bench;

// --- Offer fan-out -----------------------------------------------------------

void SetUpOfferFanout(const benchmark::State& state) {
  g_bench = MakeBenchCluster(static_cast<int>(state.range(0)), kRoles,
                             std::string(), SyncMode::kNone);
}

void TearDownOfferFanout(const benchmark::State&) { g_bench.reset(); }

void BM_WorklistOfferFanout(benchmark::State& state) {
  if (g_bench == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  WorklistService& worklist = g_bench->cluster->Worklist();
  size_t user_index = 0;
  size_t returned = 0;
  for (auto _ : state) {
    auto offers = worklist.OffersFor(
        g_bench->users[user_index++ % g_bench->users.size()]);
    returned += offers.size();
    benchmark::DoNotOptimize(offers);
  }
  state.SetItemsProcessed(static_cast<int64_t>(returned));
  state.counters["open_items"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WorklistOfferFanout)
    ->Setup(SetUpOfferFanout)
    ->Teardown(TearDownOfferFanout)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// --- Concurrent claim contention ---------------------------------------------

std::atomic<uint64_t> g_cursor{0};

void SetUpClaimContention(const benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  g_cursor.store(0);
  g_bench = MakeBenchCluster(
      1024, 8, mode == 0 ? std::string() : "adept_bench_worklist",
      static_cast<SyncMode>(mode == 0 ? 0 : mode));
}

void TearDownClaimContention(const benchmark::State&) {
  g_bench.reset();
  RemoveBenchFiles("adept_bench_worklist");
}

void BM_WorklistClaimContention(benchmark::State& state) {
  if (g_bench == nullptr || g_bench->items.empty()) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  // Every thread claims with a user that holds the item's role, so each
  // attempt is authorized and any failure is a genuine lost CAS against
  // a concurrent claimer. Claim+Release keeps the pool at steady state.
  WorklistService& worklist = g_bench->cluster->Worklist();
  size_t won = 0, lost = 0;
  for (auto _ : state) {
    const WorkItem& item = g_bench->items[static_cast<size_t>(
        g_cursor.fetch_add(1, std::memory_order_relaxed) %
        g_bench->items.size())];
    UserId user = g_bench->UserFor(item);
    Status st = worklist.Claim(item.id, user);
    if (st.ok()) {
      ++won;
      benchmark::DoNotOptimize(worklist.Release(item.id, user));
    } else {
      ++lost;  // a concurrent claimer won the compare-and-swap
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(won));
  state.counters["claimers"] =
      benchmark::Counter(state.threads(), benchmark::Counter::kAvgThreads);
  state.counters["journal"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_WorklistClaimContention)
    ->Setup(SetUpClaimContention)
    ->Teardown(TearDownClaimContention)
    ->Arg(0)  // no journal
    ->Arg(1)  // group-commit flush
    ->Arg(2)  // group-commit fsync
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// --- Revocation storm --------------------------------------------------------

void BM_WorklistRevocationStorm(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  size_t revoked = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto bench = MakeBenchCluster(instances, kRoles, std::string(),
                                  SyncMode::kNone);
    if (bench == nullptr) {
      state.SkipWithError("cluster setup failed");
      return;
    }
    WorklistService& worklist = bench->cluster->Worklist();
    // Claim half the pool (with authorized users) so the storm retracts
    // offered and claimed items alike.
    for (size_t i = 0; i < bench->items.size(); i += 2) {
      (void)worklist.Claim(bench->items[i].id,
                           bench->UserFor(bench->items[i]));
    }
    // One evolution per type: insert a gate before the offered activity.
    for (int r = 0; r < kRoles; ++r) {
      const std::string type = "bench_wl_" + std::to_string(r);
      auto v1 = bench->cluster->LatestVersion(type);
      auto schema = bench->cluster->Schema(*v1);
      Delta delta;
      NewActivitySpec spec;
      spec.name = "gate";
      spec.role = bench->roles[0];
      delta.Add(std::make_unique<SerialInsertOp>(
          spec, (*schema)->FindNodeByName("start"),
          (*schema)->FindNodeByName("work")));
      if (!bench->cluster->EvolveProcessType(*v1, std::move(delta)).ok()) {
        state.SkipWithError("evolve failed");
        return;
      }
    }
    state.ResumeTiming();
    // The storm: shard-parallel migration demotes "work" on every
    // instance; every open item is revoked and "gate" offered instead.
    for (int r = 0; r < kRoles; ++r) {
      auto report =
          bench->cluster->MigrateToLatest("bench_wl_" + std::to_string(r));
      benchmark::DoNotOptimize(report);
    }
    revoked += bench->cluster->Worklist().Stats().revoked_total;
    state.PauseTiming();
    bench.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(revoked));
  state.counters["instances"] = static_cast<double>(instances);
}
BENCHMARK(BM_WorklistRevocationStorm)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
