// E1 (paper Fig. 1): classification + migration of instance populations.
//
// Reproduces the migration example at scale: N running instances of the
// online ordering process in random states, a fraction ad-hoc modified
// (half of those with the deadlock-inducing bias of instance I2), then the
// type change Delta-T is propagated.
//
//   BM_ClassifyPopulation   dry-run classification cost (repeatable)
//   BM_MigratePopulation    full migration incl. rebasing + state
//                           adaptation (one shot per population)
//
// Expected shape: both scale ~linearly in N; classification alone is a
// small constant factor cheaper than full migration.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace adept {
namespace {

using bench::Fig1TypeChange;
using bench::MakePopulation;
using bench::PopulationOptions;

void BM_ClassifyPopulation(benchmark::State& state) {
  PopulationOptions options;
  options.instances = static_cast<int>(state.range(0));
  options.biased_fraction = 0.2;
  options.conflicting_fraction = 0.5;
  auto pop = MakePopulation(options);
  SchemaId v2 = *pop->repo.DeriveVersion(pop->v1_id, Fig1TypeChange(*pop->v1));

  MigrationOptions mopts;
  mopts.dry_run = true;
  size_t migratable = 0;
  for (auto _ : state) {
    auto report = pop->manager->MigrateAll(pop->v1_id, v2, mopts);
    benchmark::DoNotOptimize(report);
    migratable = report->MigratedTotal();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["migratable"] = static_cast<double>(migratable);
}
BENCHMARK(BM_ClassifyPopulation)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_MigratePopulation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PopulationOptions options;
    options.instances = static_cast<int>(state.range(0));
    options.biased_fraction = 0.2;
    options.conflicting_fraction = 0.5;
    auto pop = MakePopulation(options);
    SchemaId v2 =
        *pop->repo.DeriveVersion(pop->v1_id, Fig1TypeChange(*pop->v1));
    state.ResumeTiming();

    auto report = pop->manager->MigrateAll(pop->v1_id, v2);
    benchmark::DoNotOptimize(report);
    state.PauseTiming();
    state.counters["migrated"] = static_cast<double>(report->MigratedTotal());
    state.counters["state_conflicts"] = static_cast<double>(
        report->Count(MigrationOutcome::kStateConflict));
    state.counters["structural_conflicts"] = static_cast<double>(
        report->Count(MigrationOutcome::kStructuralConflict));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MigratePopulation)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The exact three-instance scenario of Fig. 1, end to end (I1 compliant,
// I2 structural conflict, I3 state conflict).
void BM_Fig1ExactScenario(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto pop = MakePopulation({.instances = 0});
    SimulationDriver driver({.seed = 3});
    // I1: up to the parallel block.
    ProcessInstance* i1 = *pop->engine.CreateInstance(pop->v1, pop->v1_id);
    (void)pop->store->Register(i1->id(), pop->v1_id);
    (void)i1->Start();
    (void)driver.RunToProgress(*i1, 0.3);
    // I2: conflicting bias.
    ProcessInstance* i2 = *pop->engine.CreateInstance(pop->v1, pop->v1_id);
    (void)pop->store->Register(i2->id(), pop->v1_id);
    (void)i2->Start();
    (void)ApplyAdHocChange(*i2, *pop->store, bench::ConflictingBias(*pop->v1));
    // I3: past the block.
    ProcessInstance* i3 = *pop->engine.CreateInstance(pop->v1, pop->v1_id);
    (void)pop->store->Register(i3->id(), pop->v1_id);
    (void)i3->Start();
    (void)driver.RunToProgress(*i3, 0.7);
    SchemaId v2 =
        *pop->repo.DeriveVersion(pop->v1_id, Fig1TypeChange(*pop->v1));
    state.ResumeTiming();

    auto report = pop->manager->MigrateAll(pop->v1_id, v2);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_Fig1ExactScenario)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
