// E8: sharded cluster scaling ("millions of users" trajectory).
//
//   BM_ClusterBatchThroughput  synthetic activity steps per second on a
//                              fixed instance population, executed through
//                              AdeptCluster::SubmitBatch with 1/2/4/8
//                              shards — the shard groups of each batch run
//                              in parallel on the worker pool
//   BM_ClusterMigration        full type migration of the population,
//                              fanned out shard-parallel
//   BM_ClusterResize           elastic repartitioning cost: moving the
//                              whole population through the WAL-logged
//                              export/import handover (2 -> N -> 2)
//   BM_ClusterReadThroughput   lock-free snapshot reads (SnapshotOf),
//                              1/2/4/8 reader threads x 0/1 background
//                              writers — the read path under test must
//                              scale with readers and not collapse when a
//                              writer holds the shard mutexes
//   BM_ClusterWithInstanceRead the pre-snapshot baseline: the same read
//                              load through WithInstance, which serializes
//                              on the owning shard's mutex behind writers
//   BM_ClusterMixedReadWrite   90/10 read/write per thread — the paper's
//                              read-dominated monitoring + worklist load
//
// Expected shape: batch throughput grows with the shard count up to the
// core count; snapshot-read throughput grows with the reader count (and
// with 1 writer stays far above the WithInstance baseline, which
// serializes every read behind the writer's engine turns). The 1-shard /
// 1-reader runs are the baselines for both speedup curves.
//
// Emit machine-readable results like every other bench:
//   ./build/bench_cluster_scaling --benchmark_format=json
// The CI job uploads the read-path subset as BENCH_read.json:
//   --benchmark_filter='BM_Cluster(Read|WithInstanceRead|MixedReadWrite)'

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <unordered_map>

#include "bench/bench_util.h"
#include "cluster/adept_cluster.h"

namespace adept {
namespace {

constexpr int kPopulation = 256;

std::unique_ptr<AdeptCluster> MakeCluster(int shards,
                                          std::vector<InstanceId>* ids) {
  ClusterOptions options;
  options.shards = shards;
  options.driver.seed = 42;
  auto cluster = AdeptCluster::Create(options);
  if (!cluster.ok()) return nullptr;
  auto schema = bench::ScaledSchema(48, /*seed=*/7, "scaled_cluster");
  if ((*cluster)->DeployProcessType(schema).ok() == false) return nullptr;
  std::vector<AdeptCluster::BatchOp> creates(
      kPopulation, AdeptCluster::BatchOp::Create("scaled_cluster"));
  for (const auto& result : (*cluster)->SubmitBatch(creates)) {
    if (!result.status.ok()) return nullptr;
    ids->push_back(result.id);
  }
  return std::move(*cluster);
}

void BM_ClusterBatchThroughput(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::vector<InstanceId> ids;
  auto cluster = MakeCluster(shards, &ids);
  if (cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }

  size_t executed = 0;
  std::vector<AdeptCluster::BatchOp> batch;
  for (auto _ : state) {
    batch.clear();
    for (InstanceId id : ids) {
      batch.push_back(AdeptCluster::BatchOp::DriveStep(id));
    }
    auto results = cluster->SubmitBatch(batch);
    benchmark::DoNotOptimize(results.data());
    executed += results.size();

    // Recycle finished instances outside the timed region, via the
    // lock-free snapshot read path.
    state.PauseTiming();
    for (InstanceId& id : ids) {
      auto snapshot = cluster->SnapshotOf(id);
      if (snapshot != nullptr && !snapshot->finished) continue;
      auto fresh = cluster->CreateInstance("scaled_cluster");
      if (fresh.ok()) id = *fresh;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(executed));
  state.counters["shards"] = shards;
  state.counters["population"] = kPopulation;
}
BENCHMARK(BM_ClusterBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ClusterMigration(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ClusterOptions options;
    options.shards = shards;
    auto cluster = AdeptCluster::Create(options);
    if (!cluster.ok()) {
      state.SkipWithError("cluster setup failed");
      return;
    }
    auto v1_schema = bench::OnlineOrderV1();
    auto v1 = (*cluster)->DeployProcessType(v1_schema);
    if (!v1.ok()) {
      state.SkipWithError("deploy failed");
      return;
    }
    std::vector<AdeptCluster::BatchOp> creates(
        kPopulation, AdeptCluster::BatchOp::Create("online_order"));
    (void)(*cluster)->SubmitBatch(creates);
    auto v2 =
        (*cluster)->EvolveProcessType(*v1, bench::Fig1TypeChange(*v1_schema));
    if (!v2.ok()) {
      state.SkipWithError("evolution failed");
      return;
    }
    state.ResumeTiming();

    auto report = (*cluster)->Migrate(*v1, *v2);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * kPopulation);
  state.counters["shards"] = shards;
}
BENCHMARK(BM_ClusterMigration)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Elastic resize round trip on a live in-memory cluster: 2 -> N moves the
// instances the new routing places elsewhere, N -> 2 moves them back. One
// iteration therefore prices two full repartitioning passes over the
// population (items processed counts moved instances).
void BM_ClusterResize(benchmark::State& state) {
  const int target = static_cast<int>(state.range(0));
  std::vector<InstanceId> ids;
  auto cluster = MakeCluster(2, &ids);
  if (cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  size_t moved = 0;
  for (auto _ : state) {
    if (!cluster->Resize(target).ok() || !cluster->Resize(2).ok()) {
      state.SkipWithError("resize failed");
      return;
    }
    // Instances whose owner differs between the two routings moved twice.
    for (InstanceId id : ids) {
      size_t owner2 = (id.value() - 1) % 2;
      size_t ownerN = (id.value() - 1) % static_cast<size_t>(target);
      if (owner2 != ownerN) moved += 2;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(moved));
  state.counters["target_shards"] = target;
  state.counters["population"] = kPopulation;
}
BENCHMARK(BM_ClusterResize)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Read-path scaling -------------------------------------------------------
//
// Shared environment for the read benchmarks: a 4-shard cluster with two
// populations on the same shards — `read_ids` (the benchmark threads'
// stable read targets) and `write_ids` (a background writer's churn).
// With writers=1 the writer continuously takes the shard mutexes through
// DriveStep; snapshot readers must not care, WithInstance readers queue
// behind it.
struct ReadBenchEnv {
  std::unique_ptr<AdeptCluster> cluster;
  std::vector<InstanceId> read_ids;
  std::vector<InstanceId> write_ids;
  std::thread writer;
  std::atomic<bool> stop{false};
};
ReadBenchEnv* g_read_env = nullptr;

void SetUpReadBench(const benchmark::State& state) {
  auto env = new ReadBenchEnv;
  ClusterOptions options;
  options.shards = 4;
  options.driver.seed = 42;
  auto cluster = AdeptCluster::Create(options);
  if (!cluster.ok()) {
    delete env;
    return;
  }
  env->cluster = std::move(*cluster);
  auto schema = bench::ScaledSchema(48, /*seed=*/7, "scaled_cluster");
  if (!env->cluster->DeployProcessType(schema).ok()) {
    delete env;
    return;
  }
  std::vector<AdeptCluster::BatchOp> creates(
      2 * kPopulation, AdeptCluster::BatchOp::Create("scaled_cluster"));
  auto created = env->cluster->SubmitBatch(creates);
  for (size_t i = 0; i < created.size(); ++i) {
    if (!created[i].status.ok()) {
      delete env;
      return;
    }
    (i % 2 == 0 ? env->read_ids : env->write_ids).push_back(created[i].id);
  }
  if (state.range(0) == 1) {
    env->writer = std::thread([env] {
      SimulationDriver driver({.seed = 7, .loop_continue_probability = 0.8});
      size_t i = 0;
      while (!env->stop.load(std::memory_order_relaxed)) {
        InstanceId& id = env->write_ids[i++ % env->write_ids.size()];
        auto progressed = env->cluster->DriveStep(id, driver);
        if (progressed.ok() && *progressed) continue;
        // Recycle finished instances (write_ids is writer-owned) so the
        // write load never decays to lock-only no-ops.
        auto fresh = env->cluster->CreateInstance("scaled_cluster");
        if (fresh.ok()) id = *fresh;
      }
    });
  }
  g_read_env = env;
}

void TearDownReadBench(const benchmark::State&) {
  if (g_read_env == nullptr) return;
  g_read_env->stop.store(true, std::memory_order_release);
  if (g_read_env->writer.joinable()) g_read_env->writer.join();
  delete g_read_env;
  g_read_env = nullptr;
}

// Lock-free snapshot reads; ->Threads(N) are the concurrent readers,
// Arg(0/1) toggles the background writer.
void BM_ClusterReadThroughput(benchmark::State& state) {
  if (g_read_env == nullptr) {
    state.SkipWithError("read bench setup failed");
    return;
  }
  const std::vector<InstanceId>& ids = g_read_env->read_ids;
  size_t i = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    auto snapshot = g_read_env->cluster->SnapshotOf(ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(snapshot);
    if (snapshot != nullptr) {
      benchmark::DoNotOptimize(snapshot->completed_total);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["readers"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
  state.counters["writers"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ClusterReadThroughput)
    ->Setup(SetUpReadBench)
    ->Teardown(TearDownReadBench)
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// The pre-snapshot baseline: identical load through WithInstance, which
// takes the owning shard's mutex per read and therefore serializes
// against the writer (and against other readers of the same shard).
void BM_ClusterWithInstanceRead(benchmark::State& state) {
  if (g_read_env == nullptr) {
    state.SkipWithError("read bench setup failed");
    return;
  }
  const std::vector<InstanceId>& ids = g_read_env->read_ids;
  size_t i = static_cast<size_t>(state.thread_index());
  for (auto _ : state) {
    bool finished = false;
    Status st = g_read_env->cluster->WithInstance(
        ids[i++ % ids.size()],
        [&](const ProcessInstance& inst) { finished = inst.Finished(); });
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(finished);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["readers"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
  state.counters["writers"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ClusterWithInstanceRead)
    ->Setup(SetUpReadBench)
    ->Teardown(TearDownReadBench)
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// 90/10 read/write mix per thread — worklist polling plus occasional
// activity completion, the paper's interactive monitoring workload. Each
// thread writes only its own instance slice (i % threads == thread_index),
// so write conflicts are benchmark-free while reads roam the whole
// population.
void BM_ClusterMixedReadWrite(benchmark::State& state) {
  if (g_read_env == nullptr) {
    state.SkipWithError("read bench setup failed");
    return;
  }
  const std::vector<InstanceId>& reads = g_read_env->read_ids;
  const std::vector<InstanceId>& writes = g_read_env->write_ids;
  SimulationDriver driver(
      {.seed = 1000 + static_cast<uint64_t>(state.thread_index()),
       .loop_continue_probability = 0.8});
  size_t i = static_cast<size_t>(state.thread_index());
  size_t writes_done = 0;
  // Per-thread replacements for finished write targets: the write load
  // must stay a real engine turn, and threads never touch each other's
  // slots (slot ownership is i % threads == thread_index).
  std::unordered_map<size_t, InstanceId> recycled;
  for (auto _ : state) {
    ++i;
    if (i % 10 == 0) {
      size_t slot = ((i / 10) % (writes.size() / state.threads())) *
                        state.threads() +
                    static_cast<size_t>(state.thread_index());
      auto it = recycled.find(slot);
      InstanceId id = it != recycled.end() ? it->second : writes[slot];
      auto progressed = g_read_env->cluster->DriveStep(id, driver);
      benchmark::DoNotOptimize(progressed);
      if (!progressed.ok() || !*progressed) {
        auto fresh = g_read_env->cluster->CreateInstance("scaled_cluster");
        if (fresh.ok()) recycled[slot] = *fresh;
      }
      ++writes_done;
    } else {
      auto snapshot = g_read_env->cluster->SnapshotOf(reads[i % reads.size()]);
      benchmark::DoNotOptimize(snapshot);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["writes"] = benchmark::Counter(
      static_cast<double>(writes_done));
  state.counters["readers"] = benchmark::Counter(
      state.threads(), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ClusterMixedReadWrite)
    ->Setup(SetUpReadBench)
    ->Teardown(TearDownReadBench)
    ->Arg(0)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
