// E8: sharded cluster scaling ("millions of users" trajectory).
//
//   BM_ClusterBatchThroughput  synthetic activity steps per second on a
//                              fixed instance population, executed through
//                              AdeptCluster::SubmitBatch with 1/2/4/8
//                              shards — the shard groups of each batch run
//                              in parallel on the worker pool
//   BM_ClusterMigration        full type migration of the population,
//                              fanned out shard-parallel
//   BM_ClusterResize           elastic repartitioning cost: moving the
//                              whole population through the WAL-logged
//                              export/import handover (2 -> N -> 2)
//
// Expected shape: throughput grows with the shard count up to the core
// count (per-instance ADEPT semantics are untouched; shards share nothing).
// The 1-shard runs are the single-engine baseline, so speedup(N) =
// items_per_second(N) / items_per_second(1).
//
// Emit machine-readable results like every other bench:
//   ./build/bench_cluster_scaling --benchmark_format=json

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "cluster/adept_cluster.h"

namespace adept {
namespace {

constexpr int kPopulation = 256;

std::unique_ptr<AdeptCluster> MakeCluster(int shards,
                                          std::vector<InstanceId>* ids) {
  ClusterOptions options;
  options.shards = shards;
  options.driver.seed = 42;
  auto cluster = AdeptCluster::Create(options);
  if (!cluster.ok()) return nullptr;
  auto schema = bench::ScaledSchema(48, /*seed=*/7, "scaled_cluster");
  if ((*cluster)->DeployProcessType(schema).ok() == false) return nullptr;
  std::vector<AdeptCluster::BatchOp> creates(
      kPopulation, AdeptCluster::BatchOp::Create("scaled_cluster"));
  for (const auto& result : (*cluster)->SubmitBatch(creates)) {
    if (!result.status.ok()) return nullptr;
    ids->push_back(result.id);
  }
  return std::move(*cluster);
}

void BM_ClusterBatchThroughput(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::vector<InstanceId> ids;
  auto cluster = MakeCluster(shards, &ids);
  if (cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }

  size_t executed = 0;
  std::vector<AdeptCluster::BatchOp> batch;
  for (auto _ : state) {
    batch.clear();
    for (InstanceId id : ids) {
      batch.push_back(AdeptCluster::BatchOp::DriveStep(id));
    }
    auto results = cluster->SubmitBatch(batch);
    benchmark::DoNotOptimize(results.data());
    executed += results.size();

    // Recycle finished instances outside the timed region. WithInstance
    // reads under the owning shard's lock (the race-free idiom even though
    // the pool is idle between batches).
    state.PauseTiming();
    for (InstanceId& id : ids) {
      bool finished = false;
      Status st = cluster->WithInstance(
          id, [&](const ProcessInstance& inst) { finished = inst.Finished(); });
      if (st.ok() && !finished) continue;
      auto fresh = cluster->CreateInstance("scaled_cluster");
      if (fresh.ok()) id = *fresh;
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(executed));
  state.counters["shards"] = shards;
  state.counters["population"] = kPopulation;
}
BENCHMARK(BM_ClusterBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ClusterMigration(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ClusterOptions options;
    options.shards = shards;
    auto cluster = AdeptCluster::Create(options);
    if (!cluster.ok()) {
      state.SkipWithError("cluster setup failed");
      return;
    }
    auto v1_schema = bench::OnlineOrderV1();
    auto v1 = (*cluster)->DeployProcessType(v1_schema);
    if (!v1.ok()) {
      state.SkipWithError("deploy failed");
      return;
    }
    std::vector<AdeptCluster::BatchOp> creates(
        kPopulation, AdeptCluster::BatchOp::Create("online_order"));
    (void)(*cluster)->SubmitBatch(creates);
    auto v2 =
        (*cluster)->EvolveProcessType(*v1, bench::Fig1TypeChange(*v1_schema));
    if (!v2.ok()) {
      state.SkipWithError("evolution failed");
      return;
    }
    state.ResumeTiming();

    auto report = (*cluster)->Migrate(*v1, *v2);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * kPopulation);
  state.counters["shards"] = shards;
}
BENCHMARK(BM_ClusterMigration)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Elastic resize round trip on a live in-memory cluster: 2 -> N moves the
// instances the new routing places elsewhere, N -> 2 moves them back. One
// iteration therefore prices two full repartitioning passes over the
// population (items processed counts moved instances).
void BM_ClusterResize(benchmark::State& state) {
  const int target = static_cast<int>(state.range(0));
  std::vector<InstanceId> ids;
  auto cluster = MakeCluster(2, &ids);
  if (cluster == nullptr) {
    state.SkipWithError("cluster setup failed");
    return;
  }
  size_t moved = 0;
  for (auto _ : state) {
    if (!cluster->Resize(target).ok() || !cluster->Resize(2).ok()) {
      state.SkipWithError("resize failed");
      return;
    }
    // Instances whose owner differs between the two routings moved twice.
    for (InstanceId id : ids) {
      size_t owner2 = (id.value() - 1) % 2;
      size_t ownerN = (id.value() - 1) % static_cast<size_t>(target);
      if (owner2 != ownerN) moved += 2;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(moved));
  state.counters["target_shards"] = target;
  state.counters["population"] = kPopulation;
}
BENCHMARK(BM_ClusterResize)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
