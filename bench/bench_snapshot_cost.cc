// Snapshot publication cost on large instances (the COW tentpole's gate).
//
//   BM_SnapshotPublication      per-mutation publication cost (BuildSnapshot
//                               + SnapshotTable::Publish + index delta) on
//                               an instance with N concurrently activated
//                               parallel branches. With structurally-shared
//                               state this is O(changed nodes): CI gates the
//                               1000-node cost at <= 3x the 10-node cost.
//   BM_SnapshotPublicationDeepTrace
//                               the same mutation on an instance that has
//                               executed a loop for N iterations (long
//                               trace, long data history) — history length
//                               must not leak into publication cost.
//   BM_SnapshotDeepCopyBaseline what the pre-COW deep copy would pay:
//                               materializing every container of the
//                               snapshot into flat std:: structures.
//
// Expected shape: publication flat in instance size and history length;
// the deep-copy baseline grows linearly — the gap is the refactor.

#include <benchmark/benchmark.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model/schema_builder.h"
#include "query/query_index.h"
#include "runtime/engine.h"
#include "runtime/instance_snapshot.h"

namespace adept {
namespace {

std::shared_ptr<const ProcessSchema> WideSchema(int width) {
  SchemaBuilder b("wide", 1);
  b.Activity("head");
  std::vector<SchemaBuilder::BranchFn> branches;
  branches.reserve(width);
  for (int i = 0; i < width; ++i) {
    branches.push_back([i](SchemaBuilder& s) {
      s.Activity("par" + std::to_string(i));
    });
  }
  b.Parallel(branches);
  b.Activity("tail");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// One suspend/resume toggle published through the full read-path plumbing.
// The toggled activity flips between kRunning and kSuspended, so instance
// size stays constant while every iteration is a real state change.
void PublishOnce(ProcessInstance& instance, NodeId toggled, bool suspend,
                 SnapshotTable& table, QueryIndex& index) {
  if (suspend) {
    (void)instance.SuspendActivity(toggled);
  } else {
    (void)instance.ResumeActivity(toggled);
  }
  std::shared_ptr<InstanceSnapshot> snapshot = instance.BuildSnapshot();
  std::shared_ptr<const InstanceSnapshot> previous = table.Publish(snapshot);
  index.ApplyDelta(previous.get(), snapshot.get());
}

void BM_SnapshotPublication(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto schema = WideSchema(width);
  if (schema == nullptr) {
    state.SkipWithError("schema build failed");
    return;
  }
  Engine engine;
  ProcessInstance* instance = *engine.CreateInstance(schema, SchemaId(1));
  (void)instance->Start();
  NodeId head = schema->FindNodeByName("head");
  (void)instance->StartActivity(head);
  (void)instance->CompleteActivity(head, {});  // all `width` branches activate
  NodeId toggled = schema->FindNodeByName("par0");
  (void)instance->StartActivity(toggled);

  SnapshotTable table;
  QueryIndex index;
  bool suspend = true;
  for (auto _ : state) {
    PublishOnce(*instance, toggled, suspend, table, index);
    suspend = !suspend;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(width);
}
BENCHMARK(BM_SnapshotPublication)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kNanosecond);

void BM_SnapshotPublicationDeepTrace(benchmark::State& state) {
  const int iterations = static_cast<int>(state.range(0));
  SchemaBuilder b("looped", 1);
  DataId again = b.Data("again", DataType::kBool);
  b.Activity("prepare");
  b.Loop(again, [&](SchemaBuilder& s) {
    NodeId body = s.Activity("body");
    s.Writes(body, again);
  });
  b.Activity("finish");
  auto built = b.Build();
  if (!built.ok()) {
    state.SkipWithError("schema build failed");
    return;
  }
  auto schema = *built;
  Engine engine;
  ProcessInstance* instance = *engine.CreateInstance(schema, SchemaId(1));
  (void)instance->Start();
  NodeId prepare = schema->FindNodeByName("prepare");
  (void)instance->StartActivity(prepare);
  (void)instance->CompleteActivity(prepare, {});
  NodeId body = schema->FindNodeByName("body");
  for (int i = 0; i < iterations; ++i) {
    (void)instance->StartActivity(body);
    (void)instance->CompleteActivity(
        body, {{again, DataValue::Bool(i + 1 < iterations)}});
  }
  NodeId finish = schema->FindNodeByName("finish");
  (void)instance->StartActivity(finish);

  SnapshotTable table;
  QueryIndex index;
  bool suspend = true;
  for (auto _ : state) {
    PublishOnce(*instance, finish, suspend, table, index);
    suspend = !suspend;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["loop_iterations"] = static_cast<double>(iterations);
}
BENCHMARK(BM_SnapshotPublicationDeepTrace)
    ->Arg(10)
    ->Arg(10000)
    ->Unit(benchmark::kNanosecond);

// The pre-refactor cost model: deep-copy every snapshot container into
// flat std:: structures (what BuildSnapshot used to do). Kept as the
// comparison trajectory for the O(delta) claim.
void BM_SnapshotDeepCopyBaseline(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  auto schema = WideSchema(width);
  if (schema == nullptr) {
    state.SkipWithError("schema build failed");
    return;
  }
  Engine engine;
  ProcessInstance* instance = *engine.CreateInstance(schema, SchemaId(1));
  (void)instance->Start();
  NodeId head = schema->FindNodeByName("head");
  (void)instance->StartActivity(head);
  (void)instance->CompleteActivity(head, {});

  for (auto _ : state) {
    std::map<NodeId, NodeState> nodes;
    instance->marking().node_states().ForEach(
        [&](NodeId id, NodeState s) { nodes.emplace(id, s); });
    std::map<EdgeId, EdgeState> edges;
    instance->marking().edge_states().ForEach(
        [&](EdgeId id, EdgeState s) { edges.emplace(id, s); });
    std::set<NodeId> activated;
    instance->marking().activated().ForEach(
        [&](NodeId id) { activated.insert(id); });
    std::map<DataId, DataValue> values;
    instance->data().tips().ForEach(
        [&](DataId id, const DataValue& v) { values.emplace(id, v); });
    benchmark::DoNotOptimize(nodes);
    benchmark::DoNotOptimize(edges);
    benchmark::DoNotOptimize(activated);
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["nodes"] = static_cast<double>(width);
}
BENCHMARK(BM_SnapshotDeepCopyBaseline)
    ->Arg(10)
    ->Arg(1000)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
