// E2 (paper Fig. 1 bottom): optimized per-operation compliance conditions
// vs. the general criterion (loop-tolerant trace replay).
//
// "In order to enable efficient compliance checks, for each change
// operation we provide precise and easy to implement compliance
// conditions." The benchmark quantifies that claim: the optimized check
// inspects only the marking around the change region (O(1)-ish), whereas
// the general replay criterion re-executes the reduced trace (O(trace)).
//
// Expected shape: conditions stay flat as instances progress / traces grow;
// replay grows linearly — the gap widens with trace length.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "compliance/conditions.h"
#include "compliance/replay.h"

namespace adept {
namespace {

// A long sequential process: trace length ~ progress * n.
struct CheckSetup {
  std::shared_ptr<const ProcessSchema> schema;
  std::unique_ptr<ProcessInstance> instance;
  Delta delta;
  std::shared_ptr<const ProcessSchema> target;
};

CheckSetup MakeSetup(int activities, double progress) {
  CheckSetup setup;
  setup.schema = bench::ScaledSchema(activities, /*seed=*/42, "compliance");
  setup.instance = std::make_unique<ProcessInstance>(
      InstanceId(1), setup.schema, SchemaId(1));
  (void)setup.instance->Start();
  SimulationDriver driver({.seed = 7});
  (void)driver.RunToProgress(*setup.instance, progress);

  // Change at the very end of the process (state-compliant for most
  // progress values): insert before the end-flow node.
  NodeId end = setup.schema->end_node();
  NodeId last = setup.schema->Predecessors(end, EdgeType::kControl)[0];
  NewActivitySpec spec;
  spec.name = "appendix";
  setup.delta.Add(std::make_unique<SerialInsertOp>(spec, last, end));
  setup.target = *setup.delta.ApplyToSchema(*setup.schema);
  return setup;
}

void BM_OptimizedConditions(benchmark::State& state) {
  CheckSetup setup = MakeSetup(static_cast<int>(state.range(0)), 0.5);
  for (auto _ : state) {
    ConditionResult r = CheckStateConditions(*setup.instance, setup.delta);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["trace_events"] =
      static_cast<double>(setup.instance->trace().events().size());
}
BENCHMARK(BM_OptimizedConditions)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_GeneralReplayCriterion(benchmark::State& state) {
  CheckSetup setup = MakeSetup(static_cast<int>(state.range(0)), 0.5);
  for (auto _ : state) {
    ReplayResult r = CheckComplianceByReplay(*setup.instance, setup.target);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["trace_events"] =
      static_cast<double>(setup.instance->trace().events().size());
}
BENCHMARK(BM_GeneralReplayCriterion)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

// Condition cost per operation kind on a mid-flight instance.
void BM_ConditionByOpKind(benchmark::State& state) {
  auto schema = bench::OnlineOrderV1();
  ProcessInstance instance(InstanceId(1), schema, SchemaId(1));
  (void)instance.Start();
  SimulationDriver driver({.seed = 5});
  (void)driver.RunToProgress(instance, 0.3);

  std::unique_ptr<ChangeOp> op;
  NewActivitySpec spec;
  spec.name = "x";
  switch (state.range(0)) {
    case 0:
      op = std::make_unique<SerialInsertOp>(
          spec, schema->FindNodeByName("pack goods"),
          schema->FindNodeByName("deliver goods"));
      break;
    case 1:
      op = std::make_unique<DeleteActivityOp>(
          schema->FindNodeByName("deliver goods"));
      break;
    case 2:
      op = std::make_unique<InsertSyncEdgeOp>(
          schema->FindNodeByName("compose order"),
          schema->FindNodeByName("confirm order"));
      break;
    default:
      op = std::make_unique<ParallelInsertOp>(
          spec, schema->FindNodeByName("pack goods"),
          schema->FindNodeByName("deliver goods"));
      break;
  }
  for (auto _ : state) {
    ConditionResult r = CheckOpStateCondition(instance, *op);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(ChangeOpKindToString(op->kind()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConditionByOpKind)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
