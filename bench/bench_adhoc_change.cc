// E5: ad-hoc change latency per operation kind and schema size.
//
// The paper claims ad-hoc deviations are applied to running instances
// without destabilizing them; this measures the full pipeline per change:
// state pre-conditions -> structural application to a clone ->
// re-verification -> substitution block diff -> marking re-evaluation.
//
// Expected shape: dominated by re-verification of the changed schema, so
// roughly linear in schema size; all operation kinds within a small factor
// of each other.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace adept {
namespace {

struct AdhocSetup {
  std::shared_ptr<const ProcessSchema> schema;
  SchemaId schema_id;
  SchemaRepository repo;
  Engine engine;
  std::unique_ptr<InstanceStore> store;
};

std::unique_ptr<AdhocSetup> MakeSetup(int activities) {
  auto setup = std::make_unique<AdhocSetup>();
  setup->schema = bench::ScaledSchema(activities, /*seed=*/11, "adhoc");
  setup->schema_id = *setup->repo.Deploy(setup->schema);
  setup->store = std::make_unique<InstanceStore>(&setup->repo);
  return setup;
}

// The last plain activity in control order that writes no data (deleting a
// decision/loop-condition writer would rightly fail verification).
NodeId LastPlainActivity(const SchemaView& schema) {
  NodeId found;
  for (NodeId node : schema.TopologicalOrder()) {
    const Node* n = schema.FindNode(node);
    if (n != nullptr && n->type == NodeType::kActivity &&
        schema.DataEdgesOf(node, AccessMode::kWrite).empty()) {
      found = node;
    }
  }
  return found;
}

Delta MakeOp(const SchemaView& schema, int64_t kind, int round) {
  NodeId end = schema.end_node();
  NodeId before_end = schema.Predecessors(end, EdgeType::kControl)[0];
  NodeId activity = LastPlainActivity(schema);
  Delta delta;
  NewActivitySpec spec;
  spec.name = "adhoc" + std::to_string(round);
  switch (kind) {
    case 0:
      delta.Add(std::make_unique<SerialInsertOp>(spec, before_end, end));
      break;
    case 1:
      delta.Add(std::make_unique<ParallelInsertOp>(spec, activity, activity));
      break;
    case 2:
      delta.Add(std::make_unique<DeleteActivityOp>(activity));
      break;
    default:
      delta.Add(std::make_unique<ReplaceActivityImplOp>(
          activity, "impl" + std::to_string(round)));
      break;
  }
  return delta;
}

const char* KindName(int64_t kind) {
  switch (kind) {
    case 0:
      return "serialInsert";
    case 1:
      return "parallelInsert";
    case 2:
      return "deleteActivity";
    default:
      return "replaceActivityImpl";
  }
}

void BM_AdHocChange(benchmark::State& state) {
  int64_t kind = state.range(0);
  int activities = static_cast<int>(state.range(1));
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto setup = MakeSetup(activities);
    ProcessInstance* inst =
        *setup->engine.CreateInstance(setup->schema, setup->schema_id);
    (void)setup->store->Register(inst->id(), setup->schema_id);
    (void)inst->Start();
    Delta delta = MakeOp(*setup->schema, kind, round++);
    state.ResumeTiming();

    Status st = ApplyAdHocChange(*inst, *setup->store, std::move(delta));
    benchmark::DoNotOptimize(st);
  }
  state.SetLabel(std::string(KindName(kind)) + "/" +
                 std::to_string(activities) + " activities");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdHocChange)
    ->ArgsProduct({{0, 1, 2, 3}, {20, 100, 400}})
    ->Unit(benchmark::kMicrosecond);

// Cumulative bias: cost of the k-th change on the same instance (the
// combined delta is re-applied each time — the hybrid representation's
// known trade-off).
void BM_CumulativeBias(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto setup = MakeSetup(100);
    ProcessInstance* inst =
        *setup->engine.CreateInstance(setup->schema, setup->schema_id);
    (void)setup->store->Register(inst->id(), setup->schema_id);
    (void)inst->Start();
    int rounds = static_cast<int>(state.range(0));
    state.ResumeTiming();

    for (int k = 0; k < rounds; ++k) {
      Status st = ApplyAdHocChange(*inst, *setup->store,
                                   MakeOp(*setup->schema, 0, k));
      benchmark::DoNotOptimize(st);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CumulativeBias)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// The k-th change on an already-biased instance, timed alone. AddBias
// seeds delta verification with the analysis cached on the instance
// record, so the verify share of the k-th change stays flat instead of
// growing with schema size; blocks_reused counts the summaries the cached
// analysis contributed during the timed change.
void BM_BiasedInstanceChange(benchmark::State& state) {
  int prior = static_cast<int>(state.range(0));
  size_t reused = 0, total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto setup = MakeSetup(400);
    ProcessInstance* inst =
        *setup->engine.CreateInstance(setup->schema, setup->schema_id);
    (void)setup->store->Register(inst->id(), setup->schema_id);
    (void)inst->Start();
    for (int k = 0; k < prior; ++k) {
      Status st =
          ApplyAdHocChange(*inst, *setup->store, MakeOp(inst->schema(), 0, k));
      if (!st.ok()) {
        state.SkipWithError("bias setup failed");
        return;
      }
    }
    Delta delta = MakeOp(inst->schema(), 0, prior);
    state.ResumeTiming();

    Status st = ApplyAdHocChange(*inst, *setup->store, std::move(delta));
    benchmark::DoNotOptimize(st);

    state.PauseTiming();
    if (auto rec = setup->store->Get(inst->id()); rec.ok()) {
      if ((*rec)->analysis != nullptr) {
        reused = (*rec)->analysis->stats().blocks_reused;
        total = (*rec)->analysis->stats().blocks_total;
      }
    }
    state.ResumeTiming();
  }
  state.SetLabel("prior_bias=" + std::to_string(prior) + "/400 activities");
  state.SetItemsProcessed(state.iterations());
  state.counters["blocks"] = static_cast<double>(total);
  state.counters["blocks_reused"] = static_cast<double>(reused);
}
BENCHMARK(BM_BiasedInstanceChange)
    ->Arg(0)
    ->Arg(4)
    ->Arg(12)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace adept

BENCHMARK_MAIN();
