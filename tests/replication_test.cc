// Replication fault matrix (see src/repl/README.md):
//
//   - loopback quorum commits reach every replica (the CI smoke row)
//   - primary crash + promote: acked writes survive on the promoted
//     replica, the stale replica converges to the new lineage
//   - crash after local fsync but before quorum: the commit wait reports
//     kUnavailable, yet recovering the primary's own files keeps the record
//   - replica disconnect mid-batch (torn frame / hard disconnect): the
//     primary reconnects and resumes from the acked prefix
//   - lost ACK: the batch applied but unacknowledged is reconciled by the
//     resume handshake, not re-applied
//   - stale replica whose frames were checkpoint-truncated away catches up
//     via full snapshot transfer
//   - promote-then-old-primary-rejoins: the divergent unacked suffix is
//     detected by the epoch/LSN check and discarded via snapshot reset

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/adept_cluster.h"
#include "repl/replica_node.h"
#include "repl/replication.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::SequenceSchema;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_repl_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

ClusterOptions PrimaryOptions(const TempDir& dir, int shards,
                              const std::string& name = "primary") {
  ClusterOptions options;
  options.shards = shards;
  options.wal_path = dir.File(name + ".wal");
  options.snapshot_path = dir.File(name + ".snapshot");
  return options;
}

std::unique_ptr<ReplicationReplica> StartReplica(
    const TempDir& dir, const std::string& name,
    FaultInjector* ack_faults = nullptr) {
  ReplicaNodeOptions options;
  options.wal_path = dir.File(name + ".wal");
  options.snapshot_path = dir.File(name + ".snapshot");
  options.fault_injector = ack_faults;
  auto replica = ReplicationReplica::Start(options);
  EXPECT_TRUE(replica.ok()) << replica.status();
  return replica.ok() ? std::move(*replica) : nullptr;
}

ReplicationOptions ReplOptions(const std::vector<uint16_t>& ports, int quorum) {
  ReplicationOptions options;
  for (uint16_t port : ports) {
    options.replicas.push_back({.host = "127.0.0.1", .port = port});
  }
  options.quorum = quorum;
  options.retry_ms = 20;
  options.io_timeout_ms = 2000;
  options.ack_timeout_ms = 8000;
  return options;
}

uint64_t DurableLsn(AdeptCluster& cluster, size_t shard) {
  return cluster.shard(shard).wal_writer()->durable_lsn();
}

// Polls until `replica` applied everything `cluster` holds durable, on
// every shard.
bool WaitConverged(AdeptCluster& cluster, const ReplicationReplica& replica,
                   int shards, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool converged = true;
    for (int k = 0; k < shards; ++k) {
      if (replica.ShardLastLsn(static_cast<uint64_t>(k)) <
          DurableLsn(cluster, static_cast<size_t>(k))) {
        converged = false;
      }
    }
    if (converged) return true;
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::vector<InstanceId> CreateMany(AdeptCluster& cluster, int n) {
  std::vector<InstanceId> ids;
  for (int i = 0; i < n; ++i) {
    auto id = cluster.CreateInstance("seq");
    EXPECT_TRUE(id.ok()) << id.status();
    if (id.ok()) ids.push_back(*id);
  }
  return ids;
}

void DriveRounds(AdeptCluster& cluster, const std::vector<InstanceId>& ids,
                 int rounds) {
  std::vector<AdeptCluster::BatchOp> steps;
  for (InstanceId id : ids) {
    steps.push_back(AdeptCluster::BatchOp::DriveStep(id));
  }
  for (int round = 0; round < rounds; ++round) {
    for (const auto& result : cluster.SubmitBatch(steps)) {
      EXPECT_TRUE(result.status.ok()) << result.status;
    }
  }
}

size_t TraceEvents(AdeptCluster& cluster, InstanceId id) {
  size_t events = 0;
  Status st = cluster.WithInstance(id, [&](const ProcessInstance& instance) {
    events = instance.trace().events().size();
  });
  EXPECT_TRUE(st.ok()) << st;
  return events;
}

size_t CountInstances(AdeptCluster& cluster) {
  size_t count = 0;
  cluster.ForEachSnapshot([&](const InstanceSnapshot&) { ++count; });
  return count;
}

// Promotion: bump the file set's epoch and recover a cluster over it.
Result<std::unique_ptr<AdeptCluster>> PromoteToCluster(
    const std::string& wal_base, const std::string& snapshot_base,
    int shards) {
  ADEPT_RETURN_IF_ERROR(PromoteReplicaFiles(wal_base).status());
  ClusterOptions options;
  options.shards = shards;
  options.wal_path = wal_base;
  options.snapshot_path = snapshot_base;
  return AdeptCluster::Recover(options);
}

TEST(ReplicationTest, EpochMetaRoundTrip) {
  TempDir dir;
  const std::string base = dir.File("shard.wal");
  auto first = ReadReplicationEpoch(base);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, 1u);  // created on first read
  auto again = ReadReplicationEpoch(base);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 1u);
  auto promoted = PromoteReplicaFiles(base);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(*promoted, 2u);
  auto read_back = ReadReplicationEpoch(base);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, 2u);
}

// The loopback smoke row: 1 primary (2 shards), 2 replicas, quorum = 2.
// Every commit waits for at least one replica ack; both replicas converge
// to the primary's durable LSN on every shard.
TEST(ReplicationTest, QuorumCommitsReachBothReplicas) {
  TempDir dir;
  auto replica1 = StartReplica(dir, "replica1");
  auto replica2 = StartReplica(dir, "replica2");
  ASSERT_NE(replica1, nullptr);
  ASSERT_NE(replica2, nullptr);

  auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 2));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  ASSERT_TRUE((*cluster)
                  ->AttachReplication(
                      ReplOptions({replica1->port(), replica2->port()}, 2))
                  .ok());
  EXPECT_EQ((*cluster)->replication_epoch(), 1u);

  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> ids = CreateMany(**cluster, 8);
  ASSERT_EQ(ids.size(), 8u);
  DriveRounds(**cluster, ids, 3);

  EXPECT_TRUE(WaitConverged(**cluster, *replica1, 2));
  EXPECT_TRUE(WaitConverged(**cluster, *replica2, 2));
  // Both replicas adopted the primary's epoch on their first session.
  EXPECT_EQ(replica1->epoch(), 1u);
  EXPECT_EQ(replica2->epoch(), 1u);
  for (size_t k = 0; k < 2; ++k) {
    ASSERT_NE((*cluster)->shard_replication(k), nullptr);
    EXPECT_EQ((*cluster)->shard_replication(k)->quorum_acked_lsn(),
              DurableLsn(**cluster, k));
  }
  (*cluster)->DetachReplication();
  EXPECT_EQ((*cluster)->shard_replication(0), nullptr);
}

// The acceptance scenario: kill the primary, promote a replica, verify
// every acked write; then the stale second replica converges to the
// promoted lineage (epoch bump forces the reset path) and keeps serving.
TEST(ReplicationTest, KillPrimaryPromoteReplicaStaleReplicaConverges) {
  TempDir dir;
  auto replica1 = StartReplica(dir, "replica1");
  auto replica2 = StartReplica(dir, "replica2");
  ASSERT_NE(replica1, nullptr);
  ASSERT_NE(replica2, nullptr);

  std::vector<InstanceId> ids;
  std::vector<size_t> events;
  {
    auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 2));
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    ASSERT_TRUE((*cluster)
                    ->AttachReplication(
                        ReplOptions({replica1->port(), replica2->port()}, 2))
                    .ok());
    ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(6)).ok());
    ids = CreateMany(**cluster, 6);
    ASSERT_EQ(ids.size(), 6u);
    DriveRounds(**cluster, ids, 2);
    // Quorum = 2 guarantees one replica per commit; for a deterministic
    // promotion target, wait until replica1 holds the full prefix.
    ASSERT_TRUE(WaitConverged(**cluster, *replica1, 2));
    for (InstanceId id : ids) events.push_back(TraceEvents(**cluster, id));
  }  // primary killed (destroyed without any further checkpoint)

  // Promote replica1's file set and recover a cluster over it.
  replica1->Stop();
  auto promoted = PromoteToCluster(dir.File("replica1.wal"),
                                   dir.File("replica1.snapshot"), 2);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(*ReadReplicationEpoch(dir.File("replica1.wal")), 2u);

  // Every acked write is present with the exact same trace.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(TraceEvents(**promoted, ids[i]), events[i])
        << "instance " << ids[i];
  }

  // The stale replica2 (last spoke to the dead primary, epoch 1) rejoins
  // the promoted primary (epoch 2): divergence check fires, snapshot
  // reset brings it onto the new lineage.
  ASSERT_TRUE(
      (*promoted)->AttachReplication(ReplOptions({replica2->port()}, 2)).ok());
  EXPECT_EQ((*promoted)->replication_epoch(), 2u);
  std::vector<InstanceId> more = CreateMany(**promoted, 4);
  ASSERT_EQ(more.size(), 4u);
  DriveRounds(**promoted, more, 2);
  EXPECT_TRUE(WaitConverged(**promoted, *replica2, 2));
  EXPECT_EQ(replica2->epoch(), 2u);  // adopted the promoted lineage
}

// Crash after local fsync but before quorum: with an unreachable replica
// the commit wait reports kUnavailable — yet the record made the local
// disk, so recovering the primary's own files keeps it. Both durability
// verdicts are honest: "not quorum-durable" at commit time, "locally
// durable" after recovery.
TEST(ReplicationTest, LocalFsyncWithoutQuorumFailsTheWaitButSurvivesLocally) {
  TempDir dir;
  // Reserve a port nobody listens on.
  uint16_t dead_port;
  {
    auto listener = TcpListener::Bind({.host = "127.0.0.1", .port = 0});
    ASSERT_TRUE(listener.ok());
    dead_port = (*listener)->port();
    (*listener)->Close();
  }
  ClusterOptions options = PrimaryOptions(dir, 1);
  size_t survivors = 0;
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(3)).ok());
    ReplicationOptions repl = ReplOptions({dead_port}, 2);
    repl.ack_timeout_ms = 300;
    ASSERT_TRUE((*cluster)->AttachReplication(repl).ok());
    auto id = (*cluster)->CreateInstance("seq");
    ASSERT_FALSE(id.ok());
    EXPECT_EQ(id.status().code(), StatusCode::kUnavailable) << id.status();
  }  // crash
  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  survivors = CountInstances(**recovered);
  EXPECT_EQ(survivors, 1u);  // locally durable despite the failed quorum
}

// Mid-stream connection faults on the primary->replica direction: a torn
// frame and a hard disconnect. Commits keep succeeding (the peer thread
// reconnects and resumes from the acked prefix within the ack timeout)
// and the replica ends byte-exact with the primary.
TEST(ReplicationTest, ResumesAfterTornFrameAndDisconnect) {
  TempDir dir;
  auto replica = StartReplica(dir, "replica");
  ASSERT_NE(replica, nullptr);

  ScriptedFaultInjector faults;
  faults.Set(4, FaultInjector::Action::kTruncate, 10);
  faults.Set(9, FaultInjector::Action::kDisconnect);

  auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 1));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  // Deploy before attaching so catch-up starts from the WAL file (the
  // tail buffer only holds frames that became durable after attach).
  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(4)).ok());
  ReplicationOptions repl = ReplOptions({replica->port()}, 2);
  repl.fault_injector = &faults;
  ASSERT_TRUE((*cluster)->AttachReplication(repl).ok());

  std::vector<InstanceId> ids = CreateMany(**cluster, 20);
  ASSERT_EQ(ids.size(), 20u);  // every quorum wait succeeded despite faults
  DriveRounds(**cluster, ids, 2);
  EXPECT_GT(faults.frames_seen(), 9u);  // both faults actually fired
  EXPECT_TRUE(WaitConverged(**cluster, *replica, 1));
  (*cluster)->DetachReplication();

  // The replica's file set recovers to the same instances.
  replica->Stop();
  auto promoted = PromoteToCluster(dir.File("replica.wal"),
                                   dir.File("replica.snapshot"), 1);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(CountInstances(**promoted), 20u);
}

// A dropped ACK leaves the replica ahead of what the primary believes:
// the batch applied but the acknowledgement vanished. The reconnect
// handshake reconciles via STATUS/RESUME — the replica's contiguity check
// guarantees nothing is applied twice.
TEST(ReplicationTest, LostAckReconcilesOnResume) {
  TempDir dir;
  ScriptedFaultInjector ack_faults;
  // Replica frame 0 is STATUS, 1 the first ACK; drop a later ACK.
  ack_faults.Set(3, FaultInjector::Action::kDrop);
  auto replica = StartReplica(dir, "replica", &ack_faults);
  ASSERT_NE(replica, nullptr);

  auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 1));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  ReplicationOptions repl = ReplOptions({replica->port()}, 2);
  repl.io_timeout_ms = 300;  // the lost ACK surfaces as a fast read timeout
  ASSERT_TRUE((*cluster)->AttachReplication(repl).ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(4)).ok());
  std::vector<InstanceId> ids = CreateMany(**cluster, 10);
  ASSERT_EQ(ids.size(), 10u);
  EXPECT_GT(ack_faults.frames_seen(), 3u);
  EXPECT_TRUE(WaitConverged(**cluster, *replica, 1));
  EXPECT_EQ(replica->ShardLastLsn(0), DurableLsn(**cluster, 0));
}

// A replica that joins after the frames it needs were checkpoint-
// truncated away cannot stream — it catches up via full snapshot
// transfer, then streams the post-snapshot suffix.
TEST(ReplicationTest, StaleReplicaCatchesUpViaSnapshotTransfer) {
  TempDir dir;
  auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 1));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(5)).ok());
  std::vector<InstanceId> ids = CreateMany(**cluster, 6);
  DriveRounds(**cluster, ids, 2);
  // The checkpoint truncates every frame so far out of the WAL.
  ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
  DriveRounds(**cluster, ids, 1);  // post-snapshot suffix to stream

  auto replica = StartReplica(dir, "replica");
  ASSERT_NE(replica, nullptr);
  ASSERT_TRUE(
      (*cluster)->AttachReplication(ReplOptions({replica->port()}, 2)).ok());
  std::vector<InstanceId> more = CreateMany(**cluster, 2);
  ASSERT_EQ(more.size(), 2u);
  EXPECT_TRUE(WaitConverged(**cluster, *replica, 1));
  (*cluster)->DetachReplication();

  replica->Stop();
  auto promoted = PromoteToCluster(dir.File("replica.wal"),
                                   dir.File("replica.snapshot"), 1);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(CountInstances(**promoted), 8u);
  for (InstanceId id : ids) {
    EXPECT_EQ(TraceEvents(**promoted, id), TraceEvents(**cluster, id));
  }
}

// Failover epilogue: the old primary crashed with an unacked divergent
// suffix (commits made while detached). When its file set rejoins the
// promoted lineage as a replica, the epoch/LSN divergence check fires and
// the suffix is discarded — the rejoined node converges to the new
// primary's history, not a merge of both.
TEST(ReplicationTest, OldPrimaryRejoinsAndDropsDivergentSuffix) {
  TempDir dir;
  auto replica = StartReplica(dir, "replica");
  ASSERT_NE(replica, nullptr);

  std::vector<InstanceId> ids;
  size_t acked_events = 0;
  {
    auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 1, "nodeA"));
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    ASSERT_TRUE(
        (*cluster)->AttachReplication(ReplOptions({replica->port()}, 2)).ok());
    ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(8)).ok());
    ids = CreateMany(**cluster, 3);
    ASSERT_EQ(ids.size(), 3u);
    DriveRounds(**cluster, ids, 2);
    ASSERT_TRUE(WaitConverged(**cluster, *replica, 1));
    acked_events = TraceEvents(**cluster, ids[0]);

    // Divergence: commits the replica never sees (shipping detached).
    (*cluster)->DetachReplication();
    DriveRounds(**cluster, ids, 2);
    ASSERT_GT(TraceEvents(**cluster, ids[0]), acked_events);
  }  // old primary crashes with the unacked suffix on its disk

  // Promote the replica; its lineage ends at the acked prefix.
  replica->Stop();
  auto promoted = PromoteToCluster(dir.File("replica.wal"),
                                   dir.File("replica.snapshot"), 1);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(TraceEvents(**promoted, ids[0]), acked_events);
  std::vector<InstanceId> new_lineage = CreateMany(**promoted, 2);
  ASSERT_EQ(new_lineage.size(), 2u);

  // The old primary's file set rejoins as a replica node. Its meta still
  // carries epoch 1; the promoted primary runs epoch 2 — snapshot reset.
  auto rejoined = StartReplica(dir, "nodeA");
  ASSERT_NE(rejoined, nullptr);
  EXPECT_EQ(rejoined->epoch(), 1u);
  ASSERT_TRUE(
      (*promoted)->AttachReplication(ReplOptions({rejoined->port()}, 2)).ok());
  std::vector<InstanceId> tail = CreateMany(**promoted, 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_TRUE(WaitConverged(**promoted, *rejoined, 1));
  EXPECT_EQ(rejoined->epoch(), 2u);
  (*promoted)->DetachReplication();

  // Promote the rejoined set: it now mirrors the new lineage exactly —
  // the divergent steps are gone, the post-failover instances are there.
  rejoined->Stop();
  auto rejoined_cluster = PromoteToCluster(dir.File("nodeA.wal"),
                                           dir.File("nodeA.snapshot"), 1);
  ASSERT_TRUE(rejoined_cluster.ok()) << rejoined_cluster.status();
  EXPECT_EQ(TraceEvents(**rejoined_cluster, ids[0]), acked_events);
  EXPECT_EQ(CountInstances(**rejoined_cluster), 6u);
  for (InstanceId id : new_lineage) {
    EXPECT_GT(TraceEvents(**rejoined_cluster, id), 0u);
  }
}

// Bidirectional partition: the primary is cut off from both replicas in
// both directions. The minority side (the primary alone) must degrade —
// writes fail fast with the no-quorum marker before any mutation, reads
// still serve its published snapshots flagged degraded — while the
// majority side (the two replica file sets) promotes and keeps
// committing. When the partition heals, the deposed primary meets the
// promoted epoch and self-fences.
TEST(ReplicationTest, BidirectionalPartitionMinorityDegradesMajorityCommits) {
  TempDir dir;
  ToggleFaultInjector ack_cut1, ack_cut2;  // replica -> primary direction
  auto replica1 = StartReplica(dir, "replica1", &ack_cut1);
  auto replica2 = StartReplica(dir, "replica2", &ack_cut2);
  ASSERT_NE(replica1, nullptr);
  ASSERT_NE(replica2, nullptr);

  auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 1));
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  ToggleFaultInjector send_cut1, send_cut2;  // primary -> replica direction
  ReplicationOptions ropts =
      ReplOptions({replica1->port(), replica2->port()}, 2);
  ropts.peer_fault_injectors = {&send_cut1, &send_cut2};
  ropts.ack_timeout_ms = 300;
  ropts.heartbeat_interval_ms = 50;
  ropts.suspect_after_ms = 200;
  ropts.dead_after_ms = 500;
  ASSERT_TRUE((*cluster)->AttachReplication(ropts).ok());

  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> ids = CreateMany(**cluster, 3);
  ASSERT_EQ(ids.size(), 3u);
  ASSERT_TRUE(WaitConverged(**cluster, *replica1, 1));
  ASSERT_TRUE(WaitConverged(**cluster, *replica2, 1));

  // Cut everything in both directions and let the health clocks expire.
  send_cut1.set_enabled(true);
  send_cut2.set_enabled(true);
  ack_cut1.set_enabled(true);
  ack_cut2.set_enabled(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(800));

  // Minority side: the write gate rejects before any mutation...
  auto rejected = (*cluster)->CreateInstance("seq");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(IsNoQuorum(rejected.status())) << rejected.status();
  EXPECT_EQ(CountInstances(**cluster), 3u);
  // ...while reads still serve, flagged as trailing a degraded shard.
  EXPECT_TRUE((*cluster)->ReplicationStatus().degraded());
  auto stale_read = (*cluster)->Query("state != finished");
  ASSERT_TRUE(stale_read.ok()) << stale_read.status();
  EXPECT_TRUE(stale_read->degraded);
  EXPECT_EQ(stale_read->size(), 3u);

  // Majority side: replica1's file set is promoted (epoch 2) and
  // replica2 rejoins its network — the quorum of two keeps committing.
  replica1->Stop();
  ack_cut2.set_enabled(false);
  auto promoted = PromoteToCluster(dir.File("replica1.wal"),
                                   dir.File("replica1.snapshot"), 1);
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  ReplicationOptions majority = ReplOptions({replica2->port()}, 2);
  majority.heartbeat_interval_ms = 50;
  ASSERT_TRUE((*promoted)->AttachReplication(majority).ok());
  std::vector<InstanceId> new_ids = CreateMany(**promoted, 2);
  ASSERT_EQ(new_ids.size(), 2u);
  EXPECT_TRUE(WaitConverged(**promoted, *replica2, 1));
  EXPECT_EQ(CountInstances(**promoted), 5u);
  EXPECT_EQ(replica2->epoch(), 2u);

  // Heal the old primary's links: its first handshake meets epoch 2 and
  // it self-fences — exactly one unfenced primary remains.
  send_cut1.set_enabled(false);
  send_cut2.set_enabled(false);
  ack_cut1.set_enabled(false);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  Status fenced;
  for (;;) {
    auto attempt = (*cluster)->CreateInstance("seq");
    ASSERT_FALSE(attempt.ok());
    fenced = attempt.status();
    if (IsFenced(fenced) || std::chrono::steady_clock::now() > deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(IsFenced(fenced)) << fenced;
}

// Guard rails: quorum bounds, attach-twice, resize-while-attached.
TEST(ReplicationTest, AttachGuards) {
  TempDir dir;
  auto replica = StartReplica(dir, "replica");
  ASSERT_NE(replica, nullptr);
  auto cluster = AdeptCluster::Create(PrimaryOptions(dir, 1));
  ASSERT_TRUE(cluster.ok());

  // Quorum larger than the copy count is rejected.
  Status st = (*cluster)->AttachReplication(ReplOptions({replica->port()}, 3));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;

  ASSERT_TRUE(
      (*cluster)->AttachReplication(ReplOptions({replica->port()}, 1)).ok());
  st = (*cluster)->AttachReplication(ReplOptions({replica->port()}, 1));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;

  // Topology changes are mutually exclusive with attached replication.
  st = (*cluster)->Resize(2);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;
  (*cluster)->DetachReplication();
  EXPECT_TRUE((*cluster)->Resize(2).ok());

  // A memory-only cluster has nothing to replicate.
  auto transient = AdeptCluster::Create({.shards = 1});
  ASSERT_TRUE(transient.ok());
  st = (*transient)->AttachReplication(ReplOptions({replica->port()}, 1));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;
}

}  // namespace
}  // namespace adept
