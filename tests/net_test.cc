// Transport-layer tests: framing round-trips, timeout and peer-close
// semantics, corruption detection on a desynchronized stream, and the
// deterministic fault-injection hook the replication fault matrix builds
// on (tests/replication_test.cc).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include "net/transport.h"

namespace adept {
namespace {

struct LoopbackPair {
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> client;
  std::unique_ptr<TcpConnection> server;
};

// Binds an ephemeral listener and connects one client to it.
LoopbackPair Connect(FaultInjector* client_faults = nullptr) {
  LoopbackPair pair;
  auto listener = TcpListener::Bind({.host = "127.0.0.1", .port = 0});
  EXPECT_TRUE(listener.ok()) << listener.status();
  pair.listener = std::move(*listener);
  std::thread dialer([&pair, client_faults] {
    auto client = TcpConnection::Dial(
        {.host = "127.0.0.1", .port = pair.listener->port()}, 1000);
    EXPECT_TRUE(client.ok()) << client.status();
    pair.client = std::move(*client);
    if (client_faults != nullptr) {
      pair.client->set_fault_injector(client_faults);
    }
  });
  auto server = pair.listener->Accept(2000);
  dialer.join();
  EXPECT_TRUE(server.ok()) << server.status();
  pair.server = std::move(*server);
  return pair;
}

TEST(NetTransportTest, FrameRoundTrip) {
  LoopbackPair pair = Connect();
  // Binary-safe payloads, including empty and embedded NULs.
  const std::string payloads[] = {"hello", "", std::string("a\0b\0c", 5),
                                  std::string(1 << 20, 'x')};
  // Send from a separate thread: the 1 MiB frame can exceed the loopback
  // socket buffers, so the reader must drain concurrently.
  std::thread sender([&pair, &payloads] {
    for (uint32_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(pair.client->SendFrame(i + 1, payloads[i]).ok());
    }
  });
  for (uint32_t i = 0; i < 4; ++i) {
    auto frame = pair.server->ReadFrame(2000);
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(frame->type, i + 1);
    EXPECT_EQ(frame->payload, payloads[i]);
  }
  sender.join();
  // Full duplex: the server side can answer on the same connection.
  ASSERT_TRUE(pair.server->SendFrame(9, "ack").ok());
  auto reply = pair.client->ReadFrame(2000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->type, 9u);
  EXPECT_EQ(reply->payload, "ack");
}

TEST(NetTransportTest, OversizePayloadRejectedBeforeSend) {
  LoopbackPair pair = Connect();
  std::string huge(kMaxFramePayload + 1, 'z');
  Status st = pair.client->SendFrame(1, huge);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;
  // The connection is still usable — nothing was written.
  ASSERT_TRUE(pair.client->SendFrame(2, "ok").ok());
  auto frame = pair.server->ReadFrame(2000);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, 2u);
}

TEST(NetTransportTest, ReadTimeoutLeavesConnectionOpen) {
  LoopbackPair pair = Connect();
  auto frame = pair.server->ReadFrame(100);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(pair.server->closed());
  // Data arriving later is still delivered intact.
  ASSERT_TRUE(pair.client->SendFrame(7, "late").ok());
  auto late = pair.server->ReadFrame(2000);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(late->payload, "late");
}

TEST(NetTransportTest, PeerCloseReadsAsUnavailableAndCloses) {
  LoopbackPair pair = Connect();
  pair.client->Close();
  auto frame = pair.server->ReadFrame(2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  // EOF marks the connection closed so read loops terminate instead of
  // spinning on instant failures.
  EXPECT_TRUE(pair.server->closed());
}

TEST(NetTransportTest, GarbageStreamIsCorruption) {
  auto listener = TcpListener::Bind({.host = "127.0.0.1", .port = 0});
  ASSERT_TRUE(listener.ok());
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons((*listener)->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  std::thread dialer([fd, &addr] {
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    // 32 bytes that are not a frame header: the magic check must fire.
    std::string garbage(32, '\xEE');
    ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
  });
  auto server = (*listener)->Accept(2000);
  dialer.join();
  ASSERT_TRUE(server.ok()) << server.status();
  auto frame = (*server)->ReadFrame(2000);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption) << frame.status();
  ::close(fd);
}

TEST(NetTransportTest, ScriptedDropSkipsOneFrame) {
  ScriptedFaultInjector faults;
  faults.Set(0, FaultInjector::Action::kDrop);
  LoopbackPair pair = Connect(&faults);
  // Frame 0 is swallowed; frame 1 passes and is the first one delivered.
  ASSERT_TRUE(pair.client->SendFrame(1, "dropped").ok());
  ASSERT_TRUE(pair.client->SendFrame(2, "delivered").ok());
  auto frame = pair.server->ReadFrame(2000);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->type, 2u);
  EXPECT_EQ(frame->payload, "delivered");
}

TEST(NetTransportTest, ScriptedTruncateTearsDownTheConnection) {
  ScriptedFaultInjector faults;
  faults.Set(1, FaultInjector::Action::kTruncate, 8);
  LoopbackPair pair = Connect(&faults);
  ASSERT_TRUE(pair.client->SendFrame(1, "whole").ok());
  auto first = pair.server->ReadFrame(2000);
  ASSERT_TRUE(first.ok()) << first.status();
  // The torn frame fails the send and closes the sender so both sides
  // agree the stream is dead.
  Status st = pair.client->SendFrame(2, "torn");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_TRUE(pair.client->closed());
  auto tail = pair.server->ReadFrame(2000);
  EXPECT_FALSE(tail.ok());
}

TEST(NetTransportTest, ScriptedDisconnect) {
  ScriptedFaultInjector faults;
  faults.Set(0, FaultInjector::Action::kDisconnect);
  LoopbackPair pair = Connect(&faults);
  Status st = pair.client->SendFrame(1, "never sent");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_TRUE(pair.client->closed());
}

TEST(NetTransportTest, AcceptTimesOut) {
  auto listener = TcpListener::Bind({.host = "127.0.0.1", .port = 0});
  ASSERT_TRUE(listener.ok());
  auto conn = (*listener)->Accept(100);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST(NetTransportTest, CloseUnblocksAccept) {
  auto listener = TcpListener::Bind({.host = "127.0.0.1", .port = 0});
  ASSERT_TRUE(listener.ok());
  std::thread closer([&listener] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (*listener)->Close();
  });
  auto conn = (*listener)->Accept(5000);
  closer.join();
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kUnavailable);
}

TEST(NetTransportTest, ChecksumIsStable) {
  // FNV-1a 64 with the standard offset basis/prime — a fixed vector so a
  // silent change to the checksum breaks loudly here, not mid-replication.
  EXPECT_EQ(NetChecksum(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(NetChecksum("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(NetChecksum("ab"), NetChecksum("ba"));
}

}  // namespace
}  // namespace adept
