#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "change/change_op.h"
#include "cluster/adept_cluster.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_cluster_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

ClusterOptions DurableOptions(const TempDir& dir, int shards) {
  ClusterOptions options;
  options.shards = shards;
  options.wal_path = dir.File("cluster.wal");
  options.snapshot_path = dir.File("cluster.snapshot");
  return options;
}

TEST(AdeptClusterTest, ShardRoutingStability) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(OnlineOrderV1()).ok());

  std::set<InstanceId> ids;
  std::vector<size_t> per_shard(4, 0);
  for (int i = 0; i < 40; ++i) {
    auto id = (*cluster)->CreateInstance("online_order");
    ASSERT_TRUE(id.ok()) << id.status();
    EXPECT_TRUE(ids.insert(*id).second) << "duplicate id " << *id;
    size_t owner = (*cluster)->ShardOf(*id);
    // The shard key is a pure function of the id.
    EXPECT_EQ(owner, (id->value() - 1) % 4);
    per_shard[owner]++;
    // The instance lives on its owning shard and nowhere else.
    for (size_t s = 0; s < 4; ++s) {
      const ProcessInstance* found = (*cluster)->shard(s).engine().Find(*id);
      EXPECT_EQ(found != nullptr, s == owner);
    }
    // Routed lock-free reads resolve through the facade.
    EXPECT_NE((*cluster)->SnapshotOf(*id), nullptr);
  }
  // Round-robin placement keeps shards balanced.
  for (size_t s = 0; s < 4; ++s) EXPECT_EQ(per_shard[s], 10u);
}

TEST(AdeptClusterTest, CrossShardSchemaVisibility) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  auto v1 = (*cluster)->DeployProcessType(SequenceSchema(3));
  ASSERT_TRUE(v1.ok()) << v1.status();
  for (size_t s = 0; s < 4; ++s) {
    auto latest = (*cluster)->shard(s).LatestVersion("seq");
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(*latest, *v1);
  }

  // Evolution is visible on every shard under the same id.
  auto base = (*cluster)->Schema(*v1);
  ASSERT_TRUE(base.ok());
  Delta delta;
  NewActivitySpec spec;
  spec.name = "audit";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, (*base)->FindNodeByName("a1"), (*base)->FindNodeByName("a2")));
  auto v2 = (*cluster)->EvolveProcessType(*v1, std::move(delta));
  ASSERT_TRUE(v2.ok()) << v2.status();
  for (size_t s = 0; s < 4; ++s) {
    auto latest = (*cluster)->shard(s).LatestVersion("seq");
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(*latest, *v2);
    auto schema = (*cluster)->shard(s).Schema(*v2);
    ASSERT_TRUE(schema.ok());
    EXPECT_TRUE((*schema)->FindNodeByName("audit").valid());
  }

  // New instances on any shard start on the evolved version.
  for (int i = 0; i < 8; ++i) {
    auto id = (*cluster)->CreateInstance("seq");
    ASSERT_TRUE(id.ok());
    EXPECT_EQ((*cluster)->SnapshotOf(*id)->schema_ref, *v2);
  }
}

TEST(AdeptClusterTest, ConcurrentCompleteActivityOnDistinctShards) {
  constexpr int kShards = 4;
  constexpr int kPerShard = 8;
  auto cluster = AdeptCluster::Create({.shards = kShards});
  ASSERT_TRUE(cluster.ok());
  auto v1 = (*cluster)->DeployProcessType(SequenceSchema(12));
  ASSERT_TRUE(v1.ok());
  auto schema = (*cluster)->Schema(*v1);
  ASSERT_TRUE(schema.ok());
  std::vector<NodeId> order;
  for (int i = 1; i <= 12; ++i) {
    order.push_back((*schema)->FindNodeByName("a" + std::to_string(i)));
    ASSERT_TRUE(order.back().valid());
  }

  std::vector<std::vector<InstanceId>> ids(kShards);
  for (int i = 0; i < kShards * kPerShard; ++i) {
    auto id = (*cluster)->CreateInstance("seq");
    ASSERT_TRUE(id.ok());
    ids[(*cluster)->ShardOf(*id)].push_back(*id);
  }
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(ids[s].size(), static_cast<size_t>(kPerShard));
  }

  // One worker per shard completes every activity of its instances through
  // the shared facade; per-shard locks make this race-free.
  std::vector<std::thread> workers;
  std::vector<int> failures(kShards, 0);
  for (int s = 0; s < kShards; ++s) {
    workers.emplace_back([&, s] {
      for (InstanceId id : ids[s]) {
        for (NodeId node : order) {
          if (!(*cluster)->StartActivity(id, node).ok() ||
              !(*cluster)->CompleteActivity(id, node).ok()) {
            failures[s]++;
          }
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();

  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(failures[s], 0) << "shard " << s;
    for (InstanceId id : ids[s]) {
      bool finished = false;
      ASSERT_TRUE((*cluster)
                      ->WithInstance(id, [&](const ProcessInstance& inst) {
                        finished = inst.Finished();
                      })
                      .ok());
      EXPECT_TRUE(finished);
    }
  }
}

// Readers race writers on the same shards: WithInstance takes the owning
// shard's lock, so the callback observes a consistent instance even while
// other threads complete activities (the ASan job turns a use-after-free
// of the bare Instance() pointer into a failure).
TEST(AdeptClusterTest, WithInstanceIsSafeAgainstConcurrentWriters) {
  constexpr int kShards = 4;
  auto cluster = AdeptCluster::Create({.shards = kShards});
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> ids;
  for (int i = 0; i < kShards * 4; ++i) {
    auto id = (*cluster)->CreateInstance("seq");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (InstanceId id : ids) {
          Status st = (*cluster)->WithInstance(
              id, [](const ProcessInstance& inst) {
                // Touch state a concurrent mutation would tear.
                (void)inst.Finished();
                (void)inst.trace().events().size();
              });
          if (!st.ok()) reader_errors.fetch_add(1);
        }
      }
    });
  }

  std::vector<AdeptCluster::BatchOp> batch;
  for (int round = 0; round < 32; ++round) {
    batch.clear();
    for (InstanceId id : ids) {
      batch.push_back(AdeptCluster::BatchOp::DriveStep(id));
    }
    (void)(*cluster)->SubmitBatch(batch);
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

// Durable batch execution with the strictest sync mode: every op the batch
// reported as successful must survive recovery (its WAL record was fsynced
// before SubmitBatch returned).
TEST(AdeptClusterTest, PipelinedFsyncBatchesSurviveRecovery) {
  TempDir dir;
  ClusterOptions options = DurableOptions(dir, 4);
  options.sync = SyncMode::kFsync;
  std::vector<InstanceId> ids;
  size_t steps_acknowledged = 0;
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(4)).ok());
    std::vector<AdeptCluster::BatchOp> creates(
        8, AdeptCluster::BatchOp::Create("seq"));
    for (const auto& result : (*cluster)->SubmitBatch(creates)) {
      ASSERT_TRUE(result.status.ok()) << result.status;
      ids.push_back(result.id);
    }
    std::vector<AdeptCluster::BatchOp> steps;
    for (InstanceId id : ids) {
      steps.push_back(AdeptCluster::BatchOp::DriveStep(id));
    }
    for (int round = 0; round < 3; ++round) {
      for (const auto& result : (*cluster)->SubmitBatch(steps)) {
        if (result.status.ok() && result.progressed) ++steps_acknowledged;
      }
    }
  }  // destroyed without SaveSnapshot: recovery replays the WAL alone
  ASSERT_GT(steps_acknowledged, 0u);

  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  size_t events_recovered = 0;
  for (InstanceId id : ids) {
    ASSERT_TRUE((*recovered)
                    ->WithInstance(id,
                                   [&](const ProcessInstance& inst) {
                                     events_recovered +=
                                         inst.trace().events().size();
                                   })
                    .ok())
        << "instance " << id << " lost";
  }
  // Each acknowledged DriveStep logged a start + completion.
  EXPECT_GE(events_recovered, steps_acknowledged * 2);
}

TEST(AdeptClusterTest, SubmitBatchGroupsByShardAndReportsPerOp) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(OnlineOrderV1()).ok());

  // Heterogeneous batch: 8 creates up front.
  std::vector<AdeptCluster::BatchOp> creates(
      8, AdeptCluster::BatchOp::Create("online_order"));
  auto created = (*cluster)->SubmitBatch(creates);
  ASSERT_EQ(created.size(), 8u);
  std::vector<InstanceId> ids;
  for (const auto& result : created) {
    ASSERT_TRUE(result.status.ok()) << result.status;
    ASSERT_TRUE(result.id.valid());
    ids.push_back(result.id);
  }

  // Synthetic steps progress every instance; a bogus op fails only its slot.
  std::vector<AdeptCluster::BatchOp> steps;
  for (InstanceId id : ids) {
    steps.push_back(AdeptCluster::BatchOp::DriveStep(id));
  }
  steps.push_back(
      AdeptCluster::BatchOp::Start(InstanceId(999983), NodeId(1)));
  auto stepped = (*cluster)->SubmitBatch(steps);
  ASSERT_EQ(stepped.size(), 9u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(stepped[i].status.ok());
    EXPECT_TRUE(stepped[i].progressed);
  }
  EXPECT_EQ(stepped[8].status.code(), StatusCode::kNotFound);

  // Batches drive instances to completion eventually.
  for (int round = 0; round < 64; ++round) {
    std::vector<AdeptCluster::BatchOp> batch;
    for (InstanceId id : ids) {
      if (!(*cluster)->SnapshotOf(id)->finished) {
        batch.push_back(AdeptCluster::BatchOp::DriveStep(id));
      }
    }
    if (batch.empty()) break;
    (*cluster)->SubmitBatch(batch);
  }
  for (InstanceId id : ids) {
    EXPECT_TRUE((*cluster)->SnapshotOf(id)->finished);
  }
}

TEST(AdeptClusterTest, RecoverRestoresAllShards) {
  TempDir dir;
  ClusterOptions options = DurableOptions(dir, 4);
  std::vector<InstanceId> ids;
  SchemaId v1;
  NodeId a1;
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    auto deployed = (*cluster)->DeployProcessType(SequenceSchema(4));
    ASSERT_TRUE(deployed.ok());
    v1 = *deployed;
    auto schema = (*cluster)->Schema(v1);
    a1 = (*schema)->FindNodeByName("a1");
    for (int i = 0; i < 4; ++i) {
      auto id = (*cluster)->CreateInstance("seq");
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    // Half the history goes into the snapshot, the rest stays WAL-only.
    ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
    for (int i = 0; i < 4; ++i) {
      auto id = (*cluster)->CreateInstance("seq");
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE((*cluster)->StartActivity(ids[0], a1).ok());
    ASSERT_TRUE((*cluster)->CompleteActivity(ids[0], a1).ok());
  }

  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (InstanceId id : ids) {
    ASSERT_NE((*recovered)->SnapshotOf(id), nullptr)
        << "instance " << id << " lost";
    // Still reachable on the shard the id hashes to.
    EXPECT_NE(
        (*recovered)->shard((*recovered)->ShardOf(id)).engine().Find(id),
        nullptr);
  }
  EXPECT_EQ((*recovered)->SnapshotOf(ids[0])->marking.node(a1),
            NodeState::kCompleted);
  auto latest = (*recovered)->LatestVersion("seq");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, v1);

  // Post-recovery id allocation continues without collisions.
  for (int i = 0; i < 8; ++i) {
    auto fresh = (*recovered)->CreateInstance("seq");
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(std::count(ids.begin(), ids.end(), *fresh), 0);
  }
}

// Recovering with a different shard count is the supported resize path
// (formerly a kCorruption dead end): instances are redistributed onto the
// requested routing and the surplus shard files are retired.
TEST(AdeptClusterTest, RecoverWithDifferentShardCountRedistributes) {
  TempDir dir;
  std::vector<InstanceId> ids;
  {
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 4));
    ASSERT_TRUE(cluster.ok());
    ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(2)).ok());
    for (int i = 0; i < 8; ++i) {
      auto id = (*cluster)->CreateInstance("seq");
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
  }
  auto resized = AdeptCluster::Recover(DurableOptions(dir, 3));
  ASSERT_TRUE(resized.ok()) << resized.status();
  EXPECT_EQ((*resized)->shard_count(), 3u);
  for (InstanceId id : ids) {
    size_t owner = (*resized)->ShardOf(id);
    EXPECT_EQ(owner, (id.value() - 1) % 3);
    for (size_t s = 0; s < 3; ++s) {
      EXPECT_EQ((*resized)->shard(s).engine().Find(id) != nullptr,
                s == owner);
    }
  }
  // The retired shard's files are gone.
  EXPECT_FALSE(std::filesystem::exists(dir.File("cluster.wal.shard3")));
  EXPECT_FALSE(std::filesystem::exists(dir.File("cluster.snapshot.shard3")));
  // Post-resize id allocation continues without collisions.
  for (int i = 0; i < 9; ++i) {
    auto fresh = (*resized)->CreateInstance("seq");
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    EXPECT_EQ(std::count(ids.begin(), ids.end(), *fresh), 0);
    ids.push_back(*fresh);
  }
}

TEST(AdeptClusterTest, MigrationFansOutAndMergesReports) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  auto v1 = (*cluster)->DeployProcessType(SequenceSchema(3));
  ASSERT_TRUE(v1.ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*cluster)->CreateInstance("seq").ok());
  }

  auto base = (*cluster)->Schema(*v1);
  Delta delta;
  NewActivitySpec spec;
  spec.name = "review";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, (*base)->FindNodeByName("a2"), (*base)->FindNodeByName("a3")));
  auto v2 = (*cluster)->EvolveProcessType(*v1, std::move(delta));
  ASSERT_TRUE(v2.ok());

  auto report = (*cluster)->Migrate(*v1, *v2);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->results.size(), 12u);
  EXPECT_EQ(report->Count(MigrationOutcome::kMigrated), 12u);
  for (const auto& result : report->results) {
    EXPECT_EQ((*cluster)->SnapshotOf(result.id)->schema_ref, *v2);
  }
}

TEST(AdeptClusterTest, SingleShardDegeneratesToPlainSystem) {
  auto cluster = AdeptCluster::Create({.shards = 1});
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(OnlineOrderV1()).ok());
  auto id = (*cluster)->CreateInstance("online_order");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*cluster)->ShardOf(*id), 0u);
  SimulationDriver driver({.seed = 11});
  ASSERT_TRUE((*cluster)->DriveToCompletion(*id, driver).ok());
  EXPECT_TRUE((*cluster)->SnapshotOf(*id)->finished);
}

}  // namespace
}  // namespace adept
