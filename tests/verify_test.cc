#include <gtest/gtest.h>

#include "model/schema_builder.h"
#include "tests/test_fixtures.h"
#include "verify/verifier.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::LoopSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::OnlineOrderV2;
using testing_fixtures::SequenceSchema;
using testing_fixtures::XorSchema;

bool HasIssue(const VerificationReport& report, VerifyRule rule) {
  for (const auto& i : report.issues()) {
    if (i.rule == rule) return true;
  }
  return false;
}

TEST(VerifierTest, CleanSchemasPass) {
  for (auto schema : {OnlineOrderV1(), OnlineOrderV2(), SequenceSchema(10),
                      XorSchema(), LoopSchema(), ComplexSchema()}) {
    ASSERT_NE(schema, nullptr);
    auto report = VerifySchema(*schema);
    EXPECT_TRUE(report.ok()) << schema->type_name() << ":\n"
                             << report.DebugString();
    EXPECT_TRUE(VerifySchemaOrError(*schema).ok());
  }
}

TEST(VerifierTest, SyncEdgeAcrossBranchesIsLegal) {
  auto schema = OnlineOrderV2();
  auto report = VerifySchema(*schema);
  EXPECT_TRUE(report.ok()) << report.DebugString();
}

TEST(VerifierTest, DetectsDeadlockCausingSyncCycle) {
  // Two sync edges in opposite directions between parallel branches create
  // the paper's deadlock-causing cycle (Fig. 1, instance I2).
  SchemaBuilder b("deadlock", 1);
  NodeId a1, a2, b1, b2;
  b.Parallel({
      [&](SchemaBuilder& s) {
        a1 = s.Activity("a1");
        a2 = s.Activity("a2");
      },
      [&](SchemaBuilder& s) {
        b1 = s.Activity("b1");
        b2 = s.Activity("b2");
      },
  });
  b.SyncEdge(a2, b1);  // a2 before b1
  b.SyncEdge(b2, a1);  // b2 before a1 -> cycle a1..a2 -> b1..b2 -> a1
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto report = VerifySchema(**schema);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasIssue(report, VerifyRule::kDeadlockCycle))
      << report.DebugString();
}

TEST(VerifierTest, SyncEdgeWithinSameBranchRejected) {
  SchemaBuilder b("same_branch", 1);
  NodeId a1, a2;
  b.Parallel({
      [&](SchemaBuilder& s) {
        a1 = s.Activity("a1");
        a2 = s.Activity("a2");
      },
      [&](SchemaBuilder& s) { s.Activity("b1"); },
  });
  b.SyncEdge(a1, a2);  // same branch: illegal
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kSyncEdge)) << report.DebugString();
}

TEST(VerifierTest, SyncEdgeOutsideParallelRejected) {
  SchemaBuilder b("no_parallel", 1);
  NodeId a1 = b.Activity("a1");
  NodeId a2 = b.Activity("a2");
  b.SyncEdge(a1, a2);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kSyncEdge));
}

TEST(VerifierTest, SyncEdgeCrossingLoopBoundaryRejected) {
  SchemaBuilder b("loop_cross", 1);
  DataId redo = b.Data("redo", DataType::kBool);
  NodeId inner, outer;
  b.Parallel({
      [&](SchemaBuilder& s) {
        s.Loop(redo, [&](SchemaBuilder& t) {
          inner = t.Activity("inner");
          t.Writes(inner, redo);
        });
      },
      [&](SchemaBuilder& s) { outer = s.Activity("outer"); },
  });
  b.SyncEdge(inner, outer);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kSyncEdge)) << report.DebugString();
}

TEST(VerifierTest, DetectsMissingData) {
  SchemaBuilder b("missing_data", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  NodeId reader = b.Activity("reader");
  b.Reads(reader, amount);  // nobody writes amount
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasIssue(report, VerifyRule::kMissingData));
}

TEST(VerifierTest, OptionalReadNotRequired) {
  SchemaBuilder b("optional_read", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  NodeId reader = b.Activity("reader");
  b.Reads(reader, amount, /*optional=*/true);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(report.ok()) << report.DebugString();
}

TEST(VerifierTest, XorBranchWriteIsNotGuaranteed) {
  // Writer sits in one XOR branch only: a reader after the join must fail
  // the guarantee (intersection semantics).
  SchemaBuilder b("xor_write", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  DataId amount = b.Data("amount", DataType::kDouble);
  NodeId init = b.Activity("init");
  b.Writes(init, sel);
  b.Conditional(sel, {
      [&](SchemaBuilder& s) {
        NodeId w = s.Activity("writer");
        s.Writes(w, amount);
      },
      [](SchemaBuilder& s) { s.Activity("other"); },
  });
  NodeId reader = b.Activity("reader");
  b.Reads(reader, amount);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kMissingData))
      << report.DebugString();
}

TEST(VerifierTest, AndBranchWriteIsGuaranteedAfterJoin) {
  SchemaBuilder b("and_write", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  b.Parallel({
      [&](SchemaBuilder& s) {
        NodeId w = s.Activity("writer");
        s.Writes(w, amount);
      },
      [](SchemaBuilder& s) { s.Activity("other"); },
  });
  NodeId reader = b.Activity("reader");
  b.Reads(reader, amount);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(report.ok()) << report.DebugString();
}

TEST(VerifierTest, ParallelReadWithoutSyncIsRaceWarning) {
  SchemaBuilder b("race", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  NodeId init = b.Activity("init");
  b.Writes(init, amount);
  b.Parallel({
      [&](SchemaBuilder& s) {
        NodeId w = s.Activity("writer");
        s.Writes(w, amount);
      },
      [&](SchemaBuilder& s) {
        NodeId r = s.Activity("reader");
        s.Reads(r, amount);
      },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(report.ok());  // warnings only
  EXPECT_TRUE(HasIssue(report, VerifyRule::kDataRace)) << report.DebugString();
}

TEST(VerifierTest, SyncEdgeSilencesRaceWarning) {
  SchemaBuilder b("race_sync", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  NodeId init = b.Activity("init");
  b.Writes(init, amount);
  NodeId writer, reader;
  b.Parallel({
      [&](SchemaBuilder& s) {
        writer = s.Activity("writer");
        s.Writes(writer, amount);
      },
      [&](SchemaBuilder& s) {
        reader = s.Activity("reader");
        s.Reads(reader, amount);
      },
  });
  b.SyncEdge(writer, reader);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_FALSE(HasIssue(report, VerifyRule::kDataRace))
      << report.DebugString();
}

TEST(VerifierTest, ParallelWritesAreLostUpdateWarning) {
  SchemaBuilder b("lost_update", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  b.Parallel({
      [&](SchemaBuilder& s) {
        NodeId w = s.Activity("w1");
        s.Writes(w, amount);
      },
      [&](SchemaBuilder& s) {
        NodeId w = s.Activity("w2");
        s.Writes(w, amount);
      },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kLostUpdate));
}

TEST(VerifierTest, XorDecisionTypeChecked) {
  SchemaBuilder b("bad_decision", 1);
  DataId flag = b.Data("flag", DataType::kString);  // must be int
  NodeId init = b.Activity("init");
  b.Writes(init, flag);
  b.Conditional(flag, {
      [](SchemaBuilder& s) { s.Activity("x"); },
      [](SchemaBuilder& s) { s.Activity("y"); },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kDecision));
  EXPECT_FALSE(report.ok());
}

TEST(VerifierTest, MissingDecisionDataIsWarningOnly) {
  SchemaBuilder b("manual_decision", 1);
  b.Conditional(DataId::Invalid(), {
      [](SchemaBuilder& s) { s.Activity("x"); },
      [](SchemaBuilder& s) { s.Activity("y"); },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(report.ok()) << report.DebugString();
  EXPECT_TRUE(HasIssue(report, VerifyRule::kDecision));
}

TEST(VerifierTest, DuplicateBranchCodesRejected) {
  SchemaBuilder b("dup_codes", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  NodeId init = b.Activity("init");
  b.Writes(init, sel);
  auto ids = b.Conditional(sel, {
      [](SchemaBuilder& s) { s.Activity("x"); },
      [](SchemaBuilder& s) { s.Activity("y"); },
  });
  // Forge a duplicate selection code on the second branch edge.
  auto clone = b.mutable_schema();
  clone->VisitOutEdges(ids.open, [&](const Edge& e) {
    Edge* m = clone->MutableEdge(e.id);
    if (m != nullptr) m->branch_value = 0;
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(HasIssue(report, VerifyRule::kDecision));
}

TEST(VerifierTest, DegreeViolationsDetected) {
  // Hand-build: activity with two outgoing control edges.
  ProcessSchema s("degrees", 1);
  Node n;
  n.type = NodeType::kStartFlow;
  NodeId start = *s.AddNode(n);
  n.type = NodeType::kActivity;
  n.name = "a";
  NodeId a = *s.AddNode(n);
  n.name = "b";
  NodeId bnode = *s.AddNode(n);
  n.type = NodeType::kEndFlow;
  NodeId end = *s.AddNode(n);
  ASSERT_TRUE(s.AddEdge(start, a, EdgeType::kControl).ok());
  ASSERT_TRUE(s.AddEdge(a, bnode, EdgeType::kControl).ok());
  ASSERT_TRUE(s.AddEdge(a, end, EdgeType::kControl).ok());
  ASSERT_TRUE(s.AddEdge(bnode, end, EdgeType::kControl).ok());
  ASSERT_TRUE(s.Freeze().ok());
  auto report = VerifySchema(s);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasIssue(report, VerifyRule::kStructure));
}

TEST(VerifierTest, DuplicateNamesAreWarning) {
  SchemaBuilder b("dups", 1);
  b.Activity("same");
  b.Activity("same");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(HasIssue(report, VerifyRule::kNaming));
}

TEST(VerifierTest, ReportFormatting) {
  auto schema = OnlineOrderV1();
  auto report = VerifySchema(*schema);
  EXPECT_EQ(report.DebugString(), "clean\n");
  EXPECT_EQ(report.FirstError(), "");
  EXPECT_EQ(report.error_count(), 0u);
}

// --- Machine-readable diagnostics (rule ids, spans, fix hints, JSON) ---------

TEST(VerifierTest, RuleIdsAreStable) {
  // Golden mapping: append-only, never renumber (downstream suppressions
  // and lint baselines key on these).
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kStructure), "AV001");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kControlCycle), "AV002");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kBlockNesting), "AV003");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kSyncEdge), "AV004");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kDeadlockCycle), "AV005");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kDecision), "AV006");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kMissingData), "AV007");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kLostUpdate), "AV008");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kDataRace), "AV009");
  EXPECT_STREQ(VerifyRuleId(VerifyRule::kNaming), "AV010");
}

TEST(VerifierTest, MissingDataFindingCarriesSpanAndFixHint) {
  SchemaBuilder b("span", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  NodeId reader = b.Activity("reader");
  b.Reads(reader, amount);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  ASSERT_FALSE(report.ok());
  const VerificationIssue* found = nullptr;
  for (const auto& i : report.issues()) {
    if (i.rule == VerifyRule::kMissingData) found = &i;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->node, reader);
  EXPECT_EQ(found->data, amount);
  ASSERT_EQ(found->span.size(), 2u);
  EXPECT_TRUE(found->span[0] == EntitySpan::Node(reader));
  EXPECT_TRUE(found->span[1] == EntitySpan::Data(amount));
  EXPECT_NE(found->fix_hint.find("'amount'"), std::string::npos)
      << found->fix_hint;
}

TEST(VerifierTest, RaceFindingSpansBothAccessors) {
  SchemaBuilder b("racespan", 1);
  DataId d = b.Data("d", DataType::kInt);
  NodeId w1, w2;
  b.Parallel({
      [&](SchemaBuilder& s) {
        w1 = s.Activity("w1");
        s.Writes(w1, d);
      },
      [&](SchemaBuilder& s) {
        w2 = s.Activity("w2");
        s.Writes(w2, d);
      },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  const VerificationIssue* found = nullptr;
  for (const auto& i : report.issues()) {
    if (i.rule == VerifyRule::kLostUpdate) found = &i;
  }
  ASSERT_NE(found, nullptr);
  // Span: first writer, the data element, the second writer.
  EXPECT_EQ(found->span.size(), 3u);
  int node_spans = 0;
  for (const auto& s : found->span) {
    if (s.kind == EntitySpan::Kind::kNode) ++node_spans;
  }
  EXPECT_EQ(node_spans, 2);
  EXPECT_FALSE(found->fix_hint.empty());
}

TEST(VerifierTest, ReportJsonGolden) {
  SchemaBuilder b("jsongold", 1);
  b.Activity("same");
  b.Activity("same");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto report = VerifySchema(**schema);
  ASSERT_EQ(report.issues().size(), 1u);
  JsonValue j = report.ToJson();
  EXPECT_EQ(j.Get("ok").as_bool(), true);
  EXPECT_EQ(j.Get("errors").as_int(), 0);
  EXPECT_EQ(j.Get("warnings").as_int(), 1);
  const JsonValue& finding = j.Get("findings").as_array()[0];
  EXPECT_EQ(finding.Get("rule_id").as_string(), "AV010");
  EXPECT_EQ(finding.Get("rule").as_string(), "naming");
  EXPECT_EQ(finding.Get("severity").as_string(), "warning");
  EXPECT_EQ(finding.Get("message").as_string(),
            "activity name 'same' used 2 times");
  EXPECT_EQ(finding.Get("span").as_array().size(), 2u);
  EXPECT_EQ(finding.Get("span").as_array()[0].Get("kind").as_string(),
            "node");
  EXPECT_EQ(finding.Get("fix_hint").as_string(),
            "rename the duplicate activities");
  // Round-trips through the JSON layer (adept_lint consumes this form).
  auto parsed = JsonValue::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == j);
}

TEST(VerifierTest, CanonicalStringIsOrderIndependent) {
  VerificationIssue a{VerifyRule::kNaming, VerifySeverity::kWarning,
                      "msg a",           NodeId(1),
                      EdgeId::Invalid(), DataId::Invalid(),
                      {},                ""};
  VerificationIssue b{VerifyRule::kStructure, VerifySeverity::kError,
                      "msg b",           NodeId(2),
                      EdgeId::Invalid(), DataId::Invalid(),
                      {},                ""};
  VerificationReport r1, r2;
  r1.Add(a);
  r1.Add(b);
  r2.Add(b);
  r2.Add(a);
  EXPECT_EQ(r1.CanonicalString(), r2.CanonicalString());
  EXPECT_NE(r1.CanonicalString(), "");
}

}  // namespace
}  // namespace adept
