// Migration corner cases, parameterized over the three storage strategies
// (the representation must never change migration semantics), plus
// data-flow type changes, loop-state migrations, and version chains.

#include <gtest/gtest.h>

#include "change/change_op.h"
#include "compliance/adhoc.h"
#include "compliance/migration.h"
#include "monitor/monitor.h"
#include "runtime/driver.h"
#include "runtime/engine.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::LoopSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

class StrategyMigrationTest
    : public ::testing::TestWithParam<StorageStrategy> {};

TEST_P(StrategyMigrationTest, BiasedMigrationIdenticalAcrossStrategies) {
  auto v1 = OnlineOrderV1();
  SchemaRepository repo;
  SchemaId v1_id = *repo.Deploy(v1);
  InstanceStore store(&repo);
  Engine engine;
  MigrationManager manager(&engine, &repo, &store);

  ProcessInstance* inst = *engine.CreateInstance(v1, v1_id);
  ASSERT_TRUE(store.Register(inst->id(), v1_id, GetParam()).ok());
  ASSERT_TRUE(inst->Start().ok());

  Delta bias;
  NewActivitySpec spec;
  spec.name = "gift wrap";
  bias.Add(std::make_unique<SerialInsertOp>(
      spec, v1->FindNodeByName("pack goods"),
      v1->FindNodeByName("deliver goods")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store, std::move(bias)).ok());

  Delta type_change;
  NewActivitySpec spec2;
  spec2.name = "check stock";
  type_change.Add(std::make_unique<SerialInsertOp>(
      spec2, v1->FindNodeByName("get order"),
      v1->FindNodeByName("collect data")));
  SchemaId v2_id = *repo.DeriveVersion(v1_id, std::move(type_change));

  auto report = manager.MigrateAll(v1_id, v2_id);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 1u);
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kMigratedBiased)
      << StorageStrategyToString(GetParam());

  EXPECT_TRUE(inst->schema().FindNodeByName("check stock").valid());
  EXPECT_TRUE(inst->schema().FindNodeByName("gift wrap").valid());
  SimulationDriver driver({.seed = 9});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyMigrationTest,
                         ::testing::Values(
                             StorageStrategy::kOverlay,
                             StorageStrategy::kFullCopy,
                             StorageStrategy::kMaterializeOnDemand),
                         [](const auto& info) {
                           switch (info.param) {
                             case StorageStrategy::kOverlay:
                               return "Overlay";
                             case StorageStrategy::kFullCopy:
                               return "FullCopy";
                             default:
                               return "MaterializeOnDemand";
                           }
                         });

class MigrationEdgeTest : public ::testing::Test {
 protected:
  void Deploy(std::shared_ptr<const ProcessSchema> schema) {
    v1_ = std::move(schema);
    v1_id_ = *repo_.Deploy(v1_);
  }

  ProcessInstance* NewInstance() {
    ProcessInstance* inst = *engine_.CreateInstance(v1_, v1_id_);
    EXPECT_TRUE(store_.Register(inst->id(), v1_id_).ok());
    EXPECT_TRUE(inst->Start().ok());
    return inst;
  }

  SchemaRepository repo_;
  Engine engine_;
  InstanceStore store_{&repo_};
  MigrationManager manager_{&engine_, &repo_, &store_};
  std::shared_ptr<const ProcessSchema> v1_;
  SchemaId v1_id_;
};

TEST_F(MigrationEdgeTest, DeleteOpDemotesActivatedActivity) {
  Deploy(SequenceSchema(3, "del"));
  ProcessInstance* inst = NewInstance();
  NodeId a1 = v1_->FindNodeByName("a1");
  EXPECT_EQ(inst->node_state(a1), NodeState::kActivated);

  Delta type_change;
  type_change.Add(std::make_unique<DeleteActivityOp>(a1));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated);
  // a1 is gone; a2 took its activation.
  EXPECT_EQ(inst->schema().FindNode(a1), nullptr);
  EXPECT_EQ(inst->node_state(v1_->FindNodeByName("a2")),
            NodeState::kActivated);
}

TEST_F(MigrationEdgeTest, DeleteOpConflictsWhenRunning) {
  Deploy(SequenceSchema(3, "del_run"));
  ProcessInstance* inst = NewInstance();
  NodeId a1 = v1_->FindNodeByName("a1");
  ASSERT_TRUE(inst->StartActivity(a1).ok());

  Delta type_change;
  type_change.Add(std::make_unique<DeleteActivityOp>(a1));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kStateConflict);
  EXPECT_EQ(inst->schema().version(), 1);
  // The running activity is untouched.
  EXPECT_EQ(inst->node_state(a1), NodeState::kRunning);
}

TEST_F(MigrationEdgeTest, MoveOpMigratesWhenBothConditionsHold) {
  Deploy(SequenceSchema(4, "move"));
  ProcessInstance* inst = NewInstance();
  // Progress past a1 only; moving a3 before a2... i.e. into edge a1->a2 is
  // no longer possible (a2 region?) — actually a2 is merely Activated, so
  // both the delete condition (a3 untouched) and the insertion condition
  // (a2 not started) hold.
  NodeId a1 = v1_->FindNodeByName("a1");
  ASSERT_TRUE(inst->StartActivity(a1).ok());
  ASSERT_TRUE(inst->CompleteActivity(a1).ok());

  Delta type_change;
  type_change.Add(std::make_unique<MoveActivityOp>(
      v1_->FindNodeByName("a3"), a1, v1_->FindNodeByName("a2")));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated)
      << report->results[0].detail;
  // New order: a1 -> a3 -> a2 -> a4; a3 is now the activated one and the
  // previously activated a2 was demoted.
  EXPECT_EQ(inst->node_state(v1_->FindNodeByName("a3")),
            NodeState::kActivated);
  EXPECT_EQ(inst->node_state(v1_->FindNodeByName("a2")),
            NodeState::kNotActivated);
  SimulationDriver driver({.seed = 1});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
}

TEST_F(MigrationEdgeTest, DataFlowTypeChangePropagates) {
  Deploy(SequenceSchema(3, "dataflow"));
  ProcessInstance* inst = NewInstance();
  NodeId a1 = v1_->FindNodeByName("a1");
  NodeId a2 = v1_->FindNodeByName("a2");

  // V2: new element written by a1, mandatorily read by a2.
  Delta probe;
  auto* add = probe.Add(
      std::make_unique<AddDataElementOp>("priority", DataType::kInt));
  (void)probe.ApplyToSchema(*v1_);
  DataId priority = static_cast<AddDataElementOp*>(add)->created_data();
  Delta type_change;
  type_change.Add(add->Clone());
  type_change.Add(
      std::make_unique<AddDataEdgeOp>(a1, priority, AccessMode::kWrite, false));
  type_change.Add(
      std::make_unique<AddDataEdgeOp>(a2, priority, AccessMode::kRead, false));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated)
      << report->results[0].detail;

  // Executing on V2 now requires (and checks) the new parameter.
  ASSERT_TRUE(inst->StartActivity(a1).ok());
  EXPECT_EQ(inst->CompleteActivity(a1).code(),
            StatusCode::kFailedPrecondition);  // mandatory output missing
  ASSERT_TRUE(
      inst->CompleteActivity(a1, {{priority, DataValue::Int(2)}}).ok());
  ASSERT_TRUE(inst->StartActivity(a2).ok());
  ASSERT_TRUE(inst->CompleteActivity(a2).ok());
}

TEST_F(MigrationEdgeTest, DataFlowChangeConflictsAfterWriterCompleted) {
  Deploy(SequenceSchema(3, "dataflow2"));
  ProcessInstance* inst = NewInstance();
  NodeId a1 = v1_->FindNodeByName("a1");
  ASSERT_TRUE(inst->StartActivity(a1).ok());
  ASSERT_TRUE(inst->CompleteActivity(a1).ok());  // a1 done, wrote nothing

  Delta probe;
  auto* add = probe.Add(
      std::make_unique<AddDataElementOp>("late", DataType::kInt));
  (void)probe.ApplyToSchema(*v1_);
  DataId late = static_cast<AddDataElementOp*>(add)->created_data();
  Delta type_change;
  type_change.Add(add->Clone());
  type_change.Add(
      std::make_unique<AddDataEdgeOp>(a1, late, AccessMode::kWrite, false));
  type_change.Add(std::make_unique<AddDataEdgeOp>(
      v1_->FindNodeByName("a2"), late, AccessMode::kRead, false));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  // a1 already completed without producing "late": not compliant.
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kStateConflict);
}

TEST_F(MigrationEdgeTest, MidLoopInstanceMigrates) {
  Deploy(LoopSchema());
  ProcessInstance* inst = NewInstance();
  DataId again = v1_->FindDataByName("again");
  NodeId check = v1_->FindNodeByName("check");
  NodeId prepare = v1_->FindNodeByName("prepare");
  ASSERT_TRUE(inst->StartActivity(prepare).ok());
  ASSERT_TRUE(inst->CompleteActivity(prepare).ok());
  // Iterate once; stop mid-second-iteration (check activated).
  ASSERT_TRUE(inst->StartActivity(check).ok());
  ASSERT_TRUE(
      inst->CompleteActivity(check, {{again, DataValue::Bool(true)}}).ok());
  ASSERT_EQ(inst->loop_iteration(v1_->FindNodeByName("loop_start")), 1);

  // Type change inserts a step after "finish" (outside the loop).
  Delta type_change;
  NewActivitySpec spec;
  spec.name = "archive";
  type_change.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("finish"), v1_->end_node()));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  MigrationOptions options;
  options.verify_adaptation_with_replay = true;  // loop-tolerant oracle
  auto report = manager_.MigrateAll(v1_id_, v2_id, options);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated)
      << report->results[0].detail;

  // Loop state survived: still mid-iteration 2 on V2.
  EXPECT_EQ(inst->loop_iteration(v1_->FindNodeByName("loop_start")), 1);
  EXPECT_EQ(inst->node_state(check), NodeState::kActivated);
  ASSERT_TRUE(inst->StartActivity(check).ok());
  ASSERT_TRUE(
      inst->CompleteActivity(check, {{again, DataValue::Bool(false)}}).ok());
  SimulationDriver driver({.seed = 2});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
  EXPECT_EQ(inst->node_state(inst->schema().FindNodeByName("archive")),
            NodeState::kCompleted);
}

TEST_F(MigrationEdgeTest, VersionChainWithPerHopConflicts) {
  Deploy(SequenceSchema(4, "chain2"));
  // I1 fresh (migrates all hops); I2 progressed past a2 (conflicts on V2's
  // change at a2, stays on V1 even for later hops).
  ProcessInstance* i1 = NewInstance();
  ProcessInstance* i2 = NewInstance();
  SimulationDriver driver({.seed = 3});
  for (const char* n : {"a1", "a2"}) {
    NodeId node = v1_->FindNodeByName(n);
    ASSERT_TRUE(i2->StartActivity(node).ok());
    ASSERT_TRUE(i2->CompleteActivity(node).ok());
  }

  Delta d2;
  NewActivitySpec s2;
  s2.name = "v2step";
  d2.Add(std::make_unique<SerialInsertOp>(s2, v1_->FindNodeByName("a1"),
                                          v1_->FindNodeByName("a2")));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(d2));
  auto r1 = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->MigratedTotal(), 1u);  // only I1

  Delta d3;
  NewActivitySpec s3;
  s3.name = "v3step";
  d3.Add(std::make_unique<SerialInsertOp>(s3, v1_->FindNodeByName("a3"),
                                          v1_->FindNodeByName("a4")));
  SchemaId v3_id = *repo_.DeriveVersion(v2_id, std::move(d3));
  auto r2 = manager_.MigrateAll(v2_id, v3_id);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->MigratedTotal(), 1u);  // I1 again; I2 is not on V2

  EXPECT_EQ(i1->schema().version(), 3);
  EXPECT_EQ(i2->schema().version(), 1);
  ASSERT_TRUE(driver.RunToCompletion(*i1).ok());
  ASSERT_TRUE(driver.RunToCompletion(*i2).ok());
}

TEST_F(MigrationEdgeTest, SkippedRegionInsertIsCompliant) {
  // Insert into a dead (skipped) XOR branch: allowed by the paper's
  // skipped-insertion clause as long as nothing behind it started.
  Deploy(testing_fixtures::XorSchema());
  ProcessInstance* inst = NewInstance();
  NodeId triage = v1_->FindNodeByName("triage");
  DataId severity = v1_->FindDataByName("severity");
  ASSERT_TRUE(inst->StartActivity(triage).ok());
  ASSERT_TRUE(
      inst->CompleteActivity(triage, {{severity, DataValue::Int(1)}}).ok());
  NodeId standard = v1_->FindNodeByName("standard care");
  ASSERT_EQ(inst->node_state(standard), NodeState::kSkipped);

  Delta type_change;
  NewActivitySpec spec;
  spec.name = "aftercare";
  type_change.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("xor_split"), standard));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));

  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated)
      << report->results[0].detail;
  // The inserted node lies on the dead path and is skipped automatically.
  NodeId aftercare = inst->schema().FindNodeByName("aftercare");
  EXPECT_EQ(inst->node_state(aftercare), NodeState::kSkipped);
  SimulationDriver driver({.seed = 4});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
}

TEST_F(MigrationEdgeTest, SkippedRegionInsertConflictsOncePassed) {
  Deploy(testing_fixtures::XorSchema());
  ProcessInstance* inst = NewInstance();
  NodeId triage = v1_->FindNodeByName("triage");
  DataId severity = v1_->FindDataByName("severity");
  ASSERT_TRUE(inst->StartActivity(triage).ok());
  ASSERT_TRUE(
      inst->CompleteActivity(triage, {{severity, DataValue::Int(1)}}).ok());
  // Execute the chosen branch and move past the join.
  NodeId intensive = v1_->FindNodeByName("intensive care");
  ASSERT_TRUE(inst->StartActivity(intensive).ok());
  ASSERT_TRUE(inst->CompleteActivity(intensive).ok());
  NodeId discharge = v1_->FindNodeByName("discharge");
  ASSERT_TRUE(inst->StartActivity(discharge).ok());

  // Insert before the skipped node whose region has been passed (the
  // paper's Fig. 1 clause: successors beyond the dead region started).
  Delta type_change;
  NewActivitySpec spec;
  spec.name = "late";
  type_change.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("xor_split"),
      v1_->FindNodeByName("standard care")));
  SchemaId v2_id = *repo_.DeriveVersion(v1_id_, std::move(type_change));
  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kStateConflict);
}

}  // namespace
}  // namespace adept
