#include <gtest/gtest.h>

#include "change/change_op.h"
#include "compliance/adhoc.h"
#include "core/adept.h"
#include "org/org_model.h"
#include "org/worklist.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"
#include "model/schema_builder.h"
#include "runtime/engine.h"

namespace adept {
namespace {

// Order process whose activities carry staff-assignment roles.
std::shared_ptr<const ProcessSchema> RoleSchema(RoleId clerk, RoleId packer) {
  SchemaBuilder b("role_proc", 1);
  b.Activity("take order", {.role = clerk});
  b.Activity("pack", {.role = packer});
  b.Activity("ship", {.role = packer});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

class WorklistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clerk_ = *org_.AddRole("clerk");
    packer_ = *org_.AddRole("packer");
    alice_ = *org_.AddUser("alice");
    bob_ = *org_.AddUser("bob");
    ASSERT_TRUE(org_.AssignRole(alice_, clerk_).ok());
    ASSERT_TRUE(org_.AssignRole(bob_, packer_).ok());
    schema_ = RoleSchema(clerk_, packer_);
    ASSERT_NE(schema_, nullptr);
  }

  OrgModel org_;
  RoleId clerk_, packer_;
  UserId alice_, bob_;
  std::shared_ptr<const ProcessSchema> schema_;
};

TEST(OrgModelTest, RolesAndUsers) {
  OrgModel org;
  auto clerk = org.AddRole("clerk");
  ASSERT_TRUE(clerk.ok());
  EXPECT_FALSE(org.AddRole("clerk").ok());

  auto alice = org.AddUser("alice");
  ASSERT_TRUE(alice.ok());
  EXPECT_FALSE(org.AddUser("alice").ok());

  ASSERT_TRUE(org.AssignRole(*alice, *clerk).ok());
  EXPECT_TRUE(org.UserHasRole(*alice, *clerk));
  EXPECT_EQ(org.UsersInRole(*clerk).size(), 1u);
  EXPECT_EQ(org.RolesOf(*alice).size(), 1u);

  ASSERT_TRUE(org.RevokeRole(*alice, *clerk).ok());
  EXPECT_FALSE(org.UserHasRole(*alice, *clerk));
  EXPECT_FALSE(org.RevokeRole(*alice, *clerk).ok());

  EXPECT_EQ(*org.FindUser("alice"), *alice);
  EXPECT_EQ(*org.FindRole("clerk"), *clerk);
  EXPECT_FALSE(org.FindUser("nobody").ok());
  EXPECT_EQ(*org.UserName(*alice), "alice");
  EXPECT_EQ(*org.RoleName(*clerk), "clerk");
}

TEST_F(WorklistTest, OffersFollowActivation) {
  WorklistManager worklists(&org_);
  ProcessInstance inst(InstanceId(1), schema_, SchemaId(1));
  inst.set_observer(&worklists);
  ASSERT_TRUE(inst.Start().ok());

  // "take order" is activated -> offered to alice (clerk), not bob.
  auto alice_offers = worklists.OffersFor(alice_);
  ASSERT_EQ(alice_offers.size(), 1u);
  EXPECT_EQ(alice_offers[0].node, schema_->FindNodeByName("take order"));
  EXPECT_TRUE(worklists.OffersFor(bob_).empty());

  // Claim and start.
  ASSERT_TRUE(worklists.Claim(alice_offers[0].id, alice_).ok());
  EXPECT_TRUE(worklists.OffersFor(alice_).empty());  // claimed, not offered
  ASSERT_TRUE(inst.StartActivity(alice_offers[0].node).ok());
  ASSERT_TRUE(inst.CompleteActivity(alice_offers[0].node).ok());

  // Next item goes to bob.
  auto bob_offers = worklists.OffersFor(bob_);
  ASSERT_EQ(bob_offers.size(), 1u);
  EXPECT_EQ(bob_offers[0].node, schema_->FindNodeByName("pack"));
}

TEST_F(WorklistTest, ClaimAuthorizationEnforced) {
  WorklistManager worklists(&org_);
  ProcessInstance inst(InstanceId(1), schema_, SchemaId(1));
  inst.set_observer(&worklists);
  ASSERT_TRUE(inst.Start().ok());
  auto offers = worklists.OffersFor(alice_);
  ASSERT_EQ(offers.size(), 1u);
  // bob is no clerk.
  EXPECT_EQ(worklists.Claim(offers[0].id, bob_).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(worklists.Claim(offers[0].id, alice_).ok());
  // Double claim rejected.
  EXPECT_FALSE(worklists.Claim(offers[0].id, alice_).ok());
}

TEST_F(WorklistTest, AdHocDeletionRevokesWorkItem) {
  SchemaRepository repo;
  auto schema_id = repo.Deploy(schema_);
  ASSERT_TRUE(schema_id.ok());
  InstanceStore store(&repo);
  WorklistManager worklists(&org_);

  Engine engine;
  engine.set_observer(&worklists);
  auto created = engine.CreateInstance(schema_, *schema_id);
  ASSERT_TRUE(created.ok());
  ProcessInstance* inst = *created;
  ASSERT_TRUE(store.Register(inst->id(), *schema_id).ok());
  ASSERT_TRUE(inst->Start().ok());
  ASSERT_EQ(worklists.offered_count(), 1u);

  // Delete the offered activity ad hoc: the work item must be revoked.
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(
      schema_->FindNodeByName("take order")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store, std::move(delta)).ok());

  EXPECT_EQ(worklists.revoked_count(), 1u);
  // The successor ("pack") is offered instead.
  auto bob_offers = worklists.OffersFor(bob_);
  ASSERT_EQ(bob_offers.size(), 1u);
  EXPECT_EQ(bob_offers[0].node, schema_->FindNodeByName("pack"));
}

TEST_F(WorklistTest, AdHocDeletionRevokesClaimedItemExactlyOnce) {
  SchemaRepository repo;
  auto schema_id = repo.Deploy(schema_);
  ASSERT_TRUE(schema_id.ok());
  InstanceStore store(&repo);
  WorklistManager worklists(&org_);

  Engine engine;
  engine.set_observer(&worklists);
  auto created = engine.CreateInstance(schema_, *schema_id);
  ASSERT_TRUE(created.ok());
  ProcessInstance* inst = *created;
  ASSERT_TRUE(store.Register(inst->id(), *schema_id).ok());
  ASSERT_TRUE(inst->Start().ok());

  // Claim the offered "take order" before it is deleted ad hoc.
  auto offers = worklists.OffersFor(alice_);
  ASSERT_EQ(offers.size(), 1u);
  ASSERT_TRUE(worklists.Claim(offers[0].id, alice_).ok());

  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(
      schema_->FindNodeByName("take order")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store, std::move(delta)).ok());

  // Retracted exactly once — claimed items included.
  EXPECT_EQ(worklists.revoked_count(), 1u);
  EXPECT_TRUE(worklists.OffersFor(alice_).empty());
  EXPECT_FALSE(worklists.Claim(offers[0].id, alice_).ok());
}

// Regression: a migration with bias cancellation rewrites the instance
// marking wholesale (no per-node events), leaving work items that
// reference the cancelled bias node ids. Claiming such a stale item used
// to succeed; Migrate now resyncs the worklist and the claim fails
// kNotFound.
TEST_F(WorklistTest, StaleItemAfterBiasCancellationMigration) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  RoleId clerk = *adept.org().AddRole("clerk");
  UserId alice = *adept.org().AddUser("alice");
  ASSERT_TRUE(adept.org().AssignRole(alice, clerk).ok());

  SchemaBuilder b("bias_proc", 1);
  NodeId a = b.Activity("a", {.role = clerk});
  NodeId c = b.Activity("c", {.role = clerk});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto v1 = adept.DeployProcessType(*schema);
  ASSERT_TRUE(v1.ok());

  InstanceId id = *adept.CreateInstance("bias_proc");
  ASSERT_TRUE(adept.StartActivity(id, a).ok());
  ASSERT_TRUE(adept.CompleteActivity(id, a).ok());

  // Ad-hoc: insert "x" between a and c; it activates and is offered.
  auto make_insert = [&] {
    Delta delta;
    NewActivitySpec spec;
    spec.name = "x";
    spec.role = clerk;
    delta.Add(std::make_unique<SerialInsertOp>(spec, a, c));
    return delta;
  };
  ASSERT_TRUE(adept.ApplyAdHocChange(id, make_insert()).ok());
  auto offers = adept.worklists().OffersFor(alice);
  ASSERT_EQ(offers.size(), 1u);
  WorkItemId stale = offers[0].id;

  // The type evolves by the semantically identical change; migration
  // cancels the bias and remaps the instance state onto the type's ids.
  auto v2 = adept.EvolveProcessType(*v1, make_insert());
  ASSERT_TRUE(v2.ok());
  auto report = adept.Migrate(*v1, *v2);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->MigratedTotal(), 1u);

  // The stale item (bias node id) is gone; claiming it is kNotFound.
  EXPECT_EQ(adept.worklists().Claim(stale, alice).code(),
            StatusCode::kNotFound);
  // Exactly one live offer for the remapped "x" node remains, claimable.
  offers = adept.worklists().OffersFor(alice);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_NE(offers[0].id, stale);
  auto snapshot = adept.SnapshotOf(id);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_NE(snapshot->schema->FindNode(offers[0].node), nullptr);
  EXPECT_TRUE(adept.worklists().Claim(offers[0].id, alice).ok());
}

// Migration demotion (paper: state adaptation may deactivate an activity
// when the type change inserts a predecessor) retracts offered and
// claimed items exactly once.
TEST_F(WorklistTest, MigrationDemotionRevokesClaimedItems) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  RoleId clerk = *adept.org().AddRole("clerk");
  UserId alice = *adept.org().AddUser("alice");
  ASSERT_TRUE(adept.org().AssignRole(alice, clerk).ok());

  SchemaBuilder b("demote_proc", 1);
  NodeId a = b.Activity("a", {.role = clerk});
  NodeId c = b.Activity("c", {.role = clerk});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto v1 = adept.DeployProcessType(*schema);
  ASSERT_TRUE(v1.ok());

  InstanceId offered_id = *adept.CreateInstance("demote_proc");
  InstanceId claimed_id = *adept.CreateInstance("demote_proc");
  for (InstanceId id : {offered_id, claimed_id}) {
    ASSERT_TRUE(adept.StartActivity(id, a).ok());
    ASSERT_TRUE(adept.CompleteActivity(id, a).ok());
  }
  auto offers = adept.worklists().OffersFor(alice);
  ASSERT_EQ(offers.size(), 2u);
  const WorkItem claimed_item =
      offers[0].instance == claimed_id ? offers[0] : offers[1];
  ASSERT_TRUE(adept.worklists().Claim(claimed_item.id, alice).ok());

  Delta delta;
  NewActivitySpec spec;
  spec.name = "gate";
  spec.role = clerk;
  delta.Add(std::make_unique<SerialInsertOp>(spec, a, c));
  auto v2 = adept.EvolveProcessType(*v1, std::move(delta));
  ASSERT_TRUE(v2.ok());
  auto report = adept.Migrate(*v1, *v2);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->MigratedTotal(), 2u);

  // Both "c" items (one offered, one claimed) retracted exactly once;
  // the new "gate" is offered on both instances.
  EXPECT_EQ(adept.worklists().revoked_count(), 2u);
  offers = adept.worklists().OffersFor(alice);
  ASSERT_EQ(offers.size(), 2u);
  for (const WorkItem& item : offers) {
    EXPECT_NE(item.node, c);
  }
  EXPECT_FALSE(adept.worklists().Claim(claimed_item.id, alice).ok());
}

TEST_F(WorklistTest, SkippedBranchRevokesOffer) {
  SchemaBuilder b("xor_roles", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  NodeId init = b.Activity("init", {.role = clerk_});
  b.Writes(init, sel);
  b.Conditional(sel, {
      [&](SchemaBuilder& s) { s.Activity("left", {.role = packer_}); },
      [&](SchemaBuilder& s) { s.Activity("right", {.role = packer_}); },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());

  WorklistManager worklists(&org_);
  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  inst.set_observer(&worklists);
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(inst.StartActivity(init).ok());
  ASSERT_TRUE(inst.CompleteActivity(init, {{sel, DataValue::Int(0)}}).ok());

  // Only "left" is offered; "right" was skipped without ever being offered.
  auto offers = worklists.OffersFor(bob_);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].node, (*schema)->FindNodeByName("left"));
}

}  // namespace
}  // namespace adept
