// Randomized property suites over generated schemas and workloads.
//
// Uses the benchmark workload generator (bench/bench_util.h) to sweep
// seeds via parameterized gtest. Core invariants:
//   1. generated schemas verify cleanly and always run to completion
//   2. replay self-consistency: an instance is always compliant with its
//      *own* schema, and the replay-adapted marking equals the live one
//   3. randomized ad-hoc changes preserve verifiability; changed instances
//      still finish; overlay and materialized representations agree
//   4. marking sanity at every step (activated nodes have resolved
//      predecessors; finished instances have no ready work)

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "compliance/adhoc.h"
#include "compliance/replay.h"
#include "model/serialization.h"
#include "runtime/driver.h"
#include "storage/overlay_schema.h"
#include "verify/verifier.h"

namespace adept {
namespace {

class GeneratedSchemaTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedSchemaTest, VerifiesCleanly) {
  auto schema = bench::ScaledSchema(60, GetParam());
  ASSERT_NE(schema, nullptr);
  auto report = VerifySchema(*schema);
  EXPECT_TRUE(report.ok()) << report.DebugString();
}

TEST_P(GeneratedSchemaTest, RunsToCompletion) {
  auto schema = bench::ScaledSchema(60, GetParam());
  ASSERT_NE(schema, nullptr);
  for (uint64_t run = 0; run < 3; ++run) {
    ProcessInstance inst(InstanceId(run + 1), schema, SchemaId(1));
    ASSERT_TRUE(inst.Start().ok());
    SimulationDriver driver({.seed = GetParam() * 7 + run});
    Status st = driver.RunToCompletion(inst);
    ASSERT_TRUE(st.ok()) << "seed " << GetParam() << ": " << st;
    EXPECT_TRUE(inst.Finished());
    EXPECT_TRUE(inst.ActivatedActivities().empty());
  }
}

TEST_P(GeneratedSchemaTest, ReplaySelfConsistency) {
  auto schema = bench::ScaledSchema(40, GetParam());
  ASSERT_NE(schema, nullptr);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = GetParam() + 101});
  Rng rng(GetParam());
  ASSERT_TRUE(driver.RunToProgress(inst, rng.NextDouble()).ok());

  // Every instance is trivially compliant with its own schema, and the
  // replay-derived marking must equal the live marking exactly.
  ReplayResult rr = CheckComplianceByReplay(inst, inst.schema_ptr());
  ASSERT_TRUE(rr.compliant) << rr.reason << "\n" << inst.trace().DebugString();
  EXPECT_EQ(rr.adapted_marking.node_states(), inst.marking().node_states());
  EXPECT_EQ(rr.adapted_marking.edge_states(), inst.marking().edge_states());
}

TEST_P(GeneratedSchemaTest, SerializationRoundTrip) {
  auto schema = bench::ScaledSchema(50, GetParam());
  ASSERT_NE(schema, nullptr);
  auto restored = SchemaFromJson(SchemaToJson(*schema));
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(SchemaToJson(**restored).Dump(), SchemaToJson(*schema).Dump());
}

TEST_P(GeneratedSchemaTest, MarkingSanityDuringExecution) {
  auto schema = bench::ScaledSchema(40, GetParam());
  ASSERT_NE(schema, nullptr);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = GetParam() + 5});

  int guard = 0;
  while (!inst.Finished() && ++guard < 2000) {
    // Invariant: every Activated node has all incoming control edges
    // TrueSignaled (XOR joins: at least one) and all sync edges resolved.
    schema->VisitNodes([&](const Node& n) {
      if (inst.node_state(n.id) != NodeState::kActivated) return;
      int in_control = 0, in_true = 0;
      bool sync_pending = false;
      schema->VisitInEdges(n.id, [&](const Edge& e) {
        if (e.type == EdgeType::kControl) {
          ++in_control;
          if (inst.edge_state(e.id) == EdgeState::kTrueSignaled) ++in_true;
        } else if (e.type == EdgeType::kSync) {
          if (inst.edge_state(e.id) == EdgeState::kNotSignaled) {
            sync_pending = true;
          }
        }
      });
      if (n.type == NodeType::kXorJoin) {
        EXPECT_GE(in_true, 1) << n.name;
      } else if (in_control > 0) {
        EXPECT_EQ(in_true, in_control) << n.name;
      }
      EXPECT_FALSE(sync_pending) << n.name;
    });
    auto progressed = driver.Step(inst);
    ASSERT_TRUE(progressed.ok());
    if (!*progressed) break;
  }
  EXPECT_TRUE(inst.Finished());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSchemaTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- Randomized ad-hoc change sweeps ----------------------------------------

class AdHocSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdHocSweepTest, ChangedInstancesStayHealthy) {
  uint64_t seed = GetParam();
  auto schema = bench::ScaledSchema(40, seed, "adhoc_sweep");
  ASSERT_NE(schema, nullptr);

  SchemaRepository repo;
  auto schema_id = repo.Deploy(schema);
  ASSERT_TRUE(schema_id.ok());
  InstanceStore store(&repo);
  Engine engine;
  Rng rng(seed * 31 + 1);
  SimulationDriver driver({.seed = seed + 7});

  int applied = 0, rejected = 0;
  for (int round = 0; round < 10; ++round) {
    ProcessInstance* inst = *engine.CreateInstance(schema, *schema_id);
    ASSERT_TRUE(store.Register(inst->id(), *schema_id).ok());
    ASSERT_TRUE(inst->Start().ok());
    ASSERT_TRUE(driver.RunToProgress(*inst, rng.NextDouble() * 0.7).ok());

    // Random op against the base schema.
    std::vector<const Edge*> edges;
    std::vector<NodeId> activities;
    schema->VisitEdges([&](const Edge& e) {
      if (e.type == EdgeType::kControl) edges.push_back(schema->FindEdge(e.id));
    });
    schema->VisitNodes([&](const Node& n) {
      if (n.type == NodeType::kActivity) activities.push_back(n.id);
    });
    Delta delta;
    if (rng.NextBool()) {
      const Edge* e = edges[rng.NextIndex(edges.size())];
      NewActivitySpec spec;
      spec.name = "sweep" + std::to_string(round);
      delta.Add(std::make_unique<SerialInsertOp>(spec, e->src, e->dst));
    } else {
      delta.Add(std::make_unique<DeleteActivityOp>(
          activities[rng.NextIndex(activities.size())]));
    }

    Status st = ApplyAdHocChange(*inst, store, std::move(delta));
    if (!st.ok()) {
      ++rejected;
      // Rejection must leave the instance unbiased and healthy.
      EXPECT_FALSE(inst->biased());
    } else {
      ++applied;
      // The changed execution schema still verifies.
      EXPECT_TRUE(VerifySchemaOrError(inst->schema()).ok());
      // Overlay equals materialization.
      auto record = store.Get(inst->id());
      ASSERT_TRUE(record.ok());
      if ((*record)->block != nullptr) {
        OverlaySchema overlay(*repo.Get((*record)->base_schema),
                              (*record)->block);
        auto materialized = overlay.Materialize();
        ASSERT_TRUE(materialized.ok());
        EXPECT_EQ(overlay.node_count(), (*materialized)->node_count());
      }
    }
    // Either way the instance must still finish.
    Status done = driver.RunToCompletion(*inst);
    EXPECT_TRUE(done.ok()) << "round " << round << " (applied=" << st.ok()
                           << "): " << done;
  }
  // The sweep must exercise both paths across seeds (soft check per seed).
  EXPECT_GT(applied + rejected, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdHocSweepTest,
                         ::testing::Range<uint64_t>(1, 13));

// --- Randomized migration sweeps --------------------------------------------

class MigrationSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrationSweepTest, PopulationMigrationInvariants) {
  uint64_t seed = GetParam();
  bench::PopulationOptions options;
  options.instances = 40;
  options.biased_fraction = 0.3;
  options.conflicting_fraction = 0.4;
  options.seed = seed;
  auto pop = bench::MakePopulation(options);
  SchemaId v2 = *pop->repo.DeriveVersion(pop->v1_id,
                                         bench::Fig1TypeChange(*pop->v1));

  MigrationOptions mopts;
  mopts.verify_adaptation_with_replay = true;  // oracle on
  auto report = pop->manager->MigrateAll(pop->v1_id, v2, mopts);
  ASSERT_TRUE(report.ok()) << report.status();

  for (const auto& r : report->results) {
    // The oracle found no adaptation divergence.
    EXPECT_NE(r.outcome, MigrationOutcome::kError) << r.detail;
    ProcessInstance* inst = pop->engine.Find(r.id);
    ASSERT_NE(inst, nullptr);
    switch (r.outcome) {
      case MigrationOutcome::kMigrated:
      case MigrationOutcome::kBiasCancelled:
        EXPECT_EQ(inst->schema().version(), 2);
        break;
      case MigrationOutcome::kMigratedBiased:
        EXPECT_EQ(inst->schema().version(), 2);
        EXPECT_TRUE(inst->biased());
        break;
      default:
        EXPECT_EQ(inst->schema().version(), 1);
        break;
    }
  }

  // Everyone still finishes, on whichever version they ended up.
  SimulationDriver driver({.seed = seed + 99});
  for (InstanceId id : pop->ids) {
    ProcessInstance* inst = pop->engine.Find(id);
    Status st = driver.RunToCompletion(*inst);
    EXPECT_TRUE(st.ok()) << "I" << id.value() << ": " << st;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationSweepTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace adept
