#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "change/change_op.h"
#include "change/delta.h"
#include "common/rng.h"
#include "model/serialization.h"
#include "storage/instance_store.h"
#include "storage/overlay_schema.h"
#include "storage/schema_repository.h"
#include "storage/state_serialization.h"
#include "storage/substitution_block.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"
#include "runtime/driver.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Delta OneSerialInsert(const ProcessSchema& base, const std::string& name,
                      const std::string& pred, const std::string& succ) {
  Delta delta;
  NewActivitySpec spec;
  spec.name = name;
  delta.Add(std::make_unique<SerialInsertOp>(spec, base.FindNodeByName(pred),
                                             base.FindNodeByName(succ)));
  return delta;
}

TEST(SubstitutionBlockTest, DiffCapturesInsert) {
  auto base = OnlineOrderV1();
  Delta delta = OneSerialInsert(*base, "extra", "get order", "collect data");
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok()) << biased.status();

  SubstitutionBlock block = ComputeSubstitutionBlock(*base, **biased);
  EXPECT_EQ(block.nodes.size(), 1u);   // the new activity
  EXPECT_EQ(block.edges.size(), 2u);   // two new control edges
  EXPECT_EQ(block.removed_edges.size(), 1u);
  EXPECT_TRUE(block.removed_nodes.empty());
  EXPECT_FALSE(block.empty());
}

TEST(SubstitutionBlockTest, DiffCapturesDelete) {
  auto base = SequenceSchema(3);
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(base->FindNodeByName("a2")));
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok());

  SubstitutionBlock block = ComputeSubstitutionBlock(*base, **biased);
  EXPECT_EQ(block.removed_nodes.size(), 1u);
  EXPECT_EQ(block.removed_edges.size(), 2u);
  EXPECT_EQ(block.edges.size(), 1u);  // the bridge edge
  EXPECT_TRUE(block.nodes.empty());
}

TEST(SubstitutionBlockTest, EmptyDiffForIdenticalSchemas) {
  auto base = OnlineOrderV1();
  auto clone = base->Clone();
  ASSERT_TRUE(clone->Freeze().ok());
  SubstitutionBlock block = ComputeSubstitutionBlock(*base, *clone);
  EXPECT_TRUE(block.empty());
}

TEST(SubstitutionBlockTest, JsonRoundTrip) {
  auto base = OnlineOrderV1();
  Delta delta = OneSerialInsert(*base, "extra", "pack goods", "deliver goods");
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok());
  SubstitutionBlock block = ComputeSubstitutionBlock(*base, **biased);

  auto restored = SubstitutionBlock::FromJson(block.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->ToJson().Dump(), block.ToJson().Dump());
}

// Property: overlay(base, diff(base, biased)) is observably identical to
// the biased schema, across randomized deltas on a non-trivial base.
TEST(OverlayTest, OverlayEquivalentToMaterialized) {
  auto base = ComplexSchema();
  ASSERT_NE(base, nullptr);
  Rng rng(2024);

  for (int round = 0; round < 30; ++round) {
    // Random delta: insert into a random control edge, delete a random
    // activity, or both.
    Delta delta;
    std::vector<const Edge*> control_edges;
    std::vector<NodeId> activities;
    base->VisitEdges([&](const Edge& e) {
      if (e.type == EdgeType::kControl) {
        control_edges.push_back(base->FindEdge(e.id));
      }
    });
    base->VisitNodes([&](const Node& n) {
      if (n.type == NodeType::kActivity) activities.push_back(n.id);
    });
    int which = static_cast<int>(rng.NextBelow(3));
    if (which == 0 || which == 2) {
      const Edge* e = control_edges[rng.NextIndex(control_edges.size())];
      NewActivitySpec spec;
      spec.name = "rnd" + std::to_string(round);
      delta.Add(std::make_unique<SerialInsertOp>(spec, e->src, e->dst));
    }
    if (which == 1 || which == 2) {
      delta.Add(std::make_unique<DeleteActivityOp>(
          activities[rng.NextIndex(activities.size())]));
    }

    BiasIdAllocator alloc;
    auto biased = delta.ApplyRaw(*base, base->version(), &alloc);
    if (!biased.ok()) continue;  // structurally inapplicable; fine

    auto block = std::make_shared<const SubstitutionBlock>(
        ComputeSubstitutionBlock(*base, **biased));
    OverlaySchema overlay(base, block);

    // Counts agree.
    ASSERT_EQ(overlay.node_count(), (*biased)->node_count());
    ASSERT_EQ(overlay.edge_count(), (*biased)->edge_count());
    ASSERT_EQ(overlay.data_count(), (*biased)->data_count());

    // Entity-by-entity agreement, both directions.
    (*biased)->VisitNodes([&](const Node& n) {
      const Node* o = overlay.FindNode(n.id);
      ASSERT_NE(o, nullptr);
      EXPECT_EQ(*o, n);
    });
    overlay.VisitNodes([&](const Node& n) {
      ASSERT_NE((*biased)->FindNode(n.id), nullptr);
    });
    (*biased)->VisitEdges([&](const Edge& e) {
      const Edge* o = overlay.FindEdge(e.id);
      ASSERT_NE(o, nullptr);
      EXPECT_EQ(*o, e);
    });

    // Adjacency agreement per node.
    (*biased)->VisitNodes([&](const Node& n) {
      auto expect_succ = (*biased)->Successors(n.id, EdgeType::kControl);
      auto got_succ = overlay.Successors(n.id, EdgeType::kControl);
      EXPECT_EQ(got_succ, expect_succ);
      auto expect_pred = (*biased)->Predecessors(n.id, EdgeType::kControl);
      auto got_pred = overlay.Predecessors(n.id, EdgeType::kControl);
      EXPECT_EQ(got_pred, expect_pred);
    });

    // Materialization reproduces the biased schema byte for byte.
    auto materialized = overlay.Materialize();
    ASSERT_TRUE(materialized.ok()) << materialized.status();
    EXPECT_EQ(SchemaToJson(**materialized).Dump(),
              SchemaToJson(**biased).Dump());
  }
}

TEST(OverlayTest, FootprintFarBelowFullCopy) {
  auto base = OnlineOrderV1();
  Delta delta = OneSerialInsert(*base, "x", "get order", "collect data");
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok());
  auto block = std::make_shared<const SubstitutionBlock>(
      ComputeSubstitutionBlock(*base, **biased));
  OverlaySchema overlay(base, block);
  EXPECT_LT(overlay.MemoryFootprint(), (*biased)->MemoryFootprint());
}

TEST(SchemaRepositoryTest, DeployAndDerive) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok()) << id1.status();

  Delta delta =
      OneSerialInsert(*v1, "check stock", "get order", "collect data");
  auto id2 = repo.DeriveVersion(*id1, std::move(delta));
  ASSERT_TRUE(id2.ok()) << id2.status();

  auto v2 = repo.Get(*id2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)->version(), 2);
  EXPECT_TRUE((*v2)->FindNodeByName("check stock").valid());

  auto latest = repo.Latest("online_order");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, *id2);
  auto parent = repo.ParentOf(*id2);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(*parent, *id1);
  auto delta_back = repo.DeltaFor(*id2);
  ASSERT_TRUE(delta_back.ok());
  EXPECT_EQ((*delta_back)->size(), 1u);
  EXPECT_EQ(repo.VersionsOf("online_order").size(), 2u);
}

TEST(SchemaRepositoryTest, RejectsDuplicateDeployAndStaleDerive) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(repo.Deploy(OnlineOrderV1()).status().code(),
            StatusCode::kAlreadyExists);

  Delta d1 = OneSerialInsert(*v1, "s1", "get order", "collect data");
  auto id2 = repo.DeriveVersion(*id1, std::move(d1));
  ASSERT_TRUE(id2.ok());

  // Deriving from the outdated version is rejected.
  Delta d2 = OneSerialInsert(*v1, "s2", "pack goods", "deliver goods");
  EXPECT_EQ(repo.DeriveVersion(*id1, std::move(d2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaRepositoryTest, RejectsUnverifiableDerivation) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok());
  Delta bad;
  bad.Add(std::make_unique<InsertSyncEdgeOp>(
      v1->FindNodeByName("get order"), v1->FindNodeByName("collect data")));
  EXPECT_EQ(repo.DeriveVersion(*id1, std::move(bad)).status().code(),
            StatusCode::kVerificationFailed);
}

TEST(SchemaRepositoryTest, JsonRoundTrip) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok());
  Delta delta = OneSerialInsert(*v1, "x", "get order", "collect data");
  auto id2 = repo.DeriveVersion(*id1, std::move(delta));
  ASSERT_TRUE(id2.ok());

  SchemaRepository restored;
  ASSERT_TRUE(restored.LoadFromJson(repo.ToJson()).ok());
  EXPECT_EQ(restored.size(), repo.size());
  auto v2 = restored.Get(*id2);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE((*v2)->FindNodeByName("x").valid());
  // Deltas survive with pins intact.
  auto d = restored.DeltaFor(*id2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->size(), 1u);
}

class InstanceStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    v1_ = OnlineOrderV1();
    auto id = repo_.Deploy(v1_);
    ASSERT_TRUE(id.ok());
    v1_id_ = *id;
  }

  SchemaRepository repo_;
  std::shared_ptr<const ProcessSchema> v1_;
  SchemaId v1_id_;
};

TEST_F(InstanceStoreTest, UnbiasedSharesBaseSchema) {
  InstanceStore store(&repo_);
  ASSERT_TRUE(store.Register(InstanceId(1), v1_id_).ok());
  auto view = store.ExecutionSchema(InstanceId(1));
  ASSERT_TRUE(view.ok());
  // Same underlying object: redundant-free storage.
  EXPECT_EQ(view->get(), static_cast<const SchemaView*>(v1_.get()));
  EXPECT_FALSE(store.IsBiased(InstanceId(1)));
}

TEST_F(InstanceStoreTest, AddBiasPerStrategy) {
  for (StorageStrategy strategy :
       {StorageStrategy::kOverlay, StorageStrategy::kFullCopy,
        StorageStrategy::kMaterializeOnDemand}) {
    InstanceStore store(&repo_);
    InstanceId id(42);
    ASSERT_TRUE(store.Register(id, v1_id_, strategy).ok());
    Delta delta = OneSerialInsert(*v1_, "adhoc", "get order", "collect data");
    auto view = store.AddBias(id, std::move(delta));
    ASSERT_TRUE(view.ok()) << StorageStrategyToString(strategy) << ": "
                           << view.status();
    EXPECT_TRUE(store.IsBiased(id));
    EXPECT_TRUE((*view)->FindNodeByName("adhoc").valid());
    EXPECT_EQ((*view)->node_count(), v1_->node_count() + 1);

    auto again = store.ExecutionSchema(id);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE((*again)->FindNodeByName("adhoc").valid());
  }
}

TEST_F(InstanceStoreTest, IncrementalBiasAccumulates) {
  InstanceStore store(&repo_);
  InstanceId id(7);
  ASSERT_TRUE(store.Register(id, v1_id_).ok());
  ASSERT_TRUE(store
                  .AddBias(id, OneSerialInsert(*v1_, "first", "get order",
                                               "collect data"))
                  .ok());
  auto view = store.AddBias(
      id, OneSerialInsert(*v1_, "second", "pack goods", "deliver goods"));
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_TRUE((*view)->FindNodeByName("first").valid());
  EXPECT_TRUE((*view)->FindNodeByName("second").valid());
  auto record = store.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->bias.size(), 2u);
}

TEST_F(InstanceStoreTest, RebaseReappliesBias) {
  InstanceStore store(&repo_);
  InstanceId id(9);
  ASSERT_TRUE(store.Register(id, v1_id_).ok());
  auto biased_view =
      store.AddBias(id, OneSerialInsert(*v1_, "adhoc", "pack goods",
                                        "deliver goods"));
  ASSERT_TRUE(biased_view.ok());
  NodeId adhoc_id = (*biased_view)->FindNodeByName("adhoc");

  Delta type_change =
      OneSerialInsert(*v1_, "typed", "get order", "collect data");
  auto v2_id = repo_.DeriveVersion(v1_id_, std::move(type_change));
  ASSERT_TRUE(v2_id.ok());

  auto rebased = store.Rebase(id, *v2_id);
  ASSERT_TRUE(rebased.ok()) << rebased.status();
  // Both the type change and the bias are visible; the bias node keeps its id.
  EXPECT_TRUE((*rebased)->FindNodeByName("typed").valid());
  EXPECT_EQ((*rebased)->FindNodeByName("adhoc"), adhoc_id);
}

TEST_F(InstanceStoreTest, MemoryStatsOrdering) {
  // Fig. 2's point: blocks are much smaller than full copies.
  InstanceStore overlay_store(&repo_);
  InstanceStore copy_store(&repo_);
  for (uint64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(overlay_store
                    .Register(InstanceId(i), v1_id_, StorageStrategy::kOverlay)
                    .ok());
    ASSERT_TRUE(copy_store
                    .Register(InstanceId(i), v1_id_, StorageStrategy::kFullCopy)
                    .ok());
    ASSERT_TRUE(overlay_store
                    .AddBias(InstanceId(i), OneSerialInsert(*v1_, "b",
                                                            "get order",
                                                            "collect data"))
                    .ok());
    ASSERT_TRUE(copy_store
                    .AddBias(InstanceId(i), OneSerialInsert(*v1_, "b",
                                                            "get order",
                                                            "collect data"))
                    .ok());
  }
  auto overlay_mem = overlay_store.Memory();
  auto copy_mem = copy_store.Memory();
  EXPECT_GT(overlay_mem.blocks, 0u);
  EXPECT_EQ(overlay_mem.full_copies, 0u);
  EXPECT_GT(copy_mem.full_copies, overlay_mem.blocks * 2);
}

TEST(StateSerializationTest, InstanceStateRoundTrip) {
  auto schema = ComplexSchema();
  ProcessInstance original(InstanceId(5), schema, SchemaId(1));
  ASSERT_TRUE(original.Start().ok());
  SimulationDriver driver({.seed = 99});
  ASSERT_TRUE(driver.RunToProgress(original, 0.5).ok());

  JsonValue state = InstanceStateToJson(original);
  // Through a JSON text round trip, like the snapshot file does.
  auto reparsed = JsonValue::Parse(state.Dump());
  ASSERT_TRUE(reparsed.ok());

  ProcessInstance restored(InstanceId(5), schema, SchemaId(1));
  ASSERT_TRUE(RestoreInstanceState(restored, *reparsed).ok());

  EXPECT_EQ(restored.marking(), original.marking());
  EXPECT_EQ(restored.trace().DebugString(), original.trace().DebugString());
  EXPECT_EQ(restored.loop_iterations().size(),
            original.loop_iterations().size());
  EXPECT_EQ(restored.started(), original.started());

  // The restored instance continues executing normally.
  SimulationDriver driver2({.seed = 100});
  ASSERT_TRUE(driver2.RunToCompletion(restored).ok());
  EXPECT_TRUE(restored.Finished());
}

TEST(WalTest, AppendAndReadBack) {
  std::string path = TempPath("adept_wal_test.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      JsonValue record = JsonValue::MakeObject();
      record.Set("k", JsonValue(i));
      ASSERT_TRUE((*wal)->Append(record).ok());
    }
    EXPECT_EQ((*wal)->records_written(), 10u);
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  EXPECT_EQ((*records)[7].Get("k").as_int(), 7);
  std::remove(path.c_str());
}

TEST(WalTest, AppendAcrossReopens) {
  std::string path = TempPath("adept_wal_reopen.log");
  std::remove(path.c_str());
  for (int batch = 0; batch < 3; ++batch) {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    JsonValue record = JsonValue::MakeObject();
    record.Set("batch", JsonValue(batch));
    ASSERT_TRUE((*wal)->Append(record).ok());
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u);
  std::remove(path.c_str());
}

TEST(WalTest, TruncatedTailTolerated) {
  std::string path = TempPath("adept_wal_trunc.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      JsonValue record = JsonValue::MakeObject();
      record.Set("k", JsonValue(i));
      ASSERT_TRUE((*wal)->Append(record).ok());
    }
  }
  // Crash injection: chop bytes off the tail.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 4);

  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);  // last record lost, rest intact

  // Appending after the truncation point still works for new opens (the
  // damaged tail is simply re-read as garbage-free prefix).
  std::remove(path.c_str());
}

TEST(WalTest, ScanFeedsOpenWithoutRescan) {
  std::string path = TempPath("adept_wal_scan.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      JsonValue record = JsonValue::MakeObject();
      record.Set("k", JsonValue(i));
      ASSERT_TRUE((*wal)->Append(record).ok());
    }
    ASSERT_TRUE((*wal)->Sync(SyncMode::kFlush).ok());
  }
  // Crash injection: damage the tail so OpenScanned must repair it from
  // the scan's framing facts alone.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  auto scan = WriteAheadLog::Scan(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->exists);
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->last_lsn, 2u);
  EXPECT_LT(scan->valid_bytes, scan->total_bytes);

  const uint64_t scans_before = WriteAheadLog::scan_count();
  auto wal = WriteAheadLog::OpenScanned(path, *scan);
  ASSERT_TRUE(wal.ok());
  // No re-read: the scan counter is untouched and LSNs resume correctly
  // past the repaired tail.
  EXPECT_EQ(WriteAheadLog::scan_count(), scans_before);
  EXPECT_EQ((*wal)->last_lsn(), 2u);
  JsonValue record = JsonValue::MakeObject();
  record.Set("k", JsonValue(99));
  auto lsn = (*wal)->Append(record);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE((*wal)->Sync(SyncMode::kFlush).ok());

  auto records = WriteAheadLog::ReadRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ(records->back().lsn, 3u);
  std::remove(path.c_str());
}

TEST(WalTest, GarbageFileYieldsNoRecords) {
  std::string path = TempPath("adept_wal_garbage.log");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a wal", f);
  std::fclose(f);
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileYieldsEmpty) {
  auto records = WriteAheadLog::ReadAll(TempPath("does_not_exist_123.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, LsnsAreMonotonicAndSurviveReopenAndTruncate) {
  std::string path = TempPath("adept_wal_lsn.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      auto lsn = (*wal)->Append(JsonValue::MakeObject());
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
  }
  {
    // A reopen resumes numbering from the persisted frames.
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->last_lsn(), 3u);
    auto lsn = (*wal)->Append(JsonValue::MakeObject());
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 4u);
    // Truncation empties the file but never reuses an LSN: a snapshot that
    // recorded coverage up to 4 stays unambiguous.
    ASSERT_TRUE((*wal)->Truncate().ok());
    auto after = (*wal)->Append(JsonValue::MakeObject());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after, 5u);
  }
  auto records = WriteAheadLog::ReadRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].lsn, 5u);
  std::remove(path.c_str());
}

// Regression: a forged header with a long digit run used to overflow the
// size_t length accumulator, wrap the bounds check, and index out of
// bounds. The parser must reject it and salvage the prefix.
TEST(WalTest, ForgedOversizedHeaderIsRejected) {
  std::string path = TempPath("adept_wal_forged.log");
  const char* forged_lengths[] = {
      // 20+ digit runs: would overflow uint64 accumulation.
      "184467440737095516151",
      "99999999999999999999999999999999",
      // Parses fine but exceeds any plausible payload: must be capped.
      "18446744073709551615",
      "4294967296",
  };
  for (const char* forged : forged_lengths) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    // One good frame, then the forged one.
    std::fputs("1:7:{\"k\":1}\n", f);
    std::fprintf(f, "2:%s:{}\n", forged);
    std::fclose(f);
    auto records = WriteAheadLog::ReadRecords(path);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 1u) << "forged length " << forged;
    EXPECT_EQ((*records)[0].lsn, 1u);
  }
  std::remove(path.c_str());
}

TEST(WalTest, NonMonotonicLsnEndsScan) {
  std::string path = TempPath("adept_wal_replayed_lsn.log");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  // LSN 7 twice: the second frame is forged/stale and must end the scan.
  std::fputs("7:7:{\"k\":1}\n7:7:{\"k\":2}\n", f);
  std::fclose(f);
  auto records = WriteAheadLog::ReadRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].value.Get("k").as_int(), 1);
  std::remove(path.c_str());
}

TEST(WalTest, DamagedTailIsRepairedOnOpen) {
  std::string path = TempPath("adept_wal_repair.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    JsonValue record = JsonValue::MakeObject();
    record.Set("k", JsonValue(1));
    ASSERT_TRUE((*wal)->Append(record).ok());
  }
  {
    // Crash injection: garbage after the last complete frame.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("####garbage####", f);
    std::fclose(f);
  }
  {
    // Open truncates back to the last good frame so the next append is not
    // hidden behind unreadable bytes.
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    JsonValue record = JsonValue::MakeObject();
    record.Set("k", JsonValue(2));
    ASSERT_TRUE((*wal)->Append(record).ok());
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].Get("k").as_int(), 2);
  std::remove(path.c_str());
}

// Regression: a failed Truncate() used to leave a null FILE* behind, and
// the next Append crashed in fwrite. Both must report kCorruption instead,
// and a later successful Truncate() revives the log.
TEST(WalTest, FailedTruncateThenAppendReturnsCorruption) {
  std::string dir_path = TempPath("adept_wal_deadhandle");
  std::string path = dir_path + "/wal.log";
  std::filesystem::remove_all(dir_path);
  ASSERT_TRUE(std::filesystem::create_directories(dir_path));
  auto wal = WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(JsonValue::MakeObject()).ok());

  // Make the reopen inside Truncate() fail: replace the log file with a
  // directory of the same name (fopen(..., "wb") then fails with EISDIR).
  std::filesystem::remove_all(dir_path);
  ASSERT_TRUE(std::filesystem::create_directories(path));
  EXPECT_EQ((*wal)->Truncate().code(), StatusCode::kCorruption);
  EXPECT_TRUE((*wal)->dead());

  // Dead handle: error, not a crash.
  EXPECT_EQ((*wal)->Append(JsonValue::MakeObject()).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ((*wal)->Sync(SyncMode::kFlush).code(), StatusCode::kCorruption);

  // Once the path is writable again, Truncate() revives the handle.
  std::filesystem::remove_all(path);
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_FALSE((*wal)->dead());
  EXPECT_TRUE((*wal)->Append(JsonValue::MakeObject()).ok());
  std::filesystem::remove_all(dir_path);
}

// Fuzz loop: random byte corruptions of a valid log must never trip the
// parser (the ASan/UBSan CI job turns any OOB index into a failure).
TEST(WalTest, CorruptHeaderFuzzLoopCompletesReadAll) {
  std::string path = TempPath("adept_wal_fuzz.log");
  std::remove(path.c_str());
  std::string pristine;
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 20; ++i) {
      JsonValue record = JsonValue::MakeObject();
      record.Set("k", JsonValue(i));
      record.Set("pad", JsonValue(std::string(32, 'x')));
      ASSERT_TRUE((*wal)->Append(record).ok());
    }
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buffer[1 << 16];
    size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      pristine.append(buffer, n);
    }
    std::fclose(f);
  }

  Rng rng(20260726);
  const std::string digit_runs[] = {"9", "99999999999999999999",
                                    "18446744073709551615", ":", "\n"};
  for (int round = 0; round < 200; ++round) {
    std::string mutated = pristine;
    // Flip a handful of bytes and splice a hostile digit run somewhere.
    for (int flips = 0; flips < 4; ++flips) {
      mutated[rng.NextIndex(mutated.size())] =
          static_cast<char>(rng.NextBelow(256));
    }
    const std::string& splice = digit_runs[rng.NextIndex(5)];
    mutated.insert(rng.NextIndex(mutated.size()), splice);

    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(mutated.data(), 1, mutated.size(), f);
    std::fclose(f);

    auto records = WriteAheadLog::ReadAll(path);
    ASSERT_TRUE(records.ok()) << "round " << round;
    EXPECT_LE(records->size(), 20u);
  }
  std::remove(path.c_str());
}

TEST(WalWriterTest, SingleThreadAppendIsDurableAndReadable) {
  std::string path = TempPath("adept_walwriter_single.log");
  std::remove(path.c_str());
  for (SyncMode mode : {SyncMode::kNone, SyncMode::kFlush, SyncMode::kFsync}) {
    std::remove(path.c_str());
    WalWriterOptions options;
    options.sync = mode;
    {
      auto writer = WalWriter::Open(path, options);
      ASSERT_TRUE(writer.ok()) << SyncModeToString(mode);
      for (int i = 0; i < 10; ++i) {
        JsonValue record = JsonValue::MakeObject();
        record.Set("k", JsonValue(i));
        ASSERT_TRUE((*writer)->Append(record).ok());
      }
      EXPECT_EQ((*writer)->last_enqueued_lsn(), 10u);
      EXPECT_EQ((*writer)->durable_lsn(), 10u);
    }
    auto records = WriteAheadLog::ReadRecords(path);
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 10u) << SyncModeToString(mode);
    EXPECT_EQ((*records)[9].value.Get("k").as_int(), 9);
  }
  std::remove(path.c_str());
}

// Group commit: N appender threads, every ticket LSN becomes durable, and
// the replayed log contains each record exactly once in LSN order.
TEST(WalWriterTest, ConcurrentAppendersAllLsnsDurableAndReplayable) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::string path = TempPath("adept_walwriter_group.log");
  std::remove(path.c_str());
  {
    WalWriterOptions options;
    options.sync = SyncMode::kFlush;
    auto writer = WalWriter::Open(path, options);
    ASSERT_TRUE(writer.ok());

    std::vector<std::thread> appenders;
    std::vector<Status> results(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      appenders.emplace_back([&, t] {
        uint64_t max_lsn = 0;
        for (int i = 0; i < kPerThread; ++i) {
          JsonValue record = JsonValue::MakeObject();
          record.Set("payload", JsonValue(t * kPerThread + i));
          max_lsn = std::max(max_lsn, (*writer)->Enqueue(record));
        }
        results[t] = (*writer)->WaitDurable(max_lsn);
      });
    }
    for (auto& appender : appenders) appender.join();
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_TRUE(results[t].ok()) << "thread " << t << ": " << results[t];
    }
    EXPECT_EQ((*writer)->durable_lsn(),
              static_cast<uint64_t>(kThreads * kPerThread));
  }

  auto records = WriteAheadLog::ReadRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), static_cast<size_t>(kThreads * kPerThread));
  std::set<int64_t> payloads;
  uint64_t previous_lsn = 0;
  for (const WalRecord& record : *records) {
    EXPECT_GT(record.lsn, previous_lsn);  // strictly increasing on disk
    previous_lsn = record.lsn;
    EXPECT_TRUE(
        payloads.insert(record.value.Get("payload").as_int()).second);
  }
  EXPECT_EQ(payloads.size(), static_cast<size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

TEST(WalWriterTest, TruncateDrainsAndContinuesLsns) {
  std::string path = TempPath("adept_walwriter_trunc.log");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path, {});
  ASSERT_TRUE(writer.ok());
  for (int i = 0; i < 5; ++i) {
    (*writer)->Enqueue(JsonValue::MakeObject());
  }
  ASSERT_TRUE((*writer)->Truncate().ok());
  EXPECT_EQ((*writer)->durable_lsn(), 5u);
  JsonValue record = JsonValue::MakeObject();
  record.Set("post", JsonValue(true));
  ASSERT_TRUE((*writer)->Append(record).ok());
  auto records = WriteAheadLog::ReadRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].lsn, 6u);
  EXPECT_TRUE((*records)[0].value.Get("post").as_bool());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adept
