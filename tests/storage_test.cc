#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "change/change_op.h"
#include "change/delta.h"
#include "common/rng.h"
#include "model/serialization.h"
#include "storage/instance_store.h"
#include "storage/overlay_schema.h"
#include "storage/schema_repository.h"
#include "storage/state_serialization.h"
#include "storage/substitution_block.h"
#include "storage/wal.h"
#include "runtime/driver.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Delta OneSerialInsert(const ProcessSchema& base, const std::string& name,
                      const std::string& pred, const std::string& succ) {
  Delta delta;
  NewActivitySpec spec;
  spec.name = name;
  delta.Add(std::make_unique<SerialInsertOp>(spec, base.FindNodeByName(pred),
                                             base.FindNodeByName(succ)));
  return delta;
}

TEST(SubstitutionBlockTest, DiffCapturesInsert) {
  auto base = OnlineOrderV1();
  Delta delta = OneSerialInsert(*base, "extra", "get order", "collect data");
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok()) << biased.status();

  SubstitutionBlock block = ComputeSubstitutionBlock(*base, **biased);
  EXPECT_EQ(block.nodes.size(), 1u);   // the new activity
  EXPECT_EQ(block.edges.size(), 2u);   // two new control edges
  EXPECT_EQ(block.removed_edges.size(), 1u);
  EXPECT_TRUE(block.removed_nodes.empty());
  EXPECT_FALSE(block.empty());
}

TEST(SubstitutionBlockTest, DiffCapturesDelete) {
  auto base = SequenceSchema(3);
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(base->FindNodeByName("a2")));
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok());

  SubstitutionBlock block = ComputeSubstitutionBlock(*base, **biased);
  EXPECT_EQ(block.removed_nodes.size(), 1u);
  EXPECT_EQ(block.removed_edges.size(), 2u);
  EXPECT_EQ(block.edges.size(), 1u);  // the bridge edge
  EXPECT_TRUE(block.nodes.empty());
}

TEST(SubstitutionBlockTest, EmptyDiffForIdenticalSchemas) {
  auto base = OnlineOrderV1();
  auto clone = base->Clone();
  ASSERT_TRUE(clone->Freeze().ok());
  SubstitutionBlock block = ComputeSubstitutionBlock(*base, *clone);
  EXPECT_TRUE(block.empty());
}

TEST(SubstitutionBlockTest, JsonRoundTrip) {
  auto base = OnlineOrderV1();
  Delta delta = OneSerialInsert(*base, "extra", "pack goods", "deliver goods");
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok());
  SubstitutionBlock block = ComputeSubstitutionBlock(*base, **biased);

  auto restored = SubstitutionBlock::FromJson(block.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->ToJson().Dump(), block.ToJson().Dump());
}

// Property: overlay(base, diff(base, biased)) is observably identical to
// the biased schema, across randomized deltas on a non-trivial base.
TEST(OverlayTest, OverlayEquivalentToMaterialized) {
  auto base = ComplexSchema();
  ASSERT_NE(base, nullptr);
  Rng rng(2024);

  for (int round = 0; round < 30; ++round) {
    // Random delta: insert into a random control edge, delete a random
    // activity, or both.
    Delta delta;
    std::vector<const Edge*> control_edges;
    std::vector<NodeId> activities;
    base->VisitEdges([&](const Edge& e) {
      if (e.type == EdgeType::kControl) {
        control_edges.push_back(base->FindEdge(e.id));
      }
    });
    base->VisitNodes([&](const Node& n) {
      if (n.type == NodeType::kActivity) activities.push_back(n.id);
    });
    int which = static_cast<int>(rng.NextBelow(3));
    if (which == 0 || which == 2) {
      const Edge* e = control_edges[rng.NextIndex(control_edges.size())];
      NewActivitySpec spec;
      spec.name = "rnd" + std::to_string(round);
      delta.Add(std::make_unique<SerialInsertOp>(spec, e->src, e->dst));
    }
    if (which == 1 || which == 2) {
      delta.Add(std::make_unique<DeleteActivityOp>(
          activities[rng.NextIndex(activities.size())]));
    }

    BiasIdAllocator alloc;
    auto biased = delta.ApplyRaw(*base, base->version(), &alloc);
    if (!biased.ok()) continue;  // structurally inapplicable; fine

    auto block = std::make_shared<const SubstitutionBlock>(
        ComputeSubstitutionBlock(*base, **biased));
    OverlaySchema overlay(base, block);

    // Counts agree.
    ASSERT_EQ(overlay.node_count(), (*biased)->node_count());
    ASSERT_EQ(overlay.edge_count(), (*biased)->edge_count());
    ASSERT_EQ(overlay.data_count(), (*biased)->data_count());

    // Entity-by-entity agreement, both directions.
    (*biased)->VisitNodes([&](const Node& n) {
      const Node* o = overlay.FindNode(n.id);
      ASSERT_NE(o, nullptr);
      EXPECT_EQ(*o, n);
    });
    overlay.VisitNodes([&](const Node& n) {
      ASSERT_NE((*biased)->FindNode(n.id), nullptr);
    });
    (*biased)->VisitEdges([&](const Edge& e) {
      const Edge* o = overlay.FindEdge(e.id);
      ASSERT_NE(o, nullptr);
      EXPECT_EQ(*o, e);
    });

    // Adjacency agreement per node.
    (*biased)->VisitNodes([&](const Node& n) {
      auto expect_succ = (*biased)->Successors(n.id, EdgeType::kControl);
      auto got_succ = overlay.Successors(n.id, EdgeType::kControl);
      EXPECT_EQ(got_succ, expect_succ);
      auto expect_pred = (*biased)->Predecessors(n.id, EdgeType::kControl);
      auto got_pred = overlay.Predecessors(n.id, EdgeType::kControl);
      EXPECT_EQ(got_pred, expect_pred);
    });

    // Materialization reproduces the biased schema byte for byte.
    auto materialized = overlay.Materialize();
    ASSERT_TRUE(materialized.ok()) << materialized.status();
    EXPECT_EQ(SchemaToJson(**materialized).Dump(),
              SchemaToJson(**biased).Dump());
  }
}

TEST(OverlayTest, FootprintFarBelowFullCopy) {
  auto base = OnlineOrderV1();
  Delta delta = OneSerialInsert(*base, "x", "get order", "collect data");
  BiasIdAllocator alloc;
  auto biased = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(biased.ok());
  auto block = std::make_shared<const SubstitutionBlock>(
      ComputeSubstitutionBlock(*base, **biased));
  OverlaySchema overlay(base, block);
  EXPECT_LT(overlay.MemoryFootprint(), (*biased)->MemoryFootprint());
}

TEST(SchemaRepositoryTest, DeployAndDerive) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok()) << id1.status();

  Delta delta = OneSerialInsert(*v1, "check stock", "get order", "collect data");
  auto id2 = repo.DeriveVersion(*id1, std::move(delta));
  ASSERT_TRUE(id2.ok()) << id2.status();

  auto v2 = repo.Get(*id2);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ((*v2)->version(), 2);
  EXPECT_TRUE((*v2)->FindNodeByName("check stock").valid());

  auto latest = repo.Latest("online_order");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, *id2);
  auto parent = repo.ParentOf(*id2);
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(*parent, *id1);
  auto delta_back = repo.DeltaFor(*id2);
  ASSERT_TRUE(delta_back.ok());
  EXPECT_EQ((*delta_back)->size(), 1u);
  EXPECT_EQ(repo.VersionsOf("online_order").size(), 2u);
}

TEST(SchemaRepositoryTest, RejectsDuplicateDeployAndStaleDerive) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(repo.Deploy(OnlineOrderV1()).status().code(),
            StatusCode::kAlreadyExists);

  Delta d1 = OneSerialInsert(*v1, "s1", "get order", "collect data");
  auto id2 = repo.DeriveVersion(*id1, std::move(d1));
  ASSERT_TRUE(id2.ok());

  // Deriving from the outdated version is rejected.
  Delta d2 = OneSerialInsert(*v1, "s2", "pack goods", "deliver goods");
  EXPECT_EQ(repo.DeriveVersion(*id1, std::move(d2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaRepositoryTest, RejectsUnverifiableDerivation) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok());
  Delta bad;
  bad.Add(std::make_unique<InsertSyncEdgeOp>(
      v1->FindNodeByName("get order"), v1->FindNodeByName("collect data")));
  EXPECT_EQ(repo.DeriveVersion(*id1, std::move(bad)).status().code(),
            StatusCode::kVerificationFailed);
}

TEST(SchemaRepositoryTest, JsonRoundTrip) {
  SchemaRepository repo;
  auto v1 = OnlineOrderV1();
  auto id1 = repo.Deploy(v1);
  ASSERT_TRUE(id1.ok());
  Delta delta = OneSerialInsert(*v1, "x", "get order", "collect data");
  auto id2 = repo.DeriveVersion(*id1, std::move(delta));
  ASSERT_TRUE(id2.ok());

  SchemaRepository restored;
  ASSERT_TRUE(restored.LoadFromJson(repo.ToJson()).ok());
  EXPECT_EQ(restored.size(), repo.size());
  auto v2 = restored.Get(*id2);
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE((*v2)->FindNodeByName("x").valid());
  // Deltas survive with pins intact.
  auto d = restored.DeltaFor(*id2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->size(), 1u);
}

class InstanceStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    v1_ = OnlineOrderV1();
    auto id = repo_.Deploy(v1_);
    ASSERT_TRUE(id.ok());
    v1_id_ = *id;
  }

  SchemaRepository repo_;
  std::shared_ptr<const ProcessSchema> v1_;
  SchemaId v1_id_;
};

TEST_F(InstanceStoreTest, UnbiasedSharesBaseSchema) {
  InstanceStore store(&repo_);
  ASSERT_TRUE(store.Register(InstanceId(1), v1_id_).ok());
  auto view = store.ExecutionSchema(InstanceId(1));
  ASSERT_TRUE(view.ok());
  // Same underlying object: redundant-free storage.
  EXPECT_EQ(view->get(), static_cast<const SchemaView*>(v1_.get()));
  EXPECT_FALSE(store.IsBiased(InstanceId(1)));
}

TEST_F(InstanceStoreTest, AddBiasPerStrategy) {
  for (StorageStrategy strategy :
       {StorageStrategy::kOverlay, StorageStrategy::kFullCopy,
        StorageStrategy::kMaterializeOnDemand}) {
    InstanceStore store(&repo_);
    InstanceId id(42);
    ASSERT_TRUE(store.Register(id, v1_id_, strategy).ok());
    Delta delta = OneSerialInsert(*v1_, "adhoc", "get order", "collect data");
    auto view = store.AddBias(id, std::move(delta));
    ASSERT_TRUE(view.ok()) << StorageStrategyToString(strategy) << ": "
                           << view.status();
    EXPECT_TRUE(store.IsBiased(id));
    EXPECT_TRUE((*view)->FindNodeByName("adhoc").valid());
    EXPECT_EQ((*view)->node_count(), v1_->node_count() + 1);

    auto again = store.ExecutionSchema(id);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE((*again)->FindNodeByName("adhoc").valid());
  }
}

TEST_F(InstanceStoreTest, IncrementalBiasAccumulates) {
  InstanceStore store(&repo_);
  InstanceId id(7);
  ASSERT_TRUE(store.Register(id, v1_id_).ok());
  ASSERT_TRUE(store
                  .AddBias(id, OneSerialInsert(*v1_, "first", "get order",
                                               "collect data"))
                  .ok());
  auto view = store.AddBias(
      id, OneSerialInsert(*v1_, "second", "pack goods", "deliver goods"));
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_TRUE((*view)->FindNodeByName("first").valid());
  EXPECT_TRUE((*view)->FindNodeByName("second").valid());
  auto record = store.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->bias.size(), 2u);
}

TEST_F(InstanceStoreTest, RebaseReappliesBias) {
  InstanceStore store(&repo_);
  InstanceId id(9);
  ASSERT_TRUE(store.Register(id, v1_id_).ok());
  auto biased_view =
      store.AddBias(id, OneSerialInsert(*v1_, "adhoc", "pack goods",
                                        "deliver goods"));
  ASSERT_TRUE(biased_view.ok());
  NodeId adhoc_id = (*biased_view)->FindNodeByName("adhoc");

  Delta type_change =
      OneSerialInsert(*v1_, "typed", "get order", "collect data");
  auto v2_id = repo_.DeriveVersion(v1_id_, std::move(type_change));
  ASSERT_TRUE(v2_id.ok());

  auto rebased = store.Rebase(id, *v2_id);
  ASSERT_TRUE(rebased.ok()) << rebased.status();
  // Both the type change and the bias are visible; the bias node keeps its id.
  EXPECT_TRUE((*rebased)->FindNodeByName("typed").valid());
  EXPECT_EQ((*rebased)->FindNodeByName("adhoc"), adhoc_id);
}

TEST_F(InstanceStoreTest, MemoryStatsOrdering) {
  // Fig. 2's point: blocks are much smaller than full copies.
  InstanceStore overlay_store(&repo_);
  InstanceStore copy_store(&repo_);
  for (uint64_t i = 1; i <= 20; ++i) {
    ASSERT_TRUE(overlay_store
                    .Register(InstanceId(i), v1_id_, StorageStrategy::kOverlay)
                    .ok());
    ASSERT_TRUE(copy_store
                    .Register(InstanceId(i), v1_id_, StorageStrategy::kFullCopy)
                    .ok());
    ASSERT_TRUE(overlay_store
                    .AddBias(InstanceId(i), OneSerialInsert(*v1_, "b",
                                                            "get order",
                                                            "collect data"))
                    .ok());
    ASSERT_TRUE(copy_store
                    .AddBias(InstanceId(i), OneSerialInsert(*v1_, "b",
                                                            "get order",
                                                            "collect data"))
                    .ok());
  }
  auto overlay_mem = overlay_store.Memory();
  auto copy_mem = copy_store.Memory();
  EXPECT_GT(overlay_mem.blocks, 0u);
  EXPECT_EQ(overlay_mem.full_copies, 0u);
  EXPECT_GT(copy_mem.full_copies, overlay_mem.blocks * 2);
}

TEST(StateSerializationTest, InstanceStateRoundTrip) {
  auto schema = ComplexSchema();
  ProcessInstance original(InstanceId(5), schema, SchemaId(1));
  ASSERT_TRUE(original.Start().ok());
  SimulationDriver driver({.seed = 99});
  ASSERT_TRUE(driver.RunToProgress(original, 0.5).ok());

  JsonValue state = InstanceStateToJson(original);
  // Through a JSON text round trip, like the snapshot file does.
  auto reparsed = JsonValue::Parse(state.Dump());
  ASSERT_TRUE(reparsed.ok());

  ProcessInstance restored(InstanceId(5), schema, SchemaId(1));
  ASSERT_TRUE(RestoreInstanceState(restored, *reparsed).ok());

  EXPECT_EQ(restored.marking(), original.marking());
  EXPECT_EQ(restored.trace().DebugString(), original.trace().DebugString());
  EXPECT_EQ(restored.loop_iterations().size(),
            original.loop_iterations().size());
  EXPECT_EQ(restored.started(), original.started());

  // The restored instance continues executing normally.
  SimulationDriver driver2({.seed = 100});
  ASSERT_TRUE(driver2.RunToCompletion(restored).ok());
  EXPECT_TRUE(restored.Finished());
}

TEST(WalTest, AppendAndReadBack) {
  std::string path = TempPath("adept_wal_test.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      JsonValue record = JsonValue::MakeObject();
      record.Set("k", JsonValue(i));
      ASSERT_TRUE((*wal)->Append(record).ok());
    }
    EXPECT_EQ((*wal)->records_written(), 10u);
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  EXPECT_EQ((*records)[7].Get("k").as_int(), 7);
  std::remove(path.c_str());
}

TEST(WalTest, AppendAcrossReopens) {
  std::string path = TempPath("adept_wal_reopen.log");
  std::remove(path.c_str());
  for (int batch = 0; batch < 3; ++batch) {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    JsonValue record = JsonValue::MakeObject();
    record.Set("batch", JsonValue(batch));
    ASSERT_TRUE((*wal)->Append(record).ok());
  }
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u);
  std::remove(path.c_str());
}

TEST(WalTest, TruncatedTailTolerated) {
  std::string path = TempPath("adept_wal_trunc.log");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      JsonValue record = JsonValue::MakeObject();
      record.Set("k", JsonValue(i));
      ASSERT_TRUE((*wal)->Append(record).ok());
    }
  }
  // Crash injection: chop bytes off the tail.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 4);

  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 4u);  // last record lost, rest intact

  // Appending after the truncation point still works for new opens (the
  // damaged tail is simply re-read as garbage-free prefix).
  std::remove(path.c_str());
}

TEST(WalTest, GarbageFileYieldsNoRecords) {
  std::string path = TempPath("adept_wal_garbage.log");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a wal", f);
  std::fclose(f);
  auto records = WriteAheadLog::ReadAll(path);
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  std::remove(path.c_str());
}

TEST(WalTest, MissingFileYieldsEmpty) {
  auto records = WriteAheadLog::ReadAll(TempPath("does_not_exist_123.log"));
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

}  // namespace
}  // namespace adept
