// Elastic shard resizing: cross-shard instance migration, Recover() with a
// different shard count as the supported resize path, crash-window
// exactly-one-owner recovery, durable org model, and the named-counts
// error contract for damaged durable state.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "change/change_op.h"
#include "cluster/adept_cluster.h"
#include "model/schema_builder.h"
#include "storage/wal.h"
#include "worklist/worklist_service.h"

namespace adept {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_resize_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

ClusterOptions DurableOptions(const TempDir& dir, int shards) {
  ClusterOptions options;
  options.shards = shards;
  options.wal_path = dir.File("cluster.wal");
  options.snapshot_path = dir.File("cluster.snapshot");
  return options;
}

// start -> prepare(clerk) -> execute(packer) -> end
std::shared_ptr<const ProcessSchema> RoleSchema(RoleId clerk, RoleId packer) {
  SchemaBuilder b("rz_proc", 1);
  b.Activity("prepare", {.role = clerk});
  b.Activity("execute", {.role = packer});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

class ResizeTest : public ::testing::Test {
 protected:
  void PopulateOrg(AdeptCluster& cluster) {
    OrgModel& org = cluster.org();
    clerk_ = *org.AddRole("clerk");
    packer_ = *org.AddRole("packer");
    alice_ = *org.AddUser("alice");
    bob_ = *org.AddUser("bob");
    carol_ = *org.AddUser("carol");
    ASSERT_TRUE(org.AssignRole(alice_, clerk_).ok());
    ASSERT_TRUE(org.AssignRole(bob_, packer_).ok());
    ASSERT_TRUE(org.AssignRole(carol_, clerk_).ok());
  }

  void Init(AdeptCluster& cluster) {
    PopulateOrg(cluster);
    schema_ = RoleSchema(clerk_, packer_);
    ASSERT_NE(schema_, nullptr);
    auto deployed = cluster.DeployProcessType(schema_);
    ASSERT_TRUE(deployed.ok()) << deployed.status();
    v1_ = *deployed;
  }

  // Every instance must live on exactly the shard the routing assigns.
  void ExpectPlacement(AdeptCluster& cluster,
                       const std::vector<InstanceId>& ids) {
    for (InstanceId id : ids) {
      size_t owner = cluster.ShardOf(id);
      ASSERT_LT(owner, cluster.shard_count());
      for (size_t s = 0; s < cluster.shard_count(); ++s) {
        EXPECT_EQ(cluster.shard(s).engine().Find(id) != nullptr, s == owner)
            << "instance " << id << " vs shard " << s;
      }
      EXPECT_TRUE(cluster.WithInstance(id, [](const ProcessInstance&) {}).ok())
          << "instance " << id << " unreachable through the facade";
    }
  }

  RoleId clerk_, packer_;
  UserId alice_, bob_, carol_;
  SchemaId v1_;
  std::shared_ptr<const ProcessSchema> schema_;
};

// The acceptance round trip: a durable 2-shard cluster recovers as 4
// shards and back to 1 with all instances, schema versions, the org
// model, and claimed work items intact.
TEST_F(ResizeTest, RecoverRoundTrip2To4To1) {
  TempDir dir;
  std::vector<InstanceId> ids;
  SchemaId v2;
  InstanceId biased_id, claimed_id, started_id;
  NodeId prepare, execute;

  {  // Phase A: write durable state with 2 shards.
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 2));
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    prepare = schema_->FindNodeByName("prepare");
    execute = schema_->FindNodeByName("execute");
    for (int i = 0; i < 6; ++i) {
      auto id = (*cluster)->CreateInstance("rz_proc");
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }

    // Evolve the type (audit step between prepare and execute) and create
    // two instances on the evolved version; older ones stay on v1.
    Delta evolve;
    NewActivitySpec audit;
    audit.name = "audit";
    audit.role = clerk_;
    evolve.Add(std::make_unique<SerialInsertOp>(audit, prepare, execute));
    auto evolved = (*cluster)->EvolveProcessType(v1_, std::move(evolve));
    ASSERT_TRUE(evolved.ok()) << evolved.status();
    v2 = *evolved;
    for (int i = 0; i < 2; ++i) {
      auto id = (*cluster)->CreateInstanceOn(v2);
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }

    // Ad-hoc change one v1 instance: its bias must survive every move.
    biased_id = ids[0];
    Delta adhoc;
    NewActivitySpec extra;
    extra.name = "extra";
    extra.role = clerk_;
    adhoc.Add(std::make_unique<SerialInsertOp>(extra, prepare, execute));
    ASSERT_TRUE((*cluster)->ApplyAdHocChange(biased_id, std::move(adhoc)).ok());

    // Claim one item, claim + start another.
    WorklistService& worklist = (*cluster)->Worklist();
    std::map<uint64_t, WorkItemId> by_instance;
    for (const WorkItem& offer : worklist.OffersFor(alice_)) {
      by_instance[offer.instance.value()] = offer.id;
    }
    claimed_id = ids[1];
    started_id = ids[2];
    ASSERT_TRUE(worklist.Claim(by_instance[claimed_id.value()], alice_).ok());
    ASSERT_TRUE(worklist.Claim(by_instance[started_id.value()], carol_).ok());
    ASSERT_TRUE(worklist.Start(by_instance[started_id.value()], carol_).ok());

    // The checkpoint persists the org model and compacts the journal.
    ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
  }

  {  // Phase B: recover as 4 shards — the supported resize path.
    auto cluster = AdeptCluster::Recover(DurableOptions(dir, 4));
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    EXPECT_EQ((*cluster)->shard_count(), 4u);
    ExpectPlacement(**cluster, ids);

    // Schema versions (and the version chain) survived on every shard.
    auto latest = (*cluster)->LatestVersion("rz_proc");
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(*latest, v2);
    for (size_t s = 0; s < 4; ++s) {
      auto schema = (*cluster)->shard(s).Schema(v2);
      ASSERT_TRUE(schema.ok()) << "shard " << s;
      EXPECT_TRUE((*schema)->FindNodeByName("audit").valid());
    }

    // The org model was restored from "<wal>.org" — no repopulation.
    EXPECT_EQ((*cluster)->org().user_count(), 3u);
    EXPECT_EQ((*cluster)->org().role_count(), 2u);
    EXPECT_EQ(*(*cluster)->org().UserName(alice_), "alice");
    EXPECT_TRUE((*cluster)->org().UserHasRole(carol_, clerk_));

    // The bias survived the move.
    bool biased = false;
    ASSERT_TRUE((*cluster)
                    ->WithInstance(biased_id,
                                   [&](const ProcessInstance& inst) {
                                     biased = inst.biased() &&
                                              inst.schema()
                                                  .FindNodeByName("extra")
                                                  .valid();
                                   })
                    .ok());
    EXPECT_TRUE(biased);

    // Claims kept owner and state across the resize.
    WorklistService& worklist = (*cluster)->Worklist();
    auto alice_assigned = worklist.AssignedTo(alice_);
    ASSERT_EQ(alice_assigned.size(), 1u);
    EXPECT_EQ(alice_assigned[0].instance, claimed_id);
    EXPECT_EQ(alice_assigned[0].state, WorkItemState::kClaimed);
    auto carol_assigned = worklist.AssignedTo(carol_);
    ASSERT_EQ(carol_assigned.size(), 1u);
    EXPECT_EQ(carol_assigned[0].instance, started_id);
    EXPECT_EQ(carol_assigned[0].state, WorkItemState::kStarted);

    // The recovered lifecycle works end to end on the new topology.
    ASSERT_TRUE(worklist.Start(alice_assigned[0].id, alice_).ok());
    ASSERT_TRUE(worklist.Complete(alice_assigned[0].id, alice_).ok());
    bool completed = false;
    ASSERT_TRUE((*cluster)
                    ->WithInstance(claimed_id,
                                   [&](const ProcessInstance& inst) {
                                     completed = inst.node_state(prepare) ==
                                                 NodeState::kCompleted;
                                   })
                    .ok());
    EXPECT_TRUE(completed);

    // Fresh ids do not collide with recovered ones.
    for (int i = 0; i < 8; ++i) {
      auto fresh = (*cluster)->CreateInstance("rz_proc");
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      EXPECT_EQ(std::count(ids.begin(), ids.end(), *fresh), 0);
      ids.push_back(*fresh);
    }
    ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
  }

  {  // Phase C: shrink back to a single shard.
    auto cluster = AdeptCluster::Recover(DurableOptions(dir, 1));
    ASSERT_TRUE(cluster.ok()) << cluster.status();
    EXPECT_EQ((*cluster)->shard_count(), 1u);
    ExpectPlacement(**cluster, ids);
    EXPECT_EQ((*cluster)->shard(0).engine().instance_count(), ids.size());

    // Retired shard files are gone.
    for (int k = 1; k < 4; ++k) {
      EXPECT_FALSE(std::filesystem::exists(
          dir.File("cluster.wal.shard" + std::to_string(k))));
      EXPECT_FALSE(std::filesystem::exists(
          dir.File("cluster.snapshot.shard" + std::to_string(k))));
    }

    // Org, schema chain, and carol's started claim are all still here.
    EXPECT_EQ(*(*cluster)->org().UserName(bob_), "bob");
    auto latest = (*cluster)->LatestVersion("rz_proc");
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(*latest, v2);
    WorklistService& worklist = (*cluster)->Worklist();
    auto carol_assigned = worklist.AssignedTo(carol_);
    ASSERT_EQ(carol_assigned.size(), 1u);
    EXPECT_EQ(carol_assigned[0].instance, started_id);
    EXPECT_EQ(carol_assigned[0].state, WorkItemState::kStarted);
    ASSERT_TRUE(worklist.Complete(carol_assigned[0].id, carol_).ok());
    EXPECT_TRUE(worklist.AssignedTo(carol_).empty());
  }
}

// Live, in-process Resize(): existing claims keep their owner AND their
// WorkItemId across the move (the item table is keyed by instance id,
// which a move never changes).
TEST_F(ResizeTest, LiveResizeKeepsClaimedWorkItemIdsValid) {
  TempDir dir;
  auto cluster = AdeptCluster::Create(DurableOptions(dir, 2));
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  std::vector<InstanceId> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = (*cluster)->CreateInstance("rz_proc");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  WorklistService& worklist = (*cluster)->Worklist();
  std::map<uint64_t, WorkItemId> by_instance;
  for (const WorkItem& offer : worklist.OffersFor(alice_)) {
    by_instance[offer.instance.value()] = offer.id;
  }
  ASSERT_EQ(by_instance.size(), ids.size());
  WorkItemId claimed_item = by_instance[ids[0].value()];
  WorkItemId started_item = by_instance[ids[1].value()];
  ASSERT_TRUE(worklist.Claim(claimed_item, alice_).ok());
  ASSERT_TRUE(worklist.Claim(started_item, carol_).ok());
  ASSERT_TRUE(worklist.Start(started_item, carol_).ok());

  // Grow 2 -> 4.
  ASSERT_TRUE((*cluster)->Resize(4).ok());
  EXPECT_EQ((*cluster)->shard_count(), 4u);
  ExpectPlacement(**cluster, ids);

  // The pre-resize WorkItemIds are still live and owned.
  auto claimed = worklist.Get(claimed_item);
  ASSERT_TRUE(claimed.ok());
  EXPECT_EQ(claimed->state, WorkItemState::kClaimed);
  EXPECT_EQ(claimed->claimed_by, alice_);
  auto started = worklist.Get(started_item);
  ASSERT_TRUE(started.ok());
  EXPECT_EQ(started->state, WorkItemState::kStarted);
  EXPECT_EQ(started->claimed_by, carol_);

  // New instances land on the grown topology; offers keep flowing.
  for (int i = 0; i < 8; ++i) {
    auto id = (*cluster)->CreateInstance("rz_proc");
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(std::count(ids.begin(), ids.end(), *id), 0);
    ids.push_back(*id);
  }

  // Shrink 4 -> 1 with the claims still open.
  ASSERT_TRUE((*cluster)->Resize(1).ok());
  EXPECT_EQ((*cluster)->shard_count(), 1u);
  ExpectPlacement(**cluster, ids);

  // Drive the claims through the facade on the shrunk topology: Start /
  // Complete route by instance id, so the old item ids keep working.
  ASSERT_TRUE(worklist.Start(claimed_item, alice_).ok());
  ASSERT_TRUE(worklist.Complete(claimed_item, alice_).ok());
  ASSERT_TRUE(worklist.Complete(started_item, carol_).ok());

  // The post-shrink durable state recovers cleanly (claims were
  // checkpoint-compacted during Resize).
  cluster->reset();
  auto recovered = AdeptCluster::Recover(DurableOptions(dir, 1));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectPlacement(**recovered, ids);
  EXPECT_EQ(*(*recovered)->org().UserName(alice_), "alice");
}

// Crash window between a durable import and its evict: the instance is
// durable on BOTH shards. Recovery must dedup back to exactly one owner
// (the routed shard) and stay fully functional.
TEST_F(ResizeTest, CrashBetweenImportAndEvictRecoversExactlyOneOwner) {
  TempDir dir;
  InstanceId victim;
  size_t events_before = 0;
  std::vector<InstanceId> ids;
  {
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 2));
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    for (int i = 0; i < 4; ++i) {
      auto id = (*cluster)->CreateInstance("rz_proc");
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    // Progress the victim so the duplicate carries real state.
    victim = ids[0];
    ASSERT_EQ((*cluster)->ShardOf(victim), 0u);
    NodeId prepare = schema_->FindNodeByName("prepare");
    ASSERT_TRUE((*cluster)->StartActivity(victim, prepare).ok());
    ASSERT_TRUE((*cluster)->CompleteActivity(victim, prepare).ok());
    ASSERT_TRUE((*cluster)
                    ->WithInstance(victim,
                                   [&](const ProcessInstance& inst) {
                                     events_before =
                                         inst.trace().events().size();
                                   })
                    .ok());
  }

  {
    // Forge the crash window with the same export/import handover the
    // cluster uses: shard 1 durably imports the victim, the source-side
    // evict never happens ("crash").
    AdeptOptions src_options;
    src_options.wal_path = dir.File("cluster.wal.shard0");
    src_options.snapshot_path = dir.File("cluster.snapshot.shard0");
    auto src = AdeptSystem::Recover(src_options);
    ASSERT_TRUE(src.ok()) << src.status();
    auto exported = (*src)->ExportInstance(victim);
    ASSERT_TRUE(exported.ok());

    AdeptOptions dst_options;
    dst_options.wal_path = dir.File("cluster.wal.shard1");
    dst_options.snapshot_path = dir.File("cluster.snapshot.shard1");
    auto dst = AdeptSystem::Recover(dst_options);
    ASSERT_TRUE(dst.ok()) << dst.status();
    ASSERT_TRUE((*dst)->ImportInstance(*exported).ok());
  }

  auto recovered = AdeptCluster::Recover(DurableOptions(dir, 2));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // Exactly one owner: the routed shard kept the instance, the duplicate
  // was evicted.
  EXPECT_NE((*recovered)->shard(0).engine().Find(victim), nullptr);
  EXPECT_EQ((*recovered)->shard(1).engine().Find(victim), nullptr);
  size_t events_after = 0;
  ASSERT_TRUE((*recovered)
                  ->WithInstance(victim,
                                 [&](const ProcessInstance& inst) {
                                   events_after = inst.trace().events().size();
                                 })
                  .ok());
  EXPECT_EQ(events_after, events_before);
  ExpectPlacement(**recovered, ids);

  // ... and the dedup itself is durable: a second recovery sees one copy.
  recovered->reset();
  auto again = AdeptCluster::Recover(DurableOptions(dir, 2));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_NE((*again)->shard(0).engine().Find(victim), nullptr);
  EXPECT_EQ((*again)->shard(1).engine().Find(victim), nullptr);
}

// When the durable state is damaged beyond redistribution, the error must
// name the recovered and the requested shard counts and the repair action.
TEST_F(ResizeTest, DamagedDonorShardNamesCountsAndRepairAction) {
  TempDir dir;
  {
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 4));
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*cluster)->CreateInstance("rz_proc").ok());
    }
  }
  {
    // Damage donor shard 3's WAL with a well-framed record recovery
    // cannot apply (mid-move damage stand-in).
    auto wal = WriteAheadLog::Open(dir.File("cluster.wal.shard3"));
    ASSERT_TRUE(wal.ok());
    JsonValue bogus = JsonValue::MakeObject();
    bogus.Set("t", JsonValue("not-a-record"));
    ASSERT_TRUE((*wal)->Append(bogus).ok());
    ASSERT_TRUE((*wal)->Sync(SyncMode::kFlush).ok());
  }
  auto resized = AdeptCluster::Recover(DurableOptions(dir, 2));
  ASSERT_FALSE(resized.ok());
  EXPECT_EQ(resized.status().code(), StatusCode::kCorruption);
  const std::string message = resized.status().message();
  EXPECT_NE(message.find("4 recovered shard(s)"), std::string::npos)
      << message;
  EXPECT_NE(message.find("2 requested shard(s)"), std::string::npos)
      << message;
  EXPECT_NE(message.find("repair: recover with shards=4"), std::string::npos)
      << message;
}

// A fresh Create() at paths a previous, larger cluster wrote must retire
// the surplus ".shard<k>" files and the stale org file — Recover() probes
// for both and would otherwise resurrect the dead cluster's state into
// the new one.
TEST_F(ResizeTest, CreateRetiresSurplusShardFilesAndStaleOrgFile) {
  TempDir dir;
  {  // Old 4-shard cluster: instances everywhere, org checkpointed.
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 4));
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*cluster)->CreateInstance("rz_proc").ok());
    }
    ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
  }
  ASSERT_TRUE(std::filesystem::exists(dir.File("cluster.wal.shard3")));
  ASSERT_TRUE(std::filesystem::exists(dir.File("cluster.wal.org")));

  {  // New, smaller cluster at the same paths: fresh history.
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 2));
    ASSERT_TRUE(cluster.ok());
    for (int k = 2; k < 4; ++k) {
      EXPECT_FALSE(std::filesystem::exists(
          dir.File("cluster.wal.shard" + std::to_string(k))));
      EXPECT_FALSE(std::filesystem::exists(
          dir.File("cluster.snapshot.shard" + std::to_string(k))));
    }
    EXPECT_FALSE(std::filesystem::exists(dir.File("cluster.wal.org")));
    Init(**cluster);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*cluster)->CreateInstance("rz_proc").ok());
    }
  }  // crash before any checkpoint

  auto recovered = AdeptCluster::Recover(DurableOptions(dir, 2));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // Only the new cluster's 4 instances — nothing resurrected from the old
  // 4-shard history, and no stale org restored.
  size_t live = 0;
  (*recovered)->ForEachInstance([&](const ProcessInstance&) { ++live; });
  EXPECT_EQ(live, 4u);
  EXPECT_EQ((*recovered)->org().user_count(), 0u);
}

// The historical repopulate-after-recover contract still works when the
// cluster never checkpointed (no "<wal>.org" file exists).
TEST_F(ResizeTest, RepopulatePathStillWorksWithoutOrgFile) {
  TempDir dir;
  InstanceId id;
  {
    auto cluster = AdeptCluster::Create(DurableOptions(dir, 2));
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    auto created = (*cluster)->CreateInstance("rz_proc");
    ASSERT_TRUE(created.ok());
    id = *created;
  }  // no SaveSnapshot: the org model dies with the process
  ASSERT_FALSE(std::filesystem::exists(dir.File("cluster.wal.org")));
  auto recovered = AdeptCluster::Recover(DurableOptions(dir, 2));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->org().user_count(), 0u);
  PopulateOrg(**recovered);  // same call order => same ids
  EXPECT_TRUE((*recovered)->org().UserHasRole(alice_, clerk_));
  EXPECT_EQ((*recovered)->Worklist().OffersFor(alice_).size(), 1u);
  EXPECT_NE((*recovered)->SnapshotOf(id), nullptr);
}

}  // namespace
}  // namespace adept
