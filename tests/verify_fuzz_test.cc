// Differential fuzz harness for incremental verification.
//
// The contract under test (verify/analysis.h): for any schema S, any
// applicable change transaction Delta with affected region R, the report of
// AnalyzeDelta(analysis(S), Delta(S), R) is identical to a from-scratch
// AnalyzeSchema(Delta(S)). The harness applies >= 1000 randomized change-op
// sequences — structural inserts/deletes/moves, sync edges placed legally
// and illegally, data wiring added and removed — against seeded random
// schemas, chaining the delta analyses so summary reuse compounds across
// generations, and asserts canonical-report equality at every step.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "change/change_op.h"
#include "change/delta.h"
#include "common/rng.h"
#include "model/schema.h"
#include "verify/analysis.h"
#include "verify/verifier.h"

namespace adept {
namespace {

struct SchemaParts {
  std::vector<NodeId> activities;
  std::vector<Edge> control_edges;
  std::vector<Edge> sync_edges;
  std::vector<DataId> data;
  struct Wire {
    NodeId node;
    DataId data;
    AccessMode mode;
  };
  std::vector<Wire> data_edges;
};

SchemaParts Collect(const SchemaView& schema) {
  SchemaParts parts;
  schema.VisitNodes([&](const Node& n) {
    if (n.type == NodeType::kActivity) parts.activities.push_back(n.id);
  });
  schema.VisitEdges([&](const Edge& e) {
    if (e.type == EdgeType::kControl) parts.control_edges.push_back(e);
    if (e.type == EdgeType::kSync) parts.sync_edges.push_back(e);
  });
  schema.VisitData(
      [&](const DataElement& d) { parts.data.push_back(d.id); });
  schema.VisitNodes([&](const Node& n) {
    schema.VisitDataEdges(n.id, [&](const DataEdge& de) {
      parts.data_edges.push_back({n.id, de.data, de.mode});
    });
  });
  return parts;
}

template <typename T>
const T& Pick(Rng& rng, const std::vector<T>& v) {
  return v[rng.NextBelow(v.size())];
}

// One random change op against the current schema. Structural
// preconditions may still fail at apply time (e.g. moving an activity into
// an edge the same delta removed); callers skip those ops. Illegal-but-
// applicable ops (bad sync placement, reads without writers) are the
// interesting cases: they must produce identical *findings* on both paths.
std::unique_ptr<ChangeOp> RandomOp(Rng& rng, const SchemaView& schema,
                                   const SchemaParts& parts, int salt) {
  const int roll = static_cast<int>(rng.NextBelow(12));
  switch (roll) {
    case 0:
    case 1:
    case 2: {  // serial insert, sometimes with data wiring
      NewActivitySpec spec;
      spec.name = "fz" + std::to_string(salt);
      if (!parts.data.empty() && rng.NextBelow(2) == 0) {
        spec.data_wirings.push_back({Pick(rng, parts.data),
                                     rng.NextBelow(2) == 0
                                         ? AccessMode::kRead
                                         : AccessMode::kWrite,
                                     rng.NextBelow(4) == 0});
      }
      const Edge& slot = Pick(rng, parts.control_edges);
      return std::make_unique<SerialInsertOp>(std::move(spec), slot.src,
                                              slot.dst);
    }
    case 3: {  // parallel insert
      NewActivitySpec spec;
      spec.name = "fp" + std::to_string(salt);
      const Edge& slot = Pick(rng, parts.control_edges);
      return std::make_unique<ParallelInsertOp>(std::move(spec), slot.src,
                                                slot.dst);
    }
    case 4:
      if (parts.activities.empty()) return nullptr;
      return std::make_unique<DeleteActivityOp>(Pick(rng, parts.activities));
    case 5: {  // move
      if (parts.activities.empty()) return nullptr;
      const Edge& slot = Pick(rng, parts.control_edges);
      return std::make_unique<MoveActivityOp>(Pick(rng, parts.activities),
                                              slot.src, slot.dst);
    }
    case 6: {  // sync edge between random activities (legal or not)
      if (parts.activities.size() < 2) return nullptr;
      NodeId from = Pick(rng, parts.activities);
      NodeId to = Pick(rng, parts.activities);
      if (from == to) return nullptr;
      return std::make_unique<InsertSyncEdgeOp>(from, to);
    }
    case 7:
      if (parts.sync_edges.empty()) return nullptr;
      {
        const Edge& e = Pick(rng, parts.sync_edges);
        return std::make_unique<DeleteSyncEdgeOp>(e.src, e.dst);
      }
    case 8:
      return std::make_unique<AddDataElementOp>(
          "fd" + std::to_string(salt),
          rng.NextBelow(3) == 0 ? DataType::kInt : DataType::kString);
    case 9: {  // wire existing node to existing data (often a new race)
      if (parts.activities.empty() || parts.data.empty()) return nullptr;
      return std::make_unique<AddDataEdgeOp>(
          Pick(rng, parts.activities), Pick(rng, parts.data),
          rng.NextBelow(2) == 0 ? AccessMode::kRead : AccessMode::kWrite,
          rng.NextBelow(3) == 0);
    }
    case 10: {  // unwire (often breaks a guaranteed write)
      if (parts.data_edges.empty()) return nullptr;
      const SchemaParts::Wire& w = Pick(rng, parts.data_edges);
      return std::make_unique<DeleteDataEdgeOp>(w.node, w.data, w.mode);
    }
    default:
      if (parts.activities.empty()) return nullptr;
      return std::make_unique<ReplaceActivityImplOp>(
          Pick(rng, parts.activities), "impl" + std::to_string(salt));
  }
  (void)schema;
}

// Applies `delta` to `base` the way Delta::ApplyVerified does, but keeps
// the candidate + region even when the report has errors — the harness
// compares *reports*, not just accepted schemas.
struct AppliedDelta {
  std::shared_ptr<ProcessSchema> schema;
  ChangeRegion region;
};

Result<AppliedDelta> ApplyCollectingRegion(const ProcessSchema& base,
                                           Delta& delta) {
  SchemaIdAllocator alloc;
  AppliedDelta out;
  out.schema = base.Clone();
  out.schema->set_version(base.version() + 1);
  for (const auto& op : delta.ops()) {
    op->RegionBefore(*out.schema, out.region);
    ADEPT_RETURN_IF_ERROR(op->ApplyTo(*out.schema, alloc));
    op->RegionAfter(*out.schema, out.region);
  }
  ADEPT_RETURN_IF_ERROR(out.schema->Freeze());
  return out;
}

struct FuzzStats {
  int sequences = 0;
  int divergences = 0;
  int reports_with_findings = 0;
  size_t blocks_reused = 0;
  size_t blocks_total = 0;
};

// Runs one chain: a random base schema, then `chain_len` sequential deltas
// of 1-3 ops each. The delta analysis of step k seeds step k+1, so stale
// summaries would not just fail once — they would propagate.
void RunChain(uint64_t seed, int size, int chain_len, FuzzStats& stats) {
  auto base = bench::ScaledSchema(size, seed, "fuzz" + std::to_string(seed));
  ASSERT_NE(base, nullptr);
  std::shared_ptr<ProcessSchema> current = base->Clone();
  ASSERT_TRUE(current->Freeze().ok());

  Rng rng(seed * 2654435761u + 1);
  AnalysisResult current_analysis = AnalyzeSchema(*current);
  ASSERT_TRUE(current_analysis.analysis->incremental());

  int salt = 0;
  for (int step = 0; step < chain_len; ++step) {
    SchemaParts parts = Collect(*current);
    if (parts.control_edges.empty()) break;
    Delta delta;
    const int nops = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < nops; ++i) {
      auto op = RandomOp(rng, *current, parts, ++salt);
      if (op != nullptr) delta.Add(std::move(op));
    }
    if (delta.empty()) continue;

    auto applied = ApplyCollectingRegion(*current, delta);
    if (!applied.ok()) continue;  // structural precondition failed: skip

    AnalysisResult full = AnalyzeSchema(*applied->schema);
    AnalysisResult incremental = AnalyzeDelta(
        *current_analysis.analysis, *applied->schema, applied->region);

    ++stats.sequences;
    if (!full.report.issues().empty()) ++stats.reports_with_findings;
    stats.blocks_reused += incremental.analysis->stats().blocks_reused;
    stats.blocks_total += incremental.analysis->stats().blocks_total;

    const std::string want = full.report.CanonicalString();
    const std::string got = incremental.report.CanonicalString();
    if (want != got) {
      ++stats.divergences;
      ADD_FAILURE() << "divergence at seed=" << seed << " step=" << step
                    << " delta=" << delta.Describe() << "\n--- full ---\n"
                    << want << "--- incremental ---\n"
                    << got;
      return;  // later steps would chain off a wrong analysis
    }

    // Chain: only verified schemas become the next base (matching how the
    // system only stores candidates whose report is error-free).
    if (full.report.ok()) {
      current = std::move(applied->schema);
      current_analysis = std::move(incremental);
    }
  }
}

TEST(VerifyFuzzTest, DeltaAnalysisMatchesFullAnalysis) {
  FuzzStats stats;
  uint64_t seed = 1;
  // 3 sizes x 36 seeds x 14-step chains; with skips this lands well above
  // the 1000-sequence floor.
  for (int size : {12, 35, 80}) {
    for (int s = 0; s < 36; ++s) {
      RunChain(seed++, size, 14, stats);
      if (stats.divergences > 0) break;
    }
  }
  EXPECT_GE(stats.sequences, 1000) << "fuzz volume too low to be meaningful";
  EXPECT_EQ(stats.divergences, 0);
  // The harness must exercise schemas with findings, not only clean ones.
  EXPECT_GT(stats.reports_with_findings, stats.sequences / 20);
  // And the incremental path must actually reuse summaries, or the test
  // proves nothing about invalidation.
  EXPECT_GT(stats.blocks_reused, stats.blocks_total / 4);
}

// region.full must force a from-scratch analysis even with a stale base.
TEST(VerifyFuzzTest, FullRegionIgnoresBaseAnalysis) {
  auto schema = bench::ScaledSchema(40, 99, "fullregion");
  ASSERT_NE(schema, nullptr);
  AnalysisResult base = AnalyzeSchema(*schema);

  Delta delta;
  NewActivitySpec spec;
  spec.name = "x";
  NodeId end = schema->end_node();
  NodeId last = schema->Predecessors(end, EdgeType::kControl)[0];
  delta.Add(std::make_unique<SerialInsertOp>(spec, last, end));
  auto derived = delta.ApplyRaw(*schema);
  ASSERT_TRUE(derived.ok());

  ChangeRegion full_region;
  full_region.full = true;
  AnalysisResult via_full_region =
      AnalyzeDelta(*base.analysis, **derived, full_region);
  AnalysisResult from_scratch = AnalyzeSchema(**derived);
  EXPECT_EQ(via_full_region.report.CanonicalString(),
            from_scratch.report.CanonicalString());
  EXPECT_EQ(via_full_region.analysis->stats().blocks_reused, 0u);
}

}  // namespace
}  // namespace adept
