// Read-vs-write stress for the lock-free instance read path.
//
// N reader threads hammer AdeptCluster::ReadInstance/SnapshotOf and
// WorklistService::OffersFor while writer threads run CompleteActivity
// steps (via DriveStep) and ad-hoc changes, the main thread runs a full
// type migration, and — with the writers quiesced, readers still running —
// one elastic Resize(2 -> 4). Every observed snapshot must be internally
// consistent (the redundant fields of InstanceSnapshot agree with its
// marking), per-instance progress must be monotonic, and no read may ever
// report a live instance absent or torn — including through the
// evicted-at-source / published-at-destination window of the resize.
//
// The ASan/UBSan and TSan CI jobs run this binary; the seqlock'd routing
// epoch, the striped snapshot table, and the shared_ptr'd read view are
// exactly the pieces a race would surface in.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "change/change_op.h"
#include "cluster/adept_cluster.h"
#include "model/schema_builder.h"
#include "worklist/worklist_service.h"

namespace adept {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_read_stress_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

// Loop-bearing, role-carrying process: loops make activation epochs
// meaningful for OffersFor, roles make offers exist at all.
std::shared_ptr<const ProcessSchema> StressSchema(RoleId clerk) {
  SchemaBuilder b("stress", 1);
  DataId again = b.Data("again", DataType::kBool);
  b.Activity("prepare", {.role = clerk});
  b.Loop(again, [&](SchemaBuilder& s) {
    NodeId check = s.Activity("check", {.role = clerk});
    s.Writes(check, again);
  });
  b.Activity("finish", {.role = clerk});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// The invariants every published snapshot must satisfy in isolation. A
// torn read (fields from two different mutations) breaks the redundancy
// between the lists/counters and the marking.
void ValidateSnapshot(const InstanceSnapshot& snapshot) {
  for (NodeId node : snapshot.activated_nodes) {
    EXPECT_EQ(snapshot.marking.node(node), NodeState::kActivated)
        << "activated set disagrees with marking (instance "
        << snapshot.id << ", node " << node << ")";
    const int64_t* since = snapshot.activated_since.Find(node);
    EXPECT_NE(since, nullptr)
        << "activated node missing its activation stamp (instance "
        << snapshot.id << ", node " << node << ")";
    if (since != nullptr) {
      EXPECT_LE(*since, snapshot.trace_next_sequence);
    }
  }
  for (NodeId node : snapshot.running_nodes) {
    EXPECT_EQ(snapshot.marking.node(node), NodeState::kRunning)
        << "running set disagrees with marking (instance " << snapshot.id
        << ", node " << node << ")";
  }
  uint64_t total = 0;
  for (const auto& [_, runs] : snapshot.completed_runs) total += runs;
  EXPECT_EQ(total, snapshot.completed_total)
      << "completed_runs sum torn (instance " << snapshot.id << ")";
  EXPECT_EQ(snapshot.finished,
            snapshot.marking.node(snapshot.schema->end_node()) ==
                NodeState::kCompleted)
      << "finished flag disagrees with end-node marking (instance "
      << snapshot.id << ")";
  if (snapshot.started) {
    EXPECT_GE(snapshot.trace_length, 1) << "started but empty trace";
  }
  EXPECT_GE(snapshot.trace_next_sequence, snapshot.trace_length);
}

TEST(ReadStressTest, ReadersNeverObserveTornOrLostInstances) {
  constexpr int kPopulation = 24;
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;

  TempDir dir;
  ClusterOptions options;
  options.shards = 2;
  options.wal_path = dir.File("stress.wal");
  options.snapshot_path = dir.File("stress.snapshot");
  options.sync = SyncMode::kNone;  // durability I/O is not under test here
  auto cluster = AdeptCluster::Create(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  RoleId clerk = *(*cluster)->org().AddRole("clerk");
  std::vector<UserId> users;
  for (int u = 0; u < kReaders; ++u) {
    UserId user = *(*cluster)->org().AddUser("user" + std::to_string(u));
    ASSERT_TRUE((*cluster)->org().AssignRole(user, clerk).ok());
    users.push_back(user);
  }

  auto schema = StressSchema(clerk);
  ASSERT_NE(schema, nullptr);
  auto v1 = (*cluster)->DeployProcessType(schema);
  ASSERT_TRUE(v1.ok()) << v1.status();

  std::vector<InstanceId> ids;
  for (int i = 0; i < kPopulation; ++i) {
    auto id = (*cluster)->CreateInstance("stress");
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(*id);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> pause_writers{false};
  std::atomic<int> paused_writers{0};
  std::atomic<size_t> reads_total{0};
  std::atomic<size_t> failed_reads{0};

  // --- Readers: never pause, not even during the resize ---------------------
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // Per-instance progress floor: trace_next_sequence must never go
      // backwards from this reader's point of view (it survives ad-hoc
      // changes, migration, and the cross-shard move of the resize).
      std::unordered_map<uint64_t, int64_t> floor;
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        InstanceId id = ids[i++ % ids.size()];
        Status st = (*cluster)->ReadInstance(
            id, [&](const InstanceSnapshot& snapshot) {
              ValidateSnapshot(snapshot);
              EXPECT_EQ(snapshot.id, id);
              int64_t& seen = floor[id.value()];
              EXPECT_GE(snapshot.trace_next_sequence, seen)
                  << "instance " << id << " went backwards";
              seen = snapshot.trace_next_sequence;
            });
        if (!st.ok()) failed_reads.fetch_add(1, std::memory_order_relaxed);
        reads_total.fetch_add(1, std::memory_order_relaxed);
        // The hottest worklist query rides the same lock-free path.
        if ((i & 15) == 0) {
          std::vector<WorkItem> offers =
              (*cluster)->Worklist().OffersFor(users[static_cast<size_t>(r)]);
          for (const WorkItem& item : offers) {
            EXPECT_EQ(item.state, WorkItemState::kOffered);
          }
        }
      }
    });
  }

  // --- Writers: drive steps + ad-hoc changes, pausable for the resize ------
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      SimulationDriver driver({.seed = 100 + static_cast<uint64_t>(w),
                               .loop_continue_probability = 0.8,
                               .max_loop_iterations = 1000000});
      size_t rounds = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (pause_writers.load(std::memory_order_acquire)) {
          paused_writers.fetch_add(1, std::memory_order_acq_rel);
          while (pause_writers.load(std::memory_order_acquire) &&
                 !stop.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
          }
          paused_writers.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
        // Each writer owns every kWriters-th instance: writers never race
        // each other on one instance, readers race all of them.
        for (size_t i = static_cast<size_t>(w); i < ids.size();
             i += kWriters) {
          (void)(*cluster)->DriveStep(ids[i], driver);
        }
        if (++rounds % 32 == 0) {
          // Ad-hoc change on one owned instance (may be rejected by
          // compliance depending on progress — the mutation attempt is
          // the point, not its success).
          Delta delta;
          NewActivitySpec spec;
          spec.name = "adhoc" + std::to_string(rounds);
          spec.role = clerk;
          delta.Add(std::make_unique<SerialInsertOp>(
              spec, schema->FindNodeByName("prepare"),
              schema->FindNodeByName("loop_start")));
          (void)(*cluster)->ApplyAdHocChange(ids[static_cast<size_t>(w)],
                                             std::move(delta));
        }
      }
    });
  }

  // --- Main thread: migration under load, then resize under readers --------
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Delta evolution;
  NewActivitySpec audit;
  audit.name = "audit";
  audit.role = clerk;
  evolution.Add(std::make_unique<SerialInsertOp>(
      audit, schema->FindNodeByName("prepare"),
      schema->FindNodeByName("loop_start")));
  auto v2 = (*cluster)->EvolveProcessType(*v1, std::move(evolution));
  ASSERT_TRUE(v2.ok()) << v2.status();
  auto report = (*cluster)->Migrate(*v1, *v2);
  ASSERT_TRUE(report.ok()) << report.status();

  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Resize needs writer quiescence (the documented contract); lock-free
  // readers are exempt and keep hammering throughout.
  pause_writers.store(true, std::memory_order_release);
  while (paused_writers.load(std::memory_order_acquire) < kWriters) {
    std::this_thread::yield();
  }
  ASSERT_TRUE((*cluster)->Resize(4).ok());
  EXPECT_EQ((*cluster)->shard_count(), 4u);
  pause_writers.store(false, std::memory_order_release);

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (auto& t : writers) t.join();

  // No read ever failed: the population is never deleted, so NotFound (or
  // a poisoned-topology error) at any point — including mid-resize —
  // means the read path lost an instance.
  EXPECT_EQ(failed_reads.load(), 0u);
  EXPECT_GT(reads_total.load(), 0u);

  // Post-run: the lock-free sweep sees exactly the population, every
  // snapshot valid, and every instance still readable.
  size_t swept = 0;
  (*cluster)->ForEachSnapshot([&](const InstanceSnapshot& snapshot) {
    ValidateSnapshot(snapshot);
    ++swept;
  });
  EXPECT_EQ(swept, static_cast<size_t>(kPopulation));
  for (InstanceId id : ids) {
    EXPECT_NE((*cluster)->SnapshotOf(id), nullptr);
  }
}

// Structural sharing under fire: readers RETAIN old snapshot roots (the
// COW tries share interior nodes with every later version) and keep
// re-walking them while a writer applies 10k mutations to the same
// instance and the cluster resizes underneath. Any writer mutation that
// touched a shared node in place instead of path-copying — or any
// publication that freed a node a retained root still references — is a
// use-after-free / data race this test surfaces under ASan/TSan.
TEST(ReadStressTest, RetainedSnapshotRootsSurviveMutationsAndResize) {
  constexpr int kMutations = 10000;
  constexpr int kRetained = 64;

  TempDir dir;
  ClusterOptions options;
  options.shards = 2;
  options.wal_path = dir.File("retain.wal");
  options.snapshot_path = dir.File("retain.snapshot");
  options.sync = SyncMode::kNone;
  auto cluster = AdeptCluster::Create(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();

  RoleId clerk = *(*cluster)->org().AddRole("clerk");
  auto schema = StressSchema(clerk);
  ASSERT_NE(schema, nullptr);
  ASSERT_TRUE((*cluster)->DeployProcessType(schema).ok());
  auto id = (*cluster)->CreateInstance("stress");
  ASSERT_TRUE(id.ok()) << id.status();

  NodeId prepare = schema->FindNodeByName("prepare");
  ASSERT_TRUE((*cluster)->StartActivity(*id, prepare).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> walks{0};

  // Readers keep a rolling window of old roots and fully re-walk a
  // retained snapshot's shared containers on every pass, checking the
  // walk still agrees with the snapshot's own redundant fields.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::vector<std::shared_ptr<const InstanceSnapshot>> retained;
      size_t pass = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_ptr<const InstanceSnapshot> now =
            (*cluster)->SnapshotOf(*id);
        if (now != nullptr) {
          retained.push_back(std::move(now));
          if (retained.size() > kRetained) {
            retained.erase(retained.begin());
          }
        }
        if (retained.empty()) continue;
        const InstanceSnapshot& old = *retained[pass++ % retained.size()];
        size_t nodes = 0;
        old.marking.node_states().ForEach(
            [&](NodeId, NodeState) { ++nodes; });
        EXPECT_EQ(nodes, old.marking.node_states().size());
        ValidateSnapshot(old);
        uint64_t completed = 0;
        old.completed_runs.ForEach(
            [&](NodeId, uint64_t runs) { completed += runs; });
        EXPECT_EQ(completed, old.completed_total);
        walks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: 10k suspend/resume toggles of one running activity — every
  // toggle path-copies into the marking and running-set tries that all
  // retained roots share — with a Resize() mid-stream.
  for (int i = 0; i < kMutations; ++i) {
    Status st = (i % 2 == 0) ? (*cluster)->SuspendActivity(*id, prepare)
                             : (*cluster)->ResumeActivity(*id, prepare);
    ASSERT_TRUE(st.ok()) << "mutation " << i << ": " << st;
    if (i == kMutations / 2) {
      ASSERT_TRUE((*cluster)->Resize(4).ok());
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(walks.load(), 0u);

  // The live snapshot reflects all 10k toggles (ended on "resume").
  std::shared_ptr<const InstanceSnapshot> last = (*cluster)->SnapshotOf(*id);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->marking.node(prepare), NodeState::kRunning);
}

}  // namespace
}  // namespace adept
