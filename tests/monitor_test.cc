#include <gtest/gtest.h>

#include "change/change_op.h"
#include "compliance/adhoc.h"
#include "compliance/migration.h"
#include "monitor/monitor.h"
#include "runtime/driver.h"
#include "runtime/engine.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::OnlineOrderV2;

TEST(MonitorTest, RenderSchemaShowsBlocksAndSync) {
  auto schema = OnlineOrderV2();
  std::string out = RenderSchema(*schema);
  EXPECT_NE(out.find("process 'online_order' V2"), std::string::npos);
  EXPECT_NE(out.find("AND {"), std::string::npos);
  EXPECT_NE(out.find("confirm order"), std::string::npos);
  EXPECT_NE(out.find("sync edges:"), std::string::npos);
  EXPECT_NE(out.find("send questions >> confirm order"), std::string::npos);
}

TEST(MonitorTest, RenderInstanceShowsStates) {
  auto schema = OnlineOrderV1();
  ProcessInstance inst(InstanceId(7), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId get_order = schema->FindNodeByName("get order");
  ASSERT_TRUE(inst.StartActivity(get_order).ok());
  ASSERT_TRUE(inst.CompleteActivity(get_order).ok());

  std::string out = RenderInstance(inst);
  EXPECT_NE(out.find("I7 on 'online_order' V1"), std::string::npos);
  EXPECT_NE(out.find("[Completed   ] get order"), std::string::npos);
  EXPECT_NE(out.find("[Activated   ] collect data"), std::string::npos);
  EXPECT_NE(out.find("[NotActivated] pack goods"), std::string::npos);
}

TEST(MonitorTest, DotExportWellFormed) {
  auto schema = ComplexSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  std::string dot = SchemaToDot(*schema, &inst);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // sync edge
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);  // loop edge
  EXPECT_NE(dot.find("palegreen"), std::string::npos);     // completed start
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(MonitorTest, MigrationReportRendering) {
  MigrationReport report;
  report.type_name = "online_order";
  report.from_version = 1;
  report.to_version = 2;
  report.results.push_back(
      {InstanceId(1), MigrationOutcome::kMigrated, false, ""});
  report.results.push_back({InstanceId(2),
                            MigrationOutcome::kStructuralConflict, true,
                            "deadlock-causing cycle"});
  report.results.push_back({InstanceId(3), MigrationOutcome::kStateConflict,
                            false, "'pack goods' already Running"});

  std::string out = RenderMigrationReport(report);
  EXPECT_NE(out.find("online_order V1 -> V2"), std::string::npos);
  EXPECT_NE(out.find("I1"), std::string::npos);
  EXPECT_NE(out.find("running on V2"), std::string::npos);
  EXPECT_NE(out.find("remains on V1"), std::string::npos);
  EXPECT_NE(out.find("(ad-hoc modified)"), std::string::npos);
  EXPECT_NE(out.find("deadlock-causing cycle"), std::string::npos);
  EXPECT_NE(out.find("1/3 migrated"), std::string::npos);
}

TEST(MonitorTest, MonitoringLogRecordsEvents) {
  auto schema = OnlineOrderV1();
  MonitoringLog log(100);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  inst.set_observer(&log);
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = 3});
  ASSERT_TRUE(driver.RunToCompletion(inst).ok());

  EXPECT_GT(log.transition_count(), 10u);
  EXPECT_EQ(log.finished_count(), 1u);
  EXPECT_FALSE(log.lines().empty());
  EXPECT_NE(log.DebugString().find("finished"), std::string::npos);
}

TEST(MonitorTest, MonitoringLogBounded) {
  auto schema = OnlineOrderV1();
  MonitoringLog log(5);
  for (uint64_t i = 1; i <= 4; ++i) {
    ProcessInstance inst(InstanceId(i), schema, SchemaId(1));
    inst.set_observer(&log);
    ASSERT_TRUE(inst.Start().ok());
    SimulationDriver driver({.seed = i});
    ASSERT_TRUE(driver.RunToCompletion(inst).ok());
  }
  EXPECT_LE(log.lines().size(), 5u);
  EXPECT_GT(log.transition_count(), 5u);  // counted even when evicted
}

TEST(MonitorTest, BiasedInstanceRenderedAsModified) {
  auto schema = OnlineOrderV1();
  SchemaRepository repo;
  auto schema_id = repo.Deploy(schema);
  ASSERT_TRUE(schema_id.ok());
  InstanceStore store(&repo);
  Engine engine;
  auto created = engine.CreateInstance(schema, *schema_id);
  ASSERT_TRUE(created.ok());
  ProcessInstance* inst = *created;
  ASSERT_TRUE(store.Register(inst->id(), *schema_id).ok());
  ASSERT_TRUE(inst->Start().ok());

  Delta delta;
  NewActivitySpec spec;
  spec.name = "phone check";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, schema->FindNodeByName("get order"),
      schema->FindNodeByName("collect data")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store, std::move(delta)).ok());

  std::string out = RenderInstance(*inst);
  EXPECT_NE(out.find("(ad-hoc modified)"), std::string::npos);
  EXPECT_NE(out.find("phone check"), std::string::npos);
}

}  // namespace
}  // namespace adept
