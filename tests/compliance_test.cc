#include <gtest/gtest.h>

#include "change/change_op.h"
#include "compliance/adhoc.h"
#include "compliance/conditions.h"
#include "compliance/conflicts.h"
#include "compliance/migration.h"
#include "compliance/replay.h"
#include "runtime/driver.h"
#include "runtime/engine.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"
#include "tests/test_fixtures.h"
#include "verify/verifier.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;
using testing_fixtures::XorSchema;

Status Execute(ProcessInstance& i, NodeId node) {
  ADEPT_RETURN_IF_ERROR(i.StartActivity(node));
  return i.CompleteActivity(node);
}

Status ExecuteByName(ProcessInstance& i, const std::string& name) {
  NodeId node = i.schema().FindNodeByName(name);
  if (!node.valid()) return Status::NotFound(name);
  return Execute(i, node);
}

// A full ADEPT system: engine + repository + store + migration manager.
class ComplianceSystem : public ::testing::Test {
 protected:
  void SetUp() override {
    v1_ = OnlineOrderV1();
    auto id = repo_.Deploy(v1_);
    ASSERT_TRUE(id.ok());
    v1_id_ = *id;
  }

  ProcessInstance* NewInstance() {
    auto created = engine_.CreateInstance(v1_, v1_id_);
    EXPECT_TRUE(created.ok());
    EXPECT_TRUE(store_.Register((*created)->id(), v1_id_).ok());
    EXPECT_TRUE((*created)->Start().ok());
    return *created;
  }

  // The paper's Delta-T: serialInsert("send questions", compose order ->
  // and_join) + insertSyncEdge(send questions -> confirm order). Applied to
  // a probe first so the sync edge can reference the pinned new node. With
  // `as_bias` the probe pins instance-range ids (how a user would build the
  // same change ad hoc).
  Delta MakeTypeChange(bool as_bias = false) {
    NodeId compose = v1_->FindNodeByName("compose order");
    NodeId confirm = v1_->FindNodeByName("confirm order");
    NodeId join = v1_->FindNodeByName("and_join");
    Delta probe;
    NewActivitySpec spec;
    spec.name = "send questions";
    auto* op = probe.Add(std::make_unique<SerialInsertOp>(spec, compose, join));
    BiasIdAllocator bias_alloc;
    auto applied = probe.ApplyToSchema(*v1_, v1_->version(),
                                       as_bias ? &bias_alloc : nullptr);
    EXPECT_TRUE(applied.ok()) << applied.status();
    NodeId send_q = static_cast<SerialInsertOp*>(op)->inserted_node();

    Delta delta;
    delta.Add(op->Clone());
    delta.Add(std::make_unique<InsertSyncEdgeOp>(send_q, confirm));
    return delta;
  }

  SchemaId DeriveV2() {
    auto v2 = repo_.DeriveVersion(v1_id_, MakeTypeChange());
    EXPECT_TRUE(v2.ok()) << v2.status();
    return *v2;
  }

  Engine engine_;
  SchemaRepository repo_;
  InstanceStore store_{&repo_};
  MigrationManager manager_{&engine_, &repo_, &store_};
  std::shared_ptr<const ProcessSchema> v1_;
  SchemaId v1_id_;
};

// ---------------------------------------------------------------------------
// Per-operation conditions
// ---------------------------------------------------------------------------

TEST_F(ComplianceSystem, SerialInsertConditionDependsOnSuccessorState) {
  ProcessInstance* inst = NewInstance();
  NodeId get_order = v1_->FindNodeByName("get order");
  NodeId collect = v1_->FindNodeByName("collect data");

  NewActivitySpec spec;
  spec.name = "x";
  SerialInsertOp op(spec, get_order, collect);

  // Before collect data starts: compliant.
  EXPECT_TRUE(CheckOpStateCondition(*inst, op).compliant);

  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  EXPECT_TRUE(CheckOpStateCondition(*inst, op).compliant);  // Activated is ok

  ASSERT_TRUE(inst->StartActivity(collect).ok());
  EXPECT_FALSE(CheckOpStateCondition(*inst, op).compliant);  // Running

  ASSERT_TRUE(inst->CompleteActivity(collect).ok());
  EXPECT_FALSE(CheckOpStateCondition(*inst, op).compliant);  // Completed
}

TEST_F(ComplianceSystem, DeleteConditionRejectsStartedActivity) {
  ProcessInstance* inst = NewInstance();
  NodeId get_order = v1_->FindNodeByName("get order");
  DeleteActivityOp op(get_order);
  EXPECT_TRUE(CheckOpStateCondition(*inst, op).compliant);
  ASSERT_TRUE(inst->StartActivity(get_order).ok());
  EXPECT_FALSE(CheckOpStateCondition(*inst, op).compliant);
}

TEST_F(ComplianceSystem, SyncEdgeConditionUsesTraceWitness) {
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());
  NodeId confirm = v1_->FindNodeByName("confirm order");
  NodeId compose = v1_->FindNodeByName("compose order");

  // Complete confirm first, then compose.
  ASSERT_TRUE(Execute(*inst, confirm).ok());
  ASSERT_TRUE(Execute(*inst, compose).ok());

  // confirm -> compose: confirm completed before compose started: witness ok.
  InsertSyncEdgeOp ok_edge(confirm, compose);
  EXPECT_TRUE(CheckOpStateCondition(*inst, ok_edge).compliant);

  // compose -> confirm: compose completed only after confirm started.
  InsertSyncEdgeOp bad_edge(compose, confirm);
  EXPECT_FALSE(CheckOpStateCondition(*inst, bad_edge).compliant);
}

TEST_F(ComplianceSystem, BranchInsertAlwaysCompliant) {
  auto xor_schema = XorSchema();
  auto xid = repo_.Deploy(xor_schema);
  ASSERT_TRUE(xid.ok());
  auto created = engine_.CreateInstance(xor_schema, *xid);
  ASSERT_TRUE(created.ok());
  ProcessInstance* inst = *created;
  ASSERT_TRUE(inst->Start().ok());
  SimulationDriver driver({.seed = 5});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());

  NewActivitySpec spec;
  spec.name = "late branch";
  BranchInsertOp op(spec, xor_schema->FindNodeByName("xor_split"), 9);
  EXPECT_TRUE(CheckOpStateCondition(*inst, op).compliant);
}

// ---------------------------------------------------------------------------
// Ad-hoc changes
// ---------------------------------------------------------------------------

TEST_F(ComplianceSystem, AdHocInsertExecutes) {
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());

  Delta delta;
  NewActivitySpec spec;
  spec.name = "call customer";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("collect data"),
      v1_->FindNodeByName("and_split")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store_, std::move(delta)).ok());

  EXPECT_TRUE(inst->biased());
  EXPECT_TRUE(store_.IsBiased(inst->id()));
  EXPECT_TRUE(inst->schema().FindNodeByName("call customer").valid());

  // The inserted activity becomes executable at its position.
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());
  auto ready = inst->ActivatedActivities();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], inst->schema().FindNodeByName("call customer"));

  SimulationDriver driver({.seed = 17});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
  EXPECT_TRUE(inst->Finished());
}

TEST_F(ComplianceSystem, AdHocChangeRejectedOnStateCondition) {
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());

  Delta delta;
  NewActivitySpec spec;
  spec.name = "too late";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("get order"),
      v1_->FindNodeByName("collect data")));
  Status st = ApplyAdHocChange(*inst, store_, std::move(delta));
  EXPECT_EQ(st.code(), StatusCode::kNotCompliant);
  EXPECT_FALSE(inst->biased());
}

TEST_F(ComplianceSystem, AdHocChangeRejectedOnVerification) {
  ProcessInstance* inst = NewInstance();
  Delta delta;
  delta.Add(std::make_unique<InsertSyncEdgeOp>(
      v1_->FindNodeByName("get order"), v1_->FindNodeByName("collect data")));
  Status st = ApplyAdHocChange(*inst, store_, std::move(delta));
  EXPECT_EQ(st.code(), StatusCode::kVerificationFailed);
  EXPECT_FALSE(inst->biased());
}

TEST_F(ComplianceSystem, AdHocDeleteSkipsActivity) {
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());

  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(
      v1_->FindNodeByName("collect data")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store_, std::move(delta)).ok());
  EXPECT_EQ(inst->schema().FindNode(v1_->FindNodeByName("collect data")),
            nullptr);
  // Control flow bridges straight to the parallel block.
  EXPECT_EQ(inst->node_state(v1_->FindNodeByName("confirm order")),
            NodeState::kActivated);
}

TEST_F(ComplianceSystem, AdHocSyncEdgeDemotesActivatedTarget) {
  // Inserting a sync edge whose target is already Activated must demote it
  // back to NotActivated (the paper's automatic state adaptation).
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());
  NodeId confirm = v1_->FindNodeByName("confirm order");
  NodeId compose = v1_->FindNodeByName("compose order");
  ASSERT_EQ(inst->node_state(confirm), NodeState::kActivated);

  Delta delta;
  delta.Add(std::make_unique<InsertSyncEdgeOp>(compose, confirm));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store_, std::move(delta)).ok());

  EXPECT_EQ(inst->node_state(confirm), NodeState::kNotActivated);
  ASSERT_TRUE(Execute(*inst, compose).ok());
  EXPECT_EQ(inst->node_state(confirm), NodeState::kActivated);
}

// ---------------------------------------------------------------------------
// Fig. 1 / Fig. 3: end-to-end migration
// ---------------------------------------------------------------------------

TEST_F(ComplianceSystem, Fig1MigrationScenario) {
  // I1: progressed past "collect data"; both branch activities activated.
  ProcessInstance* i1 = NewInstance();
  ASSERT_TRUE(ExecuteByName(*i1, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*i1, "collect data").ok());

  // I2: ad-hoc modified with the opposite sync edge (confirm -> compose).
  ProcessInstance* i2 = NewInstance();
  {
    Delta bias;
    bias.Add(std::make_unique<InsertSyncEdgeOp>(
        v1_->FindNodeByName("confirm order"),
        v1_->FindNodeByName("compose order")));
    ASSERT_TRUE(ApplyAdHocChange(*i2, store_, std::move(bias)).ok());
  }

  // I3: already past the parallel block: state-related conflict.
  ProcessInstance* i3 = NewInstance();
  ASSERT_TRUE(ExecuteByName(*i3, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*i3, "collect data").ok());
  ASSERT_TRUE(ExecuteByName(*i3, "confirm order").ok());
  ASSERT_TRUE(ExecuteByName(*i3, "compose order").ok());

  SchemaId v2_id = DeriveV2();
  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 3u);

  auto outcome_of = [&](InstanceId id) {
    for (const auto& r : report->results) {
      if (r.id == id) return r;
    }
    return InstanceMigrationResult{};
  };
  EXPECT_EQ(outcome_of(i1->id()).outcome, MigrationOutcome::kMigrated);
  auto r2 = outcome_of(i2->id());
  EXPECT_EQ(r2.outcome, MigrationOutcome::kStructuralConflict);
  EXPECT_NE(r2.detail.find("deadlock"), std::string::npos) << r2.detail;
  EXPECT_EQ(outcome_of(i3->id()).outcome, MigrationOutcome::kStateConflict);
  EXPECT_EQ(report->MigratedTotal(), 1u);

  // I1 now runs on V2; the sync edge gates "confirm order" behind
  // "send questions" (Fig. 1's adapted instance I1 on S').
  EXPECT_EQ(i1->schema().version(), 2);
  NodeId send_q = i1->schema().FindNodeByName("send questions");
  ASSERT_TRUE(send_q.valid());
  EXPECT_EQ(i1->node_state(i1->schema().FindNodeByName("confirm order")),
            NodeState::kNotActivated);
  EXPECT_EQ(i1->node_state(i1->schema().FindNodeByName("compose order")),
            NodeState::kActivated);

  // I2/I3 stay on V1 and still complete.
  EXPECT_EQ(i2->schema().version(), 1);
  EXPECT_EQ(i3->schema().version(), 1);
  SimulationDriver driver({.seed = 23});
  ASSERT_TRUE(driver.RunToCompletion(*i1).ok());
  ASSERT_TRUE(driver.RunToCompletion(*i2).ok());
  ASSERT_TRUE(driver.RunToCompletion(*i3).ok());

  // On V2 the trace of I1 must show send questions before confirm order.
  int64_t sq = i1->trace().LastCompletionSeq(send_q);
  int64_t co =
      i1->trace().LastStartSeq(i1->schema().FindNodeByName("confirm order"));
  EXPECT_GE(co, 0);
  EXPECT_LT(sq, co);
  EXPECT_GT(sq, 0);
}

TEST_F(ComplianceSystem, MigrationWithReplayCheckerAgrees) {
  ProcessInstance* compliant = NewInstance();
  ASSERT_TRUE(ExecuteByName(*compliant, "get order").ok());

  ProcessInstance* conflicting = NewInstance();
  ASSERT_TRUE(ExecuteByName(*conflicting, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*conflicting, "collect data").ok());
  ASSERT_TRUE(ExecuteByName(*conflicting, "confirm order").ok());
  ASSERT_TRUE(ExecuteByName(*conflicting, "compose order").ok());

  SchemaId v2_id = DeriveV2();
  MigrationOptions options;
  options.use_replay_checker = true;
  options.verify_adaptation_with_replay = true;
  auto report = manager_.MigrateAll(v1_id_, v2_id, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 2u);
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated);
  EXPECT_EQ(report->results[1].outcome, MigrationOutcome::kStateConflict);
}

TEST_F(ComplianceSystem, FinishedInstancesStayBehind) {
  ProcessInstance* done = NewInstance();
  SimulationDriver driver({.seed = 31});
  ASSERT_TRUE(driver.RunToCompletion(*done).ok());

  SchemaId v2_id = DeriveV2();
  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results.size(), 1u);
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kFinishedSkipped);
  EXPECT_EQ(done->schema().version(), 1);
}

TEST_F(ComplianceSystem, DryRunClassifiesWithoutModifying) {
  ProcessInstance* inst = NewInstance();
  SchemaId v2_id = DeriveV2();
  MigrationOptions options;
  options.dry_run = true;
  auto report = manager_.MigrateAll(v1_id_, v2_id, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kMigrated);
  // Nothing actually changed.
  EXPECT_EQ(inst->schema().version(), 1);
  auto record = store_.Get(inst->id());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ((*record)->base_schema, v1_id_);
}

TEST_F(ComplianceSystem, DisjointBiasMigratesAndKeepsBias) {
  ProcessInstance* inst = NewInstance();
  Delta bias;
  NewActivitySpec spec;
  spec.name = "gift wrap";
  bias.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("pack goods"),
      v1_->FindNodeByName("deliver goods")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store_, std::move(bias)).ok());
  NodeId gift_wrap = inst->schema().FindNodeByName("gift wrap");

  SchemaId v2_id = DeriveV2();
  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->results.size(), 1u);
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kMigratedBiased);

  // Both the type change and the preserved bias are visible; ids stable.
  EXPECT_TRUE(inst->schema().FindNodeByName("send questions").valid());
  EXPECT_EQ(inst->schema().FindNodeByName("gift wrap"), gift_wrap);
  EXPECT_TRUE(inst->biased());

  SimulationDriver driver({.seed = 37});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
}

TEST_F(ComplianceSystem, EquivalentBiasIsCancelled) {
  // The user applied exactly the upcoming type change ad hoc.
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(
      ApplyAdHocChange(*inst, store_, MakeTypeChange(/*as_bias=*/true)).ok());
  NodeId adhoc_send_q = inst->schema().FindNodeByName("send questions");
  ASSERT_TRUE(adhoc_send_q.valid());
  EXPECT_GE(adhoc_send_q.value(), kBiasIdBase);

  // Execute into the changed region so the remap has real state to carry.
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "compose order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "send questions").ok());
  EXPECT_EQ(inst->node_state(inst->schema().FindNodeByName("confirm order")),
            NodeState::kActivated);

  SchemaId v2_id = DeriveV2();
  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->results.size(), 1u);
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kBiasCancelled)
      << report->results[0].detail;

  // Instance is unbiased on V2 now; the completed ad-hoc activity's state
  // was remapped onto the type-level node id.
  EXPECT_FALSE(inst->biased());
  EXPECT_FALSE(store_.IsBiased(inst->id()));
  EXPECT_EQ(inst->schema().version(), 2);
  NodeId type_send_q = inst->schema().FindNodeByName("send questions");
  ASSERT_TRUE(type_send_q.valid());
  EXPECT_LT(type_send_q.value(), kBiasIdBase);
  EXPECT_EQ(inst->node_state(type_send_q), NodeState::kCompleted);

  SimulationDriver driver({.seed = 41});
  ASSERT_TRUE(driver.RunToCompletion(*inst).ok());
}

TEST_F(ComplianceSystem, PartialOverlapIsSemanticConflict) {
  ProcessInstance* inst = NewInstance();
  // Bias shares one op with Delta-T (the sync edge target differs, so the
  // serial insert matches but the rest does not).
  Delta bias = MakeTypeChange();
  Delta partial;
  partial.Add(bias.ops()[0]->Clone());  // only the serial insert
  NewActivitySpec extra;
  extra.name = "own extra";
  partial.Add(std::make_unique<SerialInsertOp>(
      extra, v1_->FindNodeByName("get order"),
      v1_->FindNodeByName("collect data")));
  ASSERT_TRUE(ApplyAdHocChange(*inst, store_, std::move(partial)).ok());

  SchemaId v2_id = DeriveV2();
  auto report = manager_.MigrateAll(v1_id_, v2_id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->results[0].outcome, MigrationOutcome::kSemanticConflict);
  EXPECT_EQ(inst->schema().version(), 1);
}

// ---------------------------------------------------------------------------
// Overlap analysis unit tests
// ---------------------------------------------------------------------------

TEST_F(ComplianceSystem, OverlapClassification) {
  Delta dt = MakeTypeChange();
  (void)dt.ApplyToSchema(*v1_);

  // Equivalent: structurally identical delta, different pins.
  Delta di = MakeTypeChange(/*as_bias=*/true);
  EXPECT_EQ(AnalyzeOverlap(dt, di), OverlapKind::kEquivalent);

  // Disjoint.
  Delta other;
  NewActivitySpec spec;
  spec.name = "elsewhere";
  other.Add(std::make_unique<SerialInsertOp>(
      spec, v1_->FindNodeByName("get order"),
      v1_->FindNodeByName("collect data")));
  EXPECT_EQ(AnalyzeOverlap(dt, other), OverlapKind::kDisjoint);

  // Type change subsumes the bias.
  Delta subset;
  subset.Add(di.ops()[0]->Clone());
  subset.Add(di.ops()[1]->Clone());
  (void)subset;
  Delta bigger = MakeTypeChange();
  (void)bigger.ApplyToSchema(*v1_);
  bigger.Add(std::make_unique<DeleteActivityOp>(
      v1_->FindNodeByName("deliver goods")));
  EXPECT_EQ(AnalyzeOverlap(bigger, subset), OverlapKind::kSubsumesInstance);
  EXPECT_EQ(AnalyzeOverlap(subset, bigger), OverlapKind::kSubsumedByInstance);
}

TEST_F(ComplianceSystem, BiasCancellationMappingPairsPins) {
  Delta dt = MakeTypeChange();
  (void)dt.ApplyToSchema(*v1_);
  Delta di = MakeTypeChange(/*as_bias=*/true);
  // The bias is pinned by its (ad-hoc) application, as in the real flow.
  BiasIdAllocator alloc;
  (void)di.ApplyToSchema(*v1_, v1_->version(), &alloc);

  auto mapping = BuildBiasCancellationMapping(dt, di);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  ASSERT_EQ(mapping->nodes.size(), 1u);
  for (const auto& [from, to] : mapping->nodes) {
    EXPECT_GE(from.value(), kBiasIdBase);
    EXPECT_LT(to.value(), kBiasIdBase);
  }
}

// ---------------------------------------------------------------------------
// Replay checker
// ---------------------------------------------------------------------------

TEST_F(ComplianceSystem, ReplayProducesAdaptedMarking) {
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());

  Delta dt = MakeTypeChange();
  auto v2 = dt.ApplyToSchema(*v1_);
  ASSERT_TRUE(v2.ok());

  ReplayResult rr = CheckComplianceByReplay(*inst, *v2);
  ASSERT_TRUE(rr.compliant) << rr.reason;
  // In the adapted marking: compose order activated, confirm order held
  // back by the new sync edge.
  EXPECT_EQ(rr.adapted_marking.node((*v2)->FindNodeByName("compose order")),
            NodeState::kActivated);
  EXPECT_EQ(rr.adapted_marking.node((*v2)->FindNodeByName("confirm order")),
            NodeState::kNotActivated);
  EXPECT_EQ(rr.adapted_marking.node((*v2)->FindNodeByName("send questions")),
            NodeState::kNotActivated);
}

TEST_F(ComplianceSystem, ReplayDetectsOrderViolation) {
  ProcessInstance* inst = NewInstance();
  ASSERT_TRUE(ExecuteByName(*inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "collect data").ok());
  ASSERT_TRUE(ExecuteByName(*inst, "confirm order").ok());

  Delta dt = MakeTypeChange();
  auto v2 = dt.ApplyToSchema(*v1_);
  ASSERT_TRUE(v2.ok());

  ReplayResult rr = CheckComplianceByReplay(*inst, *v2);
  EXPECT_FALSE(rr.compliant);
}

// Property: across random instances and random change operations, the
// optimized per-op conditions never accept an instance the general replay
// criterion rejects (soundness). For the core control-flow operations they
// also agree exactly unless the anchor is in a skipped region (where the
// paper's conditions are deliberately conservative).
TEST(CompliancePropertyTest, ConditionsSoundWrtReplay) {
  auto base = ComplexSchema();
  ASSERT_NE(base, nullptr);
  Rng rng(777);
  int checked = 0;

  for (int round = 0; round < 120; ++round) {
    ProcessInstance inst(InstanceId(static_cast<uint64_t>(round + 1)), base,
                         SchemaId(1));
    ASSERT_TRUE(inst.Start().ok());
    SimulationDriver driver({.seed = static_cast<uint64_t>(round * 13 + 1)});
    ASSERT_TRUE(driver.RunToProgress(inst, rng.NextDouble()).ok());

    // Random candidate op.
    std::vector<const Edge*> control_edges;
    std::vector<NodeId> activities;
    base->VisitEdges([&](const Edge& e) {
      if (e.type == EdgeType::kControl) {
        control_edges.push_back(base->FindEdge(e.id));
      }
    });
    base->VisitNodes([&](const Node& n) {
      if (n.type == NodeType::kActivity) activities.push_back(n.id);
    });

    Delta delta;
    switch (rng.NextBelow(4)) {
      case 0: {
        const Edge* e = control_edges[rng.NextIndex(control_edges.size())];
        NewActivitySpec spec;
        spec.name = "p" + std::to_string(round);
        delta.Add(std::make_unique<SerialInsertOp>(spec, e->src, e->dst));
        break;
      }
      case 1: {
        delta.Add(std::make_unique<DeleteActivityOp>(
            activities[rng.NextIndex(activities.size())]));
        break;
      }
      case 2: {
        NodeId from = activities[rng.NextIndex(activities.size())];
        NodeId to = activities[rng.NextIndex(activities.size())];
        delta.Add(std::make_unique<InsertSyncEdgeOp>(from, to));
        break;
      }
      default: {
        NodeId target = activities[rng.NextIndex(activities.size())];
        delta.Add(std::make_unique<ReplaceActivityImplOp>(target, "v2"));
        break;
      }
    }

    // Structural application must succeed for the comparison to make sense.
    BiasIdAllocator alloc;
    auto candidate = delta.ApplyToSchema(*base, base->version(), &alloc);
    if (!candidate.ok()) continue;

    ConditionResult cond = CheckStateConditions(inst, delta);
    ReplayResult rr = CheckComplianceByReplay(inst, *candidate);
    ++checked;

    if (cond.compliant) {
      EXPECT_TRUE(rr.compliant)
          << "round " << round << ": conditions accepted ["
          << delta.Describe() << "] but replay rejected: " << rr.reason
          << "\ntrace:\n"
          << inst.trace().DebugString();
    }
  }
  EXPECT_GT(checked, 40);
}

// Property: after a condition-approved migration, the engine's marking
// re-evaluation and the replay oracle produce the same adapted marking.
TEST(CompliancePropertyTest, StateAdaptationMatchesReplayOracle) {
  auto base = OnlineOrderV1();
  SchemaRepository repo;
  auto v1_id = repo.Deploy(base);
  ASSERT_TRUE(v1_id.ok());

  // Type change: move "pack goods" insertion point around; use a simple
  // serial insert at a varying edge per round.
  std::vector<std::pair<std::string, std::string>> spots = {
      {"get order", "collect data"},
      {"collect data", "and_split"},
      {"and_join", "pack goods"},
      {"pack goods", "deliver goods"},
  };

  int migrated = 0;
  for (size_t spot = 0; spot < spots.size(); ++spot) {
    SchemaRepository local_repo;
    auto local_v1 = local_repo.Deploy(base);
    ASSERT_TRUE(local_v1.ok());
    Engine engine;
    InstanceStore store(&local_repo);
    MigrationManager manager(&engine, &local_repo, &store);

    Delta dt;
    NewActivitySpec spec;
    spec.name = "ins" + std::to_string(spot);
    dt.Add(std::make_unique<SerialInsertOp>(
        spec, base->FindNodeByName(spots[spot].first),
        base->FindNodeByName(spots[spot].second)));
    auto v2_id = local_repo.DeriveVersion(*local_v1, std::move(dt));
    ASSERT_TRUE(v2_id.ok());

    for (uint64_t seed = 1; seed <= 12; ++seed) {
      auto created = engine.CreateInstance(base, *local_v1);
      ASSERT_TRUE(created.ok());
      ASSERT_TRUE(store.Register((*created)->id(), *local_v1).ok());
      ASSERT_TRUE((*created)->Start().ok());
      SimulationDriver driver({.seed = seed});
      ASSERT_TRUE(
          driver.RunToProgress(**created, (seed % 10) / 10.0).ok());
    }

    MigrationOptions options;
    options.verify_adaptation_with_replay = true;  // oracle cross-check
    auto report = manager.MigrateAll(*local_v1, *v2_id, options);
    ASSERT_TRUE(report.ok()) << report.status();
    for (const auto& r : report->results) {
      EXPECT_NE(r.outcome, MigrationOutcome::kError) << r.detail;
      if (r.outcome == MigrationOutcome::kMigrated) ++migrated;
    }
  }
  EXPECT_GT(migrated, 10);
}

}  // namespace
}  // namespace adept
