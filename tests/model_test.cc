#include <gtest/gtest.h>

#include <algorithm>

#include "model/block_tree.h"
#include "model/schema.h"
#include "model/schema_builder.h"
#include "model/serialization.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::LoopSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::OnlineOrderV2;
using testing_fixtures::SequenceSchema;
using testing_fixtures::XorSchema;

TEST(SchemaTest, BuilderProducesFrozenSchema) {
  auto schema = OnlineOrderV1();
  ASSERT_NE(schema, nullptr);
  EXPECT_TRUE(schema->frozen());
  EXPECT_EQ(schema->type_name(), "online_order");
  EXPECT_EQ(schema->version(), 1);
  // start, 4 activities + 2 in parallel, and split/join, end = 10 nodes.
  EXPECT_EQ(schema->node_count(), 10u);
  EXPECT_TRUE(schema->FindNodeByName("pack goods").valid());
  EXPECT_FALSE(schema->FindNodeByName("no such").valid());
}

TEST(SchemaTest, MutationAfterFreezeRejected) {
  auto schema = OnlineOrderV1();
  auto clone = schema->Clone();  // mutable again
  EXPECT_FALSE(clone->frozen());
  Node extra;
  extra.type = NodeType::kActivity;
  extra.name = "extra";
  EXPECT_TRUE(clone->AddNode(extra).ok());

  // The original stays frozen and immutable.
  auto frozen = std::const_pointer_cast<ProcessSchema>(schema);
  EXPECT_EQ(frozen->AddNode(extra).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SchemaTest, CloneKeepsIdsStable) {
  auto schema = OnlineOrderV1();
  NodeId pack = schema->FindNodeByName("pack goods");
  auto clone = schema->Clone();
  ASSERT_TRUE(clone->Freeze().ok());
  EXPECT_EQ(clone->FindNodeByName("pack goods"), pack);
  EXPECT_EQ(clone->next_node_id(), schema->next_node_id());
}

TEST(SchemaTest, RemoveNodeDropsIncidentEdges) {
  auto schema = SequenceSchema(3)->Clone();
  NodeId a2 = schema->FindNodeByName("a2");
  ASSERT_TRUE(a2.valid());
  size_t edges_before = schema->edge_count();
  ASSERT_TRUE(schema->RemoveNode(a2).ok());
  EXPECT_EQ(schema->edge_count(), edges_before - 2);
  EXPECT_EQ(schema->FindNode(a2), nullptr);
  // Freeze fails gracefully? No: freeze succeeds (graph is just split);
  // the verifier rejects it later.
  EXPECT_TRUE(schema->Freeze().ok());
}

TEST(SchemaTest, DeletedIdsAreNotReused) {
  auto schema = SequenceSchema(3)->Clone();
  NodeId a2 = schema->FindNodeByName("a2");
  uint32_t next_before = schema->next_node_id();
  ASSERT_TRUE(schema->RemoveNode(a2).ok());
  Node fresh;
  fresh.type = NodeType::kActivity;
  fresh.name = "fresh";
  auto id = schema->AddNode(fresh);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id->value(), next_before);
  EXPECT_NE(*id, a2);
}

TEST(SchemaTest, FreezeRejectsMissingStartOrEnd) {
  ProcessSchema s("broken", 1);
  Node a;
  a.type = NodeType::kActivity;
  a.name = "a";
  ASSERT_TRUE(s.AddNode(a).ok());
  EXPECT_EQ(s.Freeze().code(), StatusCode::kVerificationFailed);
}

TEST(SchemaTest, FreezeRejectsDuplicateStart) {
  ProcessSchema s("broken", 1);
  Node start;
  start.type = NodeType::kStartFlow;
  ASSERT_TRUE(s.AddNode(start).ok());
  ASSERT_TRUE(s.AddNode(start).ok());
  Node end;
  end.type = NodeType::kEndFlow;
  ASSERT_TRUE(s.AddNode(end).ok());
  EXPECT_EQ(s.Freeze().code(), StatusCode::kVerificationFailed);
}

TEST(SchemaViewTest, SuccessorsAndPredecessors) {
  auto schema = OnlineOrderV1();
  NodeId get_order = schema->FindNodeByName("get order");
  NodeId collect = schema->FindNodeByName("collect data");
  EXPECT_EQ(schema->ControlSuccessor(get_order), collect);
  EXPECT_EQ(schema->ControlPredecessor(collect), get_order);

  NodeId split = schema->FindNodeByName("and_split");
  auto branches = schema->Successors(split, EdgeType::kControl);
  EXPECT_EQ(branches.size(), 2u);
  EXPECT_FALSE(schema->ControlSuccessor(split).valid());  // ambiguous
}

TEST(SchemaViewTest, ReachabilityByControl) {
  auto schema = OnlineOrderV1();
  NodeId get_order = schema->FindNodeByName("get order");
  NodeId pack = schema->FindNodeByName("pack goods");
  NodeId confirm = schema->FindNodeByName("confirm order");
  NodeId compose = schema->FindNodeByName("compose order");
  EXPECT_TRUE(schema->ReachableByControl(get_order, pack));
  EXPECT_FALSE(schema->ReachableByControl(pack, get_order));
  EXPECT_FALSE(schema->ReachableByControl(confirm, compose));
  EXPECT_FALSE(schema->ReachableByControl(compose, confirm));
}

TEST(SchemaViewTest, TopologicalOrderRespectsEdges) {
  auto schema = ComplexSchema();
  ASSERT_NE(schema, nullptr);
  auto order = schema->TopologicalOrder();
  EXPECT_EQ(order.size(), schema->node_count());
  std::unordered_map<NodeId, size_t> pos;
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  schema->VisitEdges([&](const Edge& e) {
    if (e.type == EdgeType::kControl) {
      EXPECT_LT(pos[e.src], pos[e.dst]);
    }
  });
}

TEST(SchemaViewTest, TopoRankAvailableAfterFreeze) {
  auto schema = OnlineOrderV1();
  auto rank_start = schema->TopoRank(schema->start_node());
  auto rank_end = schema->TopoRank(schema->end_node());
  ASSERT_TRUE(rank_start.ok());
  ASSERT_TRUE(rank_end.ok());
  EXPECT_EQ(*rank_start, 0);
  EXPECT_EQ(static_cast<size_t>(*rank_end), schema->node_count() - 1);
}

TEST(BlockTreeTest, ParsesSequence) {
  auto schema = SequenceSchema(4);
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok()) << tree.status();
  const BlockTree& t = **tree;
  EXPECT_EQ(t.root().kind, BlockTree::BlockKind::kRoot);
  EXPECT_EQ(t.root().sequence.size(), 6u);  // start, a1..a4, end
  EXPECT_EQ(t.size(), 1u);
}

TEST(BlockTreeTest, ParsesParallelBlock) {
  auto schema = OnlineOrderV1();
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok());
  const BlockTree& t = **tree;
  // root + parallel + 2 branches
  EXPECT_EQ(t.size(), 4u);
  NodeId split = schema->FindNodeByName("and_split");
  NodeId join = schema->FindNodeByName("and_join");
  auto exit = t.MatchingExit(split);
  ASSERT_TRUE(exit.ok());
  EXPECT_EQ(*exit, join);
  auto entry = t.MatchingEntry(join);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(*entry, split);
}

TEST(BlockTreeTest, ParallelBranchDetection) {
  auto schema = OnlineOrderV2();
  ASSERT_NE(schema, nullptr);
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok());
  NodeId confirm = schema->FindNodeByName("confirm order");
  NodeId compose = schema->FindNodeByName("compose order");
  NodeId send_q = schema->FindNodeByName("send questions");
  NodeId pack = schema->FindNodeByName("pack goods");
  EXPECT_TRUE((*tree)->InDifferentParallelBranches(confirm, compose));
  EXPECT_TRUE((*tree)->InDifferentParallelBranches(send_q, confirm));
  EXPECT_FALSE((*tree)->InDifferentParallelBranches(compose, send_q));
  EXPECT_FALSE((*tree)->InDifferentParallelBranches(confirm, pack));
}

TEST(BlockTreeTest, LoopBlockAndMembership) {
  auto schema = LoopSchema();
  ASSERT_NE(schema, nullptr);
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok()) << tree.status();
  NodeId check = schema->FindNodeByName("check");
  NodeId prepare = schema->FindNodeByName("prepare");
  int loop = (*tree)->InnermostLoop(check);
  EXPECT_GE(loop, 0);
  EXPECT_EQ((*tree)->InnermostLoop(prepare), -1);
  auto nodes = (*tree)->NodesIn(loop);
  // loop start + check + loop end
  EXPECT_EQ(nodes.size(), 3u);
}

TEST(BlockTreeTest, NestedBlocksParse) {
  auto schema = ComplexSchema();
  ASSERT_NE(schema, nullptr);
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok()) << tree.status();
  // root, AND, 2 AND-branches, XOR, 2 XOR-branches, loop, loop branch
  EXPECT_EQ((*tree)->size(), 9u);
}

TEST(BlockTreeTest, RegionMembersForSequence) {
  auto schema = SequenceSchema(5);
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok());
  NodeId a2 = schema->FindNodeByName("a2");
  NodeId a4 = schema->FindNodeByName("a4");
  auto region = (*tree)->RegionMembers(a2, a4);
  ASSERT_TRUE(region.ok()) << region.status();
  EXPECT_EQ(region->size(), 3u);

  // Reversed endpoints are rejected.
  EXPECT_FALSE((*tree)->RegionMembers(a4, a2).ok());
}

TEST(BlockTreeTest, RegionMembersAcrossComposite) {
  auto schema = OnlineOrderV1();
  auto tree = schema->block_tree();
  ASSERT_TRUE(tree.ok());
  NodeId collect = schema->FindNodeByName("collect data");
  NodeId pack = schema->FindNodeByName("pack goods");
  auto region = (*tree)->RegionMembers(collect, pack);
  ASSERT_TRUE(region.ok()) << region.status();
  // collect data + and_split + confirm + compose + and_join + pack goods
  EXPECT_EQ(region->size(), 6u);

  // Endpoints in different branches do not form a region.
  NodeId confirm = schema->FindNodeByName("confirm order");
  NodeId compose = schema->FindNodeByName("compose order");
  EXPECT_FALSE((*tree)->RegionMembers(confirm, compose).ok());
}

TEST(BlockTreeTest, RejectsUnmatchedJoin) {
  ProcessSchema s("bad", 1);
  Node n;
  n.type = NodeType::kStartFlow;
  NodeId start = *s.AddNode(n);
  n.type = NodeType::kAndSplit;
  NodeId split = *s.AddNode(n);
  n.type = NodeType::kActivity;
  n.name = "a";
  NodeId a = *s.AddNode(n);
  n.name = "b";
  NodeId bnode = *s.AddNode(n);
  n.type = NodeType::kEndFlow;
  NodeId end = *s.AddNode(n);
  ASSERT_TRUE(s.AddEdge(start, split, EdgeType::kControl).ok());
  ASSERT_TRUE(s.AddEdge(split, a, EdgeType::kControl).ok());
  ASSERT_TRUE(s.AddEdge(split, bnode, EdgeType::kControl).ok());
  // Branches never join: b -> end, a dangles into end too.
  ASSERT_TRUE(s.AddEdge(a, end, EdgeType::kControl).ok());
  ASSERT_TRUE(s.AddEdge(bnode, end, EdgeType::kControl).ok());
  ASSERT_TRUE(s.Freeze().ok());
  EXPECT_FALSE(s.block_tree().ok());
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  auto schema = ComplexSchema();
  ASSERT_NE(schema, nullptr);
  JsonValue json = SchemaToJson(*schema);
  auto restored = SchemaFromJson(json);
  ASSERT_TRUE(restored.ok()) << restored.status();

  EXPECT_EQ((*restored)->type_name(), schema->type_name());
  EXPECT_EQ((*restored)->version(), schema->version());
  EXPECT_EQ((*restored)->node_count(), schema->node_count());
  EXPECT_EQ((*restored)->edge_count(), schema->edge_count());
  EXPECT_EQ((*restored)->data_count(), schema->data_count());
  EXPECT_EQ((*restored)->data_edges().size(), schema->data_edges().size());
  EXPECT_EQ((*restored)->next_node_id(), schema->next_node_id());

  // Byte-stable re-serialization.
  EXPECT_EQ(SchemaToJson(**restored).Dump(), json.Dump());

  schema->VisitNodes([&](const Node& n) {
    const Node* r = (*restored)->FindNode(n.id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, n);
  });
  schema->VisitEdges([&](const Edge& e) {
    const Edge* r = (*restored)->FindEdge(e.id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, e);
  });
}

TEST(SerializationTest, RejectsGarbage) {
  EXPECT_FALSE(SchemaFromJson(JsonValue(42)).ok());
  JsonValue wrong_format = JsonValue::MakeObject();
  wrong_format.Set("format", JsonValue(99));
  EXPECT_FALSE(SchemaFromJson(wrong_format).ok());
}

TEST(SerializationTest, MaterializeViewCopiesAll) {
  auto schema = OnlineOrderV2();
  auto copy = MaterializeView(*schema, schema->next_node_id(),
                              schema->next_edge_id(), schema->next_data_id());
  ASSERT_TRUE(copy->Freeze().ok());
  EXPECT_EQ(copy->node_count(), schema->node_count());
  EXPECT_EQ(copy->edge_count(), schema->edge_count());
  EXPECT_EQ(SchemaToJson(*copy).Dump(), SchemaToJson(*schema).Dump());
}

TEST(BuilderTest, ConditionalTagsBranchCodes) {
  auto schema = XorSchema();
  ASSERT_NE(schema, nullptr);
  NodeId split = schema->FindNodeByName("xor_split");
  NodeId standard = schema->FindNodeByName("standard care");
  NodeId intensive = schema->FindNodeByName("intensive care");
  const Edge* e0 = schema->FindEdgeBetween(split, standard, EdgeType::kControl);
  const Edge* e1 =
      schema->FindEdgeBetween(split, intensive, EdgeType::kControl);
  ASSERT_NE(e0, nullptr);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e0->branch_value, 0);
  EXPECT_EQ(e1->branch_value, 1);
}

TEST(BuilderTest, EmptyConditionalBranchAllowed) {
  SchemaBuilder b("opt", 1);
  DataId flag = b.Data("flag", DataType::kInt);
  NodeId init = b.Activity("init");
  b.Writes(init, flag);
  b.Conditional(flag, {
      [](SchemaBuilder& s) { s.Activity("extra step"); },
      [](SchemaBuilder&) { /* skip */ },
  });
  b.Activity("wrap up");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto tree = (*schema)->block_tree();
  ASSERT_TRUE(tree.ok()) << tree.status();
}

TEST(BuilderTest, ErrorsAreLatched) {
  SchemaBuilder b("bad", 1);
  b.Parallel({});  // needs >= 2 branches
  auto schema = b.Build();
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, LoopRequiresBody) {
  SchemaBuilder b("bad_loop", 1);
  DataId c = b.Data("c", DataType::kBool);
  b.Loop(c, [](SchemaBuilder&) {});
  auto schema = b.Build();
  EXPECT_FALSE(schema.ok());
}

TEST(MemoryFootprintTest, GrowsWithSchemaSize) {
  auto small = SequenceSchema(5);
  auto large = SequenceSchema(200);
  EXPECT_GT(large->MemoryFootprint(), small->MemoryFootprint());
}

}  // namespace
}  // namespace adept
