// Canonical schemas shared by tests and benchmarks.
//
// OnlineOrderV1/V2 reproduce the paper's Fig. 1: schema S is the online
// ordering process, S' (V2) adds the activity "send questions" after
// "compose order" plus a sync edge "send questions" -> "confirm order".

#ifndef ADEPT_TESTS_TEST_FIXTURES_H_
#define ADEPT_TESTS_TEST_FIXTURES_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "model/schema.h"
#include "model/schema_builder.h"

namespace adept {
namespace testing_fixtures {

using SchemaPtr = std::shared_ptr<const ProcessSchema>;

// start -> get order -> collect data -> AND(confirm order || compose order)
// -> pack goods -> deliver goods -> end
inline SchemaPtr OnlineOrderV1() {
  SchemaBuilder b("online_order", 1);
  b.Activity("get order");
  b.Activity("collect data");
  b.Parallel({
      [](SchemaBuilder& s) { s.Activity("confirm order"); },
      [](SchemaBuilder& s) { s.Activity("compose order"); },
  });
  b.Activity("pack goods");
  b.Activity("deliver goods");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// V2 = V1 + "send questions" after "compose order" + sync edge
// send questions -> confirm order (paper Fig. 1, Delta-T).
inline SchemaPtr OnlineOrderV2() {
  SchemaBuilder b("online_order", 2);
  b.Activity("get order");
  b.Activity("collect data");
  NodeId confirm, send_questions;
  b.Parallel({
      [&](SchemaBuilder& s) { confirm = s.Activity("confirm order"); },
      [&](SchemaBuilder& s) {
        s.Activity("compose order");
        send_questions = s.Activity("send questions");
      },
  });
  b.Activity("pack goods");
  b.Activity("deliver goods");
  b.SyncEdge(send_questions, confirm);
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// start -> a1 -> a2 -> ... -> aN -> end
inline SchemaPtr SequenceSchema(int n, const std::string& type_name = "seq") {
  SchemaBuilder b(type_name, 1);
  for (int i = 1; i <= n; ++i) {
    b.Activity("a" + std::to_string(i));
  }
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// XOR block steered by an int decision element written by "triage".
inline SchemaPtr XorSchema() {
  SchemaBuilder b("xor_proc", 1);
  DataId severity = b.Data("severity", DataType::kInt);
  NodeId triage = b.Activity("triage");
  b.Writes(triage, severity);
  b.Conditional(severity, {
      [](SchemaBuilder& s) { s.Activity("standard care"); },
      [](SchemaBuilder& s) { s.Activity("intensive care"); },
  });
  b.Activity("discharge");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// Loop whose body activity "check" rewrites the bool condition "again".
inline SchemaPtr LoopSchema() {
  SchemaBuilder b("loop_proc", 1);
  DataId again = b.Data("again", DataType::kBool);
  b.Activity("prepare");
  b.Loop(again, [&](SchemaBuilder& s) {
    NodeId check = s.Activity("check");
    s.Writes(check, again);
  });
  b.Activity("finish");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// Nested blocks + sync edge + data flow, exercising most meta-model
// features at once.
inline SchemaPtr ComplexSchema() {
  SchemaBuilder b("complex", 1);
  DataId amount = b.Data("amount", DataType::kDouble);
  DataId route = b.Data("route", DataType::kInt);
  DataId redo = b.Data("redo", DataType::kBool);
  NodeId intake = b.Activity("intake");
  b.Writes(intake, amount);
  b.Writes(intake, route);
  NodeId left_tail, right_head;
  b.Parallel({
      [&](SchemaBuilder& s) {
        s.Conditional(route, {
            [](SchemaBuilder& t) { t.Activity("fast path"); },
            [](SchemaBuilder& t) { t.Activity("slow path"); },
        });
        left_tail = s.Activity("left done");
      },
      [&](SchemaBuilder& s) {
        right_head = s.Activity("right head");
        s.Loop(redo, [&](SchemaBuilder& t) {
          NodeId work = t.Activity("loop work");
          t.Writes(work, redo);
        });
      },
  });
  NodeId archive = b.Activity("archive");
  b.Reads(archive, amount);
  b.SyncEdge(right_head, left_tail);
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

}  // namespace testing_fixtures
}  // namespace adept

#endif  // ADEPT_TESTS_TEST_FIXTURES_H_
