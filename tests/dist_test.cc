#include <gtest/gtest.h>

#include "compliance/migration.h"
#include "dist/cluster.h"
#include "model/schema_builder.h"
#include "runtime/driver.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::OnlineOrderV1;

// The online ordering process partitioned over two servers: order handling
// on "front", logistics on "warehouse".
std::shared_ptr<const ProcessSchema> PartitionedSchema(ServerId front,
                                                       ServerId warehouse) {
  SchemaBuilder b("partitioned_order", 1);
  b.Activity("get order", {.server = front});
  b.Activity("collect data", {.server = front});
  b.Parallel({
      [&](SchemaBuilder& s) {
        s.Activity("confirm order", {.server = front});
      },
      [&](SchemaBuilder& s) {
        s.Activity("compose order", {.server = warehouse});
      },
  });
  b.Activity("pack goods", {.server = warehouse});
  b.Activity("deliver goods", {.server = warehouse});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

TEST(ClusterTest, PartitionsDiscovered) {
  SimulatedCluster cluster;
  ServerId front = cluster.AddServer("front");
  ServerId warehouse = cluster.AddServer("warehouse");
  auto schema = PartitionedSchema(front, warehouse);
  ASSERT_NE(schema, nullptr);

  auto partitions = cluster.PartitionsOf(*schema);
  ASSERT_EQ(partitions.size(), 2u);
  EXPECT_EQ(partitions[0], front);
  EXPECT_EQ(partitions[1], warehouse);
  EXPECT_EQ(*cluster.ServerName(front), "front");
}

TEST(ClusterTest, DistributedRunHandsOverControl) {
  SimulatedCluster cluster;
  ServerId front = cluster.AddServer("front");
  ServerId warehouse = cluster.AddServer("warehouse");
  auto schema = PartitionedSchema(front, warehouse);
  ASSERT_NE(schema, nullptr);

  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = 5});
  ASSERT_TRUE(cluster.RunDistributed(inst, driver).ok());
  EXPECT_TRUE(inst.Finished());

  // At least one handover front -> warehouse happened.
  EXPECT_GE(cluster.handover_count(), 1u);
  auto front_stats = cluster.StatsFor(front);
  auto wh_stats = cluster.StatsFor(warehouse);
  ASSERT_TRUE(front_stats.ok());
  ASSERT_TRUE(wh_stats.ok());
  EXPECT_EQ(front_stats->activities_executed, 3u);
  EXPECT_EQ(wh_stats->activities_executed, 3u);
}

TEST(ClusterTest, SingleServerNeedsNoHandover) {
  SimulatedCluster cluster;
  cluster.AddServer("only");
  auto schema = OnlineOrderV1();  // no server assignments -> home server
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = 7});
  ASSERT_TRUE(cluster.RunDistributed(inst, driver).ok());
  EXPECT_TRUE(inst.Finished());
  EXPECT_EQ(cluster.handover_count(), 0u);
}

TEST(ClusterTest, LocalityHeuristicLimitsHandovers) {
  // With both branch activities ready, the cluster prefers the one on the
  // current controller, so the two-branch block costs at most 2 handovers.
  SimulatedCluster cluster;
  ServerId front = cluster.AddServer("front");
  ServerId warehouse = cluster.AddServer("warehouse");
  auto schema = PartitionedSchema(front, warehouse);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SimulatedCluster fresh;
    ServerId f = fresh.AddServer("front");
    ServerId w = fresh.AddServer("warehouse");
    auto s = PartitionedSchema(f, w);
    ProcessInstance inst(InstanceId(seed), s, SchemaId(1));
    ASSERT_TRUE(inst.Start().ok());
    SimulationDriver driver({.seed = seed});
    ASSERT_TRUE(fresh.RunDistributed(inst, driver).ok());
    EXPECT_LE(fresh.handover_count(), 2u) << "seed " << seed;
  }
  (void)schema;
}

TEST(ClusterTest, MigrationPropagationFansOut) {
  SimulatedCluster cluster;
  ServerId front = cluster.AddServer("front");
  ServerId warehouse = cluster.AddServer("warehouse");
  auto schema = PartitionedSchema(front, warehouse);

  MigrationReport report;
  report.type_name = "partitioned_order";
  for (uint64_t i = 1; i <= 5; ++i) {
    report.results.push_back(
        {InstanceId(i), MigrationOutcome::kMigrated, false, ""});
  }
  ASSERT_TRUE(cluster.PropagateMigration(report, *schema).ok());
  // One message per non-home partition per instance: 5 * 1.
  size_t propagation = 0;
  for (const auto& m : cluster.message_log()) {
    if (m.kind == DistMessageKind::kChangePropagation) ++propagation;
  }
  EXPECT_EQ(propagation, 5u);
  auto wh_stats = cluster.StatsFor(warehouse);
  ASSERT_TRUE(wh_stats.ok());
  EXPECT_EQ(wh_stats->messages_received, 5u);
}

TEST(ClusterTest, EmptyClusterRejected) {
  SimulatedCluster cluster;
  auto schema = OnlineOrderV1();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = 1});
  EXPECT_EQ(cluster.RunDistributed(inst, driver).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace adept
