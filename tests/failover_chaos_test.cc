// Deterministic failover chaos harness (see src/cluster/README.md).
//
// Each test is one scripted schedule over a FailoverCoordinator topology
// (founding primary + 3 standby nodes, commit quorum 2) with a
// ClusterClient as the only write path, and checks the same invariants
// afterwards:
//
//   - no acked commit lost: every op the client reported ok is present
//     on the current primary;
//   - no duplicate instance: each created id exists exactly once, and
//     the instance count equals the number of ok creates;
//   - exactly one epoch-fenced primary lineage per shard: the promoted
//     view's epoch strictly dominates, and a resurrected old primary
//     fails every write with IsFenced();
//   - worklist claims intact on schedules that never kill a node (claims
//     are node-local by contract and are lost on failover).
//
// The schedules:
//
//   1. kill the primary while a batch is in flight (ack drops make its
//      quorum fate ambiguous) — the acceptance row: retried writes land
//      on the auto-promoted replica, nothing lost, nothing doubled, and
//      no PromoteReplicaFiles()/Promote() call appears in the test;
//   2. heartbeat-only drops toward a minority of standbys — suspicion
//      without a majority must never promote;
//   3. bidirectional partition of the primary — the isolated side fails
//      writes fast and serves degraded reads while the majority elects;
//   4. chained failovers with rejoins (the storm) — the survivor
//      watermark stays sound across two promotions;
//   5. a standby dies mid-promotion — the protocol completes with the
//      remaining quorum.
//
// Determinism: every fault is a scripted injector flip or an explicit
// Kill/Restart call; client jitter is seeded; health verdicts come from
// the heartbeat clock, whose thresholds are set far below the waits used
// here.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/adept_cluster.h"
#include "cluster/cluster_client.h"
#include "cluster/failover_coordinator.h"
#include "model/schema_builder.h"
#include "repl/replication.h"
#include "tests/test_fixtures.h"
#include "worklist/worklist_service.h"

namespace adept {
namespace {

using testing_fixtures::SequenceSchema;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_chaos_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

// Heartbeat thresholds well under the waits the schedules use, so a
// scripted silence always crosses them; ack/io timeouts short, so the
// client's ambiguous rounds resolve quickly.
FailoverOptions ChaosOptions(const TempDir& dir, bool auto_promote = true) {
  FailoverOptions options;
  options.cluster.shards = 2;
  options.cluster.wal_path = dir.File("primary.wal");
  options.cluster.snapshot_path = dir.File("primary.snapshot");
  options.replicas = 3;
  options.quorum = 2;
  options.data_dir = dir.File("nodes");
  options.repl.retry_ms = 20;
  options.repl.io_timeout_ms = 1000;
  options.repl.ack_timeout_ms = 250;
  options.repl.heartbeat_interval_ms = 50;
  options.repl.suspect_after_ms = 200;
  options.repl.dead_after_ms = 500;
  options.poll_interval_ms = 25;
  options.confirm_polls = 2;
  options.auto_promote = auto_promote;
  return options;
}

RetryPolicy ChaosRetryPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.base_backoff_ms = 25;
  policy.backoff_cap_ms = 200;
  policy.jitter_seed = 7;
  return policy;
}

size_t CountInstances(AdeptCluster& cluster) {
  size_t count = 0;
  cluster.ForEachSnapshot([&](const InstanceSnapshot&) { ++count; });
  return count;
}

bool InstanceExists(AdeptCluster& cluster, InstanceId id) {
  return cluster.WithInstance(id, [](const ProcessInstance&) {}).ok();
}

// The shared post-schedule invariant: every acked id exists exactly once
// on the current primary and nothing else does.
void ExpectExactlyTheAckedInstances(AdeptCluster& cluster,
                                    const std::vector<InstanceId>& acked) {
  std::set<uint64_t> unique;
  for (InstanceId id : acked) {
    EXPECT_TRUE(unique.insert(id.value()).second)
        << "duplicate acked id I" << id.value();
    EXPECT_TRUE(InstanceExists(cluster, id))
        << "acked instance I" << id.value() << " lost";
  }
  EXPECT_EQ(CountInstances(cluster), acked.size());
}

// Polls until the resurrected old lineage has learned it was deposed
// (the standbys reject its stale HELLO). Returns the fenced write status.
Status WaitForFencedWrite(AdeptCluster& cluster, int timeout_ms = 10000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto id = cluster.CreateInstance("seq");
    if (!id.ok() && IsFenced(id.status())) return id.status();
    if (std::chrono::steady_clock::now() > deadline) {
      return id.ok() ? Status::OK() : id.status();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

// --- Schedule 1: kill the primary while a batch is in flight -----------------

// The acceptance row. Ack drops on every standby first make in-flight
// commits ambiguous (applied + shipped, never acknowledged), then the
// primary is killed mid-batch. The client must finish every op against
// the auto-promoted replica: ops whose records reached the standbys
// settle through the survivor watermark (reconciled, original id); ops
// that died with the old primary's unacked suffix are re-issued. At no
// point does the test call PromoteReplicaFiles or Promote itself.
TEST(FailoverChaosTest, KillPrimaryMidBatchRetriedWritesSurvivePromotion) {
  TempDir dir;
  ToggleFaultInjector ack_drop[3];
  FailoverOptions options = ChaosOptions(dir);
  options.node_ack_injectors = {&ack_drop[0], &ack_drop[1], &ack_drop[2]};
  auto coordinator = FailoverCoordinator::Start(options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  FailoverCoordinator& coord = **coordinator;
  ClusterClient client(&coord, ChaosRetryPolicy());

  // Healthy baseline: schema + a few instances, cleanly quorum-acked.
  PrimaryView v1 = coord.View();
  ASSERT_NE(v1.cluster, nullptr);
  ASSERT_TRUE(v1.cluster->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> acked;
  for (int i = 0; i < 4; ++i) {
    auto id = client.Create("seq");
    ASSERT_TRUE(id.ok()) << id.status();
    acked.push_back(*id);
  }

  // Cut every ack path: commits still apply and ship, but their quorum
  // fate is ambiguous from here on.
  for (ToggleFaultInjector& t : ack_drop) t.set_enabled(true);

  // The in-flight batch: more creates plus steps on the baseline. The
  // client cannot finish it against the doomed lineage — its rounds park
  // in limbo — so the kill below is guaranteed to land mid-batch.
  std::vector<AdeptCluster::BatchOp> batch;
  for (int i = 0; i < 8; ++i) {
    batch.push_back(AdeptCluster::BatchOp::Create("seq"));
  }
  for (InstanceId id : acked) {
    batch.push_back(AdeptCluster::BatchOp::DriveStep(id));
  }
  std::vector<ClusterClient::OpOutcome> outcomes;
  std::thread writer([&] { outcomes = client.Submit(batch); });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(coord.KillPrimary().ok());
  // Heal the ack paths so the promoted lineage commits normally.
  for (ToggleFaultInjector& t : ack_drop) t.set_enabled(false);

  // The monitor must detect and promote on its own.
  auto v2 = coord.WaitForFailover(v1.version, 20000);
  ASSERT_TRUE(v2.ok()) << v2.status();
  writer.join();

  EXPECT_EQ(coord.promotions(), 1u);
  EXPECT_GT(v2->epoch, v1.epoch);
  ASSERT_NE(v2->cluster, nullptr);
  EXPECT_NE(v2->cluster.get(), v1.cluster.get());

  ASSERT_EQ(outcomes.size(), batch.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].status.ok())
        << "op " << i << ": " << outcomes[i].status;
    if (i < 8) acked.push_back(outcomes[i].id);
  }
  EXPECT_GT(client.retry_rounds(), 0u);

  ExpectExactlyTheAckedInstances(*v2->cluster, acked);

  // The deposed lineage comes back unaware: every write it takes is
  // rejected with the fencing marker once the standbys turn it away.
  auto resurrected = coord.ResurrectOldPrimary();
  ASSERT_TRUE(resurrected.ok()) << resurrected.status();
  Status fenced = WaitForFencedWrite(**resurrected);
  EXPECT_TRUE(IsFenced(fenced)) << fenced;

  // Rejoined as a standby, its divergent unacked suffix is snapshot-reset
  // away and the cluster keeps committing with one more copy.
  ASSERT_TRUE(coord.RejoinOldPrimaryAsReplica().ok());
  EXPECT_EQ(coord.replica_count(), 4);
  auto post = client.Create("seq");
  ASSERT_TRUE(post.ok()) << post.status();
  acked.push_back(*post);
  ExpectExactlyTheAckedInstances(*coord.View().cluster, acked);
}

// --- Schedule 2: heartbeat-only drops toward a minority ----------------------

// One standby stops hearing heartbeats on an idle cluster, times the
// primary out, and votes dead — but one vote out of three is a minority,
// so no promotion may happen. Batch traffic still flows through the
// filtered link (only kMsgHeartbeat frames are dropped), writes keep
// committing, and — this schedule kills nobody — worklist claims are
// untouched throughout.
TEST(FailoverChaosTest, HeartbeatDropsToMinorityNeverPromote) {
  TempDir dir;
  ToggleFaultInjector heartbeat_drop(kMsgHeartbeat);
  FailoverOptions options = ChaosOptions(dir);
  options.node_send_injectors = {&heartbeat_drop, nullptr, nullptr};
  auto coordinator = FailoverCoordinator::Start(options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  FailoverCoordinator& coord = **coordinator;
  ClusterClient client(&coord, ChaosRetryPolicy());

  PrimaryView v1 = coord.View();
  ASSERT_NE(v1.cluster, nullptr);

  // Org + a role-routed process so there is a claim to watch.
  OrgModel& org = v1.cluster->org();
  RoleId clerk = *org.AddRole("clerk");
  UserId alice = *org.AddUser("alice");
  ASSERT_TRUE(org.AssignRole(alice, clerk).ok());
  SchemaBuilder builder("claimed_proc", 1);
  builder.Activity("prepare", {.role = clerk});
  auto schema = builder.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(v1.cluster->DeployProcessType(*schema).ok());
  ASSERT_TRUE(v1.cluster->DeployProcessType(SequenceSchema(6)).ok());

  InstanceId claimed_instance = *client.Create("claimed_proc");
  WorklistService& worklist = v1.cluster->Worklist();
  auto offers = worklist.OffersFor(alice);
  ASSERT_EQ(offers.size(), 1u);
  ASSERT_TRUE(worklist.Claim(offers[0].id, alice).ok());

  // Silence the heartbeats toward node 0 across several dead windows.
  heartbeat_drop.set_enabled(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  EXPECT_EQ(coord.promotions(), 0u);
  EXPECT_GT(heartbeat_drop.frames_dropped(), 0u);

  // Still the same lineage; writes commit (the filtered link passes
  // batches, and the other two standbys ack regardless).
  auto mid = client.Create("seq");
  ASSERT_TRUE(mid.ok()) << mid.status();
  EXPECT_EQ(coord.View().version, v1.version);

  heartbeat_drop.set_enabled(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(coord.promotions(), 0u);

  // The claim survived the whole schedule (nobody died).
  auto assigned = worklist.AssignedTo(alice);
  ASSERT_EQ(assigned.size(), 1u);
  EXPECT_EQ(assigned[0].state, WorkItemState::kClaimed);
  EXPECT_EQ(assigned[0].instance, claimed_instance);

  ExpectExactlyTheAckedInstances(*coord.View().cluster,
                                 {claimed_instance, *mid});
}

// --- Schedule 3: bidirectional partition of the primary ----------------------

// Both directions between the primary and every standby are cut. The
// isolated primary must degrade, not diverge: writes fail fast with the
// no-quorum marker (definitely-not-applied), reads serve its published
// snapshots flagged degraded. The majority side elects a new lineage;
// after the heal the client commits against it and nothing was lost or
// doubled.
TEST(FailoverChaosTest, BidirectionalPartitionMinorityDegradesMajorityElects) {
  TempDir dir;
  ToggleFaultInjector send_cut[3];
  ToggleFaultInjector ack_cut[3];
  FailoverOptions options = ChaosOptions(dir);
  options.node_send_injectors = {&send_cut[0], &send_cut[1], &send_cut[2]};
  options.node_ack_injectors = {&ack_cut[0], &ack_cut[1], &ack_cut[2]};
  auto coordinator = FailoverCoordinator::Start(options);
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  FailoverCoordinator& coord = **coordinator;
  ClusterClient client(&coord, ChaosRetryPolicy());

  PrimaryView v1 = coord.View();
  ASSERT_NE(v1.cluster, nullptr);
  ASSERT_TRUE(v1.cluster->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> acked;
  for (int i = 0; i < 6; ++i) {
    auto id = client.Create("seq");
    ASSERT_TRUE(id.ok()) << id.status();
    acked.push_back(*id);
  }

  // Partition: nothing crosses between the primary and any standby.
  for (ToggleFaultInjector& t : send_cut) t.set_enabled(true);
  for (ToggleFaultInjector& t : ack_cut) t.set_enabled(true);

  // Past the dead threshold the isolated primary's health view shows no
  // live quorum: the write gate rejects before any mutation.
  std::this_thread::sleep_for(std::chrono::milliseconds(800));
  auto rejected = v1.cluster->CreateInstance("seq");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(IsNoQuorum(rejected.status()) ||
              IsQuorumTimeout(rejected.status()))
      << rejected.status();

  // Degraded reads on the minority side: every published snapshot is
  // served, and the result says so.
  auto degraded_read = v1.cluster->Query("state != finished");
  ASSERT_TRUE(degraded_read.ok()) << degraded_read.status();
  EXPECT_TRUE(degraded_read->degraded);
  EXPECT_EQ(degraded_read->size(), acked.size());

  // The majority saw the same silence and elected without being told.
  auto v2 = coord.WaitForFailover(v1.version, 20000);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_GT(v2->epoch, v1.epoch);

  // Heal. The client re-resolves and commits against the new lineage.
  for (ToggleFaultInjector& t : send_cut) t.set_enabled(false);
  for (ToggleFaultInjector& t : ack_cut) t.set_enabled(false);
  auto healed = client.Create("seq");
  ASSERT_TRUE(healed.ok()) << healed.status();
  acked.push_back(*healed);

  // The rejected write really never applied: counts are exact.
  ExpectExactlyTheAckedInstances(*coord.View().cluster, acked);

  // Fresh reads are whole again.
  auto clean_read = client.Query("state != finished");
  ASSERT_TRUE(clean_read.ok()) << clean_read.status();
  EXPECT_FALSE(clean_read->degraded);
}

// --- Schedule 4: chained failovers with rejoins (the storm) ------------------

// Two kill/promote/rejoin cycles back to back. The second cycle is what
// the survivor watermark exists for: an op parked under view 1 must be
// judged against the *minimum* recovered prefix of every later
// promotion, not just the latest. The storm asserts the client-visible
// consequence — after each cycle every acked id exists exactly once.
TEST(FailoverChaosTest, ChainedFailoversWithRejoinsKeepEveryAckedWrite) {
  TempDir dir;
  auto coordinator = FailoverCoordinator::Start(ChaosOptions(dir));
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  FailoverCoordinator& coord = **coordinator;
  ClusterClient client(&coord, ChaosRetryPolicy());

  ASSERT_TRUE(coord.View().cluster->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> acked;
  uint64_t last_epoch = coord.View().epoch;

  for (int cycle = 0; cycle < 2; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      auto id = client.Create("seq");
      ASSERT_TRUE(id.ok()) << "cycle " << cycle << ": " << id.status();
      acked.push_back(*id);
    }
    const uint64_t version = coord.View().version;
    ASSERT_TRUE(coord.KillPrimary().ok());
    auto promoted = coord.WaitForFailover(version, 20000);
    ASSERT_TRUE(promoted.ok()) << promoted.status();
    EXPECT_GT(promoted->epoch, last_epoch);
    last_epoch = promoted->epoch;

    // Writes resume against the new lineage before the old one rejoins.
    auto mid = client.Create("seq");
    ASSERT_TRUE(mid.ok()) << "cycle " << cycle << ": " << mid.status();
    acked.push_back(*mid);

    ASSERT_TRUE(coord.RejoinOldPrimaryAsReplica().ok());
    ExpectExactlyTheAckedInstances(*coord.View().cluster, acked);
  }

  EXPECT_EQ(coord.promotions(), 2u);
  EXPECT_EQ(coord.replica_count(), 5);  // 3 founding + 2 rejoined lineages

  // Watermark sanity across the chain: what survived past view 1 can
  // never exceed what survived past view 2.
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_LE(coord.SurvivorWatermark(1, k), coord.SurvivorWatermark(2, k));
  }
}

// --- Schedule 5: a standby dies mid-promotion --------------------------------

// The promotion hook kills a non-target standby right after the target
// was selected. The protocol must finish with the survivors: the view
// advances, the dead node stays down (no zombie restart), and the commit
// quorum is met by the new primary plus the remaining standby.
TEST(FailoverChaosTest, StandbyDeathDuringPromotionDoesNotBlockIt) {
  TempDir dir;
  auto coordinator = FailoverCoordinator::Start(ChaosOptions(
      dir, /*auto_promote=*/false));
  ASSERT_TRUE(coordinator.ok()) << coordinator.status();
  FailoverCoordinator& coord = **coordinator;
  ClusterClient client(&coord, ChaosRetryPolicy());

  ASSERT_TRUE(coord.View().cluster->DeployProcessType(SequenceSchema(6)).ok());
  std::vector<InstanceId> acked;
  for (int i = 0; i < 4; ++i) {
    auto id = client.Create("seq");
    ASSERT_TRUE(id.ok()) << id.status();
    acked.push_back(*id);
  }

  // All standbys converged equally, so the selection tie-break picks
  // node 0 — killing node 2 at "selected" never kills the target.
  coord.SetPromotionHook([&](const std::string& stage) {
    if (stage == "selected" && coord.ReplicaRunning(2)) {
      EXPECT_TRUE(coord.KillReplica(2).ok());
    }
  });

  ASSERT_TRUE(coord.KillPrimary().ok());
  auto promoted = coord.Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(coord.promotions(), 1u);
  EXPECT_FALSE(coord.ReplicaRunning(2));

  // Quorum 2 = the new primary's disk + the surviving standby.
  auto post = client.Create("seq");
  ASSERT_TRUE(post.ok()) << post.status();
  acked.push_back(*post);
  ExpectExactlyTheAckedInstances(*coord.View().cluster, acked);

  // The killed standby restarts on its old port (it rejoins the peer set
  // at the next attach); meanwhile commits keep flowing on the survivors.
  ASSERT_TRUE(coord.RestartReplica(2).ok());
  auto after_restart = client.Create("seq");
  ASSERT_TRUE(after_restart.ok()) << after_restart.status();
  acked.push_back(*after_restart);
  ExpectExactlyTheAckedInstances(*coord.View().cluster, acked);
}

}  // namespace
}  // namespace adept
