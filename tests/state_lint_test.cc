// Golden tests for the runtime-health rules AV011 (stuck-activity) and
// AV012 (orphaned-claim). These assert the *exact* report JSON: the rule
// ids, messages, and fix hints are a published interface (suppression
// baselines key on them), so a silent wording or id change must fail here.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "common/json.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "storage/wal.h"
#include "tests/test_fixtures.h"
#include "verify/state_lint.h"

namespace adept {
namespace {

using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

NodeId ByName(const ProcessInstance& i, const std::string& name) {
  return i.schema().FindNodeByName(name);
}

Status Execute(ProcessInstance& i, NodeId node) {
  ADEPT_RETURN_IF_ERROR(i.StartActivity(node));
  return i.CompleteActivity(node);
}

// A worklist journal record in the shape WorklistService writes
// ("<cluster_wal>.worklist"): t = claim/delegate/start/release/close.
JsonValue ClaimRecord(const std::string& type, uint64_t instance,
                      uint32_t node, uint64_t user) {
  JsonValue v = JsonValue::MakeObject();
  v.Set("t", JsonValue(type));
  v.Set("i", JsonValue(static_cast<int64_t>(instance)));
  v.Set("n", JsonValue(static_cast<int64_t>(node)));
  v.Set("u", JsonValue(static_cast<int64_t>(user)));
  v.Set("e", JsonValue(static_cast<int64_t>(1)));
  return v;
}

TEST(StateLintTest, CleanSystemProducesEmptyReport) {
  Engine engine;
  auto schema = SequenceSchema(2);
  auto inst = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(inst.ok());
  ASSERT_TRUE((*inst)->Start().ok());
  ASSERT_TRUE(Execute(**inst, ByName(**inst, "a1")).ok());

  auto report = LintRuntimeState(engine, StateLintOptions{});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->ToJson().Dump(),
            R"({"errors":0,"findings":[],"ok":true,"warnings":0})");
}

// A Running activity is not "stuck" until the instance demonstrably moved
// on without it: the parallel sibling branch keeps completing activities
// while "confirm order" sits in Running.
TEST(StateLintTest, StuckActivityGoldenReport) {
  Engine engine;
  auto schema = OnlineOrderV1();
  auto inst = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(inst.ok());
  ProcessInstance& i = **inst;
  ASSERT_TRUE(i.Start().ok());
  ASSERT_TRUE(Execute(i, ByName(i, "get order")).ok());
  ASSERT_TRUE(Execute(i, ByName(i, "collect data")).ok());

  const NodeId confirm = ByName(i, "confirm order");
  ASSERT_TRUE(i.StartActivity(confirm).ok());
  // Progress elsewhere: the sibling branch finishes (start + complete = 2
  // trace events), leaving a 2-event tail after confirm's start.
  ASSERT_TRUE(Execute(i, ByName(i, "compose order")).ok());
  ASSERT_EQ(i.node_state(confirm), NodeState::kRunning);

  // Below the threshold: clean.
  StateLintOptions options;
  options.stuck_after_events = 3;
  auto quiet = LintRuntimeState(engine, options);
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->warning_count(), 0u);

  // At the threshold: exactly one AV011 warning with the golden shape.
  options.stuck_after_events = 2;
  auto report = LintRuntimeState(engine, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->issues().size(), 1u);
  const std::string node_id = std::to_string(confirm.value());
  EXPECT_EQ(
      report->ToJson().Dump(),
      std::string(R"({"errors":0,"findings":[{)") +
          R"("fix_hint":"complete, fail, or retry the activity; if its )" +
          R"(worker died, release the work item so it can be re-offered",)" +
          R"("message":"activity 'confirm order' (n)" + node_id +
          R"() of instance I1 is running with no progress: 2 trace events )" +
          R"(since its last start","node":)" + node_id +
          R"(,"rule":"stuck-activity","rule_id":"AV011",)" +
          R"("severity":"warning","span":[{"id":)" + node_id +
          R"(,"kind":"node"}]}],"ok":true,"warnings":1})");
}

// Three live claims, three distinct orphan reasons — plus a released claim
// and a still-actionable claim that must stay silent.
TEST(StateLintTest, OrphanedClaimGoldenReport) {
  Engine engine;
  auto schema = SequenceSchema(3);
  auto inst = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(inst.ok());
  ProcessInstance& i = **inst;
  ASSERT_TRUE(i.Start().ok());
  const NodeId a1 = ByName(i, "a1");
  const NodeId a2 = ByName(i, "a2");
  ASSERT_TRUE(Execute(i, a1).ok());  // a1 Completed, a2 Activated

  const std::string journal = TempPath("adept_state_lint_claims.wal");
  std::filesystem::remove(journal);
  {
    auto wal = WriteAheadLog::Open(journal);
    ASSERT_TRUE(wal.ok());
    // Orphaned: a1 already completed out from under u7's claim.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, a1.value(), 7)).ok());
    // Fine: a2 is Activated, u8 can still start it.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, a2.value(), 8)).ok());
    // Orphaned: instance 9 does not exist.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("start", 9, a1.value(), 7)).ok());
    // Orphaned: node 999 is not in the schema.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, 999, 5)).ok());
    // Released before the lint ran: silent.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, a2.value(), 6)).ok());
    ASSERT_TRUE((*wal)->Append(ClaimRecord("release", 1, a2.value(), 6)).ok());
    ASSERT_TRUE((*wal)->Sync(SyncMode::kFlush).ok());
  }

  StateLintOptions options;
  options.claims_journal_path = journal;
  auto report = LintRuntimeState(engine, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->issues().size(), 3u);
  for (const VerificationIssue& issue : report->issues()) {
    EXPECT_EQ(std::string(VerifyRuleId(issue.rule)), "AV012");
    EXPECT_EQ(issue.severity, VerifySeverity::kWarning);
  }
  // Deterministic order: by (instance, node) key. Golden messages:
  const auto& issues = report->issues();
  EXPECT_EQ(issues[0].message,
            "worklist claim by u7 on activity 'a1' (n" +
                std::to_string(a1.value()) +
                ") of instance I1 is orphaned: the node's state is "
                "Completed");
  EXPECT_EQ(issues[1].message,
            "worklist claim by u5 on a node (n999) of instance I1 is "
            "orphaned: the node no longer exists in the instance's schema");
  EXPECT_EQ(issues[2].message,
            "worklist claim by u7 on a node (n" + std::to_string(a1.value()) +
                ") of instance I9 is orphaned: the instance no longer "
                "exists");
  EXPECT_EQ(issues[0].fix_hint,
            "release the claim, or checkpoint (SaveSnapshot compacts the "
            "journal to live claims only)");

  // A missing journal is not an error — the rule just has nothing to say.
  std::filesystem::remove(journal);
  auto empty = LintRuntimeState(engine, options);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->issues().size(), 0u);
}

}  // namespace
}  // namespace adept
