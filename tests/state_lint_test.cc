// Golden tests for the runtime-health rules AV011 (stuck-activity),
// AV012 (orphaned-claim), and AV013 (replication-degraded). These assert
// the *exact* report JSON: the rule ids, messages, and fix hints are a
// published interface (suppression baselines key on them), so a silent
// wording or id change must fail here.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "storage/wal.h"
#include "tests/test_fixtures.h"
#include "verify/state_lint.h"

namespace adept {
namespace {

using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

NodeId ByName(const ProcessInstance& i, const std::string& name) {
  return i.schema().FindNodeByName(name);
}

Status Execute(ProcessInstance& i, NodeId node) {
  ADEPT_RETURN_IF_ERROR(i.StartActivity(node));
  return i.CompleteActivity(node);
}

// A worklist journal record in the shape WorklistService writes
// ("<cluster_wal>.worklist"): t = claim/delegate/start/release/close.
JsonValue ClaimRecord(const std::string& type, uint64_t instance,
                      uint32_t node, uint64_t user) {
  JsonValue v = JsonValue::MakeObject();
  v.Set("t", JsonValue(type));
  v.Set("i", JsonValue(static_cast<int64_t>(instance)));
  v.Set("n", JsonValue(static_cast<int64_t>(node)));
  v.Set("u", JsonValue(static_cast<int64_t>(user)));
  v.Set("e", JsonValue(static_cast<int64_t>(1)));
  return v;
}

TEST(StateLintTest, CleanSystemProducesEmptyReport) {
  Engine engine;
  auto schema = SequenceSchema(2);
  auto inst = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(inst.ok());
  ASSERT_TRUE((*inst)->Start().ok());
  ASSERT_TRUE(Execute(**inst, ByName(**inst, "a1")).ok());

  auto report = LintRuntimeState(engine, StateLintOptions{});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->ToJson().Dump(),
            R"({"errors":0,"findings":[],"ok":true,"warnings":0})");
}

// A Running activity is not "stuck" until the instance demonstrably moved
// on without it: the parallel sibling branch keeps completing activities
// while "confirm order" sits in Running.
TEST(StateLintTest, StuckActivityGoldenReport) {
  Engine engine;
  auto schema = OnlineOrderV1();
  auto inst = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(inst.ok());
  ProcessInstance& i = **inst;
  ASSERT_TRUE(i.Start().ok());
  ASSERT_TRUE(Execute(i, ByName(i, "get order")).ok());
  ASSERT_TRUE(Execute(i, ByName(i, "collect data")).ok());

  const NodeId confirm = ByName(i, "confirm order");
  ASSERT_TRUE(i.StartActivity(confirm).ok());
  // Progress elsewhere: the sibling branch finishes (start + complete = 2
  // trace events), leaving a 2-event tail after confirm's start.
  ASSERT_TRUE(Execute(i, ByName(i, "compose order")).ok());
  ASSERT_EQ(i.node_state(confirm), NodeState::kRunning);

  // Below the threshold: clean.
  StateLintOptions options;
  options.stuck_after_events = 3;
  auto quiet = LintRuntimeState(engine, options);
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet->warning_count(), 0u);

  // At the threshold: exactly one AV011 warning with the golden shape.
  options.stuck_after_events = 2;
  auto report = LintRuntimeState(engine, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->issues().size(), 1u);
  const std::string node_id = std::to_string(confirm.value());
  EXPECT_EQ(
      report->ToJson().Dump(),
      std::string(R"({"errors":0,"findings":[{)") +
          R"("fix_hint":"complete, fail, or retry the activity; if its )" +
          R"(worker died, release the work item so it can be re-offered",)" +
          R"("message":"activity 'confirm order' (n)" + node_id +
          R"() of instance I1 is running with no progress: 2 trace events )" +
          R"(since its last start","node":)" + node_id +
          R"(,"rule":"stuck-activity","rule_id":"AV011",)" +
          R"("severity":"warning","span":[{"id":)" + node_id +
          R"(,"kind":"node"}]}],"ok":true,"warnings":1})");
}

// Three live claims, three distinct orphan reasons — plus a released claim
// and a still-actionable claim that must stay silent.
TEST(StateLintTest, OrphanedClaimGoldenReport) {
  Engine engine;
  auto schema = SequenceSchema(3);
  auto inst = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(inst.ok());
  ProcessInstance& i = **inst;
  ASSERT_TRUE(i.Start().ok());
  const NodeId a1 = ByName(i, "a1");
  const NodeId a2 = ByName(i, "a2");
  ASSERT_TRUE(Execute(i, a1).ok());  // a1 Completed, a2 Activated

  const std::string journal = TempPath("adept_state_lint_claims.wal");
  std::filesystem::remove(journal);
  {
    auto wal = WriteAheadLog::Open(journal);
    ASSERT_TRUE(wal.ok());
    // Orphaned: a1 already completed out from under u7's claim.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, a1.value(), 7)).ok());
    // Fine: a2 is Activated, u8 can still start it.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, a2.value(), 8)).ok());
    // Orphaned: instance 9 does not exist.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("start", 9, a1.value(), 7)).ok());
    // Orphaned: node 999 is not in the schema.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, 999, 5)).ok());
    // Released before the lint ran: silent.
    ASSERT_TRUE((*wal)->Append(ClaimRecord("claim", 1, a2.value(), 6)).ok());
    ASSERT_TRUE((*wal)->Append(ClaimRecord("release", 1, a2.value(), 6)).ok());
    ASSERT_TRUE((*wal)->Sync(SyncMode::kFlush).ok());
  }

  StateLintOptions options;
  options.claims_journal_path = journal;
  auto report = LintRuntimeState(engine, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->issues().size(), 3u);
  for (const VerificationIssue& issue : report->issues()) {
    EXPECT_EQ(std::string(VerifyRuleId(issue.rule)), "AV012");
    EXPECT_EQ(issue.severity, VerifySeverity::kWarning);
  }
  // Deterministic order: by (instance, node) key. Golden messages:
  const auto& issues = report->issues();
  EXPECT_EQ(issues[0].message,
            "worklist claim by u7 on activity 'a1' (n" +
                std::to_string(a1.value()) +
                ") of instance I1 is orphaned: the node's state is "
                "Completed");
  EXPECT_EQ(issues[1].message,
            "worklist claim by u5 on a node (n999) of instance I1 is "
            "orphaned: the node no longer exists in the instance's schema");
  EXPECT_EQ(issues[2].message,
            "worklist claim by u7 on a node (n" + std::to_string(a1.value()) +
                ") of instance I9 is orphaned: the instance no longer "
                "exists");
  EXPECT_EQ(issues[0].fix_hint,
            "release the claim, or checkpoint (SaveSnapshot compacts the "
            "journal to live claims only)");

  // A missing journal is not an error — the rule just has nothing to say.
  std::filesystem::remove(journal);
  auto empty = LintRuntimeState(engine, options);
  ASSERT_TRUE(empty.ok()) << empty.status();
  EXPECT_EQ(empty->issues().size(), 0u);
}

// --- AV013 replication-degraded ---------------------------------------------

// Builds the shape AdeptCluster::ReplicationStatus().ToJson() emits.
JsonValue PeerJson(const std::string& endpoint, const std::string& health,
                   uint64_t acked, int64_t silence_ms) {
  JsonValue p = JsonValue::MakeObject();
  p.Set("endpoint", JsonValue(endpoint));
  p.Set("streaming", JsonValue(health == "alive"));
  p.Set("health", JsonValue(health));
  p.Set("acked_lsn", JsonValue(acked));
  p.Set("silence_ms", JsonValue(silence_ms));
  return p;
}

JsonValue ShardStatusJson(uint64_t shard, bool fenced, bool quorum_live,
                          std::vector<JsonValue> peers) {
  JsonValue peer_list = JsonValue::MakeArray();
  for (JsonValue& p : peers) peer_list.Append(std::move(p));
  JsonValue s = JsonValue::MakeObject();
  s.Set("shard", JsonValue(shard));
  s.Set("epoch", JsonValue(uint64_t{2}));
  s.Set("local_durable", JsonValue(uint64_t{10}));
  s.Set("quorum_acked", JsonValue(uint64_t{10}));
  s.Set("quorum", JsonValue(int64_t{2}));
  s.Set("fenced", JsonValue(fenced));
  s.Set("quorum_live", JsonValue(quorum_live));
  s.Set("tail_evictions", JsonValue(uint64_t{0}));
  s.Set("tail_frames", JsonValue(int64_t{0}));
  s.Set("tail_bytes", JsonValue(int64_t{0}));
  s.Set("peers", std::move(peer_list));
  return s;
}

JsonValue ReplStatusJson(bool attached, std::vector<JsonValue> shards) {
  JsonValue shard_list = JsonValue::MakeArray();
  for (JsonValue& s : shards) shard_list.Append(std::move(s));
  JsonValue j = JsonValue::MakeObject();
  j.Set("attached", JsonValue(attached));
  j.Set("epoch", JsonValue(uint64_t{2}));
  j.Set("degraded", JsonValue(true));
  j.Set("shards", std::move(shard_list));
  return j;
}

// A fenced shard is an error, a below-quorum shard a warning naming every
// non-alive peer; a healthy shard and a detached dump stay silent.
TEST(StateLintTest, ReplicationDegradedGoldenReport) {
  VerificationReport report;
  LintReplicationStatus(
      ReplStatusJson(
          true,
          {ShardStatusJson(0, /*fenced=*/true, /*quorum_live=*/false,
                           {PeerJson("127.0.0.1:7001", "alive", 10, 40)}),
           ShardStatusJson(1, /*fenced=*/false, /*quorum_live=*/false,
                           {PeerJson("127.0.0.1:7001", "dead", 4, 4500),
                            PeerJson("127.0.0.1:7002", "dead", 6, 5000)}),
           ShardStatusJson(2, /*fenced=*/false, /*quorum_live=*/true,
                           {PeerJson("127.0.0.1:7001", "alive", 10, 40)})}),
      &report);
  EXPECT_EQ(
      report.ToJson().Dump(),
      std::string(R"({"errors":1,"findings":[{)") +
          R"("fix_hint":"stop routing writes to this node; rejoin its )" +
          R"(file set as a replica of the promoted primary (the stale )" +
          R"x(suffix is snapshot-reset away)",)x" +
          R"("message":"shard 0's primary is fenced by a newer epoch )" +
          R"((own epoch 2): this lineage was deposed and rejects every )" +
          R"(write","rule":"replication-degraded","rule_id":"AV013",)" +
          R"("severity":"error","span":[]},{)" +
          R"("fix_hint":"restore connectivity to (or restart) the dead )" +
          R"(replicas, or let the failover coordinator promote a standby )" +
          R"(quorum",)" +
          R"("message":"shard 1 is below its live quorum (1 of 2 )" +
          R"(required copies live): writes fail fast, reads serve )" +
          R"(degraded (127.0.0.1:7001 dead for 4500ms, 127.0.0.1:7002 )" +
          R"x(dead for 5000ms)","rule":"replication-degraded",)x" +
          R"("rule_id":"AV013","severity":"warning","span":[]}],)" +
          R"("ok":false,"warnings":1})");

  // Replication never attached: nothing to say, whatever the shards hold.
  VerificationReport detached;
  LintReplicationStatus(
      ReplStatusJson(false, {ShardStatusJson(0, true, false, {})}),
      &detached);
  EXPECT_EQ(detached.ToJson().Dump(),
            R"({"errors":0,"findings":[],"ok":true,"warnings":0})");
}

// The file-fed path adept_lint --repl-status uses: the dump is read,
// parsed, and folded into the runtime report next to AV011/AV012.
TEST(StateLintTest, ReplicationStatusFileFoldsIntoRuntimeReport) {
  Engine engine;
  const std::string path = TempPath("adept_state_lint_repl_status.json");
  {
    std::ofstream out(path);
    out << ReplStatusJson(
               true, {ShardStatusJson(3, /*fenced=*/false,
                                      /*quorum_live=*/false,
                                      {PeerJson("127.0.0.1:9000", "suspect",
                                                8, 1500)})})
               .Dump();
  }
  StateLintOptions options;
  options.repl_status_path = path;
  auto report = LintRuntimeState(engine, options);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->issues().size(), 1u);
  EXPECT_EQ(std::string(VerifyRuleId(report->issues()[0].rule)), "AV013");
  EXPECT_EQ(report->issues()[0].severity, VerifySeverity::kWarning);
  // A suspect peer still counts toward the live copies, but is named.
  EXPECT_EQ(report->issues()[0].message,
            "shard 3 is below its live quorum (2 of 2 required copies "
            "live): writes fail fast, reads serve degraded "
            "(127.0.0.1:9000 suspect for 1500ms)");
  std::filesystem::remove(path);

  // Unlike the claim journal, a named-but-missing dump is an error: the
  // flag promises a file the caller just wrote.
  auto missing = LintRuntimeState(engine, options);
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace adept
