#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "change/change_op.h"
#include "core/adept.h"
#include "monitor/monitor.h"
#include "storage/wal.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::OnlineOrderV1;
using testing_fixtures::SequenceSchema;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_core_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

AdeptOptions DurableOptions(const TempDir& dir) {
  AdeptOptions options;
  options.wal_path = dir.File("adept.wal");
  options.snapshot_path = dir.File("adept.snapshot");
  return options;
}

// Fig. 1's Delta-T against the deployed V1 schema.
Delta MakeTypeChange(const ProcessSchema& v1) {
  NodeId compose = v1.FindNodeByName("compose order");
  NodeId confirm = v1.FindNodeByName("confirm order");
  NodeId join = v1.FindNodeByName("and_join");
  Delta probe;
  NewActivitySpec spec;
  spec.name = "send questions";
  auto* op = probe.Add(std::make_unique<SerialInsertOp>(spec, compose, join));
  EXPECT_TRUE(probe.ApplyToSchema(v1).ok());
  Delta delta;
  delta.Add(op->Clone());
  delta.Add(std::make_unique<InsertSyncEdgeOp>(
      static_cast<SerialInsertOp*>(op)->inserted_node(), confirm));
  return delta;
}

TEST(AdeptSystemTest, EndToEndLifecycle) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;

  auto v1_id = adept.DeployProcessType(OnlineOrderV1());
  ASSERT_TRUE(v1_id.ok()) << v1_id.status();
  EXPECT_EQ(*adept.LatestVersion("online_order"), *v1_id);

  auto instance = adept.CreateInstance("online_order");
  ASSERT_TRUE(instance.ok());
  auto created = adept.SnapshotOf(*instance);
  ASSERT_NE(created, nullptr);
  EXPECT_FALSE(created->finished);

  SimulationDriver driver({.seed = 3});
  ASSERT_TRUE(adept.DriveToCompletion(*instance, driver).ok());
  EXPECT_TRUE(adept.SnapshotOf(*instance)->finished);
}

// Regression for the warning-discarding bug: Deploy used to run the
// verifier through VerifySchemaOrError, which throws away kNaming /
// kLostUpdate / kDataRace warnings. The full report must be retrievable
// for type versions and for biased instances.
TEST(AdeptSystemTest, VerificationWarningsAreRetained) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;

  // A correct-but-warned schema: duplicate activity names.
  SchemaBuilder b("warned", 1);
  b.Activity("step");
  b.Activity("step");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  auto v1_id = adept.DeployProcessType(*schema);
  ASSERT_TRUE(v1_id.ok()) << v1_id.status();

  auto report = adept.SchemaReport(*v1_id);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE((*report)->ok());
  ASSERT_EQ((*report)->warning_count(), 1u);
  EXPECT_EQ((*report)->issues()[0].rule, VerifyRule::kNaming);

  // Evolving keeps the (still present) warning in the new version's report.
  Delta delta;
  NewActivitySpec spec;
  spec.name = "extra";
  NodeId first = (*schema)->FindNodeByName("step");
  auto succs = (*schema)->Successors(first, EdgeType::kControl);
  ASSERT_FALSE(succs.empty());
  delta.Add(std::make_unique<SerialInsertOp>(spec, first, succs[0]));
  auto v2_id = adept.EvolveProcessType(*v1_id, std::move(delta));
  ASSERT_TRUE(v2_id.ok()) << v2_id.status();
  auto v2_report = adept.SchemaReport(*v2_id);
  ASSERT_TRUE(v2_report.ok());
  EXPECT_EQ((*v2_report)->warning_count(), 1u);

  // An ad-hoc change that introduces a race: warnings must be retrievable
  // on the biased instance (previously silently dropped).
  auto inst = adept.CreateInstanceOn(*v1_id);
  ASSERT_TRUE(inst.ok());
  EXPECT_FALSE(adept.InstanceReport(*inst).ok());  // unbiased: no report

  Delta bias;
  NewActivitySpec extra;
  extra.name = "biased step";
  auto succs2 = (*schema)->Successors(first, EdgeType::kControl);
  bias.Add(std::make_unique<SerialInsertOp>(extra, first, succs2[0]));
  ASSERT_TRUE(adept.ApplyAdHocChange(*inst, std::move(bias)).ok());
  auto inst_report = adept.InstanceReport(*inst);
  ASSERT_TRUE(inst_report.ok());
  EXPECT_TRUE((*inst_report)->ok());
  EXPECT_EQ((*inst_report)->warning_count(), 1u);  // duplicate names persist
}

TEST(AdeptSystemTest, UnknownEntitiesRejected) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  EXPECT_FALSE(adept.CreateInstance("no such type").ok());
  EXPECT_FALSE(adept.StartActivity(InstanceId(99), NodeId(0)).ok());
  EXPECT_FALSE(adept.LatestVersion("nope").ok());
  EXPECT_EQ(adept.SnapshotOf(InstanceId(1)), nullptr);
}

TEST(AdeptSystemTest, EvolveAndMigrateThroughFacade) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;

  auto v1 = OnlineOrderV1();
  auto v1_id = adept.DeployProcessType(v1);
  ASSERT_TRUE(v1_id.ok());

  auto i1 = adept.CreateInstance("online_order");
  ASSERT_TRUE(i1.ok());
  NodeId get_order = v1->FindNodeByName("get order");
  ASSERT_TRUE(adept.StartActivity(*i1, get_order).ok());
  ASSERT_TRUE(adept.CompleteActivity(*i1, get_order).ok());

  auto v2_id = adept.EvolveProcessType(*v1_id, MakeTypeChange(*v1));
  ASSERT_TRUE(v2_id.ok()) << v2_id.status();

  auto report = adept.Migrate(*v1_id, *v2_id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->MigratedTotal(), 1u);
  EXPECT_EQ(adept.SnapshotOf(*i1)->schema->version(), 2);

  std::string rendered = RenderMigrationReport(*report);
  EXPECT_NE(rendered.find("1/1 migrated"), std::string::npos);
}

TEST(AdeptSystemTest, MigrateToLatestCrossesVersions) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;

  auto v1 = SequenceSchema(4, "chain");
  auto v1_id = adept.DeployProcessType(v1);
  ASSERT_TRUE(v1_id.ok());
  auto inst = adept.CreateInstance("chain");
  ASSERT_TRUE(inst.ok());

  // V2: insert after a2; V3: insert after a3.
  Delta d2;
  NewActivitySpec s2;
  s2.name = "b1";
  d2.Add(std::make_unique<SerialInsertOp>(s2, v1->FindNodeByName("a2"),
                                          v1->FindNodeByName("a3")));
  auto v2_id = adept.EvolveProcessType(*v1_id, std::move(d2));
  ASSERT_TRUE(v2_id.ok());
  Delta d3;
  NewActivitySpec s3;
  s3.name = "b2";
  d3.Add(std::make_unique<SerialInsertOp>(s3, v1->FindNodeByName("a3"),
                                          v1->FindNodeByName("a4")));
  auto v3_id = adept.EvolveProcessType(*v2_id, std::move(d3));
  ASSERT_TRUE(v3_id.ok());

  auto report = adept.MigrateToLatest("chain");
  ASSERT_TRUE(report.ok()) << report.status();
  auto snapshot = adept.SnapshotOf(*inst);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->schema->version(), 3);
  EXPECT_TRUE(snapshot->schema->FindNodeByName("b1").valid());
  EXPECT_TRUE(snapshot->schema->FindNodeByName("b2").valid());
}

TEST(AdeptSystemTest, WorklistIntegration) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;

  auto clerk = adept.org().AddRole("clerk");
  ASSERT_TRUE(clerk.ok());
  auto alice = adept.org().AddUser("alice");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(adept.org().AssignRole(*alice, *clerk).ok());

  SchemaBuilder b("office", 1);
  b.Activity("file papers", {.role = *clerk});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(adept.DeployProcessType(*schema).ok());
  auto inst = adept.CreateInstance("office");
  ASSERT_TRUE(inst.ok());

  auto offers = adept.worklists().OffersFor(*alice);
  ASSERT_EQ(offers.size(), 1u);
  ASSERT_TRUE(adept.worklists().Claim(offers[0].id, *alice).ok());
  ASSERT_TRUE(adept.StartActivity(*inst, offers[0].node).ok());
  ASSERT_TRUE(adept.CompleteActivity(*inst, offers[0].node).ok());
  EXPECT_TRUE(adept.SnapshotOf(*inst)->finished);
}

TEST(AdeptSystemTest, WalRecoveryRestoresFullState) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);

  InstanceId running_id, biased_id;
  std::string running_render, biased_render;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = OnlineOrderV1();
    auto v1_id = adept.DeployProcessType(v1);
    ASSERT_TRUE(v1_id.ok());

    auto i1 = adept.CreateInstance("online_order");
    ASSERT_TRUE(i1.ok());
    running_id = *i1;
    NodeId get_order = v1->FindNodeByName("get order");
    ASSERT_TRUE(adept.StartActivity(running_id, get_order).ok());
    ASSERT_TRUE(adept.CompleteActivity(running_id, get_order).ok());

    auto i2 = adept.CreateInstance("online_order");
    ASSERT_TRUE(i2.ok());
    biased_id = *i2;
    Delta bias;
    NewActivitySpec spec;
    spec.name = "verify address";
    bias.Add(std::make_unique<SerialInsertOp>(
        spec, v1->FindNodeByName("get order"),
        v1->FindNodeByName("collect data")));
    ASSERT_TRUE(adept.ApplyAdHocChange(biased_id, std::move(bias)).ok());

    running_render = RenderInstance(*adept.SnapshotOf(running_id));
    biased_render = RenderInstance(*adept.SnapshotOf(biased_id));
  }  // system destroyed ("crash")

  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  AdeptSystem& adept = **recovered;

  auto running = adept.SnapshotOf(running_id);
  ASSERT_NE(running, nullptr);
  EXPECT_EQ(RenderInstance(*running), running_render);

  auto biased = adept.SnapshotOf(biased_id);
  ASSERT_NE(biased, nullptr);
  EXPECT_TRUE(biased->biased);
  EXPECT_EQ(RenderInstance(*biased), biased_render);
  EXPECT_TRUE(biased->schema->FindNodeByName("verify address").valid());

  // The recovered system keeps working (and logging).
  SimulationDriver driver({.seed = 4});
  ASSERT_TRUE(adept.DriveToCompletion(running_id, driver).ok());
  ASSERT_TRUE(adept.DriveToCompletion(biased_id, driver).ok());
}

// Regression for the ROADMAP item "recovery scans+parses the WAL twice":
// Recover() performs exactly one parse pass (the replay scan seeds the
// reopened writer via OpenScanned).
TEST(AdeptSystemTest, RecoverParsesWalExactlyOnce) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = OnlineOrderV1();
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());
    auto id = adept.CreateInstance("online_order");
    ASSERT_TRUE(id.ok());
    NodeId get_order = v1->FindNodeByName("get order");
    ASSERT_TRUE(adept.StartActivity(*id, get_order).ok());
    ASSERT_TRUE(adept.CompleteActivity(*id, get_order).ok());
  }

  const uint64_t scans_before = WriteAheadLog::scan_count();
  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(WriteAheadLog::scan_count() - scans_before, 1u);

  // The single-scan recovery is complete: state replayed, log appendable.
  ASSERT_NE((*recovered)->SnapshotOf(InstanceId(1)), nullptr);
  SimulationDriver driver({.seed = 11});
  ASSERT_TRUE((*recovered)->DriveToCompletion(InstanceId(1), driver).ok());
}

TEST(AdeptSystemTest, WalRecoveryReplaysMigration) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  InstanceId inst_id;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = OnlineOrderV1();
    auto v1_id = adept.DeployProcessType(v1);
    ASSERT_TRUE(v1_id.ok());
    auto inst = adept.CreateInstance("online_order");
    ASSERT_TRUE(inst.ok());
    inst_id = *inst;
    auto v2_id = adept.EvolveProcessType(*v1_id, MakeTypeChange(*v1));
    ASSERT_TRUE(v2_id.ok());
    auto report = adept.Migrate(*v1_id, *v2_id);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->MigratedTotal(), 1u);
  }
  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->SnapshotOf(inst_id)->schema->version(), 2);
}

TEST(AdeptSystemTest, CrashTruncatedWalRecoversPrefix) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = SequenceSchema(3, "crashy");
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());
    auto inst = adept.CreateInstance("crashy");
    ASSERT_TRUE(inst.ok());
    NodeId a1 = v1->FindNodeByName("a1");
    ASSERT_TRUE(adept.StartActivity(*inst, a1).ok());
    ASSERT_TRUE(adept.CompleteActivity(*inst, a1).ok());
  }
  // Crash injection: chop the tail mid-record.
  auto size = std::filesystem::file_size(options.wal_path);
  std::filesystem::resize_file(options.wal_path, size - 7);

  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto snapshot = (*recovered)->SnapshotOf(InstanceId(1));
  ASSERT_NE(snapshot, nullptr);
  // The damaged record (a1's completion) is lost; a1 is Running again.
  NodeId a1 = snapshot->schema->FindNodeByName("a1");
  EXPECT_EQ(snapshot->marking.node(a1), NodeState::kRunning);
}

TEST(AdeptSystemTest, SnapshotCheckpointAndTailReplay) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  InstanceId inst_id;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = SequenceSchema(3, "snappy");
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());
    auto inst = adept.CreateInstance("snappy");
    ASSERT_TRUE(inst.ok());
    inst_id = *inst;
    NodeId a1 = v1->FindNodeByName("a1");
    ASSERT_TRUE(adept.StartActivity(inst_id, a1).ok());
    ASSERT_TRUE(adept.CompleteActivity(inst_id, a1).ok());

    // Checkpoint: snapshot + WAL truncation.
    ASSERT_TRUE(adept.SaveSnapshot().ok());
    EXPECT_LT(std::filesystem::file_size(options.wal_path), 10u);

    // Post-snapshot tail.
    NodeId a2 = v1->FindNodeByName("a2");
    ASSERT_TRUE(adept.StartActivity(inst_id, a2).ok());
    ASSERT_TRUE(adept.CompleteActivity(inst_id, a2).ok());
  }
  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto snapshot = (*recovered)->SnapshotOf(inst_id);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->marking.node(snapshot->schema->FindNodeByName("a1")),
            NodeState::kCompleted);
  EXPECT_EQ(snapshot->marking.node(snapshot->schema->FindNodeByName("a2")),
            NodeState::kCompleted);
  EXPECT_EQ(snapshot->marking.node(snapshot->schema->FindNodeByName("a3")),
            NodeState::kActivated);
}

// Regression for the checkpoint double-apply window: when the WAL
// truncation after a successful snapshot write is lost (crash, I/O error),
// the stale records survive in the log — but they carry LSNs at or below
// the snapshot's recorded coverage, so recovery must skip them instead of
// replaying deploy/create/complete a second time.
TEST(AdeptSystemTest, StaleWalAfterSnapshotIsNotDoubleApplied) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  InstanceId inst_id;
  std::string pre_snapshot_wal;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = SequenceSchema(3, "chk");
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());
    auto inst = adept.CreateInstance("chk");
    ASSERT_TRUE(inst.ok());
    inst_id = *inst;
    NodeId a1 = v1->FindNodeByName("a1");
    ASSERT_TRUE(adept.StartActivity(inst_id, a1).ok());
    ASSERT_TRUE(adept.CompleteActivity(inst_id, a1).ok());

    {
      std::ifstream in(options.wal_path, std::ios::binary);
      std::stringstream buffer;
      buffer << in.rdbuf();
      pre_snapshot_wal = buffer.str();
    }
    ASSERT_FALSE(pre_snapshot_wal.empty());

    ASSERT_TRUE(adept.SaveSnapshot().ok());
  }
  // Crash injection: undo the truncation, as if it never reached the disk.
  {
    std::ofstream out(options.wal_path, std::ios::binary);
    out << pre_snapshot_wal;
  }

  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto recovered_snapshot = (*recovered)->SnapshotOf(inst_id);
  ASSERT_NE(recovered_snapshot, nullptr);
  // a1 completed exactly once; without LSN skipping the replayed "deploy"
  // record already fails recovery with kAlreadyExists.
  EXPECT_EQ(recovered_snapshot->marking.node(
                recovered_snapshot->schema->FindNodeByName("a1")),
            NodeState::kCompleted);
  EXPECT_EQ((*recovered)->engine().InstanceIds().size(), 1u);
}

// Regression: after a checkpoint truncates the WAL, the file alone no
// longer remembers how far LSN numbering got. A restarted system must
// resume above the snapshot's covered LSN — otherwise the records of the
// restarted run land at LSN 1.. and the *next* recovery skips them as
// "already covered by the snapshot".
TEST(AdeptSystemTest, LsnNumberingSurvivesCheckpointRestart) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  InstanceId inst_id;
  NodeId a1;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    auto v1 = SequenceSchema(3, "restart");
    ASSERT_TRUE((*system)->DeployProcessType(v1).ok());
    auto inst = (*system)->CreateInstance("restart");
    ASSERT_TRUE(inst.ok());
    inst_id = *inst;
    a1 = v1->FindNodeByName("a1");
    ASSERT_TRUE((*system)->SaveSnapshot().ok());  // covers LSN 2, truncates
  }
  {
    // Clean restart: these two ops are the entire WAL of this run.
    auto system = AdeptSystem::Recover(options);
    ASSERT_TRUE(system.ok()) << system.status();
    ASSERT_TRUE((*system)->StartActivity(inst_id, a1).ok());
    ASSERT_TRUE((*system)->CompleteActivity(inst_id, a1).ok());
  }
  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto snapshot = (*recovered)->SnapshotOf(inst_id);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->marking.node(a1), NodeState::kCompleted);
}

TEST(AdeptSystemTest, SnapshotPersistsBiasedInstances) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  InstanceId inst_id;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = OnlineOrderV1();
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());
    auto inst = adept.CreateInstance("online_order");
    ASSERT_TRUE(inst.ok());
    inst_id = *inst;
    Delta bias;
    NewActivitySpec spec;
    spec.name = "extra check";
    bias.Add(std::make_unique<SerialInsertOp>(
        spec, v1->FindNodeByName("pack goods"),
        v1->FindNodeByName("deliver goods")));
    ASSERT_TRUE(adept.ApplyAdHocChange(inst_id, std::move(bias)).ok());
    ASSERT_TRUE(adept.SaveSnapshot().ok());
  }
  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto recovered_snapshot = (*recovered)->SnapshotOf(inst_id);
  ASSERT_NE(recovered_snapshot, nullptr);
  EXPECT_TRUE(recovered_snapshot->biased);
  EXPECT_TRUE(
      recovered_snapshot->schema->FindNodeByName("extra check").valid());
  EXPECT_TRUE((*recovered)->store().IsBiased(inst_id));
}

TEST(AdeptSystemTest, RecoveredSystemIsDeterministicReplica) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  std::vector<std::string> renders_before;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = testing_fixtures::ComplexSchema();
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());
    SimulationDriver driver({.seed = 11});
    for (int i = 0; i < 5; ++i) {
      auto inst = adept.CreateInstance("complex");
      ASSERT_TRUE(inst.ok());
      for (int s = 0; s < i * 2; ++s) {
        auto progressed = adept.DriveStep(*inst, driver);
        ASSERT_TRUE(progressed.ok());
        if (!*progressed) break;
      }
      renders_before.push_back(RenderInstance(*adept.SnapshotOf(*inst)));
    }
  }
  auto recovered = AdeptSystem::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (size_t i = 0; i < renders_before.size(); ++i) {
    auto snapshot = (*recovered)->SnapshotOf(InstanceId(i + 1));
    ASSERT_NE(snapshot, nullptr);
    EXPECT_EQ(RenderInstance(*snapshot), renders_before[i])
        << "instance " << i;
  }
}

// Regression for the checkpoint double-serialization bug: SaveSnapshot
// used to re-serialize the full state of every instance on every
// checkpoint, even when nothing changed since the previous one. The
// facade now keys a per-instance serialization cache on the published
// snapshot version (every mutation republishes, so the version is a
// change fingerprint) — unchanged instances must cost zero fresh
// serializations.
TEST(AdeptSystemTest, CheckpointSkipsUnchangedInstances) {
  TempDir dir;
  auto system = AdeptSystem::Create(DurableOptions(dir));
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  auto v1 = SequenceSchema(3, "chk");
  ASSERT_TRUE(adept.DeployProcessType(v1).ok());
  InstanceId insts[3];
  for (InstanceId& id : insts) {
    auto created = adept.CreateInstance("chk");
    ASSERT_TRUE(created.ok());
    id = *created;
  }
  NodeId a1 = v1->FindNodeByName("a1");
  ASSERT_TRUE(adept.StartActivity(insts[0], a1).ok());

  uint64_t before = adept.full_state_serializations();
  ASSERT_TRUE(adept.SaveSnapshot().ok());
  EXPECT_EQ(adept.full_state_serializations() - before, 3u)
      << "first checkpoint serializes every instance";

  before = adept.full_state_serializations();
  ASSERT_TRUE(adept.SaveSnapshot().ok());
  EXPECT_EQ(adept.full_state_serializations() - before, 0u)
      << "checkpoint with no intervening mutation must reuse the cache";

  ASSERT_TRUE(adept.StartActivity(insts[1], a1).ok());
  before = adept.full_state_serializations();
  ASSERT_TRUE(adept.SaveSnapshot().ok());
  EXPECT_EQ(adept.full_state_serializations() - before, 1u)
      << "only the mutated instance pays a fresh serialization";

  // Evict + re-import restarts publication versions at 1 — the cache
  // entry must be purged, not left to alias the old version numbering.
  auto exported = adept.ExportInstance(insts[2]);
  ASSERT_TRUE(exported.ok());
  ASSERT_TRUE(adept.EvictInstance(insts[2]).ok());
  ASSERT_TRUE(adept.ImportInstance(*exported).ok());
  before = adept.full_state_serializations();
  ASSERT_TRUE(adept.SaveSnapshot().ok());
  EXPECT_EQ(adept.full_state_serializations() - before, 1u)
      << "re-imported instance must be re-serialized exactly once";

  // And the cached bytes must be correct: a cold recovery off the final
  // checkpoint sees all three instances with their exact states.
  auto recovered = AdeptSystem::Recover(DurableOptions(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  for (int i = 0; i < 3; ++i) {
    auto snapshot = (*recovered)->SnapshotOf(insts[i]);
    ASSERT_NE(snapshot, nullptr) << "instance " << i;
    EXPECT_EQ(snapshot->marking.node(a1),
              i < 2 ? NodeState::kRunning : NodeState::kActivated)
        << "instance " << i;
  }
}

void StripKeyRecursively(JsonValue& value, const std::string& key) {
  if (value.is_object()) {
    value.as_object().erase(key);
    for (auto& [k, child] : value.as_object()) StripKeyRecursively(child, key);
  } else if (value.is_array()) {
    for (JsonValue& child : value.as_array()) StripKeyRecursively(child, key);
  }
}

// Compatibility with pre-refactor WALs: ad-hoc records used to log the
// full *cumulative* bias under "bias" (today only the appended ops ship,
// under "delta"), and serialized instance state had no "asince" stamps.
// A WAL rewritten into that old shape must still recover — and for
// instances the asince stamps can be rebuilt for (no import records),
// byte-identically.
TEST(AdeptSystemTest, LegacyFullStateWalRecordsReplay) {
  TempDir dir;
  AdeptOptions options = DurableOptions(dir);
  InstanceId biased_id;
  InstanceId imported_id;
  std::string biased_export;
  {
    auto system = AdeptSystem::Create(options);
    ASSERT_TRUE(system.ok());
    AdeptSystem& adept = **system;
    auto v1 = OnlineOrderV1();
    ASSERT_TRUE(adept.DeployProcessType(v1).ok());

    auto created = adept.CreateInstance("online_order");
    ASSERT_TRUE(created.ok());
    biased_id = *created;
    NodeId get_order = v1->FindNodeByName("get order");
    ASSERT_TRUE(adept.StartActivity(biased_id, get_order).ok());
    ASSERT_TRUE(adept.CompleteActivity(biased_id, get_order).ok());
    // Two separate ad-hoc changes on distinct edges, so the legacy
    // cumulative encoding genuinely differs from both per-change deltas.
    NodeId confirm = v1->FindNodeByName("confirm order");
    auto confirm_succs = v1->Successors(confirm, EdgeType::kControl);
    ASSERT_FALSE(confirm_succs.empty());
    const std::pair<const char*, std::pair<NodeId, NodeId>> changes[] = {
        {"extra check",
         {v1->FindNodeByName("pack goods"),
          v1->FindNodeByName("deliver goods")}},
        {"second check", {confirm, confirm_succs[0]}},
    };
    for (const auto& [name, edge] : changes) {
      Delta bias;
      NewActivitySpec spec;
      spec.name = name;
      bias.Add(
          std::make_unique<SerialInsertOp>(spec, edge.first, edge.second));
      ASSERT_TRUE(adept.ApplyAdHocChange(biased_id, std::move(bias)).ok());
    }

    auto second = adept.CreateInstance("online_order");
    ASSERT_TRUE(second.ok());
    imported_id = *second;
    auto exported = adept.ExportInstance(imported_id);
    ASSERT_TRUE(exported.ok());
    ASSERT_TRUE(adept.EvictInstance(imported_id).ok());
    ASSERT_TRUE(adept.ImportInstance(*exported).ok());

    auto reference = adept.ExportInstance(biased_id);
    ASSERT_TRUE(reference.ok());
    biased_export = reference->Dump();
  }  // destroyed without SaveSnapshot: the WAL alone carries the history

  // Rewrite the modern WAL into the pre-refactor shape.
  auto records = WriteAheadLog::ReadAll(options.wal_path);
  ASSERT_TRUE(records.ok());
  TempDir legacy_dir;
  AdeptOptions legacy_options = DurableOptions(legacy_dir);
  {
    auto legacy_wal = WriteAheadLog::Open(legacy_options.wal_path);
    ASSERT_TRUE(legacy_wal.ok());
    // Per-instance cumulative op arrays, rebuilt record by record.
    std::map<int64_t, JsonValue> cumulative;
    int rewritten = 0;
    for (JsonValue record : *records) {
      if (record.Get("t").as_string() == "adhoc") {
        ASSERT_TRUE(record.Has("delta"));
        const int64_t id = record.Get("id").as_int();
        auto [it, inserted] = cumulative.emplace(id, JsonValue::MakeArray());
        for (const JsonValue& op :
             record.Get("delta").Get("ops").as_array()) {
          it->second.Append(op);
        }
        JsonValue bias = JsonValue::MakeObject();
        bias.Set("ops", it->second);
        JsonValue legacy = JsonValue::MakeObject();
        legacy.Set("t", JsonValue("adhoc"));
        legacy.Set("id", record.Get("id"));
        legacy.Set("bias", std::move(bias));
        record = std::move(legacy);
        ++rewritten;
      }
      StripKeyRecursively(record, "asince");
      ASSERT_TRUE((*legacy_wal)->Append(record).ok());
    }
    ASSERT_EQ(rewritten, 2) << "both ad-hoc records must be rewritten";
  }

  auto recovered = AdeptSystem::Recover(legacy_options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // The biased instance never crossed an import, so every stamp is
  // rebuilt by replay: its export must match the modern bytes exactly.
  auto replayed = (*recovered)->ExportInstance(biased_id);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->Dump(), biased_export);
  // The imported instance lost its stamps with the record: recovery must
  // still land it in the right state, with deterministic default stamps
  // for the in-flight nodes.
  auto snapshot = (*recovered)->SnapshotOf(imported_id);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_FALSE(snapshot->finished);
  size_t stamped = 0;
  snapshot->activated_nodes.ForEach([&](NodeId node) {
    if (snapshot->activated_since.Find(node) != nullptr) ++stamped;
  });
  EXPECT_EQ(stamped, snapshot->activated_nodes.size());
}

}  // namespace
}  // namespace adept
