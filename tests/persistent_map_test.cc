// Unit tests for the persistent (structurally shared) map/set that
// instance state is rebased on. These pin the properties the runtime
// relies on: O(1) copies that never observe later mutations, canonical
// trie shapes (equality independent of mutation history), structural
// diff visiting only changed entries, and deep-chunk collision handling
// (keys sharing long low-bit prefixes, including zero).

#include "common/persistent_map.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/ids.h"

namespace adept {
namespace {

TEST(PersistentMapTest, EmptyMap) {
  PersistentMap<uint64_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(7), nullptr);
  EXPECT_FALSE(map.Contains(7));
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_FALSE(map.Erase(7));
}

TEST(PersistentMapTest, SetFindEraseBasic) {
  PersistentMap<uint64_t, int> map;
  map.Set(1, 10);
  map.Set(2, 20);
  map.Set(1, 11);  // replace
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.Find(1), nullptr);
  EXPECT_EQ(*map.Find(1), 11);
  EXPECT_EQ(*map.Find(2), 20);
  EXPECT_TRUE(map.Erase(1));
  EXPECT_FALSE(map.Erase(1));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.Find(1), nullptr);
}

// Keys that collide on every low chunk force the deep-split path; key 0
// in particular has an all-zero path at every level.
TEST(PersistentMapTest, DeepChunkCollisions) {
  PersistentMap<uint64_t, int> map;
  // 0, 32, 1024, 32768 share chunk 0 (and pairwise share deeper chunks).
  const std::vector<uint64_t> keys = {32, 1024, 0, 32768, 1, 33};
  for (size_t i = 0; i < keys.size(); ++i) {
    map.Set(keys[i], static_cast<int>(i));
  }
  EXPECT_EQ(map.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_NE(map.Find(keys[i]), nullptr) << keys[i];
    EXPECT_EQ(*map.Find(keys[i]), static_cast<int>(i));
  }
  for (uint64_t key : keys) {
    EXPECT_TRUE(map.Erase(key));
  }
  EXPECT_TRUE(map.empty());
}

// Inserting key 0 into a slot whose resident leaf shares a long zero
// prefix (the case that needs an explicit depth, not one recovered from
// the remaining bits).
TEST(PersistentMapTest, ZeroKeyCollidesAtDepth) {
  PersistentMap<uint64_t, int> map;
  map.Set(32, 1);    // chunk path 0, 1
  map.Set(1024, 2);  // chunk path 0, 0, 1
  map.Set(0, 3);     // chunk path 0, 0, 0, ...
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(*map.Find(32), 1);
  EXPECT_EQ(*map.Find(1024), 2);
  EXPECT_EQ(*map.Find(0), 3);
}

TEST(PersistentMapTest, CopiesAreImmutable) {
  PersistentMap<uint64_t, int> map;
  for (uint64_t i = 0; i < 100; ++i) map.Set(i, static_cast<int>(i));
  PersistentMap<uint64_t, int> frozen = map;
  ASSERT_TRUE(frozen.SameRoot(map));
  for (uint64_t i = 0; i < 100; ++i) map.Set(i, static_cast<int>(i) + 1000);
  map.Set(500, 1);
  map.Erase(3);
  EXPECT_FALSE(frozen.SameRoot(map));
  EXPECT_EQ(frozen.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_NE(frozen.Find(i), nullptr);
    EXPECT_EQ(*frozen.Find(i), static_cast<int>(i));
  }
  EXPECT_EQ(frozen.Find(500), nullptr);
}

TEST(PersistentMapTest, EqualityIndependentOfHistory) {
  PersistentMap<uint64_t, int> a;
  PersistentMap<uint64_t, int> b;
  for (uint64_t i = 0; i < 200; ++i) a.Set(i, 1);
  for (uint64_t i = 200; i-- > 0;) b.Set(i, 1);
  // Same content via different insertion orders.
  EXPECT_EQ(a, b);
  // Erase forces collapse; shapes must stay canonical.
  for (uint64_t i = 0; i < 200; i += 2) {
    a.Erase(i);
    b.Erase(i);
  }
  EXPECT_EQ(a, b);
  b.Set(1, 2);
  EXPECT_NE(a, b);
  b.Set(1, 1);
  EXPECT_EQ(a, b);
}

TEST(PersistentMapTest, IterationYieldsAllEntries) {
  PersistentMap<uint64_t, int> map;
  std::map<uint64_t, int> reference;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 500; ++i) {
    uint64_t key = rng() % 10000;
    map.Set(key, i);
    reference[key] = i;
  }
  std::map<uint64_t, int> seen;
  for (const auto& [key, value] : map) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate " << key;
  }
  EXPECT_EQ(seen, reference);
  // ForEach agrees with the iterator.
  size_t count = 0;
  map.ForEach([&](uint64_t key, int value) {
    ++count;
    EXPECT_EQ(reference.at(key), value);
  });
  EXPECT_EQ(count, reference.size());
}

TEST(PersistentMapTest, VectorConstructionFromIterators) {
  PersistentMap<uint64_t, int> map;
  map.Set(5, 50);
  map.Set(9, 90);
  std::vector<std::pair<uint64_t, int>> entries(map.begin(), map.end());
  std::sort(entries.begin(), entries.end());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], std::make_pair(uint64_t{5}, 50));
  EXPECT_EQ(entries[1], std::make_pair(uint64_t{9}, 90));
}

TEST(PersistentMapTest, DiffReportsExactChanges) {
  PersistentMap<uint64_t, int> before;
  for (uint64_t i = 0; i < 300; ++i) before.Set(i, static_cast<int>(i));
  PersistentMap<uint64_t, int> after = before;
  after.Set(10, -1);   // changed
  after.Set(1000, 7);  // added
  after.Erase(20);     // removed
  std::map<uint64_t, std::pair<bool, bool>> events;  // key -> (has_b, has_a)
  before.DiffTo(after, [&](uint64_t key, const int* b, const int* a) {
    events[key] = {b != nullptr, a != nullptr};
    if (key == 10) {
      EXPECT_EQ(*b, 10);
      EXPECT_EQ(*a, -1);
    }
  });
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.at(10), std::make_pair(true, true));
  EXPECT_EQ(events.at(1000), std::make_pair(false, true));
  EXPECT_EQ(events.at(20), std::make_pair(true, false));
  // Diff against self (shared root) visits nothing.
  int self_events = 0;
  after.DiffTo(after, [&](uint64_t, const int*, const int*) { ++self_events; });
  EXPECT_EQ(self_events, 0);
}

TEST(PersistentMapTest, DiffAgainstEmpty) {
  PersistentMap<uint64_t, int> map;
  map.Set(3, 30);
  map.Set(4, 40);
  PersistentMap<uint64_t, int> empty;
  int additions = 0;
  empty.DiffTo(map, [&](uint64_t, const int* b, const int* a) {
    EXPECT_EQ(b, nullptr);
    EXPECT_NE(a, nullptr);
    ++additions;
  });
  EXPECT_EQ(additions, 2);
  int removals = 0;
  map.DiffTo(empty, [&](uint64_t, const int* b, const int* a) {
    EXPECT_NE(b, nullptr);
    EXPECT_EQ(a, nullptr);
    ++removals;
  });
  EXPECT_EQ(removals, 2);
}

TEST(PersistentMapTest, RandomizedAgainstStdMap) {
  PersistentMap<uint64_t, int> map;
  std::map<uint64_t, int> reference;
  std::vector<PersistentMap<uint64_t, int>> snapshots;
  std::vector<std::map<uint64_t, int>> reference_snapshots;
  std::mt19937_64 rng(7);
  for (int step = 0; step < 5000; ++step) {
    uint64_t key = rng() % 512;
    switch (rng() % 3) {
      case 0:
      case 1:
        map.Set(key, step);
        reference[key] = step;
        break;
      case 2: {
        bool erased = map.Erase(key);
        EXPECT_EQ(erased, reference.erase(key) > 0);
        break;
      }
    }
    EXPECT_EQ(map.size(), reference.size());
    if (step % 500 == 0) {
      snapshots.push_back(map);
      reference_snapshots.push_back(reference);
    }
  }
  std::map<uint64_t, int> materialized(map.begin(), map.end());
  EXPECT_EQ(materialized, reference);
  // Old snapshots still hold their historical content.
  for (size_t i = 0; i < snapshots.size(); ++i) {
    std::map<uint64_t, int> snap(snapshots[i].begin(), snapshots[i].end());
    EXPECT_EQ(snap, reference_snapshots[i]);
  }
}

TEST(PersistentMapTest, TypedIdKeys) {
  PersistentMap<NodeId, int> map;
  map.Set(NodeId(3), 1);
  map.Set(NodeId(900), 2);
  ASSERT_NE(map.Find(NodeId(3)), nullptr);
  EXPECT_EQ(*map.Find(NodeId(3)), 1);
  EXPECT_EQ(map.Find(NodeId(4)), nullptr);
  std::set<uint32_t> keys;
  for (const auto& [id, value] : map) {
    (void)value;
    keys.insert(id.value());
  }
  EXPECT_EQ(keys, (std::set<uint32_t>{3, 900}));
}

TEST(PersistentSetTest, BasicAndDiff) {
  PersistentSet<NodeId> set;
  set.Insert(NodeId(1));
  set.Insert(NodeId(2));
  set.Insert(NodeId(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(NodeId(1)));
  EXPECT_FALSE(set.Contains(NodeId(3)));

  PersistentSet<NodeId> frozen = set;
  set.Erase(NodeId(1));
  set.Insert(NodeId(3));
  EXPECT_TRUE(frozen.Contains(NodeId(1)));
  EXPECT_FALSE(frozen.Contains(NodeId(3)));

  std::set<uint32_t> added;
  std::set<uint32_t> removed;
  frozen.DiffTo(set, [&](NodeId id, bool was_added) {
    (was_added ? added : removed).insert(id.value());
  });
  EXPECT_EQ(added, (std::set<uint32_t>{3}));
  EXPECT_EQ(removed, (std::set<uint32_t>{1}));

  std::set<uint32_t> iterated;
  for (NodeId id : set) iterated.insert(id.value());
  EXPECT_EQ(iterated, (std::set<uint32_t>{2, 3}));
}

TEST(PersistentMapTest, MemoryFootprintNonZero) {
  PersistentMap<uint64_t, int> map;
  EXPECT_EQ(map.MemoryFootprint(), 0u);
  for (uint64_t i = 0; i < 64; ++i) map.Set(i, 0);
  EXPECT_GT(map.MemoryFootprint(), 0u);
}

}  // namespace
}  // namespace adept
