#include <gtest/gtest.h>

#include "change/change_op.h"
#include "change/delta.h"
#include "change/id_allocator.h"
#include "model/serialization.h"
#include "tests/test_fixtures.h"
#include "verify/verifier.h"

namespace adept {
namespace {

using testing_fixtures::OnlineOrderV1;
using testing_fixtures::OnlineOrderV2;
using testing_fixtures::SequenceSchema;
using testing_fixtures::XorSchema;

// The paper's Delta-T: serial insert of "send questions" after
// "compose order" plus a sync edge "send questions" -> "confirm order".
// The sync edge references the inserted node, so the insert is applied to a
// probe schema first to learn (and pin) the new activity's id.
Delta MakeFig1TypeChangePinned(const ProcessSchema& s) {
  NodeId compose = s.FindNodeByName("compose order");
  NodeId confirm = s.FindNodeByName("confirm order");
  NodeId join = s.FindNodeByName("and_join");

  Delta probe;
  NewActivitySpec spec;
  spec.name = "send questions";
  auto* op = probe.Add(std::make_unique<SerialInsertOp>(spec, compose, join));
  auto applied = probe.ApplyToSchema(s);
  EXPECT_TRUE(applied.ok()) << applied.status();
  NodeId inserted = static_cast<SerialInsertOp*>(op)->inserted_node();
  EXPECT_TRUE(inserted.valid());

  Delta delta;
  auto* insert = delta.Add(op->Clone());
  (void)insert;
  delta.Add(std::make_unique<InsertSyncEdgeOp>(inserted, confirm));
  return delta;
}

TEST(ChangeOpTest, SerialInsertRewiresEdge) {
  auto base = OnlineOrderV1();
  NodeId get_order = base->FindNodeByName("get order");
  NodeId collect = base->FindNodeByName("collect data");

  Delta delta;
  NewActivitySpec spec;
  spec.name = "check credit";
  auto* op =
      delta.Add(std::make_unique<SerialInsertOp>(spec, get_order, collect));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();

  NodeId inserted = static_cast<SerialInsertOp*>(op)->inserted_node();
  ASSERT_TRUE(inserted.valid());
  EXPECT_EQ((*derived)->ControlSuccessor(get_order), inserted);
  EXPECT_EQ((*derived)->ControlSuccessor(inserted), collect);
  EXPECT_EQ((*derived)->node_count(), base->node_count() + 1);
  EXPECT_EQ((*derived)->version(), base->version() + 1);
  // Old edge gone.
  EXPECT_EQ((*derived)->FindEdgeBetween(get_order, collect, EdgeType::kControl),
            nullptr);
  EXPECT_TRUE(VerifySchemaOrError(**derived).ok());
}

TEST(ChangeOpTest, SerialInsertRequiresEdge) {
  auto base = OnlineOrderV1();
  Delta delta;
  NewActivitySpec spec;
  spec.name = "x";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, base->FindNodeByName("get order"),
      base->FindNodeByName("pack goods")));
  auto derived = delta.ApplyToSchema(*base);
  EXPECT_EQ(derived.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ChangeOpTest, ReapplicationPinsSameIds) {
  auto base = OnlineOrderV1();
  Delta delta = MakeFig1TypeChangePinned(*base);

  auto first = delta.ApplyToSchema(*base);
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = delta.ApplyToSchema(*base);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(SchemaToJson(**first).Dump(), SchemaToJson(**second).Dump());
}

TEST(ChangeOpTest, ParallelInsertWrapsRegion) {
  auto base = OnlineOrderV1();
  NodeId pack = base->FindNodeByName("pack goods");
  NodeId deliver = base->FindNodeByName("deliver goods");

  Delta delta;
  NewActivitySpec spec;
  spec.name = "notify customer";
  delta.Add(std::make_unique<ParallelInsertOp>(spec, pack, deliver));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_TRUE(VerifySchemaOrError(**derived).ok());
  // pack..deliver now sit inside a new AND block with "notify customer".
  NodeId notify = (*derived)->FindNodeByName("notify customer");
  ASSERT_TRUE(notify.valid());
  auto tree = (*derived)->block_tree();
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE((*tree)->InDifferentParallelBranches(notify, pack));
  EXPECT_TRUE((*tree)->InDifferentParallelBranches(notify, deliver));
}

TEST(ChangeOpTest, ParallelInsertRejectsNonRegion) {
  auto base = OnlineOrderV1();
  Delta delta;
  NewActivitySpec spec;
  spec.name = "x";
  // confirm/compose are in different branches: not a SESE region.
  delta.Add(std::make_unique<ParallelInsertOp>(
      spec, base->FindNodeByName("confirm order"),
      base->FindNodeByName("compose order")));
  auto derived = delta.ApplyToSchema(*base);
  EXPECT_EQ(derived.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ChangeOpTest, BranchInsertAddsSelectableBranch) {
  auto base = XorSchema();
  NodeId split = base->FindNodeByName("xor_split");
  Delta delta;
  NewActivitySpec spec;
  spec.name = "palliative care";
  delta.Add(std::make_unique<BranchInsertOp>(spec, split, 2));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_TRUE(VerifySchemaOrError(**derived).ok());
  NodeId added = (*derived)->FindNodeByName("palliative care");
  const Edge* entry =
      (*derived)->FindEdgeBetween(split, added, EdgeType::kControl);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->branch_value, 2);
}

TEST(ChangeOpTest, BranchInsertRejectsDuplicateCode) {
  auto base = XorSchema();
  Delta delta;
  NewActivitySpec spec;
  spec.name = "x";
  delta.Add(std::make_unique<BranchInsertOp>(
      spec, base->FindNodeByName("xor_split"), 1));
  EXPECT_EQ(delta.ApplyToSchema(*base).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChangeOpTest, DeleteActivityBridgesNeighbours) {
  auto base = SequenceSchema(3);
  NodeId a1 = base->FindNodeByName("a1");
  NodeId a2 = base->FindNodeByName("a2");
  NodeId a3 = base->FindNodeByName("a3");
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(a2));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_EQ((*derived)->FindNode(a2), nullptr);
  EXPECT_EQ((*derived)->ControlSuccessor(a1), a3);
  EXPECT_TRUE(VerifySchemaOrError(**derived).ok());
}

TEST(ChangeOpTest, DeleteActivityKeepsBranchCode) {
  auto base = XorSchema();
  NodeId split = base->FindNodeByName("xor_split");
  NodeId intensive = base->FindNodeByName("intensive care");
  NodeId join = base->FindNodeByName("xor_join");
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(intensive));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();
  const Edge* bridge =
      (*derived)->FindEdgeBetween(split, join, EdgeType::kControl);
  ASSERT_NE(bridge, nullptr);
  EXPECT_EQ(bridge->branch_value, 1);
  EXPECT_TRUE(VerifySchemaOrError(**derived).ok());
}

TEST(ChangeOpTest, DeleteRejectsStructuralNodes) {
  auto base = OnlineOrderV1();
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(
      base->FindNodeByName("and_split")));
  EXPECT_EQ(delta.ApplyToSchema(*base).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChangeOpTest, DeleteOfDataSupplierFailsVerification) {
  auto base = XorSchema();
  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(
      base->FindNodeByName("triage")));  // writes the decision element
  auto derived = delta.ApplyToSchema(*base);
  EXPECT_EQ(derived.status().code(), StatusCode::kVerificationFailed);
}

TEST(ChangeOpTest, MoveActivityRelocates) {
  auto base = SequenceSchema(4);
  NodeId a1 = base->FindNodeByName("a1");
  NodeId a2 = base->FindNodeByName("a2");
  NodeId a3 = base->FindNodeByName("a3");
  NodeId a4 = base->FindNodeByName("a4");
  Delta delta;
  delta.Add(std::make_unique<MoveActivityOp>(a2, a3, a4));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();
  EXPECT_EQ((*derived)->ControlSuccessor(a1), a3);
  EXPECT_EQ((*derived)->ControlSuccessor(a3), a2);
  EXPECT_EQ((*derived)->ControlSuccessor(a2), a4);
  EXPECT_TRUE(VerifySchemaOrError(**derived).ok());
}

TEST(ChangeOpTest, SyncEdgeInsertAndDelete) {
  auto base = OnlineOrderV1();
  NodeId confirm = base->FindNodeByName("confirm order");
  NodeId compose = base->FindNodeByName("compose order");

  Delta add;
  add.Add(std::make_unique<InsertSyncEdgeOp>(compose, confirm));
  auto with_sync = add.ApplyToSchema(*base);
  ASSERT_TRUE(with_sync.ok()) << with_sync.status();
  EXPECT_NE((*with_sync)->FindEdgeBetween(compose, confirm, EdgeType::kSync),
            nullptr);

  Delta remove;
  remove.Add(std::make_unique<DeleteSyncEdgeOp>(compose, confirm));
  auto without = remove.ApplyToSchema(**with_sync);
  ASSERT_TRUE(without.ok()) << without.status();
  EXPECT_EQ((*without)->FindEdgeBetween(compose, confirm, EdgeType::kSync),
            nullptr);
}

TEST(ChangeOpTest, SyncEdgeWithinBranchFailsVerification) {
  auto base = OnlineOrderV1();
  Delta delta;
  delta.Add(std::make_unique<InsertSyncEdgeOp>(
      base->FindNodeByName("get order"), base->FindNodeByName("collect data")));
  EXPECT_EQ(delta.ApplyToSchema(*base).status().code(),
            StatusCode::kVerificationFailed);
}

TEST(ChangeOpTest, Fig1TypeChangeProducesV2) {
  auto base = OnlineOrderV1();
  Delta delta = MakeFig1TypeChangePinned(*base);
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok()) << derived.status();

  // Same shape as the hand-built V2 fixture.
  auto v2 = OnlineOrderV2();
  EXPECT_EQ((*derived)->node_count(), v2->node_count());
  EXPECT_EQ((*derived)->edge_count(), v2->edge_count());
  NodeId send_q = (*derived)->FindNodeByName("send questions");
  NodeId confirm = (*derived)->FindNodeByName("confirm order");
  ASSERT_TRUE(send_q.valid());
  EXPECT_NE((*derived)->FindEdgeBetween(send_q, confirm, EdgeType::kSync),
            nullptr);
}

TEST(ChangeOpTest, OpposingSyncEdgesCreateDeadlockConflict) {
  // Paper Fig. 1, instance I2: the bias (confirm -> compose) composed with
  // the type change's sync edge (send questions -> confirm) closes a
  // deadlock-causing cycle.
  auto base = OnlineOrderV1();
  Delta bias;
  bias.Add(std::make_unique<InsertSyncEdgeOp>(
      base->FindNodeByName("confirm order"),
      base->FindNodeByName("compose order")));
  BiasIdAllocator bias_alloc;
  auto biased = bias.ApplyToSchema(*base, base->version(), &bias_alloc);
  ASSERT_TRUE(biased.ok()) << biased.status();  // fine on its own

  Delta type_change = MakeFig1TypeChangePinned(*base);
  auto v2 = type_change.ApplyToSchema(*base);
  ASSERT_TRUE(v2.ok());  // fine on its own

  // Composing both must fail verification with a deadlock cycle.
  auto combined = bias.ApplyToSchema(**v2, (*v2)->version());
  ASSERT_FALSE(combined.ok());
  EXPECT_EQ(combined.status().code(), StatusCode::kVerificationFailed);
  EXPECT_NE(combined.status().message().find("deadlock"), std::string::npos)
      << combined.status();
}

TEST(ChangeOpTest, DataOpsRoundTrip) {
  auto base = SequenceSchema(2);
  NodeId a1 = base->FindNodeByName("a1");
  NodeId a2 = base->FindNodeByName("a2");

  Delta delta;
  auto* add_elem =
      delta.Add(std::make_unique<AddDataElementOp>("score", DataType::kInt));
  auto first = delta.ApplyToSchema(*base);
  ASSERT_TRUE(first.ok()) << first.status();
  DataId score = static_cast<AddDataElementOp*>(add_elem)->created_data();
  ASSERT_TRUE(score.valid());

  Delta wiring;
  wiring.Add(std::make_unique<AddDataEdgeOp>(a1, score, AccessMode::kWrite,
                                             false));
  wiring.Add(
      std::make_unique<AddDataEdgeOp>(a2, score, AccessMode::kRead, false));
  auto second = wiring.ApplyToSchema(**first);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ((*second)->DataEdgesOf(a1, AccessMode::kWrite).size(), 1u);

  Delta unwiring;
  unwiring.Add(
      std::make_unique<DeleteDataEdgeOp>(a2, score, AccessMode::kRead));
  auto third = unwiring.ApplyToSchema(**second);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE((*third)->DataEdgesOf(a2, AccessMode::kRead).empty());
}

TEST(ChangeOpTest, MissingDataReadFailsVerification) {
  auto base = SequenceSchema(2);
  Delta delta;
  auto* add_elem =
      delta.Add(std::make_unique<AddDataElementOp>("ghost", DataType::kInt));
  auto first = delta.ApplyToSchema(*base);
  ASSERT_TRUE(first.ok());
  DataId ghost = static_cast<AddDataElementOp*>(add_elem)->created_data();

  Delta bad;
  bad.Add(std::make_unique<AddDataEdgeOp>(base->FindNodeByName("a1"), ghost,
                                          AccessMode::kRead, false));
  EXPECT_EQ(bad.ApplyToSchema(**first).status().code(),
            StatusCode::kVerificationFailed);
}

TEST(ChangeOpTest, ReplaceActivityImpl) {
  auto base = SequenceSchema(1);
  NodeId a1 = base->FindNodeByName("a1");
  Delta delta;
  delta.Add(std::make_unique<ReplaceActivityImplOp>(a1, "impl_v2"));
  auto derived = delta.ApplyToSchema(*base);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ((*derived)->FindNode(a1)->activity_template, "impl_v2");
}

TEST(DeltaTest, JsonRoundTripPreservesOpsAndPins) {
  auto base = OnlineOrderV1();
  Delta delta = MakeFig1TypeChangePinned(*base);
  auto applied = delta.ApplyToSchema(*base);  // pins everything
  ASSERT_TRUE(applied.ok());

  auto restored = Delta::FromJson(delta.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), delta.size());
  EXPECT_EQ(restored->Signatures(), delta.Signatures());

  // Pinned re-application through the JSON round trip yields the same ids.
  auto from_restored = restored->ApplyToSchema(*base);
  ASSERT_TRUE(from_restored.ok()) << from_restored.status();
  EXPECT_EQ(SchemaToJson(**from_restored).Dump(),
            SchemaToJson(**applied).Dump());
}

TEST(DeltaTest, CloneIsIndependent) {
  auto base = SequenceSchema(3);
  Delta delta;
  NewActivitySpec spec;
  spec.name = "x";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, base->FindNodeByName("a1"), base->FindNodeByName("a2")));
  Delta copy = delta.Clone();
  EXPECT_EQ(copy.size(), delta.size());
  EXPECT_EQ(copy.Signatures(), delta.Signatures());
  copy.Add(std::make_unique<DeleteActivityOp>(base->FindNodeByName("a3")));
  EXPECT_EQ(delta.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

TEST(DeltaTest, AtomicityOnMidDeltaFailure) {
  auto base = SequenceSchema(3);
  Delta delta;
  NewActivitySpec spec;
  spec.name = "ok";
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, base->FindNodeByName("a1"), base->FindNodeByName("a2")));
  delta.Add(std::make_unique<DeleteActivityOp>(NodeId(999)));  // fails
  auto derived = delta.ApplyToSchema(*base);
  EXPECT_FALSE(derived.ok());
  // Base untouched (it is immutable anyway, but verify node count).
  EXPECT_EQ(base->node_count(), 5u);
}

TEST(BiasAllocatorTest, BiasIdsComeFromReservedRange) {
  auto base = OnlineOrderV1();
  Delta delta;
  NewActivitySpec spec;
  spec.name = "ad hoc step";
  auto* op = delta.Add(std::make_unique<SerialInsertOp>(
      spec, base->FindNodeByName("get order"),
      base->FindNodeByName("collect data")));
  BiasIdAllocator alloc;
  auto derived = delta.ApplyToSchema(*base, base->version(), &alloc);
  ASSERT_TRUE(derived.ok()) << derived.status();
  NodeId inserted = static_cast<SerialInsertOp*>(op)->inserted_node();
  EXPECT_GE(inserted.value(), kBiasIdBase);

  // A later type-level change on the same base cannot collide.
  Delta type_change;
  NewActivitySpec spec2;
  spec2.name = "typed step";
  auto* op2 = type_change.Add(std::make_unique<SerialInsertOp>(
      spec2, base->FindNodeByName("pack goods"),
      base->FindNodeByName("deliver goods")));
  auto v2 = type_change.ApplyToSchema(*base);
  ASSERT_TRUE(v2.ok());
  EXPECT_LT(static_cast<SerialInsertOp*>(op2)->inserted_node().value(),
            kBiasIdBase);
}

}  // namespace
}  // namespace adept
