#include <gtest/gtest.h>

#include "change/change_op.h"
#include "core/auto_adaptation.h"
#include "tests/test_fixtures.h"

namespace adept {
namespace {

using testing_fixtures::SequenceSchema;

// Rule: when an activity fails, insert an "escalate" step right after it.
AdaptationRule EscalationRule() {
  AdaptationRule rule;
  rule.name = "escalate-on-failure";
  rule.trigger_state = NodeState::kFailed;
  rule.action = [](const ProcessInstance& instance, NodeId failed) {
    Delta delta;
    NodeId succ = instance.schema().ControlSuccessor(failed);
    if (!succ.valid()) return delta;
    NewActivitySpec spec;
    spec.name = "escalate";
    delta.Add(std::make_unique<SerialInsertOp>(spec, failed, succ));
    return delta;
  };
  return rule;
}

TEST(AutoAdapterTest, FailureTriggersInsertion) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  AutoAdapter adapter(&adept);
  adapter.AddRule(EscalationRule());
  adept.AddObserver(&adapter);

  auto schema = SequenceSchema(3, "auto");
  ASSERT_TRUE(adept.DeployProcessType(schema).ok());
  auto inst = adept.CreateInstance("auto");
  ASSERT_TRUE(inst.ok());

  NodeId a1 = schema->FindNodeByName("a1");
  ASSERT_TRUE(adept.StartActivity(*inst, a1).ok());
  ASSERT_TRUE(adept.FailActivity(*inst, a1, "application error").ok());

  ASSERT_EQ(adapter.pending(), 1u);
  auto outcomes = adapter.Drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status;
  EXPECT_EQ(outcomes[0].rule, "escalate-on-failure");
  EXPECT_EQ(adapter.pending(), 0u);

  // The corrective activity is in place; retry + escalation completes.
  auto snapshot = adept.SnapshotOf(*inst);
  ASSERT_NE(snapshot, nullptr);
  NodeId escalate = snapshot->schema->FindNodeByName("escalate");
  ASSERT_TRUE(escalate.valid());
  EXPECT_TRUE(snapshot->biased);

  ASSERT_TRUE(adept.RetryActivity(*inst, a1).ok());
  SimulationDriver driver({.seed = 1});
  ASSERT_TRUE(adept.DriveToCompletion(*inst, driver).ok());
  EXPECT_EQ(adept.SnapshotOf(*inst)->marking.node(escalate),
            NodeState::kCompleted);
}

TEST(AutoAdapterTest, NameFilterRestrictsRule) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  AutoAdapter adapter(&adept);
  AdaptationRule rule = EscalationRule();
  rule.activity_name = "a2";  // only a2 failures
  adapter.AddRule(rule);
  adept.AddObserver(&adapter);

  auto schema = SequenceSchema(3, "filtered");
  ASSERT_TRUE(adept.DeployProcessType(schema).ok());
  auto inst = adept.CreateInstance("filtered");
  ASSERT_TRUE(inst.ok());

  NodeId a1 = schema->FindNodeByName("a1");
  ASSERT_TRUE(adept.StartActivity(*inst, a1).ok());
  ASSERT_TRUE(adept.FailActivity(*inst, a1, "boom").ok());
  EXPECT_EQ(adapter.pending(), 0u);  // a1 does not match

  ASSERT_TRUE(adept.RetryActivity(*inst, a1).ok());
  ASSERT_TRUE(adept.StartActivity(*inst, a1).ok());
  ASSERT_TRUE(adept.CompleteActivity(*inst, a1).ok());
  NodeId a2 = schema->FindNodeByName("a2");
  ASSERT_TRUE(adept.StartActivity(*inst, a2).ok());
  ASSERT_TRUE(adept.FailActivity(*inst, a2, "boom").ok());
  EXPECT_EQ(adapter.pending(), 1u);
}

TEST(AutoAdapterTest, RejectedAdaptationReportsStatus) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  AutoAdapter adapter(&adept);
  // A rule that tries an illegal change: sync edge within a sequence.
  AdaptationRule bad;
  bad.name = "bad-rule";
  bad.trigger_state = NodeState::kFailed;
  bad.action = [](const ProcessInstance& instance, NodeId failed) {
    Delta delta;
    NodeId succ = instance.schema().ControlSuccessor(failed);
    delta.Add(std::make_unique<InsertSyncEdgeOp>(failed, succ));
    return delta;
  };
  adapter.AddRule(bad);
  adept.AddObserver(&adapter);

  auto schema = SequenceSchema(2, "badrule");
  ASSERT_TRUE(adept.DeployProcessType(schema).ok());
  auto inst = adept.CreateInstance("badrule");
  ASSERT_TRUE(inst.ok());
  NodeId a1 = schema->FindNodeByName("a1");
  ASSERT_TRUE(adept.StartActivity(*inst, a1).ok());
  ASSERT_TRUE(adept.FailActivity(*inst, a1, "x").ok());

  auto outcomes = adapter.Drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status.code(), StatusCode::kVerificationFailed);
  // The instance is untouched by the rejected rule.
  EXPECT_FALSE(adept.SnapshotOf(*inst)->biased);
}

TEST(AutoAdapterTest, EmptyDeltaSkipsQuietly) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& adept = **system;
  AutoAdapter adapter(&adept);
  AdaptationRule noop;
  noop.name = "noop";
  noop.trigger_state = NodeState::kFailed;
  noop.action = [](const ProcessInstance&, NodeId) { return Delta(); };
  adapter.AddRule(noop);
  adept.AddObserver(&adapter);

  auto schema = SequenceSchema(1, "noop");
  ASSERT_TRUE(adept.DeployProcessType(schema).ok());
  auto inst = adept.CreateInstance("noop");
  ASSERT_TRUE(inst.ok());
  NodeId a1 = schema->FindNodeByName("a1");
  ASSERT_TRUE(adept.StartActivity(*inst, a1).ok());
  ASSERT_TRUE(adept.FailActivity(*inst, a1, "x").ok());
  auto outcomes = adapter.Drain();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_FALSE(adept.SnapshotOf(*inst)->biased);
}

}  // namespace
}  // namespace adept
