// Edge-case semantics of the execution engine: nested blocks, empty
// branches, skipped composites, sync edges interacting with dead paths,
// nested loops, and explicit decision APIs.

#include <gtest/gtest.h>

#include "model/schema_builder.h"
#include "runtime/driver.h"
#include "runtime/instance.h"
#include "tests/test_fixtures.h"
#include "verify/verifier.h"

namespace adept {
namespace {

Status Execute(ProcessInstance& i, NodeId node) {
  ADEPT_RETURN_IF_ERROR(i.StartActivity(node));
  return i.CompleteActivity(node);
}

Status ExecuteByName(ProcessInstance& i, const std::string& name) {
  NodeId node = i.schema().FindNodeByName(name);
  if (!node.valid()) return Status::NotFound(name);
  return Execute(i, node);
}

TEST(NestedBlockTest, XorInsideAnd) {
  SchemaBuilder b("xor_in_and", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  NodeId init = b.Activity("init");
  b.Writes(init, sel);
  b.Parallel({
      [&](SchemaBuilder& s) {
        s.Conditional(sel, {
            [](SchemaBuilder& t) { t.Activity("left fast"); },
            [](SchemaBuilder& t) { t.Activity("left slow"); },
        });
      },
      [&](SchemaBuilder& s) { s.Activity("right"); },
  });
  b.Activity("done");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(VerifySchemaOrError(**schema).ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(inst.StartActivity(init).ok());
  ASSERT_TRUE(inst.CompleteActivity(init, {{sel, DataValue::Int(1)}}).ok());

  // XOR decided inside the AND: slow branch active, fast skipped, right
  // branch unaffected.
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("left slow")),
            NodeState::kActivated);
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("left fast")),
            NodeState::kSkipped);
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("right")),
            NodeState::kActivated);

  ASSERT_TRUE(ExecuteByName(inst, "left slow").ok());
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("done")),
            NodeState::kNotActivated);  // AND join waits for right
  ASSERT_TRUE(ExecuteByName(inst, "right").ok());
  ASSERT_TRUE(ExecuteByName(inst, "done").ok());
  EXPECT_TRUE(inst.Finished());
}

TEST(NestedBlockTest, AndInsideSkippedXorBranchIsFullySkipped) {
  SchemaBuilder b("and_in_xor", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  NodeId init = b.Activity("init");
  b.Writes(init, sel);
  b.Conditional(sel, {
      [&](SchemaBuilder& s) {
        s.Parallel({
            [](SchemaBuilder& t) { t.Activity("par a"); },
            [](SchemaBuilder& t) { t.Activity("par b"); },
        });
      },
      [](SchemaBuilder& s) { s.Activity("simple"); },
  });
  b.Activity("done");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(inst.StartActivity(init).ok());
  ASSERT_TRUE(inst.CompleteActivity(init, {{sel, DataValue::Int(1)}}).ok());

  // The whole parallel block inside the deselected branch is dead.
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("par a")),
            NodeState::kSkipped);
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("par b")),
            NodeState::kSkipped);
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("simple")),
            NodeState::kActivated);

  ASSERT_TRUE(ExecuteByName(inst, "simple").ok());
  ASSERT_TRUE(ExecuteByName(inst, "done").ok());
  EXPECT_TRUE(inst.Finished());
}

TEST(NestedBlockTest, EmptyXorBranchPassesThrough) {
  SchemaBuilder b("empty_branch", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  NodeId init = b.Activity("init");
  b.Writes(init, sel);
  b.Conditional(sel, {
      [](SchemaBuilder& s) { s.Activity("optional step"); },
      [](SchemaBuilder&) { /* empty: skip entirely */ },
  });
  b.Activity("done");
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(inst.StartActivity(init).ok());
  // Take the empty branch: control falls straight through to "done".
  ASSERT_TRUE(inst.CompleteActivity(init, {{sel, DataValue::Int(1)}}).ok());
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("optional step")),
            NodeState::kSkipped);
  EXPECT_EQ(inst.node_state(inst.schema().FindNodeByName("done")),
            NodeState::kActivated);
}

TEST(NestedBlockTest, NestedLoopsResetIndependently) {
  SchemaBuilder b("nested_loops", 1);
  DataId outer_again = b.Data("outer", DataType::kBool);
  DataId inner_again = b.Data("inner", DataType::kBool);
  SchemaBuilder::BlockIds outer_ids{}, inner_ids{};
  outer_ids = b.Loop(outer_again, [&](SchemaBuilder& s) {
    NodeId prep = s.Activity("prep");
    (void)prep;
    inner_ids = s.Loop(inner_again, [&](SchemaBuilder& t) {
      NodeId work = t.Activity("work");
      t.Writes(work, inner_again);
    });
    NodeId wrap = s.Activity("wrap");
    s.Writes(wrap, outer_again);
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(VerifySchemaOrError(**schema).ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId work = (*schema)->FindNodeByName("work");
  NodeId wrap = (*schema)->FindNodeByName("wrap");

  // Outer iteration 1: inner loops twice, outer repeats once.
  ASSERT_TRUE(ExecuteByName(inst, "prep").ok());
  ASSERT_TRUE(inst.StartActivity(work).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(work, {{inner_again, DataValue::Bool(true)}}).ok());
  EXPECT_EQ(inst.loop_iteration(inner_ids.open), 1);
  ASSERT_TRUE(inst.StartActivity(work).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(work, {{inner_again, DataValue::Bool(false)}})
          .ok());
  ASSERT_TRUE(inst.StartActivity(wrap).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(wrap, {{outer_again, DataValue::Bool(true)}}).ok());

  // Outer reset: inner loop counter belongs to the erased region history;
  // body is fresh again.
  EXPECT_EQ(inst.loop_iteration(outer_ids.open), 1);
  EXPECT_EQ(inst.node_state((*schema)->FindNodeByName("prep")),
            NodeState::kActivated);

  // Outer iteration 2: inner runs once, outer stops.
  ASSERT_TRUE(ExecuteByName(inst, "prep").ok());
  ASSERT_TRUE(inst.StartActivity(work).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(work, {{inner_again, DataValue::Bool(false)}})
          .ok());
  ASSERT_TRUE(inst.StartActivity(wrap).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(wrap, {{outer_again, DataValue::Bool(false)}})
          .ok());
  EXPECT_TRUE(inst.Finished());
}

TEST(SyncEdgeTest, MultipleSyncSourcesAllGate) {
  SchemaBuilder b("multi_sync", 1);
  NodeId a1, a2, target;
  b.Parallel({
      [&](SchemaBuilder& s) { a1 = s.Activity("a1"); },
      [&](SchemaBuilder& s) { a2 = s.Activity("a2"); },
      [&](SchemaBuilder& s) { target = s.Activity("target"); },
  });
  b.SyncEdge(a1, target);
  b.SyncEdge(a2, target);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(VerifySchemaOrError(**schema).ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  EXPECT_EQ(inst.node_state(target), NodeState::kNotActivated);
  ASSERT_TRUE(Execute(inst, a1).ok());
  EXPECT_EQ(inst.node_state(target), NodeState::kNotActivated);  // a2 pending
  ASSERT_TRUE(Execute(inst, a2).ok());
  EXPECT_EQ(inst.node_state(target), NodeState::kActivated);
}

TEST(SyncEdgeTest, SyncChainSerializesParallelBranches) {
  // a -> b -> c across three branches: execution is forced into sequence.
  SchemaBuilder b("sync_chain", 1);
  NodeId a, bb, c;
  b.Parallel({
      [&](SchemaBuilder& s) { a = s.Activity("a"); },
      [&](SchemaBuilder& s) { bb = s.Activity("b"); },
      [&](SchemaBuilder& s) { c = s.Activity("c"); },
  });
  b.SyncEdge(a, bb);
  b.SyncEdge(bb, c);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE(VerifySchemaOrError(**schema).ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  auto ready = inst.ActivatedActivities();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], a);
  ASSERT_TRUE(Execute(inst, a).ok());
  ready = inst.ActivatedActivities();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], bb);
  ASSERT_TRUE(Execute(inst, bb).ok());
  ASSERT_TRUE(Execute(inst, c).ok());
}

TEST(SyncEdgeTest, SyncInsideLoopResetsWithBody) {
  SchemaBuilder b("sync_loop", 1);
  DataId again = b.Data("again", DataType::kBool);
  NodeId first, second;
  b.Loop(again, [&](SchemaBuilder& s) {
    s.Parallel({
        [&](SchemaBuilder& t) { first = t.Activity("first"); },
        [&](SchemaBuilder& t) {
          second = t.Activity("second");
          t.Writes(second, again);
        },
    });
  });
  b.mutable_schema();  // keep builder alive; add sync edge below
  b.SyncEdge(first, second);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();
  ASSERT_TRUE(VerifySchemaOrError(**schema).ok());

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());

  // Iteration 1: first gates second; request another round.
  ASSERT_TRUE(Execute(inst, first).ok());
  ASSERT_TRUE(inst.StartActivity(second).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(second, {{again, DataValue::Bool(true)}}).ok());

  // After the reset, the sync edge gates again in iteration 2.
  EXPECT_EQ(inst.node_state(first), NodeState::kActivated);
  EXPECT_EQ(inst.node_state(second), NodeState::kNotActivated);
  ASSERT_TRUE(Execute(inst, first).ok());
  ASSERT_TRUE(inst.StartActivity(second).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(second, {{again, DataValue::Bool(false)}}).ok());
  EXPECT_TRUE(inst.Finished());
}

TEST(DecisionApiTest, ExplicitDecisionOverridesData) {
  auto schema = testing_fixtures::XorSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId split = schema->FindNodeByName("xor_split");
  NodeId triage = schema->FindNodeByName("triage");
  DataId severity = schema->FindDataByName("severity");

  // Pre-select branch 0 even though the data will say 1: the explicit
  // selection wins (it is consumed at split completion).
  ASSERT_TRUE(inst.SelectBranch(split, 0).ok());
  ASSERT_TRUE(inst.StartActivity(triage).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(triage, {{severity, DataValue::Int(1)}}).ok());
  EXPECT_EQ(inst.node_state(schema->FindNodeByName("standard care")),
            NodeState::kActivated);
  EXPECT_EQ(inst.node_state(schema->FindNodeByName("intensive care")),
            NodeState::kSkipped);
}

TEST(DecisionApiTest, LoopDecisionOverride) {
  auto schema = testing_fixtures::LoopSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(ExecuteByName(inst, "prepare").ok());
  NodeId check = schema->FindNodeByName("check");
  NodeId loop_end = schema->FindNodeByName("loop_end");
  DataId again = schema->FindDataByName("again");

  // Data says stop, but the explicit one-shot override forces an iteration.
  ASSERT_TRUE(inst.SetLoopDecision(loop_end, true).ok());
  ASSERT_TRUE(inst.StartActivity(check).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(check, {{again, DataValue::Bool(false)}}).ok());
  EXPECT_EQ(inst.loop_iteration(schema->FindNodeByName("loop_start")), 1);
  EXPECT_EQ(inst.node_state(check), NodeState::kActivated);

  // Second pass: no override; data (false) ends the loop.
  ASSERT_TRUE(inst.StartActivity(check).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(check, {{again, DataValue::Bool(false)}}).ok());
  EXPECT_EQ(inst.node_state(schema->FindNodeByName("finish")),
            NodeState::kActivated);
}

TEST(FailureTest, FailedBranchBlocksJoinUntilRetried) {
  auto schema = testing_fixtures::OnlineOrderV1();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(ExecuteByName(inst, "get order").ok());
  ASSERT_TRUE(ExecuteByName(inst, "collect data").ok());

  NodeId confirm = schema->FindNodeByName("confirm order");
  ASSERT_TRUE(inst.StartActivity(confirm).ok());
  ASSERT_TRUE(inst.FailActivity(confirm, "phone unreachable").ok());
  ASSERT_TRUE(ExecuteByName(inst, "compose order").ok());

  // Join must not fire while one branch is failed.
  EXPECT_EQ(inst.node_state(schema->FindNodeByName("pack goods")),
            NodeState::kNotActivated);

  ASSERT_TRUE(inst.RetryActivity(confirm).ok());
  ASSERT_TRUE(Execute(inst, confirm).ok());
  EXPECT_EQ(inst.node_state(schema->FindNodeByName("pack goods")),
            NodeState::kActivated);
}

TEST(TraceTest, EventOrderingWithinActivity) {
  auto schema = testing_fixtures::XorSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId triage = schema->FindNodeByName("triage");
  DataId severity = schema->FindDataByName("severity");
  ASSERT_TRUE(inst.StartActivity(triage).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(triage, {{severity, DataValue::Int(0)}}).ok());

  // start < data write < completion, per sequence numbers.
  int64_t start = inst.trace().LastStartSeq(triage);
  int64_t complete = inst.trace().LastCompletionSeq(triage);
  int64_t write = -1;
  for (const auto& e : inst.trace().events()) {
    if (e.kind == TraceEventKind::kDataWrite && e.node == triage) {
      write = e.sequence;
    }
  }
  EXPECT_LT(start, write);
  EXPECT_LT(write, complete);
}

}  // namespace
}  // namespace adept
