// Differential fuzz harness for copy-on-write snapshot publication.
//
// The contract under test (runtime/README.md): for any mutation sequence,
// the structurally-shared snapshot BuildSnapshot() publishes renders to
// exactly the same canonical JSON as a deep copy of the instance's state
// materialized through full iteration into flat std:: containers — and a
// snapshot retained from any earlier step re-renders byte-identically
// after arbitrary further mutations (immutability of the shared roots).
//
// The harness drives seeded random schemas (nested AND/XOR/LOOP blocks)
// through randomized step sequences — activity starts/completes with data
// writes, suspend/resume, fail/retry, and ad-hoc serial inserts — and
// asserts canonical equality after every single mutation.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "change/change_op.h"
#include "change/delta.h"
#include "common/rng.h"
#include "compliance/adhoc.h"
#include "runtime/driver.h"
#include "runtime/engine.h"
#include "runtime/instance_snapshot.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"
#include "storage/state_serialization.h"

namespace adept {
namespace {

void AppendNodeStateArray(const std::map<NodeId, NodeState>& nodes,
                          JsonValue* out) {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& [id, state] : nodes) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("n", JsonValue(id.value()));
    e.Set("s", JsonValue(static_cast<int>(state)));
    arr.Append(std::move(e));
  }
  out->Set("nodes", std::move(arr));
}

void AppendEdgeStateArray(const std::map<EdgeId, EdgeState>& edges,
                          JsonValue* out) {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& [id, state] : edges) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("e", JsonValue(id.value()));
    e.Set("s", JsonValue(static_cast<int>(state)));
    arr.Append(std::move(e));
  }
  out->Set("edges", std::move(arr));
}

template <typename Id>
JsonValue IdArray(const std::set<Id>& ids) {
  JsonValue arr = JsonValue::MakeArray();
  for (Id id : ids) arr.Append(JsonValue(id.value()));
  return arr;
}

template <typename Id, typename V>
JsonValue PairArray(const std::map<Id, V>& entries) {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& [id, v] : entries) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("k", JsonValue(id.value()));
    e.Set("v", JsonValue(static_cast<int64_t>(v)));
    arr.Append(std::move(e));
  }
  return arr;
}

JsonValue DataTipArray(const std::map<DataId, DataValue>& tips) {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& [id, value] : tips) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("k", JsonValue(id.value()));
    e.Set("v", value.ToJson());
    arr.Append(std::move(e));
  }
  return arr;
}

// Canonical JSON of a published (COW) snapshot: every shared container
// rendered sorted. Publication metadata (version) is excluded — it is not
// instance state.
std::string CanonicalSnapshotJson(const InstanceSnapshot& s) {
  JsonValue j = JsonValue::MakeObject();
  std::map<NodeId, NodeState> nodes(s.marking.node_states().begin(),
                                    s.marking.node_states().end());
  std::map<EdgeId, EdgeState> edges(s.marking.edge_states().begin(),
                                    s.marking.edge_states().end());
  AppendNodeStateArray(nodes, &j);
  AppendEdgeStateArray(edges, &j);
  j.Set("activated", IdArray(std::set<NodeId>(s.activated_nodes.begin(),
                                              s.activated_nodes.end())));
  j.Set("running", IdArray(std::set<NodeId>(s.running_nodes.begin(),
                                            s.running_nodes.end())));
  j.Set("asince", PairArray(std::map<NodeId, int64_t>(
                      s.activated_since.begin(), s.activated_since.end())));
  j.Set("completed", PairArray(std::map<NodeId, uint64_t>(
                         s.completed_runs.begin(), s.completed_runs.end())));
  j.Set("loops", PairArray(std::map<NodeId, int>(s.loop_iterations.begin(),
                                                 s.loop_iterations.end())));
  j.Set("data", DataTipArray(std::map<DataId, DataValue>(
                    s.data_values.begin(), s.data_values.end())));
  j.Set("schema_ref", JsonValue(s.schema_ref.value()));
  j.Set("started", JsonValue(s.started));
  j.Set("finished", JsonValue(s.finished));
  j.Set("biased", JsonValue(s.biased));
  j.Set("completed_total", JsonValue(s.completed_total));
  j.Set("trace_length", JsonValue(s.trace_length));
  j.Set("trace_next_sequence", JsonValue(s.trace_next_sequence));
  return j.Dump();
}

// The same JSON built the pre-refactor way: a full deep copy of the live
// instance's state, with the activated/running sets *recomputed from the
// node states* (so derived-set drift inside Marking is also caught) and
// completed runs recounted from the execution trace.
std::string DeepReferenceJson(const ProcessInstance& inst) {
  JsonValue j = JsonValue::MakeObject();
  std::map<NodeId, NodeState> nodes;
  inst.marking().node_states().ForEach(
      [&](NodeId id, NodeState s) { nodes.emplace(id, s); });
  std::map<EdgeId, EdgeState> edges;
  inst.marking().edge_states().ForEach(
      [&](EdgeId id, EdgeState s) { edges.emplace(id, s); });
  AppendNodeStateArray(nodes, &j);
  AppendEdgeStateArray(edges, &j);
  std::set<NodeId> activated;
  std::set<NodeId> running;
  for (const auto& [id, state] : nodes) {
    if (state == NodeState::kActivated) activated.insert(id);
    if (state == NodeState::kRunning) running.insert(id);
  }
  j.Set("activated", IdArray(activated));
  j.Set("running", IdArray(running));
  std::map<NodeId, int64_t> asince;
  inst.activated_since().ForEach(
      [&](NodeId id, int64_t seq) { asince.emplace(id, seq); });
  j.Set("asince", PairArray(asince));
  std::map<NodeId, uint64_t> completed;
  uint64_t completed_total = 0;
  for (const TraceEvent& ev : inst.trace().events()) {
    if (ev.kind == TraceEventKind::kActivityCompleted) {
      ++completed[ev.node];
      ++completed_total;
    }
  }
  j.Set("completed", PairArray(completed));
  std::map<NodeId, int> loops;
  inst.loop_iterations().ForEach(
      [&](NodeId id, int count) { loops.emplace(id, count); });
  j.Set("loops", PairArray(loops));
  std::map<DataId, DataValue> tips;
  inst.data().tips().ForEach(
      [&](DataId id, const DataValue& v) { tips.emplace(id, v); });
  j.Set("data", DataTipArray(tips));
  j.Set("schema_ref", JsonValue(inst.schema_ref().value()));
  j.Set("started", JsonValue(inst.started()));
  j.Set("finished", JsonValue(inst.Finished()));
  j.Set("biased", JsonValue(inst.biased()));
  j.Set("completed_total", JsonValue(completed_total));
  j.Set("trace_length",
        JsonValue(static_cast<int64_t>(inst.trace().events().size())));
  j.Set("trace_next_sequence", JsonValue(inst.trace().next_sequence()));
  return j.Dump();
}

// One random extra mutation beyond the driver's start/complete steps.
void RandomSideMutation(Rng& rng, ProcessInstance& inst, InstanceStore& store,
                        int salt) {
  const std::vector<NodeId> running = inst.RunningActivities();
  switch (rng.NextBelow(6)) {
    case 0: {  // suspend + resume
      if (running.empty()) return;
      NodeId node = running[rng.NextBelow(running.size())];
      (void)inst.SuspendActivity(node);
      if (rng.NextBelow(2) == 0) (void)inst.ResumeActivity(node);
      return;
    }
    case 1: {  // fail + retry
      if (running.empty()) return;
      NodeId node = running[rng.NextBelow(running.size())];
      (void)inst.FailActivity(node, "fuzz");
      (void)inst.RetryActivity(node);
      return;
    }
    case 2: {  // ad-hoc serial insert on a random control edge
      std::vector<Edge> control;
      inst.schema().VisitEdges([&](const Edge& e) {
        if (e.type == EdgeType::kControl) control.push_back(e);
      });
      if (control.empty()) return;
      const Edge& edge = control[rng.NextBelow(control.size())];
      Delta delta;
      NewActivitySpec spec;
      spec.name = "fz" + std::to_string(salt);
      delta.Add(std::make_unique<SerialInsertOp>(spec, edge.src, edge.dst));
      (void)ApplyAdHocChange(inst, store, std::move(delta));
      return;
    }
    default:
      return;  // most steps: plain driver progress
  }
}

TEST(CowSnapshotFuzzTest, CowSnapshotsMatchDeepCopyAfterEveryMutation) {
  constexpr int kSeeds = 12;
  constexpr int kStepsPerSeed = 70;

  size_t compared = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    auto schema = bench::ScaledSchema(24, seed);
    ASSERT_NE(schema, nullptr) << "seed " << seed;
    SchemaRepository repo;
    SchemaId schema_id = *repo.Deploy(schema);
    InstanceStore store(&repo);
    Engine engine;
    ProcessInstance* inst = *engine.CreateInstance(schema, schema_id);
    ASSERT_TRUE(store.Register(inst->id(), schema_id).ok());
    ASSERT_TRUE(inst->Start().ok());

    Rng rng(seed * 977);
    SimulationDriver driver({.seed = seed * 31 + 7});
    SnapshotTable table;

    // Retained roots: canonical JSON frozen at capture time; re-rendered
    // and re-compared at the end of the run.
    struct Retained {
      std::shared_ptr<const InstanceSnapshot> snapshot;
      std::string rendered;
    };
    std::vector<Retained> retained;

    for (int step = 0; step < kStepsPerSeed; ++step) {
      if (inst->Finished()) break;
      auto progressed = driver.Step(*inst);
      ASSERT_TRUE(progressed.ok()) << "seed " << seed << " step " << step
                                   << ": " << progressed.status();
      RandomSideMutation(rng, *inst, store, step);

      std::shared_ptr<InstanceSnapshot> snapshot = inst->BuildSnapshot();
      (void)table.Publish(snapshot);
      const std::string cow = CanonicalSnapshotJson(*snapshot);
      const std::string deep = DeepReferenceJson(*inst);
      ASSERT_EQ(cow, deep) << "divergence at seed " << seed << " step "
                           << step;
      ++compared;
      if (step % 7 == 0) retained.push_back({std::move(snapshot), cow});
    }

    // Immutability: every retained root still renders the bytes captured
    // when it was published, no matter what happened afterwards.
    for (size_t i = 0; i < retained.size(); ++i) {
      EXPECT_EQ(CanonicalSnapshotJson(*retained[i].snapshot),
                retained[i].rendered)
          << "retained snapshot " << i << " of seed " << seed << " mutated";
    }
  }
  // The harness must actually have fuzzed something.
  EXPECT_GE(compared, static_cast<size_t>(kSeeds * 20));
}

}  // namespace
}  // namespace adept
