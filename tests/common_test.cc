#include <gtest/gtest.h>

#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace adept {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "not found: missing thing");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::VerificationFailed("x").code(),
            StatusCode::kVerificationFailed);
  EXPECT_EQ(Status::NotCompliant("x").code(), StatusCode::kNotCompliant);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UsesAssignOrReturn(int v, int* out) {
  ADEPT_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed + 1;
  return Status::OK();
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> ok = ParsePositive(41);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 41);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(1, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(UsesAssignOrReturn(0, &out).ok());
}

TEST(JsonTest, RoundTripScalars) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("b", JsonValue(true));
  obj.Set("i", JsonValue(int64_t{-42}));
  obj.Set("d", JsonValue(2.5));
  obj.Set("s", JsonValue("hello \"world\"\n"));
  obj.Set("n", JsonValue());

  auto parsed = JsonValue::Parse(obj.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, obj);
  EXPECT_TRUE(parsed->Get("b").as_bool());
  EXPECT_EQ(parsed->Get("i").as_int(), -42);
  EXPECT_DOUBLE_EQ(parsed->Get("d").as_double(), 2.5);
  EXPECT_EQ(parsed->Get("s").as_string(), "hello \"world\"\n");
  EXPECT_TRUE(parsed->Get("n").is_null());
}

TEST(JsonTest, RoundTripNested) {
  JsonValue arr = JsonValue::MakeArray();
  for (int i = 0; i < 5; ++i) {
    JsonValue item = JsonValue::MakeObject();
    item.Set("k", JsonValue(i));
    arr.Append(std::move(item));
  }
  JsonValue root = JsonValue::MakeObject();
  root.Set("items", std::move(arr));
  auto parsed = JsonValue::Parse(root.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("items").as_array().size(), 5u);
  EXPECT_EQ(parsed->Get("items").as_array()[3].Get("k").as_int(), 3);
}

TEST(JsonTest, ParseWhitespaceAndEscapes) {
  auto parsed = JsonValue::Parse(" { \"a\" : [ 1 , 2.0 ,\t\"\\u0041\" ] } ");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& arr = parsed->Get("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_TRUE(arr[1].is_double());
  EXPECT_EQ(arr[2].as_string(), "A");
}

TEST(JsonTest, MalformedInputsRejected) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("tru").ok());
  EXPECT_FALSE(JsonValue::Parse("1 2").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
}

TEST(JsonTest, NumbersIntVsDouble) {
  auto a = JsonValue::Parse("123");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->is_int());
  auto b = JsonValue::Parse("1.5e2");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->is_double());
  EXPECT_DOUBLE_EQ(b->as_double(), 150.0);
  auto c = JsonValue::Parse("-7");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->as_int(), -7);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Split("abc", ','), std::vector<std::string>{"abc"});
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%05.1f", 2.25), "002.2");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_TRUE(StartsWith("x", ""));
}

}  // namespace
}  // namespace adept
