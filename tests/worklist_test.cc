#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "change/change_op.h"
#include "cluster/adept_cluster.h"
#include "model/schema_builder.h"
#include "worklist/worklist_service.h"

namespace adept {
namespace {

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_worklist_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

// start -> prepare(clerk) -> execute(packer) -> end
std::shared_ptr<const ProcessSchema> RoleSchema(RoleId clerk, RoleId packer) {
  SchemaBuilder b("wl_proc", 1);
  b.Activity("prepare", {.role = clerk});
  b.Activity("execute", {.role = packer});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

// Cluster + org scaffold shared by the service tests.
class WorklistServiceTest : public ::testing::Test {
 protected:
  // Org population is repeatable (recovery does not persist the org
  // model; re-adding in the same order yields the same ids).
  void PopulateOrg(AdeptCluster& cluster) {
    OrgModel& org = cluster.org();
    clerk_ = *org.AddRole("clerk");
    packer_ = *org.AddRole("packer");
    alice_ = *org.AddUser("alice");
    bob_ = *org.AddUser("bob");
    carol_ = *org.AddUser("carol");
    ASSERT_TRUE(org.AssignRole(alice_, clerk_).ok());
    ASSERT_TRUE(org.AssignRole(bob_, packer_).ok());
    ASSERT_TRUE(org.AssignRole(carol_, clerk_).ok());
  }

  void Init(AdeptCluster& cluster) {
    PopulateOrg(cluster);
    schema_ = RoleSchema(clerk_, packer_);
    ASSERT_NE(schema_, nullptr);
    auto deployed = cluster.DeployProcessType(schema_);
    ASSERT_TRUE(deployed.ok());
    v1_id_ = *deployed;
  }

  RoleId clerk_, packer_;
  UserId alice_, bob_, carol_;
  SchemaId v1_id_;
  std::shared_ptr<const ProcessSchema> schema_;
};

TEST_F(WorklistServiceTest, OfferClaimStartCompleteLifecycle) {
  auto cluster = AdeptCluster::Create({.shards = 2});
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  WorklistService& worklist = (*cluster)->Worklist();

  InstanceId id = *(*cluster)->CreateInstance("wl_proc");

  // "prepare" is offered to both clerks, not the packer.
  auto alice_offers = worklist.OffersFor(alice_);
  ASSERT_EQ(alice_offers.size(), 1u);
  EXPECT_EQ(alice_offers[0].node, schema_->FindNodeByName("prepare"));
  EXPECT_EQ(worklist.OffersFor(carol_).size(), 1u);
  EXPECT_TRUE(worklist.OffersFor(bob_).empty());

  // Claim: the offer leaves every clerk's view, lands on alice's list.
  WorkItemId item = alice_offers[0].id;
  ASSERT_TRUE(worklist.Claim(item, alice_).ok());
  EXPECT_TRUE(worklist.OffersFor(alice_).empty());
  EXPECT_TRUE(worklist.OffersFor(carol_).empty());
  auto assigned = worklist.AssignedTo(alice_);
  ASSERT_EQ(assigned.size(), 1u);
  EXPECT_EQ(assigned[0].state, WorkItemState::kClaimed);

  // Start requires the claim; the packer cannot start alice's item.
  EXPECT_EQ(worklist.Start(item, bob_).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(worklist.Start(item, alice_).ok());
  assigned = worklist.AssignedTo(alice_);
  ASSERT_EQ(assigned.size(), 1u);
  EXPECT_EQ(assigned[0].state, WorkItemState::kStarted);

  // Completing routes through the cluster and opens the successor offer.
  ASSERT_TRUE(worklist.Complete(item, alice_).ok());
  EXPECT_TRUE(worklist.AssignedTo(alice_).empty());
  auto bob_offers = worklist.OffersFor(bob_);
  ASSERT_EQ(bob_offers.size(), 1u);
  EXPECT_EQ(bob_offers[0].node, schema_->FindNodeByName("execute"));
  EXPECT_EQ(bob_offers[0].instance, id);

  WorklistStats stats = worklist.Stats();
  EXPECT_EQ(stats.offered, 1u);
  EXPECT_EQ(stats.completed_total, 1u);
}

TEST_F(WorklistServiceTest, ClaimAuthorizationAndUnknownItems) {
  auto cluster = AdeptCluster::Create({.shards = 2});
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  WorklistService& worklist = (*cluster)->Worklist();
  (void)*(*cluster)->CreateInstance("wl_proc");

  auto offers = worklist.OffersFor(alice_);
  ASSERT_EQ(offers.size(), 1u);
  // bob is no clerk.
  EXPECT_EQ(worklist.Claim(offers[0].id, bob_).code(),
            StatusCode::kFailedPrecondition);
  // Unknown item ids are kNotFound.
  EXPECT_EQ(worklist.Claim(WorkItemId(999999), alice_).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(worklist.Get(WorkItemId(999999)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(WorklistServiceTest, ReleaseAndDelegate) {
  auto cluster = AdeptCluster::Create({.shards = 2});
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  WorklistService& worklist = (*cluster)->Worklist();
  (void)*(*cluster)->CreateInstance("wl_proc");

  WorkItemId item = worklist.OffersFor(alice_)[0].id;
  ASSERT_TRUE(worklist.Claim(item, alice_).ok());

  // Release returns the item to every clerk's offers.
  ASSERT_TRUE(worklist.Release(item, alice_).ok());
  EXPECT_TRUE(worklist.AssignedTo(alice_).empty());
  ASSERT_EQ(worklist.OffersFor(carol_).size(), 1u);

  // Carol claims and delegates to alice; bob (wrong role) is rejected.
  ASSERT_TRUE(worklist.Claim(item, carol_).ok());
  EXPECT_EQ(worklist.Delegate(item, carol_, bob_).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(worklist.Delegate(item, carol_, alice_).ok());
  EXPECT_TRUE(worklist.AssignedTo(carol_).empty());
  ASSERT_EQ(worklist.AssignedTo(alice_).size(), 1u);
  // Only the current owner can release or start.
  EXPECT_EQ(worklist.Release(item, carol_).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(worklist.Start(item, alice_).ok());
}

// The acceptance-criteria test: under 8 concurrent claimers every item is
// claimed by exactly one user — no lost claims, no double claims.
TEST_F(WorklistServiceTest, EightThreadConcurrentClaimExactlyOnce) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  OrgModel& org = (*cluster)->org();
  WorklistService& worklist = (*cluster)->Worklist();

  constexpr int kUsers = 8;
  constexpr int kItems = 64;
  std::vector<UserId> users;
  for (int u = 0; u < kUsers; ++u) {
    UserId user = *org.AddUser("claimer" + std::to_string(u));
    ASSERT_TRUE(org.AssignRole(user, clerk_).ok());
    users.push_back(user);
  }
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE((*cluster)->CreateInstance("wl_proc").ok());
  }
  auto offers = worklist.OffersFor(users[0]);
  ASSERT_EQ(offers.size(), static_cast<size_t>(kItems));

  std::atomic<int> successes{0};
  std::atomic<int> losers{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (int u = 0; u < kUsers; ++u) {
    threads.emplace_back([&, u] {
      for (const WorkItem& offer : offers) {
        Status st = worklist.Claim(offer.id, users[u]);
        if (st.ok()) {
          successes.fetch_add(1);
        } else if (st.code() == StatusCode::kFailedPrecondition) {
          losers.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly one winner per item, everyone else lost the compare-and-swap.
  EXPECT_EQ(successes.load(), kItems);
  EXPECT_EQ(losers.load(), kItems * (kUsers - 1));
  EXPECT_EQ(unexpected.load(), 0);

  // The item table agrees: every item claimed, each by a valid user,
  // and the per-user assignment lists partition the items.
  std::set<uint64_t> seen;
  size_t assigned_total = 0;
  for (UserId user : users) {
    for (const WorkItem& item : worklist.AssignedTo(user)) {
      EXPECT_EQ(item.state, WorkItemState::kClaimed);
      EXPECT_EQ(item.claimed_by, user);
      EXPECT_TRUE(seen.insert(item.id.value()).second)
          << "item on two assignment lists";
      ++assigned_total;
    }
  }
  EXPECT_EQ(assigned_total, static_cast<size_t>(kItems));
  EXPECT_TRUE(worklist.OffersFor(users[0]).empty());
}

// The acceptance-criteria test: claimed items survive Recover() with owner
// and state intact.
TEST_F(WorklistServiceTest, ClaimedItemsSurviveRecovery) {
  TempDir dir;
  ClusterOptions options;
  options.shards = 2;
  options.wal_path = dir.File("cluster.wal");
  options.snapshot_path = dir.File("cluster.snapshot");

  InstanceId claimed_instance, started_instance, offered_instance;
  NodeId prepare;
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    WorklistService& worklist = (*cluster)->Worklist();
    prepare = schema_->FindNodeByName("prepare");

    claimed_instance = *(*cluster)->CreateInstance("wl_proc");
    started_instance = *(*cluster)->CreateInstance("wl_proc");
    offered_instance = *(*cluster)->CreateInstance("wl_proc");

    std::map<uint64_t, WorkItemId> by_instance;
    for (const WorkItem& offer : worklist.OffersFor(alice_)) {
      by_instance[offer.instance.value()] = offer.id;
    }
    ASSERT_EQ(by_instance.size(), 3u);
    ASSERT_TRUE(
        worklist.Claim(by_instance[claimed_instance.value()], alice_).ok());
    ASSERT_TRUE(
        worklist.Claim(by_instance[started_instance.value()], carol_).ok());
    ASSERT_TRUE(
        worklist.Start(by_instance[started_instance.value()], carol_).ok());
  }  // cluster destroyed ("crash")

  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  // The org model is not durable; repopulate in the same order (same ids).
  PopulateOrg(**recovered);
  WorklistService& worklist = (*recovered)->Worklist();

  auto alice_assigned = worklist.AssignedTo(alice_);
  ASSERT_EQ(alice_assigned.size(), 1u);
  EXPECT_EQ(alice_assigned[0].instance, claimed_instance);
  EXPECT_EQ(alice_assigned[0].node, prepare);
  EXPECT_EQ(alice_assigned[0].state, WorkItemState::kClaimed);
  EXPECT_EQ(alice_assigned[0].claimed_by, alice_);

  auto carol_assigned = worklist.AssignedTo(carol_);
  ASSERT_EQ(carol_assigned.size(), 1u);
  EXPECT_EQ(carol_assigned[0].instance, started_instance);
  EXPECT_EQ(carol_assigned[0].state, WorkItemState::kStarted);
  EXPECT_EQ(carol_assigned[0].claimed_by, carol_);

  // The unclaimed offer is re-derived from instance state; the claimed
  // ones stay off the offer lists.
  auto offers = worklist.OffersFor(alice_);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].instance, offered_instance);

  // The recovered lifecycle keeps working end to end.
  ASSERT_TRUE(worklist.Start(alice_assigned[0].id, alice_).ok());
  ASSERT_TRUE(worklist.Complete(alice_assigned[0].id, alice_).ok());
  ASSERT_TRUE(worklist.Complete(carol_assigned[0].id, carol_).ok());
  ASSERT_EQ(worklist.OffersFor(bob_).size(), 2u);
}

TEST_F(WorklistServiceTest, ReleasedThenReclaimedSurvivesRecovery) {
  TempDir dir;
  ClusterOptions options;
  options.shards = 2;
  options.wal_path = dir.File("cluster.wal");
  options.snapshot_path = dir.File("cluster.snapshot");
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    Init(**cluster);
    WorklistService& worklist = (*cluster)->Worklist();
    (void)*(*cluster)->CreateInstance("wl_proc");
    WorkItemId item = worklist.OffersFor(alice_)[0].id;
    ASSERT_TRUE(worklist.Claim(item, alice_).ok());
    ASSERT_TRUE(worklist.Release(item, alice_).ok());
    ASSERT_TRUE(worklist.Claim(item, carol_).ok());
  }
  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  PopulateOrg(**recovered);
  WorklistService& worklist = (*recovered)->Worklist();
  // The journal replays claim -> release -> claim: carol owns the item.
  EXPECT_TRUE(worklist.AssignedTo(alice_).empty());
  auto assigned = worklist.AssignedTo(carol_);
  ASSERT_EQ(assigned.size(), 1u);
  EXPECT_EQ(assigned[0].state, WorkItemState::kClaimed);
}

// Crash window: a claim is made durable, its activity completes and the
// loop re-activates the node, but the async start/close journal records
// are lost in the crash. The journal's last durable record is the old
// claim — replay must NOT attach it to the fresh iteration's offer (the
// activation epoch recorded in the claim catches the mismatch).
TEST_F(WorklistServiceTest, LostCloseRecordCannotResurrectStaleClaim) {
  TempDir dir;
  ClusterOptions options;
  options.shards = 1;
  options.wal_path = dir.File("cluster.wal");
  options.snapshot_path = dir.File("cluster.snapshot");

  DataId again;
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    PopulateOrg(**cluster);
    SchemaBuilder b("loop_proc", 1);
    again = b.Data("again", DataType::kBool);
    b.Loop(again, [&](SchemaBuilder& s) {
      NodeId work = s.Activity("work", {.role = clerk_});
      s.Writes(work, again);
    });
    auto schema = b.Build();
    ASSERT_TRUE(schema.ok());
    ASSERT_TRUE((*cluster)->DeployProcessType(*schema).ok());
    ASSERT_TRUE((*cluster)->CreateInstance("loop_proc").ok());

    WorklistService& worklist = (*cluster)->Worklist();
    auto offers = worklist.OffersFor(alice_);
    ASSERT_EQ(offers.size(), 1u);
    ASSERT_TRUE(worklist.Claim(offers[0].id, alice_).ok());
    ASSERT_TRUE(worklist.Start(offers[0].id, alice_).ok());
    // Iterate: "work" completes and is re-activated (fresh offer).
    ASSERT_TRUE(worklist
                    .Complete(offers[0].id, alice_,
                              {{again, DataValue::Bool(true)}})
                    .ok());
    ASSERT_EQ(worklist.OffersFor(carol_).size(), 1u);
  }  // clean shutdown drains the journal: claim, start, close, ...

  // Crash injection: chop the journal back to its first frame (the
  // durable claim) — the async start/close tail never hit the disk.
  std::string journal = options.wal_path + ".worklist";
  {
    std::ifstream in(journal, std::ios::binary);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    auto first_frame_end = content.find('\n');
    ASSERT_NE(first_frame_end, std::string::npos);
    std::filesystem::resize_file(journal, first_frame_end + 1);
  }

  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  PopulateOrg(**recovered);
  WorklistService& worklist = (*recovered)->Worklist();

  // The stale claim (epoch 0) must not own iteration 2's offer (epoch 1):
  // alice holds nothing and any clerk can claim the fresh offer.
  EXPECT_TRUE(worklist.AssignedTo(alice_).empty());
  auto offers = worklist.OffersFor(carol_);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_TRUE(worklist.Claim(offers[0].id, carol_).ok());
}

// Revocation storm: a bulk cross-shard migration demotes the offered/
// claimed activity on every instance; each item is retracted exactly once
// and stale claim tickets fail kNotFound.
TEST_F(WorklistServiceTest, BulkMigrationRetractsOfferedAndClaimedOnce) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  WorklistService& worklist = (*cluster)->Worklist();

  constexpr int kInstances = 12;
  NodeId prepare = schema_->FindNodeByName("prepare");
  std::vector<InstanceId> instances;
  for (int i = 0; i < kInstances; ++i) {
    InstanceId id = *(*cluster)->CreateInstance("wl_proc");
    instances.push_back(id);
    // Complete "prepare" so "execute" (packer) is the offered activity.
    ASSERT_TRUE((*cluster)->StartActivity(id, prepare).ok());
    ASSERT_TRUE((*cluster)->CompleteActivity(id, prepare).ok());
  }
  auto offers = worklist.OffersFor(bob_);
  ASSERT_EQ(offers.size(), static_cast<size_t>(kInstances));
  // Claim half of them: revocation must retract offered AND claimed.
  std::vector<WorkItemId> claimed_ids;
  for (int i = 0; i < kInstances / 2; ++i) {
    ASSERT_TRUE(worklist.Claim(offers[i].id, bob_).ok());
    claimed_ids.push_back(offers[i].id);
  }

  // Delta-T: insert "inspect" (clerk) before "execute" on every instance.
  Delta delta;
  NewActivitySpec spec;
  spec.name = "inspect";
  spec.role = clerk_;
  delta.Add(std::make_unique<SerialInsertOp>(
      spec, prepare, schema_->FindNodeByName("execute")));
  auto v2 = (*cluster)->EvolveProcessType(v1_id_, std::move(delta));
  ASSERT_TRUE(v2.ok());
  auto report = (*cluster)->MigrateToLatest("wl_proc");
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->MigratedTotal(), static_cast<size_t>(kInstances));

  // Every "execute" item was retracted exactly once; "inspect" offers
  // replace them.
  WorklistStats stats = worklist.Stats();
  EXPECT_EQ(stats.revoked_total, static_cast<size_t>(kInstances));
  EXPECT_TRUE(worklist.OffersFor(bob_).empty());
  EXPECT_TRUE(worklist.AssignedTo(bob_).empty());
  EXPECT_EQ(worklist.OffersFor(alice_).size(),
            static_cast<size_t>(kInstances));
  for (WorkItemId id : claimed_ids) {
    EXPECT_EQ(worklist.Claim(id, bob_).code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(stats.claimed, 0u);
}

TEST_F(WorklistServiceTest, AdHocDeletionRetractsClaimedItem) {
  auto cluster = AdeptCluster::Create({.shards = 2});
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  WorklistService& worklist = (*cluster)->Worklist();

  InstanceId id = *(*cluster)->CreateInstance("wl_proc");
  auto offers = worklist.OffersFor(alice_);
  ASSERT_EQ(offers.size(), 1u);
  ASSERT_TRUE(worklist.Claim(offers[0].id, alice_).ok());

  Delta delta;
  delta.Add(std::make_unique<DeleteActivityOp>(
      schema_->FindNodeByName("prepare")));
  ASSERT_TRUE((*cluster)->ApplyAdHocChange(id, std::move(delta)).ok());

  EXPECT_TRUE(worklist.AssignedTo(alice_).empty());
  EXPECT_EQ(worklist.Stats().revoked_total, 1u);
  EXPECT_EQ(worklist.Claim(offers[0].id, alice_).code(),
            StatusCode::kNotFound);
  // The successor is offered instead.
  ASSERT_EQ(worklist.OffersFor(bob_).size(), 1u);
}

// The claim journal must not grow without bound: each checkpoint rewrites
// it as one record per live claim, so after N cycles of claim/complete
// churn its size is O(live claims), not O(total claim history).
TEST_F(WorklistServiceTest, JournalCompactionBoundsFileAtLiveClaims) {
  TempDir dir;
  ClusterOptions options;
  options.shards = 2;
  options.wal_path = dir.File("cluster.wal");
  options.snapshot_path = dir.File("cluster.snapshot");
  const std::string journal = options.wal_path + ".worklist";

  auto cluster = AdeptCluster::Create(options);
  ASSERT_TRUE(cluster.ok());
  Init(**cluster);
  WorklistService& worklist = (*cluster)->Worklist();

  // A full claim cycle for one user on the instance's currently offered
  // activity: claim -> start -> complete.
  auto run_cycle = [&](InstanceId id, UserId user) {
    WorkItemId item;
    bool found = false;
    for (const WorkItem& offer : worklist.OffersFor(user)) {
      if (offer.instance == id) {
        item = offer.id;
        found = true;
      }
    }
    ASSERT_TRUE(found) << "no offer for instance " << id;
    ASSERT_TRUE(worklist.Claim(item, user).ok());
    ASSERT_TRUE(worklist.Start(item, user).ok());
    ASSERT_TRUE(worklist.Complete(item, user).ok());
  };

  // 10 checkpointed churn cycles; every claim closes within its cycle.
  for (int cycle = 0; cycle < 10; ++cycle) {
    InstanceId id = *(*cluster)->CreateInstance("wl_proc");
    run_cycle(id, alice_);  // prepare (clerk)
    run_cycle(id, bob_);    // execute (packer)
    ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
    // Bounded after every checkpoint: no live claims -> no records, even
    // though 4+ lifecycle records were journaled during the cycle.
    auto compacted = WriteAheadLog::ReadRecords(journal);
    ASSERT_TRUE(compacted.ok());
    EXPECT_EQ(compacted->size(), 0u) << "cycle " << cycle;
  }

  // With live claims the compacted journal holds exactly one record each.
  InstanceId open1 = *(*cluster)->CreateInstance("wl_proc");
  InstanceId open2 = *(*cluster)->CreateInstance("wl_proc");
  std::map<uint64_t, WorkItemId> by_instance;
  for (const WorkItem& offer : worklist.OffersFor(alice_)) {
    by_instance[offer.instance.value()] = offer.id;
  }
  ASSERT_TRUE(worklist.Claim(by_instance[open1.value()], alice_).ok());
  ASSERT_TRUE(worklist.Claim(by_instance[open2.value()], carol_).ok());
  ASSERT_TRUE(worklist.Start(by_instance[open2.value()], carol_).ok());
  ASSERT_TRUE((*cluster)->SaveSnapshot().ok());
  auto compacted = WriteAheadLog::ReadRecords(journal);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(compacted->size(), 2u);

  // The compacted journal still recovers claims with owner and state.
  cluster->reset();
  auto recovered = AdeptCluster::Recover(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  WorklistService& recovered_worklist = (*recovered)->Worklist();
  auto alice_assigned = recovered_worklist.AssignedTo(alice_);
  ASSERT_EQ(alice_assigned.size(), 1u);
  EXPECT_EQ(alice_assigned[0].instance, open1);
  EXPECT_EQ(alice_assigned[0].state, WorkItemState::kClaimed);
  auto carol_assigned = recovered_worklist.AssignedTo(carol_);
  ASSERT_EQ(carol_assigned.size(), 1u);
  EXPECT_EQ(carol_assigned[0].instance, open2);
  EXPECT_EQ(carol_assigned[0].state, WorkItemState::kStarted);
}

}  // namespace
}  // namespace adept
