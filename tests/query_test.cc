// Tests for the process query engine (src/query/): parser round-trips
// and error spans, the typed comparison semantics, index-vs-scan
// equivalence on randomized populations, the unified read-side consumers
// (Monitor::RenderMatching, WorklistService::OffersFor with a predicate),
// index rebuild through Recover(), and an index-consistency stress run
// with queries racing writers, a migration, and a live Resize(2 -> 4).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "change/change_op.h"
#include "cluster/adept_cluster.h"
#include "core/adept.h"
#include "model/schema_builder.h"
#include "monitor/monitor.h"
#include "query/query.h"
#include "query/query_parser.h"
#include "tests/test_fixtures.h"
#include "worklist/worklist_service.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::SchemaPtr;
using testing_fixtures::SequenceSchema;

class TempDir {
 public:
  TempDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("adept_query_test_" + std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  static int counter_;
  std::filesystem::path path_;
};

int TempDir::counter_ = 0;

std::vector<uint64_t> Ids(const QueryResult& result) {
  std::vector<uint64_t> ids;
  ids.reserve(result.size());
  for (const auto& snapshot : result) ids.push_back(snapshot->id.value());
  return ids;
}

// --- Parser ------------------------------------------------------------------

TEST(QueryParserTest, RoundTripThroughCanonicalForm) {
  const char* kQueries[] = {
      "state == running && data.priority >= 3",
      "(type == \"online_order\" || biased) && !activated(\"pack goods\")",
      "not (id < 10 or id > 100) and has(\"score\")",
      "data.name == \"a\\\"b\\n\"",
      "data.score > 2.5 || data.score <= -1.0",
      "trace_length > 0 && completed_total >= 2 && version >= 1",
      "schema == 1 && schema_version != 2",
      "true || false && running(\"check\")",
      "activated_since(\"resolve\", 12) && state == running",
      "biased",
      "id == 42",
  };
  for (const char* text : kQueries) {
    auto first = query::Parse(text);
    ASSERT_TRUE(first.ok()) << text << ": " << first.status();
    std::string canonical = (*first)->ToString();
    auto second = query::Parse(canonical);
    ASSERT_TRUE(second.ok())
        << "canonical form failed to re-parse: " << canonical << ": "
        << second.status();
    // Canonicalization is a fixpoint: printing the re-parse reproduces
    // the canonical spelling exactly.
    EXPECT_EQ(canonical, (*second)->ToString()) << "for input " << text;
  }
}

TEST(QueryParserTest, ErrorsCarryOffsetAndCaretSpan) {
  struct Case {
    const char* text;
    const char* expect;  // substring of the error message
  };
  const Case kCases[] = {
      {"state ==", "offset"},
      {"data.", "offset"},
      {"bogus == 3", "unknown field"},
      {"state == 7", "state compares against"},
      {"(id == 1", "offset"},
      {"\"unterminated", "unterminated string"},
      {"id @ 3", "unexpected character"},
      {"id == 1 extra", "offset"},
      {"activated(5)", "offset"},
      {"activated_since(\"a\")", "expected ','"},
      {"activated_since(\"a\", \"b\")", "integer sequence bound"},
      {"", "offset"},
  };
  for (const Case& c : kCases) {
    auto parsed = query::Parse(c.text);
    ASSERT_FALSE(parsed.ok()) << "accepted malformed query: " << c.text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(c.expect), std::string::npos)
        << "message for '" << c.text
        << "' missing '" << c.expect << "': " << parsed.status().message();
    // Every error carries the caret line pointing into the query text.
    EXPECT_NE(parsed.status().message().find('^'), std::string::npos)
        << parsed.status().message();
  }
}

// --- Typed comparison semantics ---------------------------------------------

// triage writes priority:int, urgent:bool, owner:string, score:double;
// resolve follows.
SchemaPtr TicketSchema() {
  SchemaBuilder b("ticket", 1);
  DataId priority = b.Data("priority", DataType::kInt);
  DataId urgent = b.Data("urgent", DataType::kBool);
  DataId owner = b.Data("owner", DataType::kString);
  DataId score = b.Data("score", DataType::kDouble);
  NodeId triage = b.Activity("triage");
  b.Writes(triage, priority);
  b.Writes(triage, urgent);
  b.Writes(triage, owner);
  b.Writes(triage, score);
  b.Activity("resolve");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

class TypedSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto system = AdeptSystem::Create();
    ASSERT_TRUE(system.ok());
    system_ = std::move(*system);
    auto schema = TicketSchema();
    ASSERT_NE(schema, nullptr);
    ASSERT_TRUE(system_->DeployProcessType(schema).ok());
    auto id = system_->CreateInstance("ticket");
    ASSERT_TRUE(id.ok());
    id_ = *id;
    NodeId triage = schema->FindNodeByName("triage");
    ASSERT_TRUE(system_->StartActivity(id_, triage).ok());
    ASSERT_TRUE(system_
                    ->CompleteActivity(
                        id_, triage,
                        {{schema->FindDataByName("priority"),
                          DataValue::Int(3)},
                         {schema->FindDataByName("urgent"),
                          DataValue::Bool(true)},
                         {schema->FindDataByName("owner"),
                          DataValue::String("kim")},
                         {schema->FindDataByName("score"),
                          DataValue::Double(2.5)}})
                    .ok());
    // A second instance that never ran triage: every data field missing.
    auto blank = system_->CreateInstance("ticket");
    ASSERT_TRUE(blank.ok());
    blank_ = *blank;
  }

  bool Matches(const std::string& text, InstanceId id) {
    auto result = system_->Query(text);
    EXPECT_TRUE(result.ok()) << text << ": " << result.status();
    if (!result.ok()) return false;
    auto ids = Ids(*result);
    return std::find(ids.begin(), ids.end(), id.value()) != ids.end();
  }

  std::unique_ptr<AdeptSystem> system_;
  InstanceId id_;
  InstanceId blank_;
};

TEST_F(TypedSemanticsTest, EqualityIsTypeStrict) {
  EXPECT_TRUE(Matches("data.priority == 3", id_));
  // Int field never equals (or un-equals) a string/bool literal: the
  // comparison is simply false on a type mismatch, for == and != alike.
  EXPECT_FALSE(Matches("data.priority == \"3\"", id_));
  EXPECT_FALSE(Matches("data.priority != \"3\"", id_));
  EXPECT_TRUE(Matches("data.urgent == true", id_));
  EXPECT_FALSE(Matches("data.urgent == 1", id_));
  EXPECT_TRUE(Matches("data.owner == kim", id_));  // bare-string shorthand
  EXPECT_FALSE(Matches("data.owner == Kim", id_));
}

TEST_F(TypedSemanticsTest, MissingFieldsNeverMatch) {
  // `blank_` never wrote any data element: ==, !=, and orderings are all
  // false against a missing field — != reads "present and different".
  EXPECT_FALSE(Matches("data.priority == 3", blank_));
  EXPECT_FALSE(Matches("data.priority != 3", blank_));
  EXPECT_FALSE(Matches("data.priority < 3", blank_));
  EXPECT_FALSE(Matches("has(\"priority\")", blank_));
  EXPECT_TRUE(Matches("has(\"priority\")", id_));
  // A data name unknown to the schema behaves like a missing field.
  EXPECT_FALSE(Matches("data.nonexistent == 1", id_));
}

TEST_F(TypedSemanticsTest, OrderingCoercesIntAndDouble) {
  EXPECT_TRUE(Matches("data.priority > 2.5", id_));   // 3 vs 2.5
  EXPECT_FALSE(Matches("data.priority > 3.5", id_));
  EXPECT_TRUE(Matches("data.score >= 2", id_));       // 2.5 vs 2
  EXPECT_TRUE(Matches("data.score < 3", id_));
  // Strings order lexicographically; bools never order.
  EXPECT_TRUE(Matches("data.owner < \"zed\"", id_));
  EXPECT_FALSE(Matches("data.urgent < true", id_));
  EXPECT_FALSE(Matches("data.urgent <= true", id_));
}

TEST_F(TypedSemanticsTest, StateAndStructuralFields) {
  // CreateInstance starts the flow, so facade-created instances are
  // already rank "running"; "created" only matches pre-start snapshots.
  EXPECT_TRUE(Matches("state == running", id_));
  EXPECT_FALSE(Matches("state == created", blank_));
  EXPECT_TRUE(Matches("state == running", blank_));
  EXPECT_TRUE(Matches("state != finished", id_));
  // Ordering is by lifecycle rank (created < running < finished), not by
  // the names' lexicographic order.
  EXPECT_TRUE(Matches("state < finished", id_));
  EXPECT_TRUE(Matches("state > created", id_));
  EXPECT_FALSE(Matches("state >= finished", id_));
  EXPECT_TRUE(Matches("activated(\"resolve\")", id_));
  EXPECT_FALSE(Matches("activated(\"resolve\")", blank_));
  EXPECT_TRUE(Matches("type == ticket && schema_version == 1", id_));
  EXPECT_TRUE(Matches("trace_length >= 2 && completed_total == 1", id_));
  EXPECT_TRUE(Matches("id == " + std::to_string(id_.value()), id_));
  EXPECT_FALSE(Matches("biased", id_));
}

TEST_F(TypedSemanticsTest, ActivatedSinceComparesLogicalStamps) {
  // id_ completed triage, so "resolve" is activated and carries the
  // logical stamp of the moment it entered kActivated. Read the stamp off
  // the snapshot rather than hard-coding the trace layout.
  auto snapshot = system_->SnapshotOf(id_);
  ASSERT_NE(snapshot, nullptr);
  NodeId resolve = snapshot->schema->FindNodeByName("resolve");
  const int64_t* stamp = snapshot->activated_since.Find(resolve);
  ASSERT_NE(stamp, nullptr);
  ASSERT_GT(*stamp, 0);

  const std::string at = std::to_string(*stamp);
  const std::string before = std::to_string(*stamp - 1);
  // "activated at or before sequence k and still pending".
  EXPECT_TRUE(Matches("activated_since(\"resolve\", " + at + ")", id_));
  EXPECT_FALSE(Matches("activated_since(\"resolve\", " + before + ")", id_));
  EXPECT_TRUE(Matches("activated_since(\"resolve\", 1000000)", id_));
  // blank_ never ran triage: "triage" itself is the long-pending node.
  EXPECT_TRUE(Matches("activated_since(\"triage\", 1000000)", blank_));
  EXPECT_FALSE(Matches("activated_since(\"triage\", 1000000)", id_))
      << "a completed node must drop out of the activated-since family";
  // Unknown names never match.
  EXPECT_FALSE(Matches("activated_since(\"nonexistent\", 1000000)", id_));

  // The planner routes the predicate through the activated-node index;
  // the indexed answer must equal the unindexed scan.
  auto indexed = system_->Query("activated_since(\"resolve\", " + at + ")");
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(indexed->used_index);
  auto compiled = CompiledQuery::Compile("activated_since(\"resolve\", " +
                                         at + ")");
  ASSERT_TRUE(compiled.ok());
  QueryResult scan = RunQuery(*compiled, system_->snapshots(), nullptr);
  EXPECT_EQ(Ids(*indexed), Ids(scan));
}

// --- Index vs scan equivalence ----------------------------------------------

TEST(QueryIndexTest, IndexAndScanAgreeOnRandomizedPopulation) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& sys = **system;
  auto schema = ComplexSchema();
  ASSERT_NE(schema, nullptr);
  ASSERT_TRUE(sys.DeployProcessType(schema).ok());

  std::mt19937 rng(42);
  SimulationDriver driver({.seed = 7, .loop_continue_probability = 0.4});
  constexpr int kPopulation = 48;
  for (int i = 0; i < kPopulation; ++i) {
    auto id = sys.CreateInstance("complex");
    ASSERT_TRUE(id.ok());
    int steps = static_cast<int>(rng() % 14);
    for (int s = 0; s < steps; ++s) {
      auto stepped = sys.DriveStep(*id, driver);
      if (!stepped.ok() || !*stepped) break;
    }
  }

  const char* kQueries[] = {
      "state == running",
      "state == finished",
      "state == created",
      "data.route == 1",
      "data.amount > 0.5",
      "has(\"redo\")",
      "trace_length > 4 && state == running",
      "running(\"loop work\") || activated(\"archive\")",
      "activated(\"intake\")",
      "biased == false",
      "completed_total >= 3",
      "id <= 10",
      "version >= 2",
      "type == complex && schema_version == 1",
      "!(state == finished) && !activated(\"intake\")",
      "activated_since(\"loop work\", 6)",
      "activated_since(\"archive\", 100) || running(\"intake\")",
      "true",
  };
  for (const char* text : kQueries) {
    auto indexed = sys.Query(text);
    ASSERT_TRUE(indexed.ok()) << text << ": " << indexed.status();
    auto compiled = CompiledQuery::Compile(text);
    ASSERT_TRUE(compiled.ok());
    QueryResult scan = RunQuery(*compiled, sys.snapshots(), nullptr);
    EXPECT_FALSE(scan.used_index);
    EXPECT_EQ(Ids(*indexed), Ids(scan)) << "divergence on: " << text;
  }

  // A selective indexed probe touches a fraction of the population.
  auto selective = sys.Query("id == 17");
  ASSERT_TRUE(selective.ok());
  EXPECT_TRUE(selective->used_index);
  EXPECT_LE(selective->evaluated, 1u);
  auto by_state = sys.Query("state == finished");
  ASSERT_TRUE(by_state.ok());
  EXPECT_TRUE(by_state->used_index);
  EXPECT_LE(by_state->evaluated, static_cast<size_t>(kPopulation));
}

// Two indexable conjuncts: the planner probes both indexes and
// intersects the candidate id sets before fetching snapshots, so the
// expensive re-validation runs only on ids both indexes agree on — and
// the result stays exactly scan-equivalent.
TEST(QueryIndexTest, TwoConjunctIntersectionMatchesScanAndEvaluatesFewer) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& sys = **system;
  auto schema = ComplexSchema();
  ASSERT_NE(schema, nullptr);
  ASSERT_TRUE(sys.DeployProcessType(schema).ok());

  std::mt19937 rng(1234);
  SimulationDriver driver({.seed = 9, .loop_continue_probability = 0.4});
  for (int i = 0; i < 60; ++i) {
    auto id = sys.CreateInstance("complex");
    ASSERT_TRUE(id.ok());
    int steps = static_cast<int>(rng() % 12);
    for (int s = 0; s < steps; ++s) {
      auto stepped = sys.DriveStep(*id, driver);
      if (!stepped.ok() || !*stepped) break;
    }
  }

  const char* kIntersections[] = {
      "data.route == 1 && state == running",
      "state == finished && data.route == 2",
      "data.amount == 0.25 && state == created",
      "version >= 2 && state == running",
      "activated(\"intake\") && data.route == 1",
  };
  for (const char* text : kIntersections) {
    auto indexed = sys.Query(text);
    ASSERT_TRUE(indexed.ok()) << text << ": " << indexed.status();
    EXPECT_TRUE(indexed->used_index) << text;
    // An empty first probe short-circuits the second (nothing left to
    // narrow), so two probes only run when the first found candidates.
    EXPECT_GE(indexed->index_probes, 1) << text;
    auto compiled = CompiledQuery::Compile(text);
    ASSERT_TRUE(compiled.ok());
    QueryResult scan = RunQuery(*compiled, sys.snapshots(), nullptr);
    EXPECT_EQ(scan.index_probes, 0);
    EXPECT_EQ(Ids(*indexed), Ids(scan)) << "divergence on: " << text;
    // The intersection can never evaluate more candidates than either
    // single-probe plan would have.
    for (const char* part : {"state == running", "state == finished",
                             "state == created"}) {
      if (std::string(text).find(part) == std::string::npos) continue;
      auto single = sys.Query(part);
      ASSERT_TRUE(single.ok());
      EXPECT_EQ(single->index_probes, 1) << part;
      EXPECT_LE(indexed->evaluated, single->evaluated) << text;
    }
  }

  // A pair whose first (cheapest) probe has candidates runs both probes.
  auto paired = sys.Query("data.route == 1 && state == running");
  ASSERT_TRUE(paired.ok());
  EXPECT_EQ(paired->index_probes, 2);

  // Contradictory conjuncts: the intersection is empty, so nothing is
  // fetched or evaluated at all.
  auto none = sys.Query("data.route == 1 && data.route == 2");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->index_probes, 2);
  EXPECT_EQ(none->evaluated, 0u);
  EXPECT_TRUE(none->empty());
}

TEST(QueryIndexTest, DisabledIndexesFallBackToScans) {
  AdeptOptions options;
  options.query_indexes = false;
  auto system = AdeptSystem::Create(options);
  ASSERT_TRUE(system.ok());
  ASSERT_TRUE((*system)->DeployProcessType(SequenceSchema(3)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*system)->CreateInstance("seq").ok());
  }
  auto result = (*system)->Query("state == running");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->used_index);
  EXPECT_EQ(result->size(), 5u);
}

TEST(QueryClusterTest, MergesShardsInAscendingIdOrder) {
  auto cluster = AdeptCluster::Create({.shards = 4});
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(SequenceSchema(4)).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*cluster)->CreateInstance("seq").ok());
  }
  auto result = (*cluster)->Query("state == running");
  ASSERT_TRUE(result.ok());
  auto ids = Ids(*result);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  // Malformed input surfaces the compile error, not a sweep.
  EXPECT_EQ((*cluster)->Query("state ==").status().code(),
            StatusCode::kInvalidArgument);
}

// --- Unified read-side consumers --------------------------------------------

TEST(QueryConsumersTest, RenderMatchingRendersEveryHit) {
  auto system = AdeptSystem::Create();
  ASSERT_TRUE(system.ok());
  AdeptSystem& sys = **system;
  ASSERT_TRUE(sys.DeployProcessType(SequenceSchema(2)).ok());
  auto a = sys.CreateInstance("seq");
  auto b = sys.CreateInstance("seq");
  ASSERT_TRUE(a.ok() && b.ok());
  SimulationDriver driver({.seed = 3});
  ASSERT_TRUE(sys.DriveToCompletion(*a, driver).ok());

  auto finished = RenderMatching(sys, "state == finished");
  ASSERT_TRUE(finished.ok());
  EXPECT_NE(finished->find("[finished]"), std::string::npos);
  EXPECT_EQ(finished->find("I" + std::to_string(b->value()) + " on"),
            std::string::npos);
  auto running = RenderMatching(sys, "state == running");
  ASSERT_TRUE(running.ok());
  EXPECT_EQ(running->find("[finished]"), std::string::npos);
  EXPECT_FALSE(RenderMatching(sys, "state ==").ok());

  // The live-instance render adapts through BuildSnapshot(), so both
  // overloads print identically for a quiesced instance.
  auto snapshot = sys.SnapshotOf(*b);
  ASSERT_NE(snapshot, nullptr);
  std::string from_snapshot = RenderInstance(*snapshot);
  (void)sys.WithInstance(*b, [&](const ProcessInstance& live) {
    EXPECT_EQ(RenderInstance(live), from_snapshot);
  });
}

TEST(QueryConsumersTest, OffersForWithPredicateFiltersOnSnapshotData) {
  auto cluster = AdeptCluster::Create({.shards = 2});
  ASSERT_TRUE(cluster.ok());
  RoleId clerk = *(*cluster)->org().AddRole("clerk");
  UserId user = *(*cluster)->org().AddUser("worker");
  ASSERT_TRUE((*cluster)->org().AssignRole(user, clerk).ok());

  SchemaBuilder b("ticket", 1);
  DataId priority = b.Data("priority", DataType::kInt);
  NodeId triage = b.Activity("triage", {.role = clerk});
  b.Writes(triage, priority);
  b.Activity("resolve", {.role = clerk});
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  ASSERT_TRUE((*cluster)->DeployProcessType(*schema).ok());

  constexpr int kTickets = 6;
  for (int i = 0; i < kTickets; ++i) {
    auto id = (*cluster)->CreateInstance("ticket");
    ASSERT_TRUE(id.ok());
    NodeId node = (*schema)->FindNodeByName("triage");
    ASSERT_TRUE((*cluster)->StartActivity(*id, node).ok());
    ASSERT_TRUE((*cluster)
                    ->CompleteActivity(*id, node,
                                       {{priority, DataValue::Int(i)}})
                    .ok());
  }

  WorklistService& worklist = (*cluster)->Worklist();
  EXPECT_EQ(worklist.OffersFor(user).size(), static_cast<size_t>(kTickets));
  auto urgent = worklist.OffersFor(user, "data.priority >= 3");
  ASSERT_TRUE(urgent.ok());
  EXPECT_EQ(urgent->size(), 3u);  // priorities 3, 4, 5
  for (const WorkItem& item : *urgent) {
    auto snapshot = (*cluster)->SnapshotOf(item.instance);
    ASSERT_NE(snapshot, nullptr);
    const DataValue* value = snapshot->data_values.Find(priority);
    ASSERT_NE(value, nullptr);
    EXPECT_GE(value->as_int(), 3);
  }
  auto none = worklist.OffersFor(user, "data.priority >= 3 && biased");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  EXPECT_EQ(worklist.OffersFor(user, "data.").status().code(),
            StatusCode::kInvalidArgument);
}

// --- Recover rebuilds the indexes -------------------------------------------

TEST(QueryRecoverTest, IndexesRebuildEquivalentlyAcrossShardCounts) {
  TempDir dir;
  ClusterOptions options;
  options.shards = 2;
  options.wal_path = dir.File("query.wal");
  options.snapshot_path = dir.File("query.snapshot");

  std::vector<uint64_t> before_ids;
  {
    auto cluster = AdeptCluster::Create(options);
    ASSERT_TRUE(cluster.ok());
    auto schema = TicketSchema();
    ASSERT_TRUE((*cluster)->DeployProcessType(schema).ok());
    for (int i = 0; i < 10; ++i) {
      auto id = (*cluster)->CreateInstance("ticket");
      ASSERT_TRUE(id.ok());
      NodeId node = schema->FindNodeByName("triage");
      ASSERT_TRUE((*cluster)->StartActivity(*id, node).ok());
      ASSERT_TRUE((*cluster)
                      ->CompleteActivity(
                          *id, node,
                          {{schema->FindDataByName("priority"),
                            DataValue::Int(i % 3)},
                           {schema->FindDataByName("urgent"),
                            DataValue::Bool(i % 2 == 0)},
                           {schema->FindDataByName("owner"),
                            DataValue::String("u" + std::to_string(i))},
                           {schema->FindDataByName("score"),
                            DataValue::Double(i * 0.5)}})
                      .ok());
    }
    auto result = (*cluster)->Query("data.priority == 1");
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->used_index);
    before_ids = Ids(*result);
    ASSERT_FALSE(before_ids.empty());
  }

  for (int shards : {2, 4}) {
    options.shards = shards;
    auto recovered = AdeptCluster::Recover(options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    auto result = (*recovered)->Query("data.priority == 1");
    ASSERT_TRUE(result.ok());
    // The rebuilt indexes (bulk republication during recovery) answer
    // identically, and the probe still runs indexed.
    EXPECT_TRUE(result->used_index);
    EXPECT_EQ(Ids(*result), before_ids) << "with " << shards << " shards";
  }
}

// --- Index consistency under concurrent mutation ----------------------------

SchemaPtr StressSchema(RoleId role) {
  SchemaBuilder b("stress", 1);
  DataId again = b.Data("again", DataType::kBool);
  b.Activity("prepare", {.role = role});
  b.Loop(again, [&](SchemaBuilder& s) {
    NodeId check = s.Activity("check", {.role = role});
    s.Writes(check, again);
  });
  b.Activity("finish", {.role = role});
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

TEST(QueryStressTest, NoStaleWrongHitsAcrossMigrateAndResize) {
  constexpr int kPopulation = 16;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;

  auto cluster = AdeptCluster::Create({.shards = 2});
  ASSERT_TRUE(cluster.ok());
  RoleId clerk = *(*cluster)->org().AddRole("clerk");
  auto schema = StressSchema(clerk);
  ASSERT_NE(schema, nullptr);
  auto v1 = (*cluster)->DeployProcessType(schema);
  ASSERT_TRUE(v1.ok());

  std::vector<InstanceId> ids;
  for (int i = 0; i < kPopulation; ++i) {
    auto id = (*cluster)->CreateInstance("stress");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> pause_writers{false};
  std::atomic<int> paused_writers{0};
  std::atomic<size_t> queries_total{0};
  std::atomic<size_t> query_failures{0};
  std::atomic<size_t> stale_wrong{0};

  const char* kPredicates[] = {
      "state == running && trace_length >= 1",
      "running(\"check\") || activated(\"check\")",
      "has(\"again\")",
      "state == finished",
      "version >= 1",
  };
  std::vector<CompiledQuery> compiled;
  for (const char* text : kPredicates) {
    auto c = CompiledQuery::Compile(text);
    ASSERT_TRUE(c.ok());
    compiled.push_back(*c);
  }

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t round = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        size_t q = round++ % compiled.size();
        auto result = (*cluster)->Query(kPredicates[q]);
        queries_total.fetch_add(1, std::memory_order_relaxed);
        if (!result.ok()) {
          query_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        uint64_t previous = 0;
        for (const auto& hit : *result) {
          // The zero-stale-wrong contract: every returned snapshot
          // satisfies the predicate it was returned for, no matter how
          // stale the index entry that nominated it was.
          if (!compiled[q].Matches(*hit)) {
            stale_wrong.fetch_add(1, std::memory_order_relaxed);
          }
          // Merged sweeps are duplicate-free and sorted even while the
          // routing epoch churns.
          if (hit->id.value() <= previous) {
            stale_wrong.fetch_add(1, std::memory_order_relaxed);
          }
          previous = hit->id.value();
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      SimulationDriver driver({.seed = 50 + static_cast<uint64_t>(w),
                               .loop_continue_probability = 0.8,
                               .max_loop_iterations = 1000000});
      size_t rounds = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (pause_writers.load(std::memory_order_acquire)) {
          paused_writers.fetch_add(1, std::memory_order_acq_rel);
          while (pause_writers.load(std::memory_order_acquire) &&
                 !stop.load(std::memory_order_relaxed)) {
            std::this_thread::yield();
          }
          paused_writers.fetch_sub(1, std::memory_order_acq_rel);
          continue;
        }
        for (size_t i = static_cast<size_t>(w); i < ids.size();
             i += kWriters) {
          (void)(*cluster)->DriveStep(ids[i], driver);
        }
        if (++rounds % 32 == 0) {
          Delta delta;
          NewActivitySpec spec;
          spec.name = "adhoc" + std::to_string(rounds);
          spec.role = clerk;
          delta.Add(std::make_unique<SerialInsertOp>(
              spec, schema->FindNodeByName("prepare"),
              schema->FindNodeByName("loop_start")));
          (void)(*cluster)->ApplyAdHocChange(ids[static_cast<size_t>(w)],
                                             std::move(delta));
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // Type migration under load: indexed node-name and schema-version
  // entries churn while queries race.
  Delta evolution;
  NewActivitySpec audit;
  audit.name = "audit";
  audit.role = clerk;
  evolution.Add(std::make_unique<SerialInsertOp>(
      audit, schema->FindNodeByName("prepare"),
      schema->FindNodeByName("loop_start")));
  auto v2 = (*cluster)->EvolveProcessType(*v1, std::move(evolution));
  ASSERT_TRUE(v2.ok());
  auto report = (*cluster)->Migrate(*v1, *v2);
  ASSERT_TRUE(report.ok()) << report.status();

  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // Live resize with queries still running (writers quiesced per the
  // Resize contract): indexes move with the instances through the
  // Export/Import/Evict handover.
  pause_writers.store(true, std::memory_order_release);
  while (paused_writers.load(std::memory_order_acquire) < kWriters) {
    std::this_thread::yield();
  }
  ASSERT_TRUE((*cluster)->Resize(4).ok());
  pause_writers.store(false, std::memory_order_release);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  for (auto& t : writers) t.join();

  EXPECT_EQ(stale_wrong.load(), 0u);
  EXPECT_EQ(query_failures.load(), 0u);
  EXPECT_GT(queries_total.load(), 0u);

  // Quiesced: the match-all sweep sees exactly the population, and every
  // shard's index agrees with a fresh unindexed scan.
  auto all = (*cluster)->Query("true");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), static_cast<size_t>(kPopulation));
  for (const char* text : kPredicates) {
    auto c = CompiledQuery::Compile(text);
    ASSERT_TRUE(c.ok());
    auto indexed = (*cluster)->Query(text);
    ASSERT_TRUE(indexed.ok());
    QueryResult scan;
    for (size_t s = 0; s < (*cluster)->shard_count(); ++s) {
      RunQueryInto(*c, (*cluster)->shard(s).snapshots(), nullptr, &scan);
    }
    SortQueryResult(&scan);
    EXPECT_EQ(Ids(*indexed), Ids(scan)) << "post-stress divergence: "
                                        << text;
  }
}

}  // namespace
}  // namespace adept
