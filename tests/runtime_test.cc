#include <gtest/gtest.h>

#include "runtime/driver.h"
#include "runtime/engine.h"
#include "runtime/instance.h"
#include "tests/test_fixtures.h"
#include "verify/verifier.h"

namespace adept {
namespace {

using testing_fixtures::ComplexSchema;
using testing_fixtures::LoopSchema;
using testing_fixtures::OnlineOrderV1;
using testing_fixtures::OnlineOrderV2;
using testing_fixtures::SequenceSchema;
using testing_fixtures::XorSchema;

// Runs start+complete in one call (no data writes).
Status Execute(ProcessInstance& i, NodeId node) {
  ADEPT_RETURN_IF_ERROR(i.StartActivity(node));
  return i.CompleteActivity(node);
}

NodeId ByName(const ProcessInstance& i, const std::string& name) {
  return i.schema().FindNodeByName(name);
}

TEST(InstanceTest, SequenceRunsInOrder) {
  auto schema = SequenceSchema(3);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());

  for (const char* name : {"a1", "a2", "a3"}) {
    auto ready = inst.ActivatedActivities();
    ASSERT_EQ(ready.size(), 1u) << name;
    EXPECT_EQ(ready[0], ByName(inst, name));
    ASSERT_TRUE(Execute(inst, ready[0]).ok());
  }
  EXPECT_TRUE(inst.Finished());
}

TEST(InstanceTest, StartTwiceRejected) {
  auto schema = SequenceSchema(1);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  EXPECT_EQ(inst.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(InstanceTest, LifecyclePreconditionsEnforced) {
  auto schema = SequenceSchema(2);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId a1 = ByName(inst, "a1");
  NodeId a2 = ByName(inst, "a2");

  // a2 is not activated yet.
  EXPECT_EQ(inst.StartActivity(a2).code(), StatusCode::kFailedPrecondition);
  // Completing before starting is rejected.
  EXPECT_EQ(inst.CompleteActivity(a1).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(inst.StartActivity(a1).ok());
  // Double start rejected.
  EXPECT_EQ(inst.StartActivity(a1).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(inst.CompleteActivity(a1).ok());
  EXPECT_EQ(inst.node_state(a1), NodeState::kCompleted);
  EXPECT_EQ(inst.node_state(a2), NodeState::kActivated);
}

TEST(InstanceTest, ParallelBranchesBothActivate) {
  auto schema = OnlineOrderV1();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "get order")).ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "collect data")).ok());

  auto ready = inst.ActivatedActivities();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_EQ(inst.node_state(ByName(inst, "confirm order")),
            NodeState::kActivated);
  EXPECT_EQ(inst.node_state(ByName(inst, "compose order")),
            NodeState::kActivated);

  // Join waits for both branches.
  ASSERT_TRUE(Execute(inst, ByName(inst, "confirm order")).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "pack goods")),
            NodeState::kNotActivated);
  ASSERT_TRUE(Execute(inst, ByName(inst, "compose order")).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "pack goods")),
            NodeState::kActivated);

  ASSERT_TRUE(Execute(inst, ByName(inst, "pack goods")).ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "deliver goods")).ok());
  EXPECT_TRUE(inst.Finished());
}

TEST(InstanceTest, XorDeadPathElimination) {
  auto schema = XorSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());

  NodeId triage = ByName(inst, "triage");
  ASSERT_TRUE(inst.StartActivity(triage).ok());
  DataId severity = inst.schema().FindDataByName("severity");
  ASSERT_TRUE(inst.CompleteActivity(
                      triage, {{severity, DataValue::Int(1)}})
                  .ok());

  EXPECT_EQ(inst.node_state(ByName(inst, "intensive care")),
            NodeState::kActivated);
  EXPECT_EQ(inst.node_state(ByName(inst, "standard care")),
            NodeState::kSkipped);

  ASSERT_TRUE(Execute(inst, ByName(inst, "intensive care")).ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "discharge")).ok());
  EXPECT_TRUE(inst.Finished());

  // The skip landed in the trace.
  bool skipped_logged = false;
  for (const auto& e : inst.trace().events()) {
    if (e.kind == TraceEventKind::kActivitySkipped &&
        e.node == ByName(inst, "standard care")) {
      skipped_logged = true;
    }
  }
  EXPECT_TRUE(skipped_logged);
}

TEST(InstanceTest, XorMissingDecisionWaitsForSelectBranch) {
  SchemaBuilder b("manual", 1);
  b.Conditional(DataId::Invalid(), {
      [](SchemaBuilder& s) { s.Activity("left"); },
      [](SchemaBuilder& s) { s.Activity("right"); },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());

  // Split is activated but undecided: no activities offered yet.
  EXPECT_TRUE(inst.ActivatedActivities().empty());
  NodeId split = inst.schema().FindNodeByName("xor_split");
  EXPECT_EQ(inst.node_state(split), NodeState::kActivated);

  ASSERT_TRUE(inst.SelectBranch(split, 1).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "right")), NodeState::kActivated);
  EXPECT_EQ(inst.node_state(ByName(inst, "left")), NodeState::kSkipped);
}

TEST(InstanceTest, SelectBranchInvalidCodeFails) {
  SchemaBuilder b("manual", 1);
  b.Conditional(DataId::Invalid(), {
      [](SchemaBuilder& s) { s.Activity("left"); },
      [](SchemaBuilder& s) { s.Activity("right"); },
  });
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok());
  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId split = inst.schema().FindNodeByName("xor_split");
  EXPECT_FALSE(inst.SelectBranch(split, 7).ok());
}

TEST(InstanceTest, LoopIteratesAndResets) {
  auto schema = LoopSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "prepare")).ok());

  DataId again = inst.schema().FindDataByName("again");
  NodeId check = ByName(inst, "check");
  NodeId loop_start = inst.schema().FindNodeByName("loop_start");

  // First iteration: request another round.
  ASSERT_TRUE(inst.StartActivity(check).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(check, {{again, DataValue::Bool(true)}}).ok());

  EXPECT_EQ(inst.loop_iteration(loop_start), 1);
  // Body reset: check is activated again.
  EXPECT_EQ(inst.node_state(check), NodeState::kActivated);

  // Second iteration: stop.
  ASSERT_TRUE(inst.StartActivity(check).ok());
  ASSERT_TRUE(
      inst.CompleteActivity(check, {{again, DataValue::Bool(false)}}).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "finish")), NodeState::kActivated);
  ASSERT_TRUE(Execute(inst, ByName(inst, "finish")).ok());
  EXPECT_TRUE(inst.Finished());

  // Loop reset recorded with the erased region.
  bool reset_seen = false;
  for (const auto& e : inst.trace().events()) {
    if (e.kind == TraceEventKind::kLoopReset) {
      reset_seen = true;
      EXPECT_EQ(e.iteration, 1);
      EXPECT_EQ(e.reset_nodes.size(), 3u);
    }
  }
  EXPECT_TRUE(reset_seen);
}

TEST(InstanceTest, ReducedTraceDropsOldIterations) {
  auto schema = LoopSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "prepare")).ok());
  DataId again = inst.schema().FindDataByName("again");
  NodeId check = ByName(inst, "check");
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(inst.StartActivity(check).ok());
    ASSERT_TRUE(inst.CompleteActivity(
                        check, {{again, DataValue::Bool(round < 2)}})
                    .ok());
  }
  // Full trace: 3 starts of "check"; reduced trace: only the last.
  int full_starts = 0;
  for (const auto& e : inst.trace().events()) {
    if (e.kind == TraceEventKind::kActivityStarted && e.node == check) {
      ++full_starts;
    }
  }
  EXPECT_EQ(full_starts, 3);
  int reduced_starts = 0;
  for (const auto& e : inst.trace().Reduced()) {
    if (e.kind == TraceEventKind::kActivityStarted && e.node == check) {
      ++reduced_starts;
    }
  }
  EXPECT_EQ(reduced_starts, 1);
}

TEST(InstanceTest, SyncEdgeGatesTargetActivation) {
  auto schema = OnlineOrderV2();  // send questions -> confirm order
  ASSERT_TRUE(VerifySchemaOrError(*schema).ok());
  ProcessInstance inst(InstanceId(1), schema, SchemaId(2));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "get order")).ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "collect data")).ok());

  // confirm order must wait for send questions (sync edge).
  EXPECT_EQ(inst.node_state(ByName(inst, "confirm order")),
            NodeState::kNotActivated);
  EXPECT_EQ(inst.node_state(ByName(inst, "compose order")),
            NodeState::kActivated);

  ASSERT_TRUE(Execute(inst, ByName(inst, "compose order")).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "confirm order")),
            NodeState::kNotActivated);
  ASSERT_TRUE(Execute(inst, ByName(inst, "send questions")).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "confirm order")),
            NodeState::kActivated);

  ASSERT_TRUE(Execute(inst, ByName(inst, "confirm order")).ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "pack goods")).ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "deliver goods")).ok());
  EXPECT_TRUE(inst.Finished());
}

TEST(InstanceTest, SyncEdgeFromSkippedSourceReleasesTarget) {
  // Sync source inside an XOR branch that gets skipped: the target must not
  // wait forever (FalseSignaled sync edge counts as resolved).
  SchemaBuilder b("sync_skip", 1);
  DataId sel = b.Data("sel", DataType::kInt);
  NodeId init = b.Activity("init");
  b.Writes(init, sel);
  NodeId source, target;
  b.Parallel({
      [&](SchemaBuilder& s) {
        s.Conditional(sel, {
            [&](SchemaBuilder& t) { source = t.Activity("maybe"); },
            [](SchemaBuilder& t) { t.Activity("other"); },
        });
      },
      [&](SchemaBuilder& s) { target = s.Activity("waiter"); },
  });
  b.SyncEdge(source, target);
  auto schema = b.Build();
  ASSERT_TRUE(schema.ok()) << schema.status();

  ProcessInstance inst(InstanceId(1), *schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(inst.StartActivity(init).ok());
  // Choose branch 1 -> "maybe" is skipped.
  ASSERT_TRUE(
      inst.CompleteActivity(init, {{sel, DataValue::Int(1)}}).ok());
  EXPECT_EQ(inst.node_state(source), NodeState::kSkipped);
  EXPECT_EQ(inst.node_state(target), NodeState::kActivated);
}

TEST(InstanceTest, FailRetrySuspendResume) {
  auto schema = SequenceSchema(2);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId a1 = ByName(inst, "a1");

  ASSERT_TRUE(inst.StartActivity(a1).ok());
  ASSERT_TRUE(inst.SuspendActivity(a1).ok());
  EXPECT_EQ(inst.node_state(a1), NodeState::kSuspended);
  EXPECT_FALSE(inst.CompleteActivity(a1).ok());
  ASSERT_TRUE(inst.ResumeActivity(a1).ok());

  ASSERT_TRUE(inst.FailActivity(a1, "boom").ok());
  EXPECT_EQ(inst.node_state(a1), NodeState::kFailed);
  ASSERT_TRUE(inst.RetryActivity(a1).ok());
  EXPECT_EQ(inst.node_state(a1), NodeState::kActivated);
  ASSERT_TRUE(Execute(inst, a1).ok());
  EXPECT_EQ(inst.node_state(ByName(inst, "a2")), NodeState::kActivated);
}

TEST(InstanceTest, MandatoryOutputEnforced) {
  auto schema = XorSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId triage = ByName(inst, "triage");
  ASSERT_TRUE(inst.StartActivity(triage).ok());
  Status st = inst.CompleteActivity(triage);  // severity missing
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(InstanceTest, UndeclaredWriteRejected) {
  auto schema = SequenceSchema(1);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId a1 = ByName(inst, "a1");
  ASSERT_TRUE(inst.StartActivity(a1).ok());
  Status st =
      inst.CompleteActivity(a1, {{DataId(99), DataValue::Int(1)}});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, WriteTypeMismatchRejected) {
  auto schema = XorSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  NodeId triage = ByName(inst, "triage");
  DataId severity = inst.schema().FindDataByName("severity");
  ASSERT_TRUE(inst.StartActivity(triage).ok());
  Status st = inst.CompleteActivity(
      triage, {{severity, DataValue::String("high")}});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(InstanceTest, DataHistoryVersioned) {
  auto schema = LoopSchema();
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  ASSERT_TRUE(Execute(inst, ByName(inst, "prepare")).ok());
  DataId again = inst.schema().FindDataByName("again");
  NodeId check = ByName(inst, "check");
  for (bool v : {true, false}) {
    ASSERT_TRUE(inst.StartActivity(check).ok());
    ASSERT_TRUE(
        inst.CompleteActivity(check, {{again, DataValue::Bool(v)}}).ok());
  }
  const auto& history = inst.data().History(again);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_TRUE(history[0].value.as_bool());
  EXPECT_FALSE(history[1].value.as_bool());
  auto latest = inst.data().Read(again);
  ASSERT_TRUE(latest.ok());
  EXPECT_FALSE(latest->as_bool());
}

class RecordingObserver : public InstanceObserver {
 public:
  void OnNodeStateChange(const ProcessInstance&, NodeId, NodeState,
                         NodeState to) override {
    ++transitions;
    if (to == NodeState::kActivated) ++activations;
  }
  void OnInstanceFinished(const ProcessInstance&) override { ++finished; }
  void OnDataWrite(const ProcessInstance&, NodeId, DataId,
                   const DataValue&) override {
    ++writes;
  }
  int transitions = 0, activations = 0, finished = 0, writes = 0;
};

TEST(InstanceTest, ObserverSeesLifecycle) {
  auto schema = XorSchema();
  RecordingObserver obs;
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  inst.set_observer(&obs);
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = 3});
  ASSERT_TRUE(driver.RunToCompletion(inst).ok());
  EXPECT_TRUE(inst.Finished());
  EXPECT_GT(obs.transitions, 0);
  EXPECT_GT(obs.activations, 0);
  EXPECT_EQ(obs.finished, 1);
  EXPECT_EQ(obs.writes, 1);  // severity
}

TEST(EngineTest, CreateFindRemove) {
  Engine engine;
  auto schema = SequenceSchema(2);
  auto created = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(created.ok());
  InstanceId id = (*created)->id();
  EXPECT_EQ(engine.Find(id), *created);
  EXPECT_EQ(engine.instance_count(), 1u);
  EXPECT_TRUE(engine.Remove(id).ok());
  EXPECT_EQ(engine.Find(id), nullptr);
  EXPECT_EQ(engine.Remove(id).code(), StatusCode::kNotFound);
}

TEST(EngineTest, AdoptInstancePreservesIdSpace) {
  Engine engine;
  auto schema = SequenceSchema(2);
  auto adopted = engine.AdoptInstance(InstanceId(42), schema, SchemaId(1));
  ASSERT_TRUE(adopted.ok());
  EXPECT_FALSE(engine.AdoptInstance(InstanceId(42), schema, SchemaId(1)).ok());
  auto fresh = engine.CreateInstance(schema, SchemaId(1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT((*fresh)->id().value(), 42u);
}

TEST(DriverTest, RunsEveryFixtureToCompletion) {
  for (auto schema : {OnlineOrderV1(), OnlineOrderV2(), SequenceSchema(10),
                      XorSchema(), LoopSchema(), ComplexSchema()}) {
    ASSERT_NE(schema, nullptr);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      ProcessInstance inst(InstanceId(seed), schema, SchemaId(1));
      ASSERT_TRUE(inst.Start().ok());
      SimulationDriver driver({.seed = seed});
      Status st = driver.RunToCompletion(inst);
      ASSERT_TRUE(st.ok())
          << schema->type_name() << " seed " << seed << ": " << st;
      EXPECT_TRUE(inst.Finished());
    }
  }
}

TEST(DriverTest, DeterministicForSeed) {
  auto schema = ComplexSchema();
  auto run = [&](uint64_t seed) {
    ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
    EXPECT_TRUE(inst.Start().ok());
    SimulationDriver driver({.seed = seed});
    EXPECT_TRUE(driver.RunToCompletion(inst).ok());
    return inst.trace().DebugString();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(DriverTest, RunToProgressStopsEarly) {
  auto schema = SequenceSchema(10);
  ProcessInstance inst(InstanceId(1), schema, SchemaId(1));
  ASSERT_TRUE(inst.Start().ok());
  SimulationDriver driver({.seed = 1});
  ASSERT_TRUE(driver.RunToProgress(inst, 0.5).ok());
  EXPECT_FALSE(inst.Finished());
  int completed = 0;
  inst.schema().VisitNodes([&](const Node& n) {
    if (n.type == NodeType::kActivity &&
        inst.node_state(n.id) == NodeState::kCompleted) {
      ++completed;
    }
  });
  EXPECT_GE(completed, 5);
  EXPECT_LT(completed, 10);
}

TEST(DriverTest, LoopIterationCapRespected) {
  auto schema = LoopSchema();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ProcessInstance inst(InstanceId(seed), schema, SchemaId(1));
    ASSERT_TRUE(inst.Start().ok());
    SimulationDriver driver(
        {.seed = seed, .loop_continue_probability = 0.9,
         .max_loop_iterations = 2});
    ASSERT_TRUE(driver.RunToCompletion(inst).ok());
    NodeId loop_start = inst.schema().FindNodeByName("loop_start");
    EXPECT_LE(inst.loop_iteration(loop_start), 2);
  }
}

}  // namespace
}  // namespace adept
