#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace adept {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

void EmitLogLine(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[adept %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace internal
}  // namespace adept
