// Small string helpers shared across modules.

#ifndef ADEPT_COMMON_STRING_UTIL_H_
#define ADEPT_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace adept {

// Joins `parts` with `sep` ("a, b, c").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace adept

#endif  // ADEPT_COMMON_STRING_UTIL_H_
