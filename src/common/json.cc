#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace adept {

namespace {

const JsonValue& NullValue() {
  static const JsonValue kNull;
  return kNull;
}

void AppendEscaped(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Run() {
    SkipWs();
    JsonValue v;
    Status st = ParseValue(v);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Corruption("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) {
    return Status::Corruption(what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue& out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        ADEPT_RETURN_IF_ERROR(ParseString(s));
        out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          out = JsonValue(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          out = JsonValue(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out = JsonValue();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    SkipWs();
    if (Consume('}')) {
      out = JsonValue(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      ADEPT_RETURN_IF_ERROR(ParseString(key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      JsonValue value;
      ADEPT_RETURN_IF_ERROR(ParseValue(value));
      obj.emplace(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}'");
    }
    out = JsonValue(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(JsonValue& out) {
    ++pos_;  // '['
    JsonValue::Array arr;
    SkipWs();
    if (Consume(']')) {
      out = JsonValue(std::move(arr));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      JsonValue value;
      ADEPT_RETURN_IF_ERROR(ParseValue(value));
      arr.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']'");
    }
    out = JsonValue(std::move(arr));
    return Status::OK();
  }

  Status ParseString(std::string& out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // Encode BMP code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid inside exponents at this point; accept and let
        // from_chars validate.
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(first, last, v);
      if (ec == std::errc() && p == last) {
        out = JsonValue(v);
        return Status::OK();
      }
    }
    double d = 0;
    auto [p, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || p != last) return Fail("malformed number");
    out = JsonValue(d);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::Get(const std::string& key) const {
  auto it = object_.find(key);
  if (it == object_.end()) return NullValue();
  return it->second;
}

bool JsonValue::Has(const std::string& key) const {
  return object_.count(key) > 0;
}

void JsonValue::Set(std::string key, JsonValue value) {
  object_[std::move(key)] = std::move(value);
}

void JsonValue::DumpTo(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble: {
      if (std::isfinite(double_)) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON cannot represent inf/nan.
      }
      break;
    }
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out.push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out.push_back(',');
        first = false;
        AppendEscaped(k, out);
        out.push_back(':');
        v.DumpTo(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(out);
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return Parser(text).Run();
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) {
    // int/double compare numerically.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace adept
