// Strongly typed identifiers used across the library.
//
// ADEPT distinguishes many entity spaces (nodes, edges, data elements,
// schema versions, instances, users, ...). Using distinct wrapper types
// prevents accidentally passing e.g. a NodeId where an InstanceId is
// expected, at zero runtime cost.

#ifndef ADEPT_COMMON_IDS_H_
#define ADEPT_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace adept {

// CRTP-free tagged id. Tag is an empty struct unique per id space.
template <typename Tag, typename Rep = uint32_t>
class TypedId {
 public:
  using rep_type = Rep;

  constexpr TypedId() : value_(kInvalidValue) {}
  constexpr explicit TypedId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr TypedId Invalid() { return TypedId(); }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, TypedId id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value_;
  }

 private:
  static constexpr Rep kInvalidValue = static_cast<Rep>(-1);
  Rep value_;
};

struct NodeIdTag {
  static constexpr const char* prefix() { return "n"; }
};
struct EdgeIdTag {
  static constexpr const char* prefix() { return "e"; }
};
struct DataIdTag {
  static constexpr const char* prefix() { return "d"; }
};
struct SchemaIdTag {
  static constexpr const char* prefix() { return "S"; }
};
struct InstanceIdTag {
  static constexpr const char* prefix() { return "I"; }
};
struct UserIdTag {
  static constexpr const char* prefix() { return "u"; }
};
struct RoleIdTag {
  static constexpr const char* prefix() { return "r"; }
};
struct ServerIdTag {
  static constexpr const char* prefix() { return "srv"; }
};
struct WorkItemIdTag {
  static constexpr const char* prefix() { return "w"; }
};

// Node within a process schema.
using NodeId = TypedId<NodeIdTag>;
// Control / sync / loop edge within a process schema.
using EdgeId = TypedId<EdgeIdTag>;
// Process data element (global per schema).
using DataId = TypedId<DataIdTag>;
// A concrete schema version object in the repository.
using SchemaId = TypedId<SchemaIdTag, uint64_t>;
// A process instance.
using InstanceId = TypedId<InstanceIdTag, uint64_t>;
// Organizational entities.
using UserId = TypedId<UserIdTag>;
using RoleId = TypedId<RoleIdTag>;
// Simulated process server (distributed control).
using ServerId = TypedId<ServerIdTag>;
// Worklist item.
using WorkItemId = TypedId<WorkItemIdTag, uint64_t>;

template <typename Id>
std::string IdToString(Id id) {
  if (!id.valid()) return std::string(Id{}.valid() ? "?" : "") + "<invalid>";
  return std::string(1, '#') + std::to_string(id.value());
}

}  // namespace adept

namespace std {
template <typename Tag, typename Rep>
struct hash<adept::TypedId<Tag, Rep>> {
  size_t operator()(adept::TypedId<Tag, Rep> id) const {
    return std::hash<Rep>()(id.value());
  }
};
}  // namespace std

#endif  // ADEPT_COMMON_IDS_H_
