// Small filesystem helpers shared by the durability layers (snapshots,
// org-model persistence): whole-file reads and atomic replace-on-write.

#ifndef ADEPT_COMMON_FS_UTIL_H_
#define ADEPT_COMMON_FS_UTIL_H_

#include <string>

#include "common/status.h"

namespace adept {

// Reads the whole file into a string. kNotFound when it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

// Writes `content` to "<path>.tmp" and atomically renames it over `path`,
// so readers observe either the old or the new file, never a torn one.
Status WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace adept

#endif  // ADEPT_COMMON_FS_UTIL_H_
