// Deterministic pseudo-random number generator for workload generation.
//
// Benchmarks and property tests must be reproducible run-to-run, so all
// randomized workload drivers take an explicit seed and use this
// splitmix64-based generator instead of std::random_device.

#ifndef ADEPT_COMMON_RNG_H_
#define ADEPT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace adept {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  // Next raw 64-bit value (splitmix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli draw.
  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  // Picks a uniformly random element index of a non-empty container size.
  size_t NextIndex(size_t size) { return static_cast<size_t>(NextBelow(size)); }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextIndex(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace adept

#endif  // ADEPT_COMMON_RNG_H_
