// Status / Result error model for adept2cpp.
//
// All fallible public APIs in this library return either a Status or a
// Result<T> (a Status-or-value union, in the spirit of RocksDB's Status and
// absl::StatusOr). Exceptions are not used on API paths.

#ifndef ADEPT_COMMON_STATUS_H_
#define ADEPT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace adept {

// Canonical error space of the library.
enum class StatusCode {
  kOk = 0,
  // Malformed argument supplied by the caller (e.g., unknown node id).
  kInvalidArgument,
  // Referenced entity does not exist (schema, instance, node, ...).
  kNotFound,
  // Entity already exists (duplicate node id, re-deployed version, ...).
  kAlreadyExists,
  // Operation is structurally valid but not allowed in the current state
  // (e.g., completing an activity that is not running). Also used for
  // violated change-operation pre-conditions.
  kFailedPrecondition,
  // A buildtime verification rule is violated (deadlock-causing cycle,
  // erroneous data flow, broken block structure).
  kVerificationFailed,
  // Instance is not compliant with the target schema version.
  kNotCompliant,
  // Persistent state is unreadable or inconsistent.
  kCorruption,
  // Feature intentionally not implemented.
  kUnimplemented,
  // A required remote party (replica, peer connection) is unreachable or
  // did not respond in time. Typically retryable once the peer returns.
  kUnavailable,
  // Invariant violation inside the library; indicates a bug.
  kInternal,
};

// Returns the canonical lowercase name, e.g. "failed precondition".
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. OK carries no allocation.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status NotCompliant(std::string msg) {
    return Status(StatusCode::kNotCompliant, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Status-or-value. `value()` may only be accessed when `ok()`.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace adept

// Propagates a non-OK Status from an expression to the caller.
#define ADEPT_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::adept::Status _adept_st = (expr);        \
    if (!_adept_st.ok()) return _adept_st;     \
  } while (0)

#define ADEPT_CONCAT_IMPL_(x, y) x##y
#define ADEPT_CONCAT_(x, y) ADEPT_CONCAT_IMPL_(x, y)

// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
// move-assigns the value into `lhs` (which may be a declaration).
#define ADEPT_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto ADEPT_CONCAT_(_adept_res_, __LINE__) = (rexpr);          \
  if (!ADEPT_CONCAT_(_adept_res_, __LINE__).ok())               \
    return ADEPT_CONCAT_(_adept_res_, __LINE__).status();       \
  lhs = std::move(ADEPT_CONCAT_(_adept_res_, __LINE__)).value()

#endif  // ADEPT_COMMON_STATUS_H_
