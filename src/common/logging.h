// Minimal leveled logger.
//
// The engine logs noteworthy events (state transitions, migrations,
// recovery) at kInfo and verifier/bench diagnostics at kDebug. The level is
// process-global; tests default to kWarning to keep output clean.

#ifndef ADEPT_COMMON_LOGGING_H_
#define ADEPT_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace adept {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets / reads the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLogLine(LogLevel level, const std::string& message);

class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLogLine(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  // Swallows the streamed expression when the level is filtered out.
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace adept

#define ADEPT_LOG(level)                                       \
  (static_cast<int>(::adept::LogLevel::level) <                \
   static_cast<int>(::adept::GetLogLevel()))                   \
      ? (void)0                                                \
      : ::adept::internal::LogSink() &                         \
            ::adept::internal::LogMessage(::adept::LogLevel::level)

#endif  // ADEPT_COMMON_LOGGING_H_
