#include "common/fs_util.h"

#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace adept {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  return content;
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::Corruption("cannot open " + tmp);
  bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  // Push the data to disk before the rename: a power loss that journals
  // the rename but not the data blocks would otherwise replace the old
  // file with a torn one — worse than either version.
  ok = ok && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  ok = ok && fsync(fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::Corruption("short write to " + tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::Corruption("rename failed: " + ec.message());
  return Status::OK();
}

}  // namespace adept
