// Persistent (structurally shared) map and set — the copy-on-write core
// the runtime's instance state is built on.
//
// A PersistentMap is a value type whose copies share structure: copying
// the map copies one shared_ptr (the root of a 32-ary bitmap trie), and a
// mutation path-copies only the O(log32 n) nodes between the root and the
// touched entry — every untouched subtree stays shared with all previous
// copies. That inverts the old publication economics: an immutable
// snapshot of the whole container costs one refcount bump instead of a
// deep copy, and the *mutator* pays a small logarithmic copy instead
// (realm-core's copy-on-write array discipline, applied to bitmap tries).
//
// Sharing contract (what makes lock-free readers safe):
//   * nodes reachable from a map that has ever been copied are immutable —
//     mutation replaces them, it never writes into them;
//   * a mutation may recycle a node in place only while this map is the
//     node's sole owner (use_count == 1). Publication (copying the map)
//     happens-before any later mutation on the owning thread, so a reader
//     holding the copy can never observe an in-place write: once shared,
//     the path is copied. Readers drop their copies concurrently, but a
//     use_count can only *fall* to 1 after every other owner is gone, so
//     the check errs on the safe (copy) side.
//   * equality and DiffTo() exploit sharing: identical subtrees (same node
//     pointer) compare equal / diff empty without being visited, so
//     diffing two adjacent versions costs O(delta), not O(n).
//
// Keys are the strongly typed ids of common/ids.h (or any integral type):
// the key's 64-bit value itself is the trie path — 5 bits per level, no
// hashing, no collision chains, at most 13 levels. Erase collapses
// single-leaf chains, so equal maps have identical trie shapes regardless
// of mutation history.

#ifndef ADEPT_COMMON_PERSISTENT_MAP_H_
#define ADEPT_COMMON_PERSISTENT_MAP_H_

#include <cstdint>
#include <iterator>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace adept {

namespace persistent_internal {

// Key -> 64-bit trie path. Integral keys use their value; TypedIds (and
// anything else exposing value()) use the wrapped representation.
template <typename K>
uint64_t KeyBits(const K& key) {
  if constexpr (std::is_integral_v<K>) {
    return static_cast<uint64_t>(key);
  } else {
    return static_cast<uint64_t>(key.value());
  }
}

inline int PopCount(uint32_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcount(v);
#else
  int c = 0;
  while (v) {
    v &= v - 1;
    ++c;
  }
  return c;
#endif
}

}  // namespace persistent_internal

template <typename K, typename V>
class PersistentMap {
 private:
  struct Node;

 public:
  using value_type = std::pair<K, V>;

  PersistentMap() = default;

  // O(1): copies share the whole trie.
  PersistentMap(const PersistentMap&) = default;
  PersistentMap& operator=(const PersistentMap&) = default;
  PersistentMap(PersistentMap&&) noexcept = default;
  PersistentMap& operator=(PersistentMap&&) noexcept = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pointer to the stored value, or nullptr. Valid while some owner of
  // the entry's node lives — for a map inside an immutable snapshot that
  // is the snapshot's lifetime; for a map being mutated, only until the
  // next Set/Erase.
  const V* Find(const K& key) const {
    const Node* node = root_.get();
    uint64_t bits = persistent_internal::KeyBits(key);
    while (node != nullptr) {
      const uint32_t mask = 1u << (bits & kLevelMask);
      if ((node->bitmap & mask) == 0) return nullptr;
      const Entry& entry = node->entries[SlotIndex(node->bitmap, mask)];
      if (entry.child == nullptr) {
        return entry.key == key ? &entry.value : nullptr;
      }
      node = entry.child.get();
      bits >>= kLevelBits;
    }
    return nullptr;
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  // Inserts or replaces. Path-copies shared nodes; recycles uniquely
  // owned ones in place (see the sharing contract above).
  void Set(const K& key, V value) {
    bool added = false;
    SetRec(root_, persistent_internal::KeyBits(key), 0, key, std::move(value),
           &added);
    if (added) ++size_;
  }

  // Removes the entry if present; returns whether it was.
  bool Erase(const K& key) {
    if (root_ == nullptr) return false;
    bool erased = false;
    EraseRec(root_, persistent_internal::KeyBits(key), key, &erased);
    if (erased) {
      --size_;
      if (root_->entries.empty()) root_ = nullptr;
    }
    return erased;
  }

  void Clear() {
    root_ = nullptr;
    size_ = 0;
  }

  // True when both maps share the same root — a free "nothing changed"
  // probe for delta maintenance.
  bool SameRoot(const PersistentMap& other) const {
    return root_ == other.root_;
  }

  // Structural diff: calls fn(key, before, after) for every key whose
  // value differs between `this` (before) and `after`; `before`/`after`
  // is null for an addition resp. removal. Shared subtrees are skipped
  // without being visited — cost is O(changed entries), not O(n).
  template <typename Fn>
  void DiffTo(const PersistentMap& after, Fn&& fn) const {
    DiffNodes(root_.get(), after.root_.get(), fn);
  }

  bool operator==(const PersistentMap& other) const {
    if (root_ == other.root_) return true;
    if (size_ != other.size_) return false;
    bool equal = true;
    auto check = [&](const K&, const V* a, const V* b) {
      if (a == nullptr || b == nullptr || !(*a == *b)) equal = false;
    };
    DiffNodes(root_.get(), other.root_.get(), check);
    return equal;
  }
  bool operator!=(const PersistentMap& other) const {
    return !(*this == other);
  }

  // Visits every (key, value); cheaper than the iterator (no per-step
  // stack bookkeeping).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachNode(root_.get(), fn);
  }

  // Rough heap bytes of the whole trie (shared nodes counted fully:
  // callers report footprints, not exact ownership ledgers).
  size_t MemoryFootprint() const { return NodeBytes(root_.get()); }

  // Depth-first const input iterator; yields std::pair<K, V> by value.
  // The explicit stack is bounded by the trie depth (<= 13 levels).
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = std::pair<K, V>;
    using difference_type = std::ptrdiff_t;
    using pointer = const value_type*;
    using reference = value_type;

    const_iterator() = default;

    value_type operator*() const {
      const Frame& f = stack_.back();
      const Entry& e = f.node->entries[f.index];
      return {e.key, e.value};
    }

    const_iterator& operator++() {
      Advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      Advance();
      return copy;
    }

    bool operator==(const const_iterator& o) const {
      if (stack_.empty() || o.stack_.empty()) {
        return stack_.empty() && o.stack_.empty();
      }
      return stack_.back().node == o.stack_.back().node &&
             stack_.back().index == o.stack_.back().index;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class PersistentMap;

    struct Frame {
      const Node* node;
      size_t index;
    };

    explicit const_iterator(const Node* root) {
      if (root != nullptr && !root->entries.empty()) {
        stack_.push_back({root, 0});
        DescendToLeaf();
      }
    }

    // Ensures the top of the stack addresses a leaf entry.
    void DescendToLeaf() {
      while (true) {
        const Frame& f = stack_.back();
        const Entry& e = f.node->entries[f.index];
        if (e.child == nullptr) return;
        stack_.push_back({e.child.get(), 0});
      }
    }

    void Advance() {
      while (!stack_.empty()) {
        Frame& f = stack_.back();
        if (++f.index < f.node->entries.size()) {
          DescendToLeaf();
          return;
        }
        stack_.pop_back();
      }
    }

    std::vector<Frame> stack_;
  };

  const_iterator begin() const { return const_iterator(root_.get()); }
  const_iterator end() const { return const_iterator(); }

 private:
  static constexpr int kLevelBits = 5;
  static constexpr uint64_t kLevelMask = (1u << kLevelBits) - 1;

  struct Entry {
    // Non-null: interior child; null: leaf carrying (key, value).
    std::shared_ptr<Node> child;
    K key{};
    V value{};
  };

  struct Node {
    uint32_t bitmap = 0;
    std::vector<Entry> entries;  // popcount(bitmap) entries, slot order
  };

  static int SlotIndex(uint32_t bitmap, uint32_t mask) {
    return persistent_internal::PopCount(bitmap & (mask - 1));
  }

  // Makes `slot` safe to write: allocates when null, clones when shared.
  static Node* EnsureUnique(std::shared_ptr<Node>& slot) {
    if (slot == nullptr) {
      slot = std::make_shared<Node>();
    } else if (slot.use_count() != 1) {
      slot = std::make_shared<Node>(*slot);
    }
    return slot.get();
  }

  // `bits` is the key's remaining path at this node's level, i.e. the
  // full path shifted right by `shift` bits.
  void SetRec(std::shared_ptr<Node>& slot, uint64_t bits, int shift,
              const K& key, V value, bool* added) {
    Node* node = EnsureUnique(slot);
    const uint32_t mask = 1u << (bits & kLevelMask);
    const int index = SlotIndex(node->bitmap, mask);
    if ((node->bitmap & mask) == 0) {
      Entry entry;
      entry.key = key;
      entry.value = std::move(value);
      node->entries.insert(node->entries.begin() + index, std::move(entry));
      node->bitmap |= mask;
      *added = true;
      return;
    }
    Entry& entry = node->entries[index];
    if (entry.child != nullptr) {
      SetRec(entry.child, bits >> kLevelBits, shift + kLevelBits, key,
             std::move(value), added);
      return;
    }
    if (entry.key == key) {
      entry.value = std::move(value);
      return;
    }
    // Two distinct keys collide on this slot's chunk: push the resident
    // leaf one level down, then insert the new key below it. Distinct
    // 64-bit paths must diverge within 13 levels, so this terminates.
    const uint64_t resident_bits =
        persistent_internal::KeyBits(entry.key) >> (shift + kLevelBits);
    auto interior = std::make_shared<Node>();
    interior->bitmap = 1u << (resident_bits & kLevelMask);
    Entry displaced;
    displaced.key = entry.key;
    displaced.value = std::move(entry.value);
    interior->entries.push_back(std::move(displaced));
    entry.child = std::move(interior);
    entry.key = K{};
    entry.value = V{};
    SetRec(entry.child, bits >> kLevelBits, shift + kLevelBits, key,
           std::move(value), added);
  }

  void EraseRec(std::shared_ptr<Node>& slot, uint64_t bits, const K& key,
                bool* erased) {
    const uint32_t mask = 1u << (bits & kLevelMask);
    {
      // Peek before copying: a miss must not clone the path.
      const Node* peek = slot.get();
      if ((peek->bitmap & mask) == 0) return;
      const Entry& entry = peek->entries[SlotIndex(peek->bitmap, mask)];
      if (entry.child == nullptr && !(entry.key == key)) return;
    }
    Node* node = EnsureUnique(slot);
    const int index = SlotIndex(node->bitmap, mask);
    Entry& entry = node->entries[index];
    if (entry.child != nullptr) {
      EraseRec(entry.child, bits >> kLevelBits, key, erased);
      if (!*erased) return;
      if (entry.child->entries.empty()) {
        node->entries.erase(node->entries.begin() + index);
        node->bitmap &= ~mask;
      } else if (entry.child->entries.size() == 1 &&
                 entry.child->entries[0].child == nullptr) {
        // Collapse a single-leaf chain so the trie stays canonical: equal
        // maps get equal shapes regardless of mutation history.
        Entry lifted = entry.child->entries[0];
        entry.child = nullptr;
        entry.key = lifted.key;
        entry.value = std::move(lifted.value);
      }
      return;
    }
    node->entries.erase(node->entries.begin() + index);
    node->bitmap &= ~mask;
    *erased = true;
  }

  template <typename Fn>
  static void DiffNodes(const Node* before, const Node* after, Fn& fn) {
    if (before == after) return;
    if (before == nullptr) {
      EmitAll(after, fn, /*as_after=*/true);
      return;
    }
    if (after == nullptr) {
      EmitAll(before, fn, /*as_after=*/false);
      return;
    }
    for (int slot = 0; slot < 32; ++slot) {
      const uint32_t mask = 1u << slot;
      const bool in_before = (before->bitmap & mask) != 0;
      const bool in_after = (after->bitmap & mask) != 0;
      if (!in_before && !in_after) continue;
      const Entry* be =
          in_before ? &before->entries[SlotIndex(before->bitmap, mask)]
                    : nullptr;
      const Entry* ae =
          in_after ? &after->entries[SlotIndex(after->bitmap, mask)]
                   : nullptr;
      DiffEntries(be, ae, fn);
    }
  }

  template <typename Fn>
  static void DiffEntries(const Entry* be, const Entry* ae, Fn& fn) {
    if (be == nullptr) {
      if (ae->child != nullptr) {
        EmitAll(ae->child.get(), fn, true);
      } else {
        fn(ae->key, static_cast<const V*>(nullptr), &ae->value);
      }
      return;
    }
    if (ae == nullptr) {
      if (be->child != nullptr) {
        EmitAll(be->child.get(), fn, false);
      } else {
        fn(be->key, &be->value, static_cast<const V*>(nullptr));
      }
      return;
    }
    if (be->child != nullptr && ae->child != nullptr) {
      DiffNodes(be->child.get(), ae->child.get(), fn);
      return;
    }
    if (be->child == nullptr && ae->child == nullptr) {
      if (be->key == ae->key) {
        if (!(be->value == ae->value)) fn(be->key, &be->value, &ae->value);
      } else {
        fn(be->key, &be->value, static_cast<const V*>(nullptr));
        fn(ae->key, static_cast<const V*>(nullptr), &ae->value);
      }
      return;
    }
    // Leaf on one side, interior on the other: the leaf's key may also
    // live somewhere inside the interior subtree.
    if (be->child == nullptr) {
      bool matched = false;
      ForEachNode(ae->child.get(), [&](const K& k, const V& v) {
        if (k == be->key) {
          matched = true;
          if (!(v == be->value)) fn(k, &be->value, &v);
        } else {
          fn(k, static_cast<const V*>(nullptr), &v);
        }
      });
      if (!matched) fn(be->key, &be->value, static_cast<const V*>(nullptr));
      return;
    }
    bool matched = false;
    ForEachNode(be->child.get(), [&](const K& k, const V& v) {
      if (k == ae->key) {
        matched = true;
        if (!(v == ae->value)) fn(k, &v, &ae->value);
      } else {
        fn(k, &v, static_cast<const V*>(nullptr));
      }
    });
    if (!matched) fn(ae->key, static_cast<const V*>(nullptr), &ae->value);
  }

  template <typename Fn>
  static void EmitAll(const Node* node, Fn& fn, bool as_after) {
    ForEachNode(node, [&](const K& k, const V& v) {
      if (as_after) {
        fn(k, static_cast<const V*>(nullptr), &v);
      } else {
        fn(k, &v, static_cast<const V*>(nullptr));
      }
    });
  }

  template <typename Fn>
  static void ForEachNode(const Node* node, Fn&& fn) {
    if (node == nullptr) return;
    for (const Entry& entry : node->entries) {
      if (entry.child != nullptr) {
        ForEachNode(entry.child.get(), fn);
      } else {
        fn(entry.key, entry.value);
      }
    }
  }

  static size_t NodeBytes(const Node* node) {
    if (node == nullptr) return 0;
    size_t bytes = sizeof(Node) + node->entries.capacity() * sizeof(Entry);
    for (const Entry& entry : node->entries) {
      bytes += NodeBytes(entry.child.get());
    }
    return bytes;
  }

  std::shared_ptr<Node> root_;
  size_t size_ = 0;
};

// A persistent set: a PersistentMap whose values carry no information.
// Iteration yields the keys.
template <typename K>
class PersistentSet {
 public:
  PersistentSet() = default;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  bool Contains(const K& key) const { return map_.Contains(key); }
  void Insert(const K& key) { map_.Set(key, true); }
  bool Erase(const K& key) { return map_.Erase(key); }
  void Clear() { map_.Clear(); }
  bool SameRoot(const PersistentSet& o) const { return map_.SameRoot(o.map_); }

  bool operator==(const PersistentSet& o) const { return map_ == o.map_; }
  bool operator!=(const PersistentSet& o) const { return map_ != o.map_; }

  // fn(key, added): added=true for keys only in `after`, false for keys
  // only in `this`.
  template <typename Fn>
  void DiffTo(const PersistentSet& after, Fn&& fn) const {
    map_.DiffTo(after.map_, [&](const K& k, const bool* b, const bool* a) {
      if (b == nullptr) {
        fn(k, true);
      } else if (a == nullptr) {
        fn(k, false);
      }
    });
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&](const K& k, bool) { fn(k); });
  }

  size_t MemoryFootprint() const { return map_.MemoryFootprint(); }

  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = K;
    using difference_type = std::ptrdiff_t;
    using pointer = const K*;
    using reference = K;

    const_iterator() = default;
    explicit const_iterator(typename PersistentMap<K, bool>::const_iterator it)
        : it_(it) {}

    K operator*() const { return (*it_).first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator copy = *this;
      ++it_;
      return copy;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    typename PersistentMap<K, bool>::const_iterator it_;
  };

  const_iterator begin() const { return const_iterator(map_.begin()); }
  const_iterator end() const { return const_iterator(map_.end()); }

 private:
  PersistentMap<K, bool> map_;
};

}  // namespace adept

#endif  // ADEPT_COMMON_PERSISTENT_MAP_H_
