// Minimal self-contained JSON value, parser, and writer.
//
// Used for schema/instance serialization (storage module) and for the WAL
// record payloads. Only the subset of JSON the library itself emits needs to
// round-trip, but the parser accepts arbitrary standard JSON (no comments,
// UTF-8 passed through verbatim, \uXXXX escapes decoded for the BMP).

#ifndef ADEPT_COMMON_JSON_H_
#define ADEPT_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace adept {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  // std::map keeps key order deterministic, which keeps serialized output
  // byte-stable across runs (important for snapshot tests).
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(int v) : type_(Type::kInt), int_(v) {}
  JsonValue(int64_t v) : type_(Type::kInt), int_(v) {}
  JsonValue(uint32_t v) : type_(Type::kInt), int_(v) {}
  JsonValue(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}
  JsonValue(double v) : type_(Type::kDouble), double_(v) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static JsonValue MakeArray() { return JsonValue(Array{}); }
  static JsonValue MakeObject() { return JsonValue(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const {
    return is_double() ? static_cast<int64_t>(double_) : int_;
  }
  double as_double() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  // Object helpers. `Get` returns null-typed value when key is absent.
  const JsonValue& Get(const std::string& key) const;
  bool Has(const std::string& key) const;
  void Set(std::string key, JsonValue value);
  void Append(JsonValue value) { array_.push_back(std::move(value)); }

  // Compact single-line serialization.
  std::string Dump() const;

  // Parses `text`; returns kCorruption on malformed input.
  static Result<JsonValue> Parse(const std::string& text);

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string& out) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace adept

#endif  // ADEPT_COMMON_JSON_H_
