#include "common/status.h"

namespace adept {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kVerificationFailed:
      return "verification failed";
    case StatusCode::kNotCompliant:
      return "not compliant";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace adept
