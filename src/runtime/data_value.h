// DataValue: a typed runtime value of a process data element.

#ifndef ADEPT_RUNTIME_DATA_VALUE_H_
#define ADEPT_RUNTIME_DATA_VALUE_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/status.h"
#include "model/types.h"

namespace adept {

class DataValue {
 public:
  DataValue() : type_(DataType::kString) {}

  static DataValue Bool(bool v) {
    DataValue d;
    d.type_ = DataType::kBool;
    d.bool_ = v;
    return d;
  }
  static DataValue Int(int64_t v) {
    DataValue d;
    d.type_ = DataType::kInt;
    d.int_ = v;
    return d;
  }
  static DataValue Double(double v) {
    DataValue d;
    d.type_ = DataType::kDouble;
    d.double_ = v;
    return d;
  }
  static DataValue String(std::string v) {
    DataValue d;
    d.type_ = DataType::kString;
    d.string_ = std::move(v);
    return d;
  }

  DataType type() const { return type_; }
  bool as_bool() const { return bool_; }
  int64_t as_int() const { return int_; }
  double as_double() const { return double_; }
  const std::string& as_string() const { return string_; }

  std::string ToDisplayString() const;

  JsonValue ToJson() const;
  static Result<DataValue> FromJson(const JsonValue& json);

  bool operator==(const DataValue& o) const {
    return type_ == o.type_ && bool_ == o.bool_ && int_ == o.int_ &&
           double_ == o.double_ && string_ == o.string_;
  }

 private:
  DataType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_DATA_VALUE_H_
