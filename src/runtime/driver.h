// SimulationDriver: deterministic synthetic workload generator.
//
// The paper's prototype is driven by human users working on worklists; the
// reproduction substitutes a seeded driver that starts/completes activated
// activities, supplies type-appropriate output parameter values, and makes
// schema-aware random choices:
//   * data elements used as XOR decisions get uniformly drawn valid branch
//     codes of the splits they steer,
//   * loop condition elements continue a loop with a configurable
//     probability, hard-capped at max_loop_iterations,
//   * everything else gets small random values.
//
// RunToProgress drives an instance until a target fraction of its
// activities is completed — the workload generator behind the migration
// benchmarks (instances "in different states", paper Sec. 2).

#ifndef ADEPT_RUNTIME_DRIVER_H_
#define ADEPT_RUNTIME_DRIVER_H_

#include "common/rng.h"
#include "common/status.h"
#include "runtime/instance.h"

namespace adept {

struct DriverOptions {
  uint64_t seed = 1;
  double loop_continue_probability = 0.3;
  int max_loop_iterations = 3;
};

class SimulationDriver {
 public:
  explicit SimulationDriver(const DriverOptions& options = {});

  // One planned unit of work: which activity to run and which output
  // parameter values to supply. Callers that need to route the execution
  // through their own API (WAL logging, distributed control) use PlanStep
  // and issue Start/Complete themselves.
  struct PlannedStep {
    NodeId node;
    std::vector<ProcessInstance::DataWrite> writes;
  };

  // Plans the next step; node is invalid when nothing is activated.
  PlannedStep PlanStep(ProcessInstance& instance);

  // Schema-aware random value for one output parameter.
  DataValue PlanValue(ProcessInstance& instance, const DataEdge& edge);

  // Starts and completes one activated activity (uniformly chosen).
  // Returns false when no activity is activated (finished or blocked).
  Result<bool> Step(ProcessInstance& instance);

  // Steps until Finished() or no progress; errors after `max_steps`.
  Status RunToCompletion(ProcessInstance& instance, int max_steps = 100000);

  // Steps until >= `fraction` of the schema's activities are in a final
  // state (Completed/Skipped), the instance finishes, or no progress is
  // possible.
  Status RunToProgress(ProcessInstance& instance, double fraction);

  Rng& rng() { return rng_; }

 private:
  DriverOptions options_;
  Rng rng_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_DRIVER_H_
