// Engine: owner of all in-memory process instances.
//
// A thin container: schema management lives in storage::SchemaRepository,
// change logic in the change/compliance modules. The engine assigns
// instance ids, wires observers, and provides deterministic iteration.

#ifndef ADEPT_RUNTIME_ENGINE_H_
#define ADEPT_RUNTIME_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/instance.h"

namespace adept {

class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Creates (but does not Start()) an instance of `schema`.
  Result<ProcessInstance*> CreateInstance(
      std::shared_ptr<const SchemaView> schema, SchemaId schema_ref);

  // Re-registers a recovered instance under its original id.
  Result<ProcessInstance*> AdoptInstance(
      InstanceId id, std::shared_ptr<const SchemaView> schema,
      SchemaId schema_ref);

  ProcessInstance* Find(InstanceId id);
  const ProcessInstance* Find(InstanceId id) const;

  Status Remove(InstanceId id);

  // Ascending id order.
  std::vector<InstanceId> InstanceIds() const;
  size_t instance_count() const { return instances_.size(); }

  // Observer attached to every subsequently created instance.
  void set_observer(InstanceObserver* observer) { observer_ = observer; }

  // Applies `fn` to each instance in ascending id order.
  void ForEachInstance(const std::function<void(ProcessInstance&)>& fn);

 private:
  uint64_t next_instance_id_ = 1;
  std::map<InstanceId, std::unique_ptr<ProcessInstance>> instances_;
  InstanceObserver* observer_ = nullptr;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_ENGINE_H_
