#include "runtime/driver.h"

#include <algorithm>

#include "common/string_util.h"

namespace adept {

SimulationDriver::SimulationDriver(const DriverOptions& options)
    : options_(options), rng_(options.seed) {}

SimulationDriver::PlannedStep SimulationDriver::PlanStep(
    ProcessInstance& instance) {
  PlannedStep step;
  std::vector<NodeId> ready = instance.ActivatedActivities();
  if (ready.empty()) return step;
  step.node = ready[rng_.NextIndex(ready.size())];
  instance.schema().VisitDataEdges(step.node, [&](const DataEdge& de) {
    if (de.mode != AccessMode::kWrite) return;
    step.writes.push_back({de.data, PlanValue(instance, de)});
  });
  return step;
}

DataValue SimulationDriver::PlanValue(ProcessInstance& instance,
                                      const DataEdge& edge) {
  const SchemaView& schema = instance.schema();
  const DataElement* elem = schema.FindData(edge.data);
  if (elem == nullptr) return DataValue::Int(0);

  switch (elem->type) {
    case DataType::kInt: {
      // If the element steers XOR splits, draw a valid branch code.
      std::vector<int> codes;
      schema.VisitNodes([&](const Node& n) {
        if (n.type == NodeType::kXorSplit && n.decision_data == elem->id) {
          schema.VisitOutEdges(n.id, [&](const Edge& e) {
            if (e.type == EdgeType::kControl) codes.push_back(e.branch_value);
          });
        }
      });
      if (!codes.empty()) {
        return DataValue::Int(codes[rng_.NextIndex(codes.size())]);
      }
      return DataValue::Int(static_cast<int64_t>(rng_.NextBelow(100)));
    }
    case DataType::kBool: {
      // If the element is a loop condition, apply the loop policy.
      bool is_loop_condition = false;
      int max_seen_iteration = 0;
      schema.VisitNodes([&](const Node& n) {
        if (n.type == NodeType::kLoopEnd && n.loop_data == elem->id) {
          is_loop_condition = true;
          // Iterations are tracked per loop start; find it via block
          // structure-free heuristic: the loop edge target.
          schema.VisitOutEdges(n.id, [&](const Edge& e) {
            if (e.type == EdgeType::kLoop) {
              max_seen_iteration = std::max(
                  max_seen_iteration, instance.loop_iteration(e.dst));
            }
          });
        }
      });
      if (is_loop_condition) {
        if (max_seen_iteration >= options_.max_loop_iterations) {
          return DataValue::Bool(false);
        }
        return DataValue::Bool(
            rng_.NextBool(options_.loop_continue_probability));
      }
      return DataValue::Bool(rng_.NextBool());
    }
    case DataType::kDouble:
      return DataValue::Double(rng_.NextDouble() * 100.0);
    case DataType::kString:
      return DataValue::String(
          StrFormat("v%llu", static_cast<unsigned long long>(
                                 rng_.NextBelow(1000))));
  }
  return DataValue::Int(0);
}

Result<bool> SimulationDriver::Step(ProcessInstance& instance) {
  PlannedStep step = PlanStep(instance);
  if (!step.node.valid()) return false;
  ADEPT_RETURN_IF_ERROR(instance.StartActivity(step.node));
  ADEPT_RETURN_IF_ERROR(instance.CompleteActivity(step.node, step.writes));
  return true;
}

Status SimulationDriver::RunToCompletion(ProcessInstance& instance,
                                         int max_steps) {
  for (int i = 0; i < max_steps; ++i) {
    if (instance.Finished()) return Status::OK();
    ADEPT_ASSIGN_OR_RETURN(bool progressed, Step(instance));
    if (!progressed) {
      if (instance.Finished()) return Status::OK();
      return Status::FailedPrecondition(
          "instance is blocked: no activated activities");
    }
  }
  return Status::Internal("instance did not finish within step budget");
}

Status SimulationDriver::RunToProgress(ProcessInstance& instance,
                                       double fraction) {
  size_t total = 0;
  instance.schema().VisitNodes([&](const Node& n) {
    if (n.type == NodeType::kActivity) ++total;
  });
  if (total == 0) return Status::OK();
  auto done = [&] {
    size_t finals = 0;
    instance.schema().VisitNodes([&](const Node& n) {
      if (n.type == NodeType::kActivity &&
          IsFinalNodeState(instance.node_state(n.id))) {
        ++finals;
      }
    });
    return static_cast<double>(finals) / static_cast<double>(total);
  };
  int guard = 0;
  while (!instance.Finished() && done() < fraction) {
    if (++guard > 100000) {
      return Status::Internal("progress target unreachable");
    }
    ADEPT_ASSIGN_OR_RETURN(bool progressed, Step(instance));
    if (!progressed) break;
  }
  return Status::OK();
}

}  // namespace adept
