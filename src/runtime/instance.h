// ProcessInstance: one running case of a process schema.
//
// The instance executes against an immutable SchemaView (either the type
// schema shared by all unbiased instances, or an instance-specific view for
// biased instances — the runtime cannot tell the difference, which is the
// point of the Fig. 2 storage design).
//
// Firing rules (ADEPT marking semantics):
//   * StartFlow auto-completes at Start(); completing a node signals its
//     outgoing control edges TrueSignaled (XOR splits: only the selected
//     branch, others FalseSignaled) and its outgoing sync edges.
//   * A node becomes Activated when its control in-edges signal True
//     (AndJoin: all; XorJoin: any) AND all its incoming sync edges are
//     signaled (True = source completed, False = source will never run).
//   * FalseSignaled control edges propagate Skipped (dead-path
//     elimination); a skipped node signals all outgoing edges False.
//   * Structural nodes (splits/joins/loop nodes/end) auto-complete;
//     activities wait for StartActivity/CompleteActivity.
//   * A completing LoopEnd evaluates its loop condition; on iteration the
//     loop block's markings are reset and the body re-executes.
//
// Dynamic change support: AdoptSchema() swaps the execution schema (entity
// ids are stable across versions) and ReevaluateMarkings() re-derives all
// *soft* state (Activated/Skipped node states, signals of non-completed
// sources) from the hard facts, which implements ADEPT's automatic instance
// state adaptation after ad-hoc changes and migrations.

#ifndef ADEPT_RUNTIME_INSTANCE_H_
#define ADEPT_RUNTIME_INSTANCE_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/persistent_map.h"
#include "common/status.h"
#include "model/block_tree.h"
#include "model/schema_view.h"
#include "runtime/data_context.h"
#include "runtime/events.h"
#include "runtime/marking.h"
#include "runtime/trace.h"

namespace adept {

struct InstanceSnapshot;

class ProcessInstance {
 public:
  ProcessInstance(InstanceId id, std::shared_ptr<const SchemaView> schema,
                  SchemaId schema_ref);

  ProcessInstance(const ProcessInstance&) = delete;
  ProcessInstance& operator=(const ProcessInstance&) = delete;

  InstanceId id() const { return id_; }
  const SchemaView& schema() const { return *schema_; }
  std::shared_ptr<const SchemaView> schema_ptr() const { return schema_; }
  SchemaId schema_ref() const { return schema_ref_; }

  // True once the instance deviates from its type schema (ad-hoc changed).
  bool biased() const { return biased_; }
  void set_biased(bool biased) { biased_ = biased; }

  void set_observer(InstanceObserver* observer) { observer_ = observer; }

  // --- Execution API --------------------------------------------------------

  // Completes the start-flow node and activates the first activities.
  Status Start();

  Status StartActivity(NodeId node);

  struct DataWrite {
    DataId data;
    DataValue value;
  };
  // Completes a running activity, applying its output parameter writes.
  // All mandatory (non-optional) write edges must be supplied.
  Status CompleteActivity(NodeId node,
                          const std::vector<DataWrite>& writes = {});

  Status FailActivity(NodeId node, const std::string& reason);
  Status RetryActivity(NodeId node);
  Status SuspendActivity(NodeId node);
  Status ResumeActivity(NodeId node);

  // Overrides the data-driven XOR decision for `split` (consumed once).
  Status SelectBranch(NodeId split, int branch_value);
  // Overrides the data-driven loop decision for `loop_end` (consumed once).
  Status SetLoopDecision(NodeId loop_end, bool iterate);

  bool Finished() const;
  // Activities currently offered for execution.
  std::vector<NodeId> ActivatedActivities() const;
  std::vector<NodeId> RunningActivities() const;

  // --- State inspection -----------------------------------------------------

  NodeState node_state(NodeId node) const { return marking_.node(node); }
  EdgeState edge_state(EdgeId edge) const { return marking_.edge(edge); }
  const Marking& marking() const { return marking_; }
  const ExecutionTrace& trace() const { return trace_; }
  ExecutionTrace& mutable_trace() { return trace_; }
  const DataContext& data() const { return data_; }
  DataContext& mutable_data() { return data_; }

  // Completed iteration count of the loop opened by `loop_start` (0 while in
  // the first iteration).
  int loop_iteration(NodeId loop_start) const;

  // Completed runs of `node` — equals the node's kActivityCompleted trace
  // events, maintained incrementally (and re-derived on RestoreState) so
  // the worklist can stamp activation epochs in O(1).
  uint64_t completed_runs(NodeId node) const {
    const uint64_t* runs = completed_runs_.Find(node);
    return runs == nullptr ? 0 : *runs;
  }

  // Trace sequence at which `node` last entered kActivated; entries are
  // kept while the node stays in flight (Activated/Running/Suspended/
  // Failed) and dropped when it completes, is skipped, or resets.
  const PersistentMap<NodeId, int64_t>& activated_since() const {
    return activated_since_;
  }

  // Builds an immutable, internally consistent read snapshot of the
  // current state (see runtime/instance_snapshot.h). Must run while the
  // instance cannot be concurrently mutated — the owning facade calls it
  // at the end of every mutating operation, under the same lock — and is
  // O(delta): every container field is a structural share (root copy) of
  // the live persistent state, so cost does not grow with instance size.
  // The returned object is safe to read from any thread, forever.
  std::shared_ptr<InstanceSnapshot> BuildSnapshot() const;

  size_t MemoryFootprint() const;

  // --- Dynamic change support ----------------------------------------------

  // Swaps the execution schema and re-evaluates soft markings. The caller
  // (change framework / migration manager) is responsible for having
  // verified the schema and checked compliance beforehand.
  Status AdoptSchema(std::shared_ptr<const SchemaView> schema, SchemaId ref);

  // Re-derives Activated/Skipped states and edge signals from hard facts.
  // Exposed for the compliance module's state adaptation.
  Status ReevaluateMarkings();

  // Runs one propagation fixpoint. Needed by the trace-replay compliance
  // checker after seeding data values directly into the data context.
  Status PropagateMarkings() { return Propagate(); }

  // Direct marking access for the state adapter (keep trace consistent!).
  Marking* mutable_marking() { return &marking_; }

  // Recovery support: overwrites the runtime state wholesale (snapshot
  // load). The caller must pass state consistent with the current schema.
  // `activated_since` may be empty (pre-refactor records): in-flight
  // nodes are then stamped with the restored trace's next sequence — a
  // deterministic upper bound.
  void RestoreState(Marking marking, ExecutionTrace trace, DataContext data,
                    PersistentMap<NodeId, int> loop_iterations, bool started,
                    PersistentMap<NodeId, int64_t> activated_since = {});
  const PersistentMap<NodeId, int>& loop_iterations() const {
    return loop_iterations_;
  }
  bool started() const { return started_; }

 private:
  Status Propagate();
  Status AutoComplete(const Node& node);
  Status SignalCompletion(const Node& node);
  void SkipNode(const Node& node);
  Status HandleLoopEnd(const Node& node);
  Result<bool> EvaluateLoopCondition(const Node& node);
  Result<int> EvaluateDecision(const Node& split);
  void SetNodeState(NodeId node, NodeState state);
  const BlockTree* block_tree();

  // Activation check for a NotActivated node; returns the new state
  // (kActivated / kSkipped) or nullopt when the node must keep waiting.
  std::optional<NodeState> ComputeActivation(const Node& node) const;

  InstanceId id_;
  std::shared_ptr<const SchemaView> schema_;
  SchemaId schema_ref_;
  bool biased_ = false;
  bool started_ = false;
  bool finished_notified_ = false;

  Marking marking_;
  ExecutionTrace trace_;
  DataContext data_;
  PersistentMap<NodeId, int> loop_iterations_;  // keyed by loop start
  PersistentMap<NodeId, uint64_t> completed_runs_;
  uint64_t completed_total_ = 0;  // running sum of completed_runs_
  PersistentMap<NodeId, int64_t> activated_since_;
  std::unordered_map<NodeId, int> selected_branch_;  // one-shot overrides
  std::unordered_map<NodeId, bool> loop_decision_;   // one-shot overrides

  std::unique_ptr<BlockTree> block_tree_cache_;
  InstanceObserver* observer_ = nullptr;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_INSTANCE_H_
