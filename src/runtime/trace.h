// ExecutionTrace: the complete, append-only history of a process instance.
//
// Besides activity start/complete events the trace records loop resets,
// data writes, ad-hoc changes and migrations. The compliance checker's
// general criterion is defined on the *reduced* trace: ADEPT's relaxed
// trace equivalence projects away loop iterations other than the last one
// of each loop block [Rinderle et al. 2004]. A kLoopReset event carries the
// set of nodes whose history it logically erases, so the reduction is a
// single backwards scan and independent of later schema changes.

#ifndef ADEPT_RUNTIME_TRACE_H_
#define ADEPT_RUNTIME_TRACE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"

namespace adept {

enum class TraceEventKind {
  kInstanceStarted = 0,
  kActivityStarted,
  kActivityCompleted,
  kActivitySkipped,
  kActivityFailed,
  kActivityRetried,
  kLoopReset,     // loop iterated; `reset_nodes` lists the erased region
  kDataWrite,     // node wrote data element
  kBranchChosen,  // XOR decision
  kAdHocChange,   // instance-specific change applied (detail = op summary)
  kMigrated,      // instance migrated to a new schema version
};

const char* TraceEventKindToString(TraceEventKind k);

struct TraceEvent {
  int64_t sequence = 0;
  TraceEventKind kind = TraceEventKind::kInstanceStarted;
  NodeId node;                     // subject node (if any)
  DataId data;                     // subject data element (kDataWrite)
  int branch_value = 0;            // kBranchChosen
  int iteration = 0;               // iteration count of the loop (kLoopReset)
  std::vector<NodeId> reset_nodes; // kLoopReset only
  std::string detail;
};

class ExecutionTrace {
 public:
  // Appends an event, assigning the next sequence number (returned).
  int64_t Append(TraceEvent event);

  // Recovery support: replaces the event log (sequence numbers are taken
  // from the supplied events; the counter continues after the last one).
  void Restore(std::vector<TraceEvent> events);

  const std::vector<TraceEvent>& events() const { return events_; }
  int64_t next_sequence() const { return next_sequence_; }

  // Events surviving loop reduction: for every kLoopReset, all earlier
  // events whose node is in `reset_nodes` (and the matching data writes /
  // branch decisions) are dropped. kLoopReset markers themselves and
  // change/migration markers are kept.
  std::vector<TraceEvent> Reduced() const;

  // Most recent start/completion sequence of `node` in the reduced trace;
  // -1 if absent. Used by per-operation compliance conditions that need
  // relative order (e.g. sync edge insertion on completed nodes).
  int64_t LastStartSeq(NodeId node) const;
  int64_t LastCompletionSeq(NodeId node) const;

  // Most recent XOR decision recorded for `split` in the reduced trace
  // (nullopt if the split never fired in the current iteration). Marking
  // re-evaluation uses this to re-signal edges of a completed split whose
  // outgoing edges were rewritten by a change.
  std::optional<int> LastBranchChosen(NodeId split) const;

  size_t MemoryFootprint() const;

  std::string DebugString() const;

 private:
  std::vector<TraceEvent> events_;
  int64_t next_sequence_ = 0;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_TRACE_H_
