#include "runtime/engine.h"

namespace adept {

Result<ProcessInstance*> Engine::CreateInstance(
    std::shared_ptr<const SchemaView> schema, SchemaId schema_ref) {
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  InstanceId id(next_instance_id_++);
  auto instance =
      std::make_unique<ProcessInstance>(id, std::move(schema), schema_ref);
  instance->set_observer(observer_);
  ProcessInstance* ptr = instance.get();
  instances_.emplace(id, std::move(instance));
  return ptr;
}

Result<ProcessInstance*> Engine::AdoptInstance(
    InstanceId id, std::shared_ptr<const SchemaView> schema,
    SchemaId schema_ref) {
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  if (instances_.count(id) > 0) {
    return Status::AlreadyExists("instance id already registered");
  }
  auto instance =
      std::make_unique<ProcessInstance>(id, std::move(schema), schema_ref);
  instance->set_observer(observer_);
  ProcessInstance* ptr = instance.get();
  instances_.emplace(id, std::move(instance));
  next_instance_id_ = std::max(next_instance_id_, id.value() + 1);
  return ptr;
}

ProcessInstance* Engine::Find(InstanceId id) {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

const ProcessInstance* Engine::Find(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : it->second.get();
}

Status Engine::Remove(InstanceId id) {
  if (instances_.erase(id) == 0) return Status::NotFound("no such instance");
  return Status::OK();
}

std::vector<InstanceId> Engine::InstanceIds() const {
  std::vector<InstanceId> out;
  out.reserve(instances_.size());
  for (const auto& [id, _] : instances_) out.push_back(id);
  return out;
}

void Engine::ForEachInstance(
    const std::function<void(ProcessInstance&)>& fn) {
  for (auto& [_, instance] : instances_) fn(*instance);
}

}  // namespace adept
