#include "runtime/marking.h"

namespace adept {

const char* NodeStateToString(NodeState s) {
  switch (s) {
    case NodeState::kNotActivated:
      return "NotActivated";
    case NodeState::kActivated:
      return "Activated";
    case NodeState::kRunning:
      return "Running";
    case NodeState::kCompleted:
      return "Completed";
    case NodeState::kSkipped:
      return "Skipped";
    case NodeState::kSuspended:
      return "Suspended";
    case NodeState::kFailed:
      return "Failed";
  }
  return "?";
}

const char* EdgeStateToString(EdgeState s) {
  switch (s) {
    case EdgeState::kNotSignaled:
      return "NotSignaled";
    case EdgeState::kTrueSignaled:
      return "TrueSignaled";
    case EdgeState::kFalseSignaled:
      return "FalseSignaled";
  }
  return "?";
}

bool IsHardNodeState(NodeState s) {
  return s == NodeState::kRunning || s == NodeState::kCompleted ||
         s == NodeState::kSuspended || s == NodeState::kFailed;
}

bool IsFinalNodeState(NodeState s) {
  return s == NodeState::kCompleted || s == NodeState::kSkipped;
}

}  // namespace adept
