// Node/edge markings of a process instance.
//
// ADEPT represents instance progress as a marking function over the nodes
// and edges of the instance's execution schema:
//
//   node states  NS: NotActivated, Activated, Running, Completed, Skipped,
//                    Suspended, Failed   (the paper's "Disabled" = Skipped)
//   edge states  ES: NotSignaled, TrueSignaled, FalseSignaled
//
// {Running, Completed, Suspended, Failed} are *hard* facts created by user
// actions; {Activated, Skipped} plus all edge signals of non-completed
// sources are *soft* states the engine can re-derive — the distinction is
// what makes marking re-evaluation after dynamic changes safe (see
// ProcessInstance::ReevaluateMarkings).

#ifndef ADEPT_RUNTIME_MARKING_H_
#define ADEPT_RUNTIME_MARKING_H_

#include <string>
#include <unordered_map>

#include "common/ids.h"

namespace adept {

enum class NodeState {
  kNotActivated = 0,
  kActivated,   // ready; offered in worklists
  kRunning,     // started by a user/application
  kCompleted,
  kSkipped,     // dead path (deselected XOR branch / deleted region)
  kSuspended,   // running but paused
  kFailed,      // activity execution failed; may be retried
};

enum class EdgeState {
  kNotSignaled = 0,
  kTrueSignaled,   // source completed (resp. branch selected)
  kFalseSignaled,  // source definitely will not execute
};

const char* NodeStateToString(NodeState s);
const char* EdgeStateToString(EdgeState s);

// True for states produced only by explicit user/application actions.
bool IsHardNodeState(NodeState s);
// True when the node's work is over (Completed or Skipped).
bool IsFinalNodeState(NodeState s);

// A copyable value type: compliance checks run "what if" analyses on copies.
class Marking {
 public:
  NodeState node(NodeId id) const {
    auto it = node_states_.find(id);
    return it == node_states_.end() ? NodeState::kNotActivated : it->second;
  }
  EdgeState edge(EdgeId id) const {
    auto it = edge_states_.find(id);
    return it == edge_states_.end() ? EdgeState::kNotSignaled : it->second;
  }

  void set_node(NodeId id, NodeState s) {
    if (s == NodeState::kNotActivated) {
      node_states_.erase(id);
    } else {
      node_states_[id] = s;
    }
  }
  void set_edge(EdgeId id, EdgeState s) {
    if (s == EdgeState::kNotSignaled) {
      edge_states_.erase(id);
    } else {
      edge_states_[id] = s;
    }
  }

  void erase_node(NodeId id) { node_states_.erase(id); }
  void erase_edge(EdgeId id) { edge_states_.erase(id); }

  // Only non-default entries are stored; iteration yields those.
  const std::unordered_map<NodeId, NodeState>& node_states() const {
    return node_states_;
  }
  const std::unordered_map<EdgeId, EdgeState>& edge_states() const {
    return edge_states_;
  }

  size_t MemoryFootprint() const {
    return sizeof(*this) +
           node_states_.size() * (sizeof(NodeId) + sizeof(NodeState) + 16) +
           edge_states_.size() * (sizeof(EdgeId) + sizeof(EdgeState) + 16);
  }

  bool operator==(const Marking& o) const {
    return node_states_ == o.node_states_ && edge_states_ == o.edge_states_;
  }

 private:
  std::unordered_map<NodeId, NodeState> node_states_;
  std::unordered_map<EdgeId, EdgeState> edge_states_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_MARKING_H_
