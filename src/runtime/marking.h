// Node/edge markings of a process instance.
//
// ADEPT represents instance progress as a marking function over the nodes
// and edges of the instance's execution schema:
//
//   node states  NS: NotActivated, Activated, Running, Completed, Skipped,
//                    Suspended, Failed   (the paper's "Disabled" = Skipped)
//   edge states  ES: NotSignaled, TrueSignaled, FalseSignaled
//
// {Running, Completed, Suspended, Failed} are *hard* facts created by user
// actions; {Activated, Skipped} plus all edge signals of non-completed
// sources are *soft* states the engine can re-derive — the distinction is
// what makes marking re-evaluation after dynamic changes safe (see
// ProcessInstance::ReevaluateMarkings).
//
// Storage is persistent (structurally shared): copying a Marking is O(1)
// and shares the underlying tries with the original, which is what lets
// snapshot publication ref-bump instead of deep-copy. The marking also
// maintains the sets of currently Activated resp. Running nodes as
// derived persistent indexes — every mutation path goes through
// set_node/erase_node, so the sets can never drift from the map.

#ifndef ADEPT_RUNTIME_MARKING_H_
#define ADEPT_RUNTIME_MARKING_H_

#include <string>

#include "common/ids.h"
#include "common/persistent_map.h"

namespace adept {

enum class NodeState {
  kNotActivated = 0,
  kActivated,   // ready; offered in worklists
  kRunning,     // started by a user/application
  kCompleted,
  kSkipped,     // dead path (deselected XOR branch / deleted region)
  kSuspended,   // running but paused
  kFailed,      // activity execution failed; may be retried
};

enum class EdgeState {
  kNotSignaled = 0,
  kTrueSignaled,   // source completed (resp. branch selected)
  kFalseSignaled,  // source definitely will not execute
};

const char* NodeStateToString(NodeState s);
const char* EdgeStateToString(EdgeState s);

// True for states produced only by explicit user/application actions.
bool IsHardNodeState(NodeState s);
// True when the node's work is over (Completed or Skipped).
bool IsFinalNodeState(NodeState s);

// A copyable value type: compliance checks run "what if" analyses on
// copies, and every published InstanceSnapshot holds one. Copies are O(1)
// and immutable-under-sharing (see common/persistent_map.h).
class Marking {
 public:
  NodeState node(NodeId id) const {
    const NodeState* s = node_states_.Find(id);
    return s == nullptr ? NodeState::kNotActivated : *s;
  }
  EdgeState edge(EdgeId id) const {
    const EdgeState* s = edge_states_.Find(id);
    return s == nullptr ? EdgeState::kNotSignaled : *s;
  }

  void set_node(NodeId id, NodeState s) {
    if (s == NodeState::kNotActivated) {
      node_states_.Erase(id);
    } else {
      node_states_.Set(id, s);
    }
    if (s == NodeState::kActivated) {
      activated_.Insert(id);
    } else {
      activated_.Erase(id);
    }
    if (s == NodeState::kRunning) {
      running_.Insert(id);
    } else {
      running_.Erase(id);
    }
  }
  void set_edge(EdgeId id, EdgeState s) {
    if (s == EdgeState::kNotSignaled) {
      edge_states_.Erase(id);
    } else {
      edge_states_.Set(id, s);
    }
  }

  void erase_node(NodeId id) { set_node(id, NodeState::kNotActivated); }
  void erase_edge(EdgeId id) { edge_states_.Erase(id); }

  // Only non-default entries are stored; iteration yields those.
  const PersistentMap<NodeId, NodeState>& node_states() const {
    return node_states_;
  }
  const PersistentMap<EdgeId, EdgeState>& edge_states() const {
    return edge_states_;
  }

  // Derived indexes: all nodes currently in state kActivated resp.
  // kRunning (any node type — an XOR split awaiting its decision sits in
  // `activated` too; only activities ever reach kRunning).
  const PersistentSet<NodeId>& activated() const { return activated_; }
  const PersistentSet<NodeId>& running() const { return running_; }

  size_t MemoryFootprint() const {
    return sizeof(*this) + node_states_.MemoryFootprint() +
           edge_states_.MemoryFootprint() + activated_.MemoryFootprint() +
           running_.MemoryFootprint();
  }

  // The derived sets are a function of node_states_, so they are
  // deliberately not compared.
  bool operator==(const Marking& o) const {
    return node_states_ == o.node_states_ && edge_states_ == o.edge_states_;
  }

 private:
  PersistentMap<NodeId, NodeState> node_states_;
  PersistentMap<EdgeId, EdgeState> edge_states_;
  PersistentSet<NodeId> activated_;
  PersistentSet<NodeId> running_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_MARKING_H_
