#include "runtime/trace.h"

#include <sstream>
#include <unordered_set>

namespace adept {

const char* TraceEventKindToString(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kInstanceStarted:
      return "InstanceStarted";
    case TraceEventKind::kActivityStarted:
      return "Started";
    case TraceEventKind::kActivityCompleted:
      return "Completed";
    case TraceEventKind::kActivitySkipped:
      return "Skipped";
    case TraceEventKind::kActivityFailed:
      return "Failed";
    case TraceEventKind::kActivityRetried:
      return "Retried";
    case TraceEventKind::kLoopReset:
      return "LoopReset";
    case TraceEventKind::kDataWrite:
      return "DataWrite";
    case TraceEventKind::kBranchChosen:
      return "BranchChosen";
    case TraceEventKind::kAdHocChange:
      return "AdHocChange";
    case TraceEventKind::kMigrated:
      return "Migrated";
  }
  return "?";
}

int64_t ExecutionTrace::Append(TraceEvent event) {
  event.sequence = next_sequence_++;
  events_.push_back(std::move(event));
  return events_.back().sequence;
}

void ExecutionTrace::Restore(std::vector<TraceEvent> events) {
  events_ = std::move(events);
  next_sequence_ = events_.empty() ? 0 : events_.back().sequence + 1;
}

std::vector<TraceEvent> ExecutionTrace::Reduced() const {
  // Backwards scan: collect, per node, the sequence *after* which events
  // survive (the last reset touching the node). Node-less events survive.
  std::unordered_map<NodeId, int64_t> erased_until;
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->kind != TraceEventKind::kLoopReset) continue;
    for (NodeId n : it->reset_nodes) {
      auto ins = erased_until.emplace(n, it->sequence);
      if (!ins.second && ins.first->second < it->sequence) {
        ins.first->second = it->sequence;
      }
    }
  }
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    if (e.node.valid()) {
      auto it = erased_until.find(e.node);
      if (it != erased_until.end() && e.sequence < it->second) continue;
    }
    out.push_back(e);
  }
  return out;
}

int64_t ExecutionTrace::LastStartSeq(NodeId node) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    // A reset erases earlier iterations: stop searching past it.
    if (it->kind == TraceEventKind::kLoopReset) {
      for (NodeId n : it->reset_nodes) {
        if (n == node) return -1;
      }
    }
    if (it->node == node && it->kind == TraceEventKind::kActivityStarted) {
      return it->sequence;
    }
  }
  return -1;
}

int64_t ExecutionTrace::LastCompletionSeq(NodeId node) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->kind == TraceEventKind::kLoopReset) {
      for (NodeId n : it->reset_nodes) {
        if (n == node) return -1;
      }
    }
    if (it->node == node && it->kind == TraceEventKind::kActivityCompleted) {
      return it->sequence;
    }
  }
  return -1;
}

std::optional<int> ExecutionTrace::LastBranchChosen(NodeId split) const {
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->kind == TraceEventKind::kLoopReset) {
      for (NodeId n : it->reset_nodes) {
        if (n == split) return std::nullopt;
      }
    }
    if (it->node == split && it->kind == TraceEventKind::kBranchChosen) {
      return it->branch_value;
    }
  }
  return std::nullopt;
}

size_t ExecutionTrace::MemoryFootprint() const {
  size_t bytes = sizeof(*this) + events_.capacity() * sizeof(TraceEvent);
  for (const TraceEvent& e : events_) {
    bytes += e.detail.capacity() + e.reset_nodes.capacity() * sizeof(NodeId);
  }
  return bytes;
}

std::string ExecutionTrace::DebugString() const {
  std::ostringstream os;
  for (const TraceEvent& e : events_) {
    os << e.sequence << " " << TraceEventKindToString(e.kind);
    if (e.node.valid()) os << " node=" << e.node;
    if (e.data.valid()) os << " data=" << e.data;
    if (e.kind == TraceEventKind::kBranchChosen) {
      os << " branch=" << e.branch_value;
    }
    if (e.kind == TraceEventKind::kLoopReset) {
      os << " iteration=" << e.iteration;
    }
    if (!e.detail.empty()) os << " (" << e.detail << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace adept
