#include "runtime/data_value.h"

#include "common/string_util.h"

namespace adept {

std::string DataValue::ToDisplayString() const {
  switch (type_) {
    case DataType::kBool:
      return bool_ ? "true" : "false";
    case DataType::kInt:
      return std::to_string(int_);
    case DataType::kDouble:
      return StrFormat("%g", double_);
    case DataType::kString:
      return string_;
  }
  return "?";
}

JsonValue DataValue::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("t", JsonValue(static_cast<int>(type_)));
  switch (type_) {
    case DataType::kBool:
      j.Set("v", JsonValue(bool_));
      break;
    case DataType::kInt:
      j.Set("v", JsonValue(int_));
      break;
    case DataType::kDouble:
      j.Set("v", JsonValue(double_));
      break;
    case DataType::kString:
      j.Set("v", JsonValue(string_));
      break;
  }
  return j;
}

Result<DataValue> DataValue::FromJson(const JsonValue& json) {
  if (!json.is_object() || !json.Has("t")) {
    return Status::Corruption("malformed data value");
  }
  auto type = static_cast<DataType>(json.Get("t").as_int());
  const JsonValue& v = json.Get("v");
  switch (type) {
    case DataType::kBool:
      return DataValue::Bool(v.as_bool());
    case DataType::kInt:
      return DataValue::Int(v.as_int());
    case DataType::kDouble:
      return DataValue::Double(v.as_double());
    case DataType::kString:
      return DataValue::String(v.as_string());
  }
  return Status::Corruption("unknown data value type");
}

}  // namespace adept
