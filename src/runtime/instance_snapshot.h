// InstanceSnapshot: the lock-free read path's unit of consistency.
//
// A snapshot is an immutable, internally consistent copy of everything the
// read-dominated consumers (worklist polling, monitoring views, compliance
// sweeps) need from a ProcessInstance: marking, activated/running activity
// lists, a trace summary, the per-node completion counters, the latest
// data-element values, and the schema/version refs. The owning facade
// rebuilds it after every mutation (under the same lock that serialized
// the mutation) and publishes it into a SnapshotTable; readers fetch the
// current shared_ptr through a striped spinlock table and then read the
// object without any lock at all — the pointer pins an immutable version,
// the writer publishes the next one (the MVCC read-snapshot discipline of
// realm-core's reader views).
//
// Consistency contract:
//   * every field of one snapshot reflects the same engine state — a
//     reader can never observe a marking from one mutation and a trace
//     summary from another (a "torn" read);
//   * `version` increases by one per publication of the same instance on
//     the same system; `trace_next_sequence` is monotonic for the whole
//     life of the instance, across ad-hoc changes, migrations, and
//     cross-shard moves (the trace travels with the instance);
//   * staleness is bounded by one mutation: a snapshot trails the live
//     instance only while a mutating facade call is in flight.

#ifndef ADEPT_RUNTIME_INSTANCE_SNAPSHOT_H_
#define ADEPT_RUNTIME_INSTANCE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/persistent_map.h"
#include "model/schema_view.h"
#include "runtime/data_value.h"
#include "runtime/marking.h"

namespace adept {

struct InstanceSnapshot {
  InstanceId id;
  // The execution schema at publication time. SchemaViews are immutable
  // once built, so holding the shared_ptr keeps the whole view readable
  // without coordination.
  std::shared_ptr<const SchemaView> schema;
  SchemaId schema_ref;
  bool biased = false;
  bool started = false;
  bool finished = false;

  // Publication counter, stamped by the SnapshotTable: strictly increasing
  // per (system, instance). Restarts at 1 when an instance is imported
  // into another shard — use trace_next_sequence for cross-move
  // monotonicity.
  uint64_t version = 0;

  // Full node/edge marking. An O(1) structural share of the live
  // instance's marking at publication time: the snapshot pins the trie
  // roots, later mutations path-copy away from them (see
  // common/persistent_map.h). Only non-default states are stored.
  Marking marking;
  // Nodes currently Activated resp. Running — redundant with `marking` by
  // construction (they are the marking's derived indexes, shared by
  // root), which is what makes a torn snapshot detectable: every listed
  // node must carry the matching marking state. `activated_nodes` can
  // include non-activity nodes (an XOR split waiting for its decision
  // data); `running_nodes` only ever holds activities. Consumers that
  // want activities filter by node type through `schema`.
  PersistentSet<NodeId> activated_nodes;
  PersistentSet<NodeId> running_nodes;

  // Logical activation stamps: trace sequence at which each node in
  // `activated_nodes` (or still Running/Suspended/Failed after
  // activating) last entered kActivated. No wall-clock — callers compare
  // against trace_next_sequence to ask "activated since sequence k and
  // still not done" (the query predicate activated_since("n", k)).
  PersistentMap<NodeId, int64_t> activated_since;

  // Completed runs per node (the worklist's activation-epoch source) and
  // their sum — again deliberately redundant for consistency checking.
  PersistentMap<NodeId, uint64_t> completed_runs;
  uint64_t completed_total = 0;

  // Completed iterations per loop start.
  PersistentMap<NodeId, int> loop_iterations;

  // Latest value of every written data element (history stays behind the
  // mutating path; monitoring wants current values). Shared by root with
  // the live DataContext's tips map.
  PersistentMap<DataId, DataValue> data_values;

  // Trace summary: event count and the next sequence number. The full
  // trace is deliberately not copied — snapshot publication must stay
  // O(live state), not O(history).
  int64_t trace_length = 0;
  int64_t trace_next_sequence = 0;
};

// SnapshotTable: instance id -> current snapshot, striped for concurrent
// readers. Writers (the owning facade, already serialized per system)
// briefly take a stripe's lock to swap the pointer; readers take it only
// long enough to copy the shared_ptr out. The stripe lock is a spinlock:
// the critical section is a hash find plus one refcount bump (tens of
// nanoseconds), far below the parking cost of a mutex, and 64 stripes
// keep collisions rare — so no reader ever blocks behind an engine turn,
// and the hot read path stays cheaper than even an uncontended
// mutex-guarded engine lookup.
class SnapshotTable {
 public:
  SnapshotTable() = default;
  SnapshotTable(const SnapshotTable&) = delete;
  SnapshotTable& operator=(const SnapshotTable&) = delete;

  // Current snapshot of `id`, or nullptr when none is published.
  std::shared_ptr<const InstanceSnapshot> Get(InstanceId id) const;

  // Publishes `snapshot` as the current version of its instance, stamping
  // `snapshot->version` with the predecessor's version + 1. Returns the
  // superseded snapshot (nullptr on first publication) — the delta the
  // publisher feeds into its QueryIndex.
  std::shared_ptr<const InstanceSnapshot> Publish(
      std::shared_ptr<InstanceSnapshot> snapshot);

  // Removes the instance's snapshot (eviction / deletion); returns the
  // removed snapshot (nullptr when none was published).
  std::shared_ptr<const InstanceSnapshot> Erase(InstanceId id);

  // Appends the current snapshot of every instance to `out`. The
  // collected set is the table's state at stripe-lock time per stripe —
  // a sweep concurrent with writers sees each instance at some published
  // version, not one global point in time. The copied shared_ptrs keep
  // the snapshots alive for the caller; no table lock is held afterwards.
  void Collect(
      std::vector<std::shared_ptr<const InstanceSnapshot>>* out) const;

 private:
  static constexpr size_t kStripes = 64;

  class SpinLock {
   public:
    void lock() {
      // The holder is inside a ~10ns critical section, so a short burst
      // of pure spinning wins; yield after that in case the holder was
      // preempted (oversubscribed machines, sanitizer slowdown) so
      // contenders do not burn whole scheduling quanta.
      int spins = 0;
      while (flag_.test_and_set(std::memory_order_acquire)) {
        if (++spins >= 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  struct Stripe {
    mutable SpinLock mu;
    std::unordered_map<uint64_t, std::shared_ptr<const InstanceSnapshot>>
        entries;
  };

  Stripe& StripeOf(InstanceId id) {
    return stripes_[id.value() % kStripes];
  }
  const Stripe& StripeOf(InstanceId id) const {
    return stripes_[id.value() % kStripes];
  }

  Stripe stripes_[kStripes];
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_INSTANCE_SNAPSHOT_H_
