#include "runtime/data_context.h"

#include <algorithm>

namespace adept {

namespace {
const std::vector<DataContext::Version>& EmptyHistory() {
  static const std::vector<DataContext::Version> kEmpty;
  return kEmpty;
}
}  // namespace

void DataContext::Write(DataId data, DataValue value, NodeId writer,
                        int64_t sequence) {
  elements_[data].push_back(Version{std::move(value), writer, sequence});
}

Result<DataValue> DataContext::Read(DataId data) const {
  auto it = elements_.find(data);
  if (it == elements_.end() || it->second.empty()) {
    return Status::NotFound("data element has no value");
  }
  return it->second.back().value;
}

bool DataContext::HasValue(DataId data) const {
  auto it = elements_.find(data);
  return it != elements_.end() && !it->second.empty();
}

const std::vector<DataContext::Version>& DataContext::History(
    DataId data) const {
  auto it = elements_.find(data);
  return it == elements_.end() ? EmptyHistory() : it->second;
}

size_t DataContext::DropVersionsBy(NodeId writer) {
  size_t dropped = 0;
  for (auto& [_, versions] : elements_) {
    size_t before = versions.size();
    versions.erase(std::remove_if(versions.begin(), versions.end(),
                                  [&](const Version& v) {
                                    return v.writer == writer;
                                  }),
                   versions.end());
    dropped += before - versions.size();
  }
  return dropped;
}

void DataContext::DropElement(DataId data) { elements_.erase(data); }

size_t DataContext::MemoryFootprint() const {
  size_t bytes = sizeof(*this);
  for (const auto& [_, versions] : elements_) {
    bytes += 48;  // hash node overhead
    bytes += versions.capacity() * sizeof(Version);
    for (const auto& v : versions) bytes += v.value.as_string().capacity();
  }
  return bytes;
}

}  // namespace adept
