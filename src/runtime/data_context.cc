#include "runtime/data_context.h"

#include <algorithm>

namespace adept {

void DataContext::Write(DataId data, DataValue value, NodeId writer,
                        int64_t sequence) {
  const HistoryPtr* head = elements_.Find(data);
  auto node = std::make_shared<VersionNode>();
  node->version = Version{value, writer, sequence};
  if (head != nullptr) {
    node->prev = *head;
    node->length = (*head)->length + 1;
  } else {
    node->length = 1;
  }
  elements_.Set(data, std::move(node));
  tips_.Set(data, std::move(value));
}

Result<DataValue> DataContext::Read(DataId data) const {
  const DataValue* tip = tips_.Find(data);
  if (tip == nullptr) return Status::NotFound("data element has no value");
  return *tip;
}

bool DataContext::HasValue(DataId data) const { return tips_.Contains(data); }

std::vector<DataContext::Version> DataContext::History(DataId data) const {
  const HistoryPtr* head = elements_.Find(data);
  return head == nullptr ? std::vector<Version>() : Materialize(*head);
}

std::vector<DataContext::Version> DataContext::Materialize(
    const HistoryPtr& head) {
  std::vector<Version> out;
  if (head == nullptr) return out;
  out.resize(head->length);
  size_t i = head->length;
  for (const VersionNode* node = head.get(); node != nullptr;
       node = node->prev.get()) {
    out[--i] = node->version;
  }
  return out;
}

size_t DataContext::DropVersionsBy(NodeId writer) {
  size_t dropped = 0;
  // Collect first: mutating a persistent map invalidates value pointers
  // handed out during its own iteration.
  std::vector<std::pair<DataId, std::vector<Version>>> rebuilt;
  std::vector<DataId> gone;
  elements_.ForEach([&](DataId id, const HistoryPtr& head) {
    bool any = false;
    for (const VersionNode* node = head.get(); node != nullptr;
         node = node->prev.get()) {
      if (node->version.writer == writer) {
        any = true;
        break;
      }
    }
    if (!any) return;
    std::vector<Version> versions = Materialize(head);
    size_t before = versions.size();
    versions.erase(std::remove_if(versions.begin(), versions.end(),
                                  [&](const Version& v) {
                                    return v.writer == writer;
                                  }),
                   versions.end());
    dropped += before - versions.size();
    if (versions.empty()) {
      gone.push_back(id);
    } else {
      rebuilt.emplace_back(id, std::move(versions));
    }
  });
  for (DataId id : gone) {
    elements_.Erase(id);
    tips_.Erase(id);
  }
  for (auto& [id, versions] : rebuilt) {
    HistoryPtr head;
    for (Version& v : versions) {
      auto node = std::make_shared<VersionNode>();
      node->length = head == nullptr ? 1 : head->length + 1;
      node->version = std::move(v);
      node->prev = std::move(head);
      head = std::move(node);
    }
    tips_.Set(id, head->version.value);
    elements_.Set(id, std::move(head));
  }
  return dropped;
}

void DataContext::DropElement(DataId data) {
  elements_.Erase(data);
  tips_.Erase(data);
}

size_t DataContext::MemoryFootprint() const {
  size_t bytes = sizeof(*this) + elements_.MemoryFootprint() +
                 tips_.MemoryFootprint();
  elements_.ForEach([&](DataId, const HistoryPtr& head) {
    for (const VersionNode* node = head.get(); node != nullptr;
         node = node->prev.get()) {
      bytes += sizeof(VersionNode) + node->version.value.as_string().capacity();
    }
  });
  return bytes;
}

}  // namespace adept
