// Observer interface for instance-level runtime events.
//
// The worklist manager and the monitoring component subscribe to these
// callbacks. Observers must not re-enter the instance synchronously.

#ifndef ADEPT_RUNTIME_EVENTS_H_
#define ADEPT_RUNTIME_EVENTS_H_

#include <vector>

#include "common/ids.h"
#include "runtime/data_value.h"
#include "runtime/marking.h"

namespace adept {

class ProcessInstance;

class InstanceObserver {
 public:
  virtual ~InstanceObserver() = default;

  virtual void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                                 NodeState from, NodeState to) {
    (void)instance;
    (void)node;
    (void)from;
    (void)to;
  }
  virtual void OnInstanceFinished(const ProcessInstance& instance) {
    (void)instance;
  }
  virtual void OnDataWrite(const ProcessInstance& instance, NodeId writer,
                           DataId data, const DataValue& value) {
    (void)instance;
    (void)writer;
    (void)data;
    (void)value;
  }
};

// Broadcasts instance events to any number of subscribers (the engine holds
// a single observer slot; the facade fans out to worklists, monitors, ...).
class ObserverFanout : public InstanceObserver {
 public:
  void Add(InstanceObserver* observer) {
    if (observer != nullptr) observers_.push_back(observer);
  }

  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override {
    for (InstanceObserver* o : observers_) {
      o->OnNodeStateChange(instance, node, from, to);
    }
  }
  void OnInstanceFinished(const ProcessInstance& instance) override {
    for (InstanceObserver* o : observers_) o->OnInstanceFinished(instance);
  }
  void OnDataWrite(const ProcessInstance& instance, NodeId writer, DataId data,
                   const DataValue& value) override {
    for (InstanceObserver* o : observers_) {
      o->OnDataWrite(instance, writer, data, value);
    }
  }

 private:
  std::vector<InstanceObserver*> observers_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_EVENTS_H_
