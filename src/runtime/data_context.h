// DataContext: versioned values of a process instance's data elements.
//
// Every write appends a new version tagged with the writing node and the
// trace sequence number. Reads return the latest version. Keeping the full
// history is what allows activity deletions and migrations to reason about
// "missing data" (e.g., a deleted activity's writes stay available to
// readers that already consumed them, while compliance checks can detect
// readers that would lose their only supplier).

#ifndef ADEPT_RUNTIME_DATA_CONTEXT_H_
#define ADEPT_RUNTIME_DATA_CONTEXT_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "runtime/data_value.h"

namespace adept {

class DataContext {
 public:
  struct Version {
    DataValue value;
    NodeId writer;    // invalid for external/system-supplied values
    int64_t sequence; // trace sequence number of the write
  };

  // Appends a new version.
  void Write(DataId data, DataValue value, NodeId writer, int64_t sequence);

  // Latest value; kNotFound when the element was never written.
  Result<DataValue> Read(DataId data) const;

  bool HasValue(DataId data) const;

  // Full history (empty when never written).
  const std::vector<Version>& History(DataId data) const;

  // Removes all versions written by `writer` (used when an activity's
  // effects must be undone, e.g. delete of a completed loop-body activity
  // after a reset). Returns number of versions dropped.
  size_t DropVersionsBy(NodeId writer);

  // Removes all versions of `data` (element deleted from the schema).
  void DropElement(DataId data);

  const std::unordered_map<DataId, std::vector<Version>>& elements() const {
    return elements_;
  }

  size_t MemoryFootprint() const;

 private:
  std::unordered_map<DataId, std::vector<Version>> elements_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_DATA_CONTEXT_H_
