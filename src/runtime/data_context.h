// DataContext: versioned values of a process instance's data elements.
//
// Every write appends a new version tagged with the writing node and the
// trace sequence number. Reads return the latest version. Keeping the full
// history is what allows activity deletions and migrations to reason about
// "missing data" (e.g., a deleted activity's writes stay available to
// readers that already consumed them, while compliance checks can detect
// readers that would lose their only supplier).
//
// Storage is persistent: element histories are immutable cons lists
// (newest first — a write shares the entire previous history), and the
// latest value of every element is additionally maintained in a
// structurally shared `tips` map. Snapshot publication takes the tips map
// by O(1) root copy instead of walking every element; history stays
// behind the mutating path, materialized on demand by the cold
// compliance/serialization consumers.

#ifndef ADEPT_RUNTIME_DATA_CONTEXT_H_
#define ADEPT_RUNTIME_DATA_CONTEXT_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/persistent_map.h"
#include "common/status.h"
#include "runtime/data_value.h"

namespace adept {

class DataContext {
 public:
  struct Version {
    DataValue value;
    NodeId writer;    // invalid for external/system-supplied values
    int64_t sequence; // trace sequence number of the write
  };

  // One link of an element's immutable history. Appending a version
  // allocates one node and shares `prev` — old snapshots holding the
  // previous head keep seeing their history unchanged.
  struct VersionNode {
    Version version;
    std::shared_ptr<const VersionNode> prev;
    size_t length = 0;  // versions in this list including this one
  };
  using HistoryPtr = std::shared_ptr<const VersionNode>;

  // Appends a new version.
  void Write(DataId data, DataValue value, NodeId writer, int64_t sequence);

  // Latest value; kNotFound when the element was never written.
  Result<DataValue> Read(DataId data) const;

  bool HasValue(DataId data) const;

  // Full history, oldest first (empty when never written). Materialized
  // from the cons list — callers are cold paths (compliance checks,
  // serialization), never the mutation or publication path.
  std::vector<Version> History(DataId data) const;

  // Removes all versions written by `writer` (used when an activity's
  // effects must be undone, e.g. delete of a completed loop-body activity
  // after a reset). Returns number of versions dropped.
  size_t DropVersionsBy(NodeId writer);

  // Removes all versions of `data` (element deleted from the schema).
  void DropElement(DataId data);

  // Raw history heads, keyed by element. Iteration order is by id bits;
  // deterministic consumers sort.
  const PersistentMap<DataId, HistoryPtr>& elements() const {
    return elements_;
  }

  // Latest value of every written element — the map InstanceSnapshot
  // shares by root copy.
  const PersistentMap<DataId, DataValue>& tips() const { return tips_; }

  // Visits every element as (id, oldest-first history vector).
  template <typename Fn>
  void ForEachElement(Fn&& fn) const {
    elements_.ForEach([&](DataId id, const HistoryPtr& head) {
      fn(id, Materialize(head));
    });
  }

  size_t MemoryFootprint() const;

 private:
  static std::vector<Version> Materialize(const HistoryPtr& head);

  PersistentMap<DataId, HistoryPtr> elements_;
  PersistentMap<DataId, DataValue> tips_;
};

}  // namespace adept

#endif  // ADEPT_RUNTIME_DATA_CONTEXT_H_
