#include "runtime/instance.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "runtime/instance_snapshot.h"

namespace adept {

namespace {

// Upper bound on automatic state transitions per propagation fixpoint;
// exceeding it means a loop without user activities spins forever.
constexpr int kMaxAutoTransitionsFactor = 64;

}  // namespace

ProcessInstance::ProcessInstance(InstanceId id,
                                 std::shared_ptr<const SchemaView> schema,
                                 SchemaId schema_ref)
    : id_(id), schema_(std::move(schema)), schema_ref_(schema_ref) {}

const BlockTree* ProcessInstance::block_tree() {
  if (block_tree_cache_ == nullptr) {
    auto tree = BlockTree::Build(*schema_);
    if (!tree.ok()) return nullptr;
    block_tree_cache_ = std::make_unique<BlockTree>(std::move(tree).value());
  }
  return block_tree_cache_.get();
}

void ProcessInstance::SetNodeState(NodeId node, NodeState state) {
  NodeState old = marking_.node(node);
  if (old == state) return;
  marking_.set_node(node, state);
  // Activation stamps: set on entering kActivated, kept while the node is
  // in flight (Running/Suspended/Failed), dropped when its run is over or
  // reset. The stamp is the logical time (trace sequence) of activation.
  if (state == NodeState::kActivated) {
    if (old == NodeState::kNotActivated || old == NodeState::kCompleted ||
        old == NodeState::kSkipped) {
      activated_since_.Set(node, trace_.next_sequence());
    }
  } else if (state == NodeState::kNotActivated ||
             state == NodeState::kCompleted || state == NodeState::kSkipped) {
    activated_since_.Erase(node);
  }
  if (observer_ != nullptr) {
    observer_->OnNodeStateChange(*this, node, old, state);
  }
}

Status ProcessInstance::Start() {
  if (started_) return Status::FailedPrecondition("instance already started");
  started_ = true;
  trace_.Append({.kind = TraceEventKind::kInstanceStarted});
  const Node* start = schema_->FindNode(schema_->start_node());
  if (start == nullptr) return Status::Internal("schema has no start node");
  SetNodeState(start->id, NodeState::kCompleted);
  ADEPT_RETURN_IF_ERROR(SignalCompletion(*start));
  return Propagate();
}

std::optional<NodeState> ProcessInstance::ComputeActivation(
    const Node& node) const {
  // Control side.
  int in_control = 0, in_true = 0, in_false = 0;
  bool sync_pending = false;
  schema_->VisitInEdges(node.id, [&](const Edge& e) {
    if (e.type == EdgeType::kControl) {
      ++in_control;
      EdgeState s = marking_.edge(e.id);
      if (s == EdgeState::kTrueSignaled) ++in_true;
      if (s == EdgeState::kFalseSignaled) ++in_false;
    } else if (e.type == EdgeType::kSync) {
      if (marking_.edge(e.id) == EdgeState::kNotSignaled) sync_pending = true;
    }
  });
  if (in_control == 0) return std::nullopt;  // start flow: handled by Start()

  bool control_ready = false;
  bool control_dead = false;
  if (node.type == NodeType::kXorJoin) {
    control_ready = in_true >= 1;
    control_dead = in_false == in_control;
  } else if (node.type == NodeType::kAndJoin) {
    control_ready = in_true == in_control;
    control_dead = (in_true + in_false == in_control) && in_false > 0;
  } else {
    control_ready = in_true == in_control;
    control_dead = in_false > 0;
  }
  if (control_dead) return NodeState::kSkipped;
  if (!control_ready) return std::nullopt;
  // ADEPT sync rule: the node may start only once every incoming sync edge
  // is resolved (source completed or definitely skipped).
  if (sync_pending) return std::nullopt;
  return NodeState::kActivated;
}

Status ProcessInstance::Propagate() {
  const int max_transitions =
      static_cast<int>(schema_->node_count()) * kMaxAutoTransitionsFactor +
      1024;
  int transitions = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    Status inner = Status::OK();
    schema_->VisitNodes([&](const Node& node) {
      if (!inner.ok()) return;
      NodeState state = marking_.node(node.id);
      if (state == NodeState::kNotActivated) {
        std::optional<NodeState> next = ComputeActivation(node);
        if (next.has_value()) {
          if (*next == NodeState::kSkipped) {
            SkipNode(node);
          } else {
            SetNodeState(node.id, NodeState::kActivated);
          }
          changed = true;
          ++transitions;
        }
      } else if (state == NodeState::kActivated &&
                 node.type != NodeType::kActivity) {
        // An XOR split without a decidable branch waits in Activated until
        // data arrives or SelectBranch() is called.
        if (node.type == NodeType::kXorSplit &&
            selected_branch_.find(node.id) == selected_branch_.end() &&
            (!node.decision_data.valid() ||
             !data_.HasValue(node.decision_data))) {
          return;
        }
        inner = AutoComplete(node);
        changed = true;
        ++transitions;
      }
    });
    ADEPT_RETURN_IF_ERROR(inner);
    if (transitions > max_transitions) {
      return Status::Internal(
          "propagation did not converge (loop without user activities?)");
    }
  }
  if (Finished() && !finished_notified_) {
    finished_notified_ = true;
    if (observer_ != nullptr) observer_->OnInstanceFinished(*this);
  }
  return Status::OK();
}

Status ProcessInstance::AutoComplete(const Node& node) {
  if (node.type == NodeType::kLoopEnd) return HandleLoopEnd(node);
  SetNodeState(node.id, NodeState::kCompleted);
  return SignalCompletion(node);
}

Result<int> ProcessInstance::EvaluateDecision(const Node& split) {
  auto it = selected_branch_.find(split.id);
  if (it != selected_branch_.end()) {
    int value = it->second;
    selected_branch_.erase(it);
    return value;
  }
  if (!split.decision_data.valid()) {
    return Status::FailedPrecondition(
        "XOR split '" + split.name +
        "' has no decision data and no explicit branch selection");
  }
  auto value = data_.Read(split.decision_data);
  if (!value.ok()) {
    return Status::FailedPrecondition("decision data for XOR split '" +
                                      split.name + "' has no value");
  }
  return static_cast<int>(value->as_int());
}

Result<bool> ProcessInstance::EvaluateLoopCondition(const Node& node) {
  auto it = loop_decision_.find(node.id);
  if (it != loop_decision_.end()) {
    bool iterate = it->second;
    loop_decision_.erase(it);
    return iterate;
  }
  if (!node.loop_data.valid()) return false;  // default: single pass
  auto value = data_.Read(node.loop_data);
  if (!value.ok()) return false;
  return value->as_bool();
}

Status ProcessInstance::SignalCompletion(const Node& node) {
  if (node.type == NodeType::kXorSplit) {
    ADEPT_ASSIGN_OR_RETURN(int decision, EvaluateDecision(node));
    bool matched = false;
    schema_->VisitOutEdges(node.id, [&](const Edge& e) {
      if (e.type != EdgeType::kControl) return;
      if (e.branch_value == decision && !matched) {
        matched = true;
        marking_.set_edge(e.id, EdgeState::kTrueSignaled);
      } else {
        marking_.set_edge(e.id, EdgeState::kFalseSignaled);
      }
    });
    if (!matched) {
      return Status::FailedPrecondition(
          StrFormat("XOR split '%s': no branch matches decision value %d",
                    node.name.c_str(), decision));
    }
    trace_.Append({.kind = TraceEventKind::kBranchChosen,
                   .node = node.id,
                   .branch_value = decision});
    return Status::OK();
  }
  schema_->VisitOutEdges(node.id, [&](const Edge& e) {
    if (e.type == EdgeType::kLoop) return;
    // Completion signals control and sync edges alike, but never downgrades
    // an existing signal (relevant during marking re-evaluation).
    if (marking_.edge(e.id) == EdgeState::kNotSignaled) {
      marking_.set_edge(e.id, EdgeState::kTrueSignaled);
    }
  });
  return Status::OK();
}

void ProcessInstance::SkipNode(const Node& node) {
  SetNodeState(node.id, NodeState::kSkipped);
  if (node.type == NodeType::kActivity) {
    trace_.Append({.kind = TraceEventKind::kActivitySkipped, .node = node.id});
  }
  schema_->VisitOutEdges(node.id, [&](const Edge& e) {
    if (e.type == EdgeType::kLoop) return;
    marking_.set_edge(e.id, EdgeState::kFalseSignaled);
  });
}

Status ProcessInstance::HandleLoopEnd(const Node& node) {
  ADEPT_ASSIGN_OR_RETURN(bool iterate, EvaluateLoopCondition(node));
  if (!iterate) {
    SetNodeState(node.id, NodeState::kCompleted);
    return SignalCompletion(node);
  }
  const BlockTree* tree = block_tree();
  if (tree == nullptr) {
    return Status::Internal("loop iteration without parsable block structure");
  }
  int loop_block = tree->InnermostLoop(node.id);
  if (loop_block < 0) {
    return Status::Internal("loop end outside any loop block");
  }
  NodeId loop_start = tree->block(loop_block).entry;
  std::vector<NodeId> region = tree->NodesIn(loop_block);
  const int* prior = loop_iterations_.Find(loop_start);
  int iteration = (prior == nullptr ? 0 : *prior) + 1;
  loop_iterations_.Set(loop_start, iteration);
  trace_.Append({.kind = TraceEventKind::kLoopReset,
                 .node = loop_start,
                 .iteration = iteration,
                 .reset_nodes = region});

  // Erase body markings: node states, plus the states of every non-loop
  // edge whose source lies inside the block (covers internal edges; the
  // entry edge of the loop start keeps its signal, so propagation restarts
  // the body).
  std::unordered_map<NodeId, bool> in_region;
  for (NodeId n : region) in_region[n] = true;
  for (NodeId n : region) {
    SetNodeState(n, NodeState::kNotActivated);
    schema_->VisitOutEdges(n, [&](const Edge& e) {
      marking_.set_edge(e.id, EdgeState::kNotSignaled);
    });
  }
  return Status::OK();
}

Status ProcessInstance::StartActivity(NodeId node_id) {
  const Node* node = schema_->FindNode(node_id);
  if (node == nullptr) return Status::NotFound("no such node");
  if (node->type != NodeType::kActivity) {
    return Status::InvalidArgument("node is not an activity");
  }
  if (marking_.node(node_id) != NodeState::kActivated) {
    return Status::FailedPrecondition(
        StrFormat("activity '%s' is %s, expected Activated",
                  node->name.c_str(),
                  NodeStateToString(marking_.node(node_id))));
  }
  // Defense in depth: mandatory inputs must have values. The verifier
  // guarantees this for unchanged schemas; dynamic changes re-verify, but a
  // cheap runtime check keeps the property robust.
  Status missing = Status::OK();
  schema_->VisitDataEdges(node_id, [&](const DataEdge& de) {
    if (!missing.ok()) return;
    if (de.mode == AccessMode::kRead && !de.optional &&
        !data_.HasValue(de.data)) {
      const DataElement* d = schema_->FindData(de.data);
      missing = Status::FailedPrecondition(
          StrFormat("activity '%s': mandatory input '%s' has no value",
                    node->name.c_str(),
                    d != nullptr ? d->name.c_str() : "?"));
    }
  });
  ADEPT_RETURN_IF_ERROR(missing);
  SetNodeState(node_id, NodeState::kRunning);
  trace_.Append({.kind = TraceEventKind::kActivityStarted, .node = node_id});
  return Status::OK();
}

Status ProcessInstance::CompleteActivity(NodeId node_id,
                                         const std::vector<DataWrite>& writes) {
  const Node* node = schema_->FindNode(node_id);
  if (node == nullptr) return Status::NotFound("no such node");
  if (marking_.node(node_id) != NodeState::kRunning) {
    return Status::FailedPrecondition(
        StrFormat("activity '%s' is %s, expected Running", node->name.c_str(),
                  NodeStateToString(marking_.node(node_id))));
  }

  // Writes must match declared output parameters, and all mandatory output
  // parameters must be supplied.
  std::vector<DataEdge> write_edges =
      schema_->DataEdgesOf(node_id, AccessMode::kWrite);
  for (const DataWrite& w : writes) {
    auto it = std::find_if(
        write_edges.begin(), write_edges.end(),
        [&](const DataEdge& de) { return de.data == w.data; });
    if (it == write_edges.end()) {
      return Status::InvalidArgument(
          StrFormat("activity '%s' has no write edge for the supplied data "
                    "element",
                    node->name.c_str()));
    }
    const DataElement* elem = schema_->FindData(w.data);
    if (elem != nullptr && elem->type != w.value.type()) {
      return Status::InvalidArgument(
          StrFormat("activity '%s': value type mismatch for '%s'",
                    node->name.c_str(), elem->name.c_str()));
    }
  }
  for (const DataEdge& de : write_edges) {
    if (de.optional) continue;
    bool supplied =
        std::any_of(writes.begin(), writes.end(),
                    [&](const DataWrite& w) { return w.data == de.data; });
    if (!supplied) {
      const DataElement* elem = schema_->FindData(de.data);
      return Status::FailedPrecondition(
          StrFormat("activity '%s': mandatory output '%s' not supplied",
                    node->name.c_str(),
                    elem != nullptr ? elem->name.c_str() : "?"));
    }
  }

  for (const DataWrite& w : writes) {
    int64_t seq = trace_.Append(
        {.kind = TraceEventKind::kDataWrite, .node = node_id, .data = w.data});
    data_.Write(w.data, w.value, node_id, seq);
    if (observer_ != nullptr) {
      observer_->OnDataWrite(*this, node_id, w.data, w.value);
    }
  }

  SetNodeState(node_id, NodeState::kCompleted);
  trace_.Append({.kind = TraceEventKind::kActivityCompleted, .node = node_id});
  const uint64_t* runs = completed_runs_.Find(node_id);
  completed_runs_.Set(node_id, (runs == nullptr ? 0 : *runs) + 1);
  ++completed_total_;
  ADEPT_RETURN_IF_ERROR(SignalCompletion(*node));
  return Propagate();
}

Status ProcessInstance::FailActivity(NodeId node_id,
                                     const std::string& reason) {
  const Node* node = schema_->FindNode(node_id);
  if (node == nullptr) return Status::NotFound("no such node");
  if (marking_.node(node_id) != NodeState::kRunning) {
    return Status::FailedPrecondition("only running activities can fail");
  }
  SetNodeState(node_id, NodeState::kFailed);
  trace_.Append({.kind = TraceEventKind::kActivityFailed,
                 .node = node_id,
                 .detail = reason});
  return Status::OK();
}

Status ProcessInstance::RetryActivity(NodeId node_id) {
  if (marking_.node(node_id) != NodeState::kFailed) {
    return Status::FailedPrecondition("only failed activities can be retried");
  }
  SetNodeState(node_id, NodeState::kActivated);
  trace_.Append({.kind = TraceEventKind::kActivityRetried, .node = node_id});
  return Status::OK();
}

Status ProcessInstance::SuspendActivity(NodeId node_id) {
  if (marking_.node(node_id) != NodeState::kRunning) {
    return Status::FailedPrecondition("only running activities can suspend");
  }
  SetNodeState(node_id, NodeState::kSuspended);
  return Status::OK();
}

Status ProcessInstance::ResumeActivity(NodeId node_id) {
  if (marking_.node(node_id) != NodeState::kSuspended) {
    return Status::FailedPrecondition("activity is not suspended");
  }
  SetNodeState(node_id, NodeState::kRunning);
  return Status::OK();
}

Status ProcessInstance::SelectBranch(NodeId split, int branch_value) {
  const Node* node = schema_->FindNode(split);
  if (node == nullptr || node->type != NodeType::kXorSplit) {
    return Status::InvalidArgument("node is not an XOR split");
  }
  if (IsFinalNodeState(marking_.node(split))) {
    return Status::FailedPrecondition("XOR split already decided");
  }
  selected_branch_[split] = branch_value;
  return Propagate();
}

Status ProcessInstance::SetLoopDecision(NodeId loop_end, bool iterate) {
  const Node* node = schema_->FindNode(loop_end);
  if (node == nullptr || node->type != NodeType::kLoopEnd) {
    return Status::InvalidArgument("node is not a loop end");
  }
  loop_decision_[loop_end] = iterate;
  return Propagate();
}

bool ProcessInstance::Finished() const {
  return marking_.node(schema_->end_node()) == NodeState::kCompleted;
}

std::vector<NodeId> ProcessInstance::ActivatedActivities() const {
  // The marking maintains the activated set as a derived index; filter
  // out the occasional non-activity resident (an XOR split awaiting its
  // decision data sits in kActivated too).
  std::vector<NodeId> out;
  marking_.activated().ForEach([&](NodeId id) {
    const Node* node = schema_->FindNode(id);
    if (node != nullptr && node->type == NodeType::kActivity) {
      out.push_back(id);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ProcessInstance::RunningActivities() const {
  // Only activities ever reach kRunning, so no filtering is needed.
  std::vector<NodeId> out;
  marking_.running().ForEach([&](NodeId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

int ProcessInstance::loop_iteration(NodeId loop_start) const {
  const int* count = loop_iterations_.Find(loop_start);
  return count == nullptr ? 0 : *count;
}

std::shared_ptr<InstanceSnapshot> ProcessInstance::BuildSnapshot() const {
  // Every container assignment below is an O(1) root copy that pins the
  // current tries; the instance's next mutation path-copies away from
  // them. Publication cost is therefore independent of instance size.
  auto snapshot = std::make_shared<InstanceSnapshot>();
  snapshot->id = id_;
  snapshot->schema = schema_;
  snapshot->schema_ref = schema_ref_;
  snapshot->biased = biased_;
  snapshot->started = started_;
  snapshot->finished = Finished();
  snapshot->marking = marking_;
  snapshot->activated_nodes = marking_.activated();
  snapshot->running_nodes = marking_.running();
  snapshot->activated_since = activated_since_;
  snapshot->completed_runs = completed_runs_;
  snapshot->completed_total = completed_total_;
  snapshot->loop_iterations = loop_iterations_;
  snapshot->data_values = data_.tips();
  snapshot->trace_length = static_cast<int64_t>(trace_.events().size());
  snapshot->trace_next_sequence = trace_.next_sequence();
  return snapshot;
}

size_t ProcessInstance::MemoryFootprint() const {
  return sizeof(*this) + marking_.MemoryFootprint() - sizeof(Marking) +
         trace_.MemoryFootprint() - sizeof(ExecutionTrace) +
         data_.MemoryFootprint() - sizeof(DataContext) +
         loop_iterations_.size() * 24;
}

void ProcessInstance::RestoreState(
    Marking marking, ExecutionTrace trace, DataContext data,
    PersistentMap<NodeId, int> loop_iterations, bool started,
    PersistentMap<NodeId, int64_t> activated_since) {
  marking_ = std::move(marking);
  trace_ = std::move(trace);
  data_ = std::move(data);
  loop_iterations_ = std::move(loop_iterations);
  started_ = started;
  finished_notified_ = Finished();
  // Re-derive the per-node completion counters from the restored trace
  // (covers snapshot recovery and migration's bias-cancellation remap).
  completed_runs_.Clear();
  completed_total_ = 0;
  for (const TraceEvent& event : trace_.events()) {
    if (event.kind == TraceEventKind::kActivityCompleted &&
        event.node.valid()) {
      const uint64_t* runs = completed_runs_.Find(event.node);
      completed_runs_.Set(event.node, (runs == nullptr ? 0 : *runs) + 1);
      ++completed_total_;
    }
  }
  // Activation stamps: take the restored map when present, otherwise
  // (pre-refactor snapshots/WALs) stamp every in-flight node with the
  // trace's next sequence — deterministic, and an upper bound on the true
  // activation time.
  activated_since_ = std::move(activated_since);
  if (activated_since_.empty()) {
    marking_.node_states().ForEach([&](NodeId node, NodeState state) {
      if (state == NodeState::kActivated || state == NodeState::kRunning ||
          state == NodeState::kSuspended || state == NodeState::kFailed) {
        activated_since_.Set(node, trace_.next_sequence());
      }
    });
  }
}

Status ProcessInstance::AdoptSchema(std::shared_ptr<const SchemaView> schema,
                                    SchemaId ref) {
  if (schema == nullptr) return Status::InvalidArgument("null schema");
  schema_ = std::move(schema);
  schema_ref_ = ref;
  block_tree_cache_.reset();
  return ReevaluateMarkings();
}

Status ProcessInstance::ReevaluateMarkings() {
  // 1. Drop marking entries of entities that no longer exist. Routed
  // through SetNodeState so observers (worklists!) see the retraction.
  std::vector<NodeId> dead_nodes;
  for (const auto& [node, _] : marking_.node_states()) {
    if (schema_->FindNode(node) == nullptr) dead_nodes.push_back(node);
  }
  for (NodeId n : dead_nodes) SetNodeState(n, NodeState::kNotActivated);
  std::vector<EdgeId> dead_edges;
  for (const auto& [edge, _] : marking_.edge_states()) {
    if (schema_->FindEdge(edge) == nullptr) dead_edges.push_back(edge);
  }
  for (EdgeId e : dead_edges) marking_.erase_edge(e);
  std::vector<NodeId> dead_loops;
  for (const auto& [loop_start, _] : loop_iterations_) {
    if (schema_->FindNode(loop_start) == nullptr) {
      dead_loops.push_back(loop_start);
    }
  }
  for (NodeId n : dead_loops) loop_iterations_.Erase(n);

  // 2. Soft-reset: Activated and Skipped node states are derivable.
  std::vector<NodeId> soft;
  for (const auto& [node, state] : marking_.node_states()) {
    if (state == NodeState::kActivated || state == NodeState::kSkipped) {
      soft.push_back(node);
    }
  }
  for (NodeId n : soft) SetNodeState(n, NodeState::kNotActivated);

  // 3. Edge signals of non-completed sources are derivable; signals of
  //    completed sources (including XOR decisions) are facts and stay.
  std::vector<EdgeId> soft_edges;
  for (const auto& [edge, _] : marking_.edge_states()) {
    const Edge* e = schema_->FindEdge(edge);
    if (e == nullptr || marking_.node(e->src) != NodeState::kCompleted) {
      soft_edges.push_back(edge);
    }
  }
  for (EdgeId e : soft_edges) marking_.erase_edge(e);

  // 4. Completed sources signal their (new/unsignaled) outgoing edges.
  Status derive = Status::OK();
  schema_->VisitNodes([&](const Node& node) {
    if (!derive.ok()) return;
    if (marking_.node(node.id) != NodeState::kCompleted) return;
    if (node.type == NodeType::kXorSplit) {
      // Preserved signals encode the decision for surviving edges. Edges
      // rewritten by a change (e.g. serial insert into the chosen branch)
      // are re-signalled from the trace's recorded decision: the inserted
      // edge inherits the branch selection code, so matching codes restores
      // the signal exactly.
      std::optional<int> chosen = trace_.LastBranchChosen(node.id);
      bool any = false;
      schema_->VisitOutEdges(node.id, [&](const Edge& e) {
        if (e.type != EdgeType::kControl) return;
        if (marking_.edge(e.id) != EdgeState::kNotSignaled) {
          any = true;
          return;
        }
        if (chosen.has_value()) {
          marking_.set_edge(e.id, e.branch_value == *chosen
                                      ? EdgeState::kTrueSignaled
                                      : EdgeState::kFalseSignaled);
          any = true;
        }
      });
      if (!any) {
        derive = Status::Internal(
            "completed XOR split lost its decision signals");
      }
      return;
    }
    Status st = SignalCompletion(node);
    if (!st.ok()) derive = st;
  });
  ADEPT_RETURN_IF_ERROR(derive);

  // 5. Standard propagation re-derives activations and dead paths.
  return Propagate();
}

}  // namespace adept
