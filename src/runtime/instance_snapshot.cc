#include "runtime/instance_snapshot.h"

#include <mutex>
#include <utility>
#include <vector>

namespace adept {

std::shared_ptr<const InstanceSnapshot> SnapshotTable::Get(
    InstanceId id) const {
  const Stripe& stripe = StripeOf(id);
  std::lock_guard<SpinLock> lock(stripe.mu);
  auto it = stripe.entries.find(id.value());
  return it == stripe.entries.end() ? nullptr : it->second;
}

std::shared_ptr<const InstanceSnapshot> SnapshotTable::Publish(
    std::shared_ptr<InstanceSnapshot> snapshot) {
  Stripe& stripe = StripeOf(snapshot->id);
  std::lock_guard<SpinLock> lock(stripe.mu);
  auto& slot = stripe.entries[snapshot->id.value()];
  std::shared_ptr<const InstanceSnapshot> previous = std::move(slot);
  snapshot->version = (previous == nullptr ? 0 : previous->version) + 1;
  slot = std::move(snapshot);
  return previous;
}

std::shared_ptr<const InstanceSnapshot> SnapshotTable::Erase(InstanceId id) {
  Stripe& stripe = StripeOf(id);
  std::lock_guard<SpinLock> lock(stripe.mu);
  auto it = stripe.entries.find(id.value());
  if (it == stripe.entries.end()) return nullptr;
  std::shared_ptr<const InstanceSnapshot> previous = std::move(it->second);
  stripe.entries.erase(it);
  return previous;
}

void SnapshotTable::Collect(
    std::vector<std::shared_ptr<const InstanceSnapshot>>* out) const {
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<SpinLock> lock(stripe.mu);
    for (const auto& [_, snapshot] : stripe.entries) {
      out->push_back(snapshot);
    }
  }
}

}  // namespace adept
