#include "runtime/instance_snapshot.h"

#include <mutex>
#include <utility>
#include <vector>

namespace adept {

std::shared_ptr<const InstanceSnapshot> SnapshotTable::Get(
    InstanceId id) const {
  const Stripe& stripe = StripeOf(id);
  std::lock_guard<SpinLock> lock(stripe.mu);
  auto it = stripe.entries.find(id.value());
  return it == stripe.entries.end() ? nullptr : it->second;
}

void SnapshotTable::Publish(std::shared_ptr<InstanceSnapshot> snapshot) {
  Stripe& stripe = StripeOf(snapshot->id);
  std::lock_guard<SpinLock> lock(stripe.mu);
  auto& slot = stripe.entries[snapshot->id.value()];
  snapshot->version = (slot == nullptr ? 0 : slot->version) + 1;
  slot = std::move(snapshot);
}

void SnapshotTable::Erase(InstanceId id) {
  Stripe& stripe = StripeOf(id);
  std::lock_guard<SpinLock> lock(stripe.mu);
  stripe.entries.erase(id.value());
}

void SnapshotTable::Collect(
    std::vector<std::shared_ptr<const InstanceSnapshot>>* out) const {
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<SpinLock> lock(stripe.mu);
    for (const auto& [_, snapshot] : stripe.entries) {
      out->push_back(snapshot);
    }
  }
}

}  // namespace adept
