// Client-visible failover: a retrying submission facade over whatever
// cluster currently holds the primary role.
//
// The pieces:
//
//   PrimaryView      one routing observation: "this cluster object is the
//                    primary lineage, at this view version/epoch, and it
//                    started from this per-shard durable prefix".
//   PrimaryResolver  whoever tracks the current primary (in this repo the
//                    FailoverCoordinator; in a real deployment a config
//                    service). Re-resolved before every retry round.
//   ClusterClient    SubmitBatch with bounded retries + jittered backoff,
//                    and — the hard part — exactly-once reconciliation of
//                    writes whose fate a failover left ambiguous.
//
// The reconciliation contract (why BatchResult carries `lsn`/`shard`):
//
// A failed write lands in exactly one of two buckets, told apart by the
// status markers from repl/replication.h:
//
//   * definitely-not-applied — IsFenced / IsNoQuorum: the fail-fast gate
//     rejected the op before any mutation. Safe to re-issue verbatim
//     against the next resolved primary.
//   * maybe-applied — any other kUnavailable after submission (quorum
//     timeout, primary died mid-wait): the op mutated the primary's local
//     state and WAL but its quorum fate is unknown. Re-issuing blindly
//     would double-apply (a duplicate instance, a double-completed
//     activity). Instead the client keeps the op's (view, shard, lsn) and
//     settles it:
//       - same view still primary  -> re-wait WaitShardDurable(shard, lsn)
//         (the quorum may simply have healed);
//       - view changed (failover)  -> the op survived iff its LSN is within
//         the prefix that survived every intervening promotion:
//         lsn <= resolver->SurvivorWatermark(view, shard). Survived means
//         done (the promoted lineage replayed it); above the watermark
//         means the write died with the old primary — re-issue it.
//
//     Acked ops form an LSN prefix per shard, which is what makes the
//     single watermark comparison sound.
//
// Reads don't retry on degraded shards: Query() returns the snapshot view
// with QueryResult::degraded set, per the graceful-degradation contract.

#ifndef ADEPT_CLUSTER_CLUSTER_CLIENT_H_
#define ADEPT_CLUSTER_CLUSTER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/adept_cluster.h"
#include "common/status.h"

namespace adept {

// One observation of "who is primary right now". Snapshot semantics: the
// shared_ptr keeps the named cluster alive even if a failover retires it
// mid-use; `version` tells the client that what it holds is stale.
struct PrimaryView {
  // The cluster currently serving the primary role; null while no lineage
  // is serving (the window between a death and its promotion).
  std::shared_ptr<AdeptCluster> cluster;
  // Monotonic routing version; bumped by every promotion.
  uint64_t version = 0;
  // Replication failover epoch of this lineage (what fences the old one).
  uint64_t epoch = 0;
  // Per-shard durable LSN this lineage started from (all zero for the
  // founding primary). Writes of an older lineage at or below this point
  // survived into this one.
  std::vector<uint64_t> recovered_lsn;
};

// The routing authority the client re-resolves through. Implementations:
// FailoverCoordinator (in-process harness), or anything that can answer
// "who is primary" and "how much of lineage V survived".
class PrimaryResolver {
 public:
  virtual ~PrimaryResolver() = default;

  // Current routing observation. Must be cheap; called once per retry.
  virtual PrimaryView View() = 0;

  // Survival watermark for writes issued under view `version`, on `shard`:
  // the minimum recovered durable LSN across every promotion that happened
  // after `version`. An op with lsn <= watermark is durably part of the
  // current lineage; above it, the write was discarded by some failover.
  // UINT64_MAX when no promotion happened since `version` (same lineage:
  // nothing has been discarded).
  virtual uint64_t SurvivorWatermark(uint64_t version, size_t shard) = 0;
};

// Retry/backoff knobs. Deterministic: jitter comes from a seeded splitmix
// stream, so a chaos schedule replays identically.
struct RetryPolicy {
  // Total submission rounds per Submit() call (first try included).
  int max_attempts = 8;
  // Exponential backoff between rounds: min(cap, base << round) plus up to
  // 50% deterministic jitter.
  int base_backoff_ms = 20;
  int backoff_cap_ms = 500;
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

class ClusterClient {
 public:
  // Final fate of one submitted op.
  struct OpOutcome {
    Status status;
    InstanceId id;          // creates: the surviving instance id
    bool progressed = false;
    // Submission rounds this op took part in (1 = clean first try).
    int attempts = 0;
    // True when success was established by the durability watermark (the
    // op's first execution survived) rather than by a clean ack.
    bool reconciled = false;
    // The view version that yielded the final outcome.
    uint64_t view_version = 0;
  };

  ClusterClient(PrimaryResolver* resolver, RetryPolicy policy = {});

  // Submits `ops`, retrying around failovers per the header contract.
  // Results align with `ops`. A non-ok final status means: fail-fast
  // statuses were retried until attempts ran out; engine errors (kNotFound
  // etc.) are surfaced as-is without retry; a maybe-applied op that could
  // not be settled within the attempt budget keeps its ambiguous
  // kUnavailable status (the caller knows it is unresolved).
  std::vector<OpOutcome> Submit(const std::vector<AdeptCluster::BatchOp>& ops);

  // Convenience single-op wrappers over Submit().
  Result<InstanceId> Create(const std::string& type_name);
  Result<bool> DriveStep(InstanceId id);

  // Read path: resolves the current view and queries it. No quorum is
  // required to read — a degraded shard serves its published snapshots and
  // the result carries QueryResult::degraded = true. Retries only when no
  // primary is resolvable at all (mid-promotion window).
  Result<QueryResult> Query(const std::string& text);

  // Telemetry (bench/tests): completed submission rounds beyond the first,
  // and ops settled via the watermark instead of re-execution.
  uint64_t retry_rounds() const {
    return retry_rounds_.load(std::memory_order_relaxed);
  }
  uint64_t reconciled_ops() const {
    return reconciled_ops_.load(std::memory_order_relaxed);
  }

 private:
  // Backoff for `round` (0-based) with deterministic jitter.
  int BackoffMs(int round);
  uint64_t NextRand();

  PrimaryResolver* const resolver_;
  const RetryPolicy policy_;
  std::atomic<uint64_t> rng_state_;
  std::atomic<uint64_t> retry_rounds_{0};
  std::atomic<uint64_t> reconciled_ops_{0};
};

}  // namespace adept

#endif  // ADEPT_CLUSTER_CLUSTER_CLIENT_H_
