// AdeptCluster: N AdeptSystem shards behind the AdeptApi facade.
//
// The single-node AdeptSystem is single-threaded by design; this layer is
// where concurrency enters the codebase. Instances are partitioned across
// `shards` fully independent AdeptSystem instances:
//
//   * shard key        ShardOf(id) == (id - 1) % shards. The cluster
//                      allocates instance ids shard-affinely (shard k issues
//                      k+1, k+1+N, k+2N+1, ...), so the owning shard is a
//                      pure function of the id — no routing table, stable
//                      across recovery.
//   * creation         new instances are placed round-robin; all later
//                      lifecycle/worklist calls are routed to the owner.
//   * schema calls     DeployProcessType/EvolveProcessType/Migrate fan out
//                      to every shard under a global schema lock; since all
//                      shards see the identical call sequence, they allocate
//                      identical SchemaIds (divergence is detected and
//                      reported as kInternal).
//   * locking          one mutex per shard serializes that shard's engine
//                      turn; distinct shards execute in parallel. Reads
//                      (SnapshotOf/ReadInstance/ForEachSnapshot) take no
//                      shard mutex: they fetch immutable published
//                      snapshots through an epoch-checked routing view
//                      (see "Reading instances" in README.md).
//   * durability       each shard owns a WAL/snapshot pair derived from the
//                      configured base paths ("<path>.shard<k>"), written
//                      through a group-commit WalWriter with the configured
//                      SyncMode. Calls are *pipelined*: state mutates and
//                      the WAL record is enqueued under the shard lock, the
//                      durability wait happens after the lock is released —
//                      distinct shards overlap engine work with WAL I/O.
//                      Recover() rebuilds every shard and re-derives the
//                      per-shard id allocators.
//
// SubmitBatch() is the scale-out entry point: heterogeneous operations are
// grouped by owning shard and the groups execute in parallel on a small
// worker pool — one lock acquisition per shard per batch instead of one
// per operation.
//
// Observers registered via AddObserver() are invoked from worker threads
// (under the owning shard's lock) and must be thread-safe.

#ifndef ADEPT_CLUSTER_ADEPT_CLUSTER_H_
#define ADEPT_CLUSTER_ADEPT_CLUSTER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cluster/shard_routing.h"
#include "cluster/thread_pool.h"
#include "core/adept.h"
#include "core/adept_api.h"
#include "org/org_model.h"
#include "repl/replication.h"

namespace adept {

class WorklistService;

// Point-in-time replication health of the whole cluster: one PrimaryStatus
// per shard (see repl/replication.h). The surface the FailoverCoordinator
// polls, AV013 `replication-degraded` lints, and the chaos tests assert on.
struct ClusterReplicationStatus {
  bool attached = false;
  uint64_t epoch = 0;
  std::vector<PrimaryStatus> shards;

  // Any shard that cannot currently commit (fenced or below a live
  // quorum): reads still serve from published snapshots, flagged
  // `degraded` in QueryResult.
  bool degraded() const {
    for (const PrimaryStatus& shard : shards) {
      if (shard.fenced || !shard.quorum_live) return true;
    }
    return false;
  }

  JsonValue ToJson() const;
};

struct ClusterOptions {
  // Number of instance partitions (and worker threads, unless overridden).
  int shards = 4;
  // Per-shard AdeptSystem defaults (see AdeptOptions).
  StorageStrategy default_strategy = StorageStrategy::kOverlay;
  // Base durability paths; shard k appends ".shard<k>". Empty disables.
  std::string wal_path;
  std::string snapshot_path;
  // Durability level of each shard's group-commit WAL writer (see SyncMode
  // in storage/wal.h).
  SyncMode sync = SyncMode::kFlush;
  // Seed/policy of the shard-local drivers behind BatchOp::DriveStep (shard
  // k runs with seed `driver.seed + k`).
  DriverOptions driver;
  // Worker pool size; 0 sizes it to min(shards, hardware concurrency) —
  // more threads than cores only adds context switching, and the caller
  // thread already executes one shard group of every fan-out itself.
  int worker_threads = 0;
  // Maintain per-shard secondary query indexes (src/query/README.md);
  // when off, Query() falls back to full snapshot scans.
  bool query_indexes = true;
};

class AdeptCluster : public AdeptApi {
 public:
  // Fresh cluster (ignores existing per-shard WAL/snapshot files).
  static Result<std::unique_ptr<AdeptCluster>> Create(
      const ClusterOptions& options = {});

  // Rebuilds every shard from its snapshot + WAL tail. `options.shards`
  // may differ from the writing cluster: recovery probes the per-shard
  // files on disk and, when the counts differ, performs the same
  // redistribution as Resize() — surplus durable shards are drained as
  // donors and retired, missing shards are created fresh with the
  // replicated schema history, and every instance is moved to the shard
  // the new routing assigns it (crash-window duplicates are deduped back
  // to exactly one owner). kCorruption — naming the recovered and
  // requested counts and the repair action — only when the durable state
  // is damaged beyond redistribution.
  static Result<std::unique_ptr<AdeptCluster>> Recover(
      const ClusterOptions& options);

  AdeptCluster(const AdeptCluster&) = delete;
  AdeptCluster& operator=(const AdeptCluster&) = delete;
  ~AdeptCluster() override;

  // --- Partitioning ---------------------------------------------------------

  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(InstanceId id) const { return routing_.OwnerOf(id); }
  const ShardRouting& routing() const { return routing_; }

  // --- Elastic resizing ------------------------------------------------------

  // Repartitions the live cluster onto `new_shard_count` shards in place:
  // quiesces, creates (grow) or retires (shrink) per-shard ".shard<k>"
  // WAL/snapshot files, moves every instance the new routing places
  // elsewhere via the WAL-logged export/import handover (at every crash
  // point an instance is durable on at least one shard; recovery dedups
  // the import-durable/evict-lost window back to exactly one owner),
  // re-derives the shard-affine id allocators, and checkpoints the new
  // topology. Existing work items — including claimed ones — keep their
  // WorkItemId and owner: the worklist is keyed by instance id, which a
  // move never changes. The caller must exclude concurrent facade calls
  // for the duration (same contract as Recover); schema management is
  // blocked internally via the schema lock.
  Status Resize(int new_shard_count);

  // Direct shard access (tests, benchmarks, per-shard org/worklists). The
  // caller owns the synchronization story when mixing this with concurrent
  // cluster calls.
  AdeptSystem& shard(size_t index) { return *shards_[index]->system; }

  // Runs `fn` for every live instance, one shard at a time under that
  // shard's lock (the WithInstance discipline, extended to a full sweep).
  // Keep `fn` short: it blocks the visited shard. Prefer ForEachSnapshot
  // for monitoring/compliance sweeps that tolerate snapshot staleness.
  void ForEachInstance(
      const std::function<void(const ProcessInstance&)>& fn) const;

  // Lock-free sweep over the published snapshot of every instance (in
  // ascending instance-id order). Takes no shard lock: each instance is
  // seen at some published version, not one global point in time, and
  // `fn` may be arbitrarily slow. Implemented as a match-all Query —
  // prefer Query(predicate) when only a subset matters.
  void ForEachSnapshot(
      const std::function<void(const InstanceSnapshot&)>& fn) const;

  // Indexed predicate evaluation across every shard (the AdeptApi::Query
  // contract). The compiled predicate fans out over the atomic ReadView
  // under the same epoch-stable discipline as ForEachSnapshot, so the
  // merged result is duplicate-free across a concurrent Resize();
  // per-shard candidates come from that shard's secondary indexes.
  // kFailedPrecondition while the cluster is topology-poisoned.
  Result<QueryResult> Query(const std::string& query) const override;

  // --- Organization / worklist ----------------------------------------------

  // Cluster-level organizational model backing Worklist(). Not internally
  // synchronized: populate users/roles before serving concurrent traffic.
  // Durable: SaveSnapshot() persists it to "<wal_path>.org" and Recover()
  // restores it (before the worklist rebuild). When no org file exists —
  // the cluster never checkpointed — the historical contract applies:
  // repopulate after Recover() in the same call order for stable ids.
  OrgModel& org() { return org_; }
  const OrgModel& org() const { return org_; }

  // The cluster-wide concurrent worklist service. Subscribed to every
  // shard's instance events; claim/start transitions are journaled to
  // "<wal_path>.worklist" and rebuilt by Recover().
  WorklistService& Worklist() { return *worklist_; }

  // --- AdeptApi: schema management (fans out to every shard) ---------------

  Result<SchemaId> DeployProcessType(
      std::shared_ptr<const ProcessSchema> schema) override;
  Result<SchemaId> EvolveProcessType(SchemaId base, Delta delta) override;
  Result<SchemaId> LatestVersion(const std::string& type_name) const override;
  Result<std::shared_ptr<const ProcessSchema>> Schema(
      SchemaId id) const override;

  // --- AdeptApi: instance lifecycle (routed to the owning shard) ------------

  Result<InstanceId> CreateInstance(const std::string& type_name) override;
  Result<InstanceId> CreateInstanceOn(SchemaId schema) override;

  // Lock-free read path: resolves the owning shard through an immutable
  // routing view and fetches the instance's published snapshot without
  // taking the shard mutex — readers scale with the reader count and
  // never block behind CompleteActivity/Migrate on the same shard. The
  // lookup is epoch-checked against the routing (see ReadView below): a
  // miss observed while a Resize() is repartitioning retries until the
  // topology stabilizes, so a mid-move instance is never reported absent
  // and a retired donor shard's memory stays alive for in-flight readers.
  // Returns nullptr for an unknown id, or while the cluster is topology-
  // poisoned (ReadInstance surfaces the distinguishing error).
  std::shared_ptr<const InstanceSnapshot> SnapshotOf(
      InstanceId id) const override;
  Status ReadInstance(
      InstanceId id,
      const std::function<void(const InstanceSnapshot&)>& fn) const override;

  // Runs `fn` under the owning shard's lock, so the instance cannot be
  // mutated (or removed) while the callback reads it. Keep `fn` short: it
  // blocks every operation routed to that shard. Prefer ReadInstance
  // unless the callback needs live state a snapshot cannot give.
  Status WithInstance(
      InstanceId id,
      const std::function<void(const ProcessInstance&)>& fn) const override;

  Status StartActivity(InstanceId id, NodeId node) override;
  Status CompleteActivity(
      InstanceId id, NodeId node,
      const std::vector<ProcessInstance::DataWrite>& writes = {}) override;
  Status FailActivity(InstanceId id, NodeId node,
                      const std::string& reason) override;
  Status RetryActivity(InstanceId id, NodeId node) override;
  Status SuspendActivity(InstanceId id, NodeId node) override;
  Status ResumeActivity(InstanceId id, NodeId node) override;
  Status SelectBranch(InstanceId id, NodeId split, int branch_value) override;
  Status SetLoopDecision(InstanceId id, NodeId loop_end,
                         bool iterate) override;

  Result<bool> DriveStep(InstanceId id, SimulationDriver& driver) override;
  Status DriveToCompletion(InstanceId id, SimulationDriver& driver,
                           int max_steps = 100000) override;

  // --- AdeptApi: dynamic change ---------------------------------------------

  Status ApplyAdHocChange(InstanceId id, Delta delta) override;
  Result<MigrationReport> Migrate(
      SchemaId from, SchemaId to,
      const MigrationOptions& options = {}) override;
  Result<MigrationReport> MigrateToLatest(
      const std::string& type_name,
      const MigrationOptions& options = {}) override;

  // --- AdeptApi: durability --------------------------------------------------

  Status SaveSnapshot() override;

  // --- Replication (src/repl/README.md) --------------------------------------

  // Attaches one ReplicationPrimary per shard to that shard's WAL writer:
  // from here on, every commit wait means "durable on a quorum" — locally
  // per the configured SyncMode AND acked by at least options.quorum - 1
  // of the replica nodes in options.replicas (each of which serves every
  // shard on one port; see repl/replica_node.h). The failover epoch is
  // read from (or created at) "<wal_path>.replmeta"; promoting a replica
  // file set (PromoteReplicaFiles) bumps its epoch so stale lineages are
  // detected and snapshot-reset on rejoin. Requires configured WAL and
  // snapshot paths. Resize() is refused while replication is attached —
  // DetachReplication() first, resize both sides, re-attach.
  Status AttachReplication(const ReplicationOptions& options);

  // Detaches every shard's commit hook and stops the primaries (joining
  // their peer threads). In-flight quorum waits fail with kUnavailable.
  // Must not run concurrently with commit traffic. Idempotent; also runs
  // on destruction.
  void DetachReplication();

  // Failover epoch of the attached primaries; 0 when not attached.
  uint64_t replication_epoch() const { return replication_epoch_; }
  // Per-shard primary (introspection: connected_peers, quorum_acked_lsn);
  // nullptr when replication is not attached.
  ReplicationPrimary* shard_replication(size_t index) {
    return index < replication_.size() ? replication_[index].get() : nullptr;
  }

  // Snapshot of every shard's replication health (empty `shards` when
  // replication is not attached). Safe to call concurrently with commit
  // traffic; NOT concurrently with Attach/DetachReplication (same
  // quiescence contract as those calls).
  ClusterReplicationStatus ReplicationStatus() const;

  // Waits until `lsn` is durable on `shard_index` per the cluster's
  // durability contract — including the replication quorum when attached.
  // The client retry layer uses this to re-wait a maybe-applied write
  // (same routing generation) instead of re-issuing it.
  Status WaitShardDurable(size_t shard_index, uint64_t lsn);

  // --- Observers -------------------------------------------------------------

  // Subscribes to events of every shard. The observer is called from worker
  // threads (under the owning shard's lock) and must be thread-safe.
  void AddObserver(InstanceObserver* observer);

  // --- Batch execution -------------------------------------------------------

  struct BatchOp {
    enum class Kind {
      kCreate,       // type_name (or schema when valid)
      kStart,        // id, node
      kComplete,     // id, node, writes
      kFail,         // id, node, reason
      kSelectBranch, // id, node, branch_value
      kLoopDecision, // id, node, iterate
      kDriveStep,    // id; one synthetic step by the shard-local driver
      kAdHocChange,  // id, delta
    };

    Kind kind = Kind::kDriveStep;
    std::string type_name;
    SchemaId schema;
    InstanceId id;
    NodeId node;
    std::vector<ProcessInstance::DataWrite> writes;
    std::string reason;
    int branch_value = 0;
    bool iterate = false;
    std::shared_ptr<Delta> delta;  // shared_ptr: BatchOp stays copyable

    static BatchOp Create(std::string type_name);
    static BatchOp CreateOn(SchemaId schema);
    static BatchOp Start(InstanceId id, NodeId node);
    static BatchOp Complete(
        InstanceId id, NodeId node,
        std::vector<ProcessInstance::DataWrite> writes = {});
    static BatchOp Fail(InstanceId id, NodeId node, std::string reason);
    static BatchOp SelectBranch(InstanceId id, NodeId node, int branch_value);
    static BatchOp LoopDecision(InstanceId id, NodeId node, bool iterate);
    static BatchOp DriveStep(InstanceId id);
    static BatchOp AdHocChange(InstanceId id, Delta delta);
  };

  struct BatchResult {
    Status status;
    // kCreate: the new instance id. Others: the routed id.
    InstanceId id;
    // kDriveStep: whether the instance progressed.
    bool progressed = false;
    // The op's WAL position on its shard (0 when the op mutated nothing).
    // The failover-reconciliation key: per shard, acked ops form an LSN
    // prefix, so after a promotion "did this maybe-applied op survive?"
    // is exactly `lsn <= the promoted shard's recovered durable LSN`.
    uint64_t lsn = 0;
    // The op's owning shard under the routing that executed it.
    size_t shard = 0;
  };

  // Groups `ops` by owning shard (creates are placed round-robin first) and
  // executes the shard groups in parallel on the worker pool. Within one
  // shard, ops run in submission order; results align with `ops`. Failures
  // are per-op: one bad op does not stop the rest of its group.
  std::vector<BatchResult> SubmitBatch(const std::vector<BatchOp>& ops);

 protected:
  // The pointer is looked up under the owning shard's lock but read after
  // it is released (the bare-Instance() hazard); lock-free reads go
  // through SnapshotOf.
  const ProcessInstance* InstanceImpl(InstanceId id) const override;

 private:
  struct Shard {
    std::unique_ptr<AdeptSystem> system;
    // Serializes this shard's engine turn. Mutable: read-only facade calls
    // (Instance, LatestVersion, ...) also lock.
    mutable std::mutex mu;
    // Next shard-affine sequence number: id = seq * N + shard_index + 1.
    uint64_t next_seq = 0;
    // Drives BatchOp::DriveStep ops; only touched under `mu`.
    std::unique_ptr<SimulationDriver> driver;
  };

  // The readers' view of the topology: an immutable (routing, systems)
  // pair published by swapping one raw atomic pointer. A raw pointer — not
  // an atomic shared_ptr — keeps the per-read cost at one plain acquire
  // load: every published view lives until the cluster dies (old_views_),
  // and shards retired by a shrink are parked in retired_shards_ instead
  // of freed, so a reader still inside a stale view dereferences valid
  // memory. Both graveyards are bounded by the number of resizes, which
  // are rare and operator-driven. Paired with read_epoch_ — a
  // seqlock-style counter, odd while a resize is repartitioning — so a
  // miss during the unstable window retries instead of reporting a
  // mid-move instance as absent.
  struct ReadView {
    ShardRouting routing{1};
    std::vector<AdeptSystem*> systems;
  };

  explicit AdeptCluster(const ClusterOptions& options);

  // Shared scaffold of Create()/Recover(): builds shards via `make_system`
  // and sizes the worker pool.
  static Result<std::unique_ptr<AdeptCluster>> Build(
      const ClusterOptions& options,
      const std::function<Result<std::unique_ptr<AdeptSystem>>(
          const AdeptOptions&)>& make_system);

  static AdeptOptions ShardOptions(const ClusterOptions& options, int index);

  // Runs the tasks concurrently: all but the last go to the worker pool,
  // the last runs on the calling thread; returns when every task finished.
  void RunParallel(std::vector<std::function<void()>> tasks);

  // Routes a single-instance call: runs `fn(AdeptSystem&)` on the owning
  // shard under its lock, then waits for WAL durability *after* releasing
  // the lock so distinct shards overlap engine work with WAL I/O. `fn`
  // must return Status or Result<T>. Defined in the .cc (all
  // instantiations live there).
  template <typename Fn>
  auto RouteDurable(InstanceId id, Fn&& fn)
      -> decltype(fn(std::declval<AdeptSystem&>()));

  // Shared body of DeployProcessType/EvolveProcessType: fans `op` out to
  // every shard under schema_mu_, verifies the allocated SchemaIds agree,
  // then (locks released) waits for every shard's WAL durability. Any
  // divergence or durability failure poisons schema management.
  Result<SchemaId> FanOutSchemaOp(
      const char* what,
      const std::function<Result<SchemaId>(AdeptSystem&)>& op);

  InstanceId NextIdLocked(size_t shard_index);
  Result<InstanceId> CreateOnShard(size_t shard_index,
                                   const std::string& type_name,
                                   SchemaId schema);

  // Publishes the current (routing_, shards_) pair as the readers' view.
  void PublishReadView();
  // Body of SnapshotOf/ReadInstance: the epoch-checked snapshot lookup.
  // kNotFound when the id is absent under a stable topology;
  // kFailedPrecondition when the cluster is topology-poisoned.
  Result<std::shared_ptr<const InstanceSnapshot>> FindSnapshot(
      InstanceId id) const;

  // Body of Query/ForEachSnapshot: fans the compiled predicate out to
  // every shard of the read view, retrying until the routing epoch is
  // stable across the whole collection (or sweeping best-effort once
  // topology-poisoned), then sorts the merge by instance id.
  void CollectQueryMatches(const CompiledQuery& query,
                           QueryResult* result) const;

  // --- Resize machinery (quiescent; shared by Resize and Recover) -----------

  // Copies the schema history of the first shard that has one into every
  // shard whose repository is still empty (freshly created by a grow).
  Status ReplicateSchemasToFreshShards(
      const std::vector<std::shared_ptr<Shard>>& donors);
  // Moves every instance the current routing_ places elsewhere to its
  // owner: phase 1 imports at the destinations and waits until every
  // import is durable, phase 2 evicts at the sources — so a durable evict
  // always implies a durable import, and no crash point leaves an
  // instance on zero shards. Destination-side duplicates (a crash between
  // a durable import and its evict) are not re-imported, only evicted at
  // the source. `donors` are drained completely.
  Status MoveMisplacedInstances(
      const std::vector<std::shared_ptr<Shard>>* donors);
  // Recomputes every shard's next_seq under routing_; an instance still
  // misplaced after redistribution is damage and yields the named
  // resize error (`recovered_count` feeds the message).
  Status DeriveShardAllocators(size_t recovered_count);

  // kFailedPrecondition once a Resize() failed after it started moving
  // state: the in-memory topology may disagree with the routing, so every
  // routed call refuses instead of misrouting. Recover() (the durable
  // state stays consistent — moves are WAL-logged) is the repair.
  Status CheckTopology() const;

  // Fail-fast write gate: kUnavailable (FencedStatus / NoLiveQuorumStatus,
  // distinguishable via IsFenced/IsNoQuorum) when the shard's attached
  // primary is fenced or below a live quorum — BEFORE any mutation, so
  // the caller knows the op was definitely not applied. OK when
  // replication is not attached.
  Status CheckShardWritable(size_t shard_index) const;
  // Whether any attached shard cannot commit (sets QueryResult::degraded).
  bool ReplicationDegraded() const;

  // --- Org-model persistence -------------------------------------------------

  std::string OrgPath() const;
  Status PersistOrg();
  Status RestoreOrg();

  // Body of SaveSnapshot() with schema_mu_ already held (Resize
  // checkpoints while holding it): per-shard snapshots, org persistence,
  // claim-journal compaction.
  Status SaveSnapshotLocked();
  BatchResult ExecuteOpLocked(Shard& shard, size_t shard_index,
                              const BatchOp& op);
  size_t NextCreationShard() {
    return static_cast<size_t>(rr_.fetch_add(1, std::memory_order_relaxed) %
                               shards_.size());
  }

  // Shared scaffold of Create()/Recover(): opens (or rebuilds) the
  // worklist service and subscribes it to every shard.
  Status AttachWorklist(bool recover);
  // Shared tail of Migrate()/MigrateToLatest(): reconciles the worklist
  // with post-migration engine truth.
  void ResyncClusterWorklist();

  ClusterOptions options_;
  std::vector<std::shared_ptr<Shard>> shards_;
  // The placement invariant (owner == (id-1) % N); swapped by Resize.
  ShardRouting routing_{1};
  // Readers' topology view (see ReadView). The atomic points at the
  // current entry of old_views_; superseded views stay allocated for
  // readers still inside them.
  std::atomic<const ReadView*> read_view_{nullptr};
  std::vector<std::unique_ptr<const ReadView>> old_views_;
  // Shards removed by a shrink, parked (drained, files retired) so stale
  // views keep dereferencing valid systems; freed with the cluster.
  std::vector<std::shared_ptr<Shard>> retired_shards_;
  // Seqlock-style routing epoch: even = stable, odd = a Resize() is
  // repartitioning. Bumped around the routing swap so lock-free readers
  // can tell a genuine miss from a mid-move window.
  std::atomic<uint64_t> read_epoch_{0};
  OrgModel org_;
  std::unique_ptr<WorklistService> worklist_;
  // Per-shard replication primaries (empty when not attached). Detached
  // (hooks cleared, threads joined) before shards_ is destroyed.
  std::vector<std::unique_ptr<ReplicationPrimary>> replication_;
  uint64_t replication_epoch_ = 0;
  // Everything registered via AddObserver(), so shards created by a later
  // Resize() see the same observers as the original ones.
  std::vector<InstanceObserver*> observers_;
  // Serializes schema-management fan-outs so every shard sees the identical
  // deploy/evolve/migrate sequence (identical SchemaId allocation). Also
  // taken by cross-shard reads (LatestVersion/Schema) so they never observe
  // a half-applied fan-out.
  mutable std::mutex schema_mu_;
  // Set when a fan-out failed part-way (shards now disagree on schema
  // state); all further schema management is refused. Guarded by schema_mu_.
  bool schema_poisoned_ = false;
  // Set when a Resize() failed after the routing swap; see CheckTopology.
  std::atomic<bool> topology_poisoned_{false};
  std::atomic<uint64_t> rr_{0};
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace adept

#endif  // ADEPT_CLUSTER_ADEPT_CLUSTER_H_
