// ShardRouting: the single source of the cluster's placement invariant.
//
// The owning shard of an instance is a pure function of its id:
//
//   OwnerOf(id) == (id - 1) % shards
//
// and ids are allocated shard-affinely (shard k issues k+1, k+1+N,
// k+1+2N, ...), so no routing table exists and ownership is stable across
// process restarts. That invariant is load-bearing in every layer that
// touches instance ids — the cluster router, the id allocators, recovery's
// misplacement detection, the per-shard durability file naming, and the
// worklist's id-routed Start/Complete calls — which is why it lives behind
// this one object instead of being re-spelled as `(id - 1) % n` at every
// site. Elastic resizing (AdeptCluster::Resize, Recover with a different
// shard count) is nothing but swapping one ShardRouting for another and
// moving the instances the new function places elsewhere.

#ifndef ADEPT_CLUSTER_SHARD_ROUTING_H_
#define ADEPT_CLUSTER_SHARD_ROUTING_H_

#include <cstdint>
#include <string>

#include "common/ids.h"

namespace adept {

class ShardRouting {
 public:
  explicit ShardRouting(size_t shards) : shards_(shards == 0 ? 1 : shards) {}

  size_t shards() const { return shards_; }

  // Owning shard of `id` under this shard count.
  size_t OwnerOf(InstanceId id) const {
    return static_cast<size_t>((id.value() - 1) % shards_);
  }

  bool Owns(size_t shard, InstanceId id) const {
    return OwnerOf(id) == shard;
  }

  // The id shard `shard` issues for its local sequence number `seq`.
  InstanceId IdFor(size_t shard, uint64_t seq) const {
    return InstanceId(seq * shards_ + shard + 1);
  }

  // Inverse of IdFor for an id this routing places on OwnerOf(id).
  uint64_t SeqOf(InstanceId id) const {
    return (id.value() - 1 - OwnerOf(id)) / shards_;
  }

  // Per-shard durability file naming: shard k's WAL/snapshot live at
  // "<base>.shard<k>" (empty base stays empty — durability disabled).
  static std::string ShardSuffix(size_t shard) {
    return ".shard" + std::to_string(shard);
  }
  static std::string PathFor(const std::string& base, size_t shard) {
    return base.empty() ? base : base + ShardSuffix(shard);
  }

 private:
  size_t shards_;
};

}  // namespace adept

#endif  // ADEPT_CLUSTER_SHARD_ROUTING_H_
