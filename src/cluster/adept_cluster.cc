#include "cluster/adept_cluster.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <thread>
#include <utility>

#include "common/fs_util.h"
#include "common/string_util.h"
#include "worklist/worklist_service.h"

namespace adept {

// --- BatchOp factories -------------------------------------------------------

AdeptCluster::BatchOp AdeptCluster::BatchOp::Create(std::string type_name) {
  BatchOp op;
  op.kind = Kind::kCreate;
  op.type_name = std::move(type_name);
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::CreateOn(SchemaId schema) {
  BatchOp op;
  op.kind = Kind::kCreate;
  op.schema = schema;
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::Start(InstanceId id,
                                                   NodeId node) {
  BatchOp op;
  op.kind = Kind::kStart;
  op.id = id;
  op.node = node;
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::Complete(
    InstanceId id, NodeId node,
    std::vector<ProcessInstance::DataWrite> writes) {
  BatchOp op;
  op.kind = Kind::kComplete;
  op.id = id;
  op.node = node;
  op.writes = std::move(writes);
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::Fail(InstanceId id, NodeId node,
                                                  std::string reason) {
  BatchOp op;
  op.kind = Kind::kFail;
  op.id = id;
  op.node = node;
  op.reason = std::move(reason);
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::SelectBranch(InstanceId id,
                                                          NodeId node,
                                                          int branch_value) {
  BatchOp op;
  op.kind = Kind::kSelectBranch;
  op.id = id;
  op.node = node;
  op.branch_value = branch_value;
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::LoopDecision(InstanceId id,
                                                          NodeId node,
                                                          bool iterate) {
  BatchOp op;
  op.kind = Kind::kLoopDecision;
  op.id = id;
  op.node = node;
  op.iterate = iterate;
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::DriveStep(InstanceId id) {
  BatchOp op;
  op.kind = Kind::kDriveStep;
  op.id = id;
  return op;
}

AdeptCluster::BatchOp AdeptCluster::BatchOp::AdHocChange(InstanceId id,
                                                         Delta delta) {
  BatchOp op;
  op.kind = Kind::kAdHocChange;
  op.id = id;
  op.delta = std::make_shared<Delta>(std::move(delta));
  return op;
}

// --- Construction / recovery -------------------------------------------------

AdeptCluster::AdeptCluster(const ClusterOptions& options) : options_(options) {}

AdeptOptions AdeptCluster::ShardOptions(const ClusterOptions& options,
                                        int index) {
  AdeptOptions shard_options;
  shard_options.default_strategy = options.default_strategy;
  shard_options.sync = options.sync;
  // The cluster pipelines durability itself: records are enqueued under the
  // shard lock, the wait happens after the lock is released.
  shard_options.defer_wal_sync = true;
  shard_options.wal_path =
      ShardRouting::PathFor(options.wal_path, static_cast<size_t>(index));
  shard_options.snapshot_path =
      ShardRouting::PathFor(options.snapshot_path, static_cast<size_t>(index));
  shard_options.query_indexes = options.query_indexes;
  return shard_options;
}

namespace {

Result<std::unique_ptr<SimulationDriver>> MakeShardDriver(
    const ClusterOptions& options, int index) {
  DriverOptions driver_options = options.driver;
  driver_options.seed += static_cast<uint64_t>(index);
  return std::make_unique<SimulationDriver>(driver_options);
}

// True when shard `index` left durable state at the configured base paths.
bool ShardFilesExist(const ClusterOptions& options, size_t index) {
  const std::string wal = ShardRouting::PathFor(options.wal_path, index);
  const std::string snapshot =
      ShardRouting::PathFor(options.snapshot_path, index);
  return (!wal.empty() && std::filesystem::exists(wal)) ||
         (!snapshot.empty() && std::filesystem::exists(snapshot));
}

// Highest contiguous shard index with durable state, i.e. the shard count
// the durable cluster was last written with (0 when nothing is on disk).
size_t CountShardsOnDisk(const ClusterOptions& options) {
  if (options.wal_path.empty() && options.snapshot_path.empty()) return 0;
  size_t count = 0;
  while (ShardFilesExist(options, count)) ++count;
  return count;
}

// The resize error contract: name the recovered and requested counts and
// the repair action.
Status ResizeError(size_t recovered, size_t requested,
                   const std::string& detail) {
  return Status::Corruption(
      "cluster resize from " + std::to_string(recovered) +
      " recovered shard(s) to " + std::to_string(requested) +
      " requested shard(s) failed: " + detail +
      "; repair: recover with shards=" + std::to_string(recovered) +
      " (the recorded count), or restore the damaged per-shard files and "
      "retry the resize");
}

// Best-effort removal of a retired shard's durability files.
void RemoveShardFiles(const ClusterOptions& options, size_t index) {
  std::error_code ec;
  const std::string wal = ShardRouting::PathFor(options.wal_path, index);
  const std::string snapshot =
      ShardRouting::PathFor(options.snapshot_path, index);
  if (!wal.empty()) std::filesystem::remove(wal, ec);
  if (!snapshot.empty()) std::filesystem::remove(snapshot, ec);
}

}  // namespace

Result<std::unique_ptr<AdeptCluster>> AdeptCluster::Build(
    const ClusterOptions& options,
    const std::function<Result<std::unique_ptr<AdeptSystem>>(
        const AdeptOptions&)>& make_system) {
  if (options.shards < 1) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  std::unique_ptr<AdeptCluster> cluster(new AdeptCluster(options));
  cluster->routing_ = ShardRouting(static_cast<size_t>(options.shards));
  for (int i = 0; i < options.shards; ++i) {
    auto shard = std::make_shared<Shard>();
    ADEPT_ASSIGN_OR_RETURN(shard->system,
                           make_system(ShardOptions(options, i)));
    ADEPT_ASSIGN_OR_RETURN(shard->driver, MakeShardDriver(options, i));
    cluster->shards_.push_back(std::move(shard));
  }
  size_t threads =
      options.worker_threads > 0
          ? static_cast<size_t>(options.worker_threads)
          : std::min(static_cast<size_t>(options.shards),
                     static_cast<size_t>(
                         std::max(1u, std::thread::hardware_concurrency())));
  cluster->pool_ = std::make_unique<WorkerPool>(threads);
  cluster->PublishReadView();
  return cluster;
}

void AdeptCluster::RunParallel(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  BlockingCounter pending(tasks.size() - 1);
  for (size_t i = 0; i + 1 < tasks.size(); ++i) {
    pool_->Submit([&tasks, i, &pending] {
      tasks[i]();
      pending.DecrementCount();
    });
  }
  tasks.back()();
  pending.Wait();
}

Status AdeptCluster::AttachWorklist(bool recover) {
  WorklistServiceOptions worklist_options;
  if (!options_.wal_path.empty()) {
    worklist_options.journal_path = options_.wal_path + ".worklist";
  }
  worklist_options.sync = options_.sync;
  if (recover) {
    ADEPT_ASSIGN_OR_RETURN(
        worklist_,
        WorklistService::Recover(
            &org_, this, worklist_options,
            [this](const WorklistService::InstanceVisitor& visitor) {
              ForEachInstance(visitor);
            }));
  } else {
    ADEPT_ASSIGN_OR_RETURN(
        worklist_, WorklistService::Create(&org_, this, worklist_options));
  }
  for (auto& shard_ptr : shards_) {
    shard_ptr->system->AddObserver(worklist_.get());
  }
  return Status::OK();
}

Result<std::unique_ptr<AdeptCluster>> AdeptCluster::Create(
    const ClusterOptions& options) {
  ADEPT_ASSIGN_OR_RETURN(
      std::unique_ptr<AdeptCluster> cluster,
      Build(options, [](const AdeptOptions& shard_options) {
        return AdeptSystem::Create(shard_options);
      }));
  // A fresh cluster starts a fresh durable history at these paths. The
  // per-shard Create() calls reset shards 0..N-1, but a previous (larger)
  // cluster may have left ".shard<k>" files beyond the count and an org
  // file — Recover() probes for both and would resurrect the dead
  // cluster's state into this one.
  for (size_t k = cluster->shards_.size(); ShardFilesExist(options, k); ++k) {
    RemoveShardFiles(options, k);
  }
  if (!options.wal_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(options.wal_path + ".org", ec);
    if (ec) {
      return Status::Corruption("cannot discard stale org file '" +
                                options.wal_path + ".org': " + ec.message());
    }
  }
  ADEPT_RETURN_IF_ERROR(cluster->AttachWorklist(/*recover=*/false));
  return cluster;
}

Result<std::unique_ptr<AdeptCluster>> AdeptCluster::Recover(
    const ClusterOptions& options) {
  // The shard count the durable state was written with; differing from
  // options.shards is not corruption but a resize request.
  const size_t on_disk = CountShardsOnDisk(options);
  const size_t requested = static_cast<size_t>(std::max(options.shards, 1));
  const size_t recorded = on_disk == 0 ? requested : on_disk;

  auto built = Build(options, [](const AdeptOptions& shard_options) {
    return AdeptSystem::Recover(shard_options);
  });
  if (!built.ok()) {
    if (on_disk != 0 && on_disk != requested) {
      return ResizeError(recorded, requested, built.status().ToString());
    }
    return built.status();
  }
  std::unique_ptr<AdeptCluster> cluster = std::move(*built);

  // Shrink: durable shards beyond the requested count become donors —
  // recovered in full, drained below, retired afterwards.
  std::vector<std::shared_ptr<Shard>> donors;
  for (size_t k = requested; k < on_disk; ++k) {
    auto donor = std::make_shared<Shard>();
    auto system = AdeptSystem::Recover(ShardOptions(options, k));
    if (!system.ok()) {
      return ResizeError(recorded, requested,
                         "donor shard " + std::to_string(k) +
                             " did not recover: " + system.status().ToString());
    }
    donor->system = std::move(*system);
    donors.push_back(std::move(donor));
  }

  // Grow: freshly created shards start with an empty schema repository;
  // replicate the cluster's schema history before instances arrive.
  ADEPT_RETURN_IF_ERROR(cluster->ReplicateSchemasToFreshShards(donors));

  // Redistribute every instance the requested routing places elsewhere
  // (crash-window duplicates are deduped back to exactly one owner).
  Status moved = cluster->MoveMisplacedInstances(&donors);
  if (!moved.ok()) {
    return ResizeError(recorded, requested, moved.ToString());
  }

  if (on_disk != 0 && on_disk != requested) {
    // The topology changed: checkpoint it (when snapshots are configured)
    // so the donors' durable copies become redundant, then retire the
    // donor files. Without snapshots the WAL-logged moves already carry
    // the new placement.
    if (!options.snapshot_path.empty()) {
      for (auto& shard_ptr : cluster->shards_) {
        ADEPT_RETURN_IF_ERROR(shard_ptr->system->SaveSnapshot());
      }
    }
    for (size_t k = requested; k < on_disk; ++k) {
      donors[k - requested].reset();  // joins the WAL writer, closes files
      RemoveShardFiles(options, k);
    }
  }

  // Re-derive the shard-affine id allocators; an id still on the wrong
  // shard after redistribution is damage, not a resize.
  ADEPT_RETURN_IF_ERROR(cluster->DeriveShardAllocators(recorded));

  // Restore the durable org model (if the cluster ever checkpointed one)
  // before the worklist rebuild; without an org file the historical
  // contract applies — the application repopulates users/roles after
  // Recover() in the same call order.
  ADEPT_RETURN_IF_ERROR(cluster->RestoreOrg());

  // Rebuild open work items: offers from recovered instance state, claims
  // from the worklist journal (both keyed by instance id — placement
  // changes above do not disturb them).
  ADEPT_RETURN_IF_ERROR(cluster->AttachWorklist(/*recover=*/true));
  return cluster;
}

Status AdeptCluster::ReplicateSchemasToFreshShards(
    const std::vector<std::shared_ptr<Shard>>& donors) {
  AdeptSystem* reference = nullptr;
  for (auto& shard_ptr : shards_) {
    if (shard_ptr->system->repository().size() > 0) {
      reference = shard_ptr->system.get();
      break;
    }
  }
  for (size_t i = 0; reference == nullptr && i < donors.size(); ++i) {
    if (donors[i]->system->repository().size() > 0) {
      reference = donors[i]->system.get();
    }
  }
  if (reference == nullptr) return Status::OK();  // nothing ever deployed
  const JsonValue repo = reference->repository().ToJson();
  for (auto& shard_ptr : shards_) {
    AdeptSystem& system = *shard_ptr->system;
    if (system.repository().size() > 0) continue;
    ADEPT_RETURN_IF_ERROR(system.ReplicateSchemas(repo));
    ADEPT_RETURN_IF_ERROR(system.WaitWalDurable(system.last_enqueued_lsn()));
  }
  return Status::OK();
}

Status AdeptCluster::MoveMisplacedInstances(
    const std::vector<std::shared_ptr<Shard>>* donors) {
  struct Move {
    AdeptSystem* src;
    AdeptSystem* dst;
    InstanceId id;
  };
  std::vector<Move> moves;
  auto collect = [&](AdeptSystem& system, bool placed, size_t index) {
    for (InstanceId id : system.engine().InstanceIds()) {
      size_t owner = routing_.OwnerOf(id);
      if (placed && owner == index) continue;
      moves.push_back({&system, shards_[owner]->system.get(), id});
    }
  };
  for (size_t j = 0; j < shards_.size(); ++j) {
    // During a shrink, shards_ still holds indexes beyond the new count;
    // everything there is misplaced by construction.
    collect(*shards_[j]->system, j < routing_.shards(), j);
  }
  if (donors != nullptr) {
    for (const auto& donor : *donors) {
      collect(*donor->system, /*placed=*/false, 0);
    }
  }
  if (moves.empty()) return Status::OK();

  // Phase 1: import at the destinations, then make every destination
  // durable. A destination that already holds the id is the crash window
  // between a durable import and its evict — the copies are identical
  // (moves only run quiesced), so keep the destination's and fall through
  // to the evict.
  std::set<AdeptSystem*> dirty;
  for (const Move& move : moves) {
    if (move.dst->engine().Find(move.id) != nullptr) continue;
    ADEPT_ASSIGN_OR_RETURN(JsonValue exported,
                           move.src->ExportInstance(move.id));
    ADEPT_RETURN_IF_ERROR(move.dst->ImportInstance(exported));
    dirty.insert(move.dst);
  }
  for (AdeptSystem* system : dirty) {
    ADEPT_RETURN_IF_ERROR(
        system->WaitWalDurable(system->last_enqueued_lsn()));
  }
  dirty.clear();

  // Phase 2: evict at the sources — enqueued only after every import is
  // durable, so a durable evict always implies a durable import and no
  // crash point leaves an instance on zero shards.
  for (const Move& move : moves) {
    ADEPT_RETURN_IF_ERROR(move.src->EvictInstance(move.id));
    dirty.insert(move.src);
  }
  for (AdeptSystem* system : dirty) {
    ADEPT_RETURN_IF_ERROR(
        system->WaitWalDurable(system->last_enqueued_lsn()));
  }
  return Status::OK();
}

Status AdeptCluster::DeriveShardAllocators(size_t recovered_count) {
  for (auto& shard_ptr : shards_) shard_ptr->next_seq = 0;
  for (size_t j = 0; j < shards_.size(); ++j) {
    Shard& shard = *shards_[j];
    for (InstanceId id : shard.system->engine().InstanceIds()) {
      if (!routing_.Owns(j, id)) {
        return ResizeError(
            recovered_count, routing_.shards(),
            "instance " + std::to_string(id.value()) +
                " still lands on shard " + std::to_string(j) +
                " after redistribution (mid-move WAL damage?)");
      }
      shard.next_seq = std::max(shard.next_seq, routing_.SeqOf(id) + 1);
    }
  }
  return Status::OK();
}

AdeptCluster::~AdeptCluster() { DetachReplication(); }

// --- Schema management (fan-out) ---------------------------------------------

namespace {

Status SchemaPoisoned() {
  return Status::FailedPrecondition(
      "a previous schema fan-out failed part-way; shards disagree on schema "
      "state — rebuild the cluster (Recover) before further schema changes");
}

}  // namespace

Status AdeptCluster::CheckTopology() const {
  if (topology_poisoned_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "a cluster resize failed part-way; the in-memory topology is "
        "inconsistent — rebuild the cluster from durable state (Recover) "
        "before further calls");
  }
  return Status::OK();
}

Result<SchemaId> AdeptCluster::FanOutSchemaOp(
    const char* what,
    const std::function<Result<SchemaId>(AdeptSystem&)>& op) {
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  if (schema_poisoned_) return SchemaPoisoned();
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  SchemaId canonical;
  std::vector<uint64_t> lsns(shards_.size(), 0);
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto result = op(*shard.system);
    lsns[i] = shard.system->last_enqueued_lsn();
    if (i == 0) {
      // Verification failures surface here, before any shard is touched.
      if (!result.ok()) return result.status();
      canonical = *result;
    } else if (!result.ok() || *result != canonical) {
      schema_poisoned_ = true;
      return Status::Internal(std::string("schema ") + what +
                              " diverged on shard " + std::to_string(i) +
                              "; schema management is now disabled");
    }
  }
  // All shard locks are released; the per-shard writers flush in parallel.
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status durable = shards_[i]->system->WaitWalDurable(lsns[i]);
    if (!durable.ok()) {
      // Every shard applied the change in memory but shard i's log durably
      // lacks the record: after a crash the shards disagree, the same
      // hazard as a diverged fan-out — refuse further schema management.
      schema_poisoned_ = true;
      return durable;
    }
  }
  return canonical;
}

Result<SchemaId> AdeptCluster::DeployProcessType(
    std::shared_ptr<const ProcessSchema> schema) {
  return FanOutSchemaOp("deploy", [&](AdeptSystem& system) {
    return system.DeployProcessType(schema);
  });
}

Result<SchemaId> AdeptCluster::EvolveProcessType(SchemaId base, Delta delta) {
  return FanOutSchemaOp("evolution", [&](AdeptSystem& system) {
    return system.EvolveProcessType(base, delta.Clone());
  });
}

Result<SchemaId> AdeptCluster::LatestVersion(
    const std::string& type_name) const {
  // schema_mu_ keeps the read from observing a half-applied fan-out (shard 0
  // already evolved, later shards not yet).
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  const Shard& shard = *shards_[0];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.system->LatestVersion(type_name);
}

Result<std::shared_ptr<const ProcessSchema>> AdeptCluster::Schema(
    SchemaId id) const {
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  const Shard& shard = *shards_[0];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.system->Schema(id);
}

// --- Instance lifecycle (routed) ---------------------------------------------

InstanceId AdeptCluster::NextIdLocked(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  return routing_.IdFor(shard_index, shard.next_seq++);
}

Result<InstanceId> AdeptCluster::CreateOnShard(size_t shard_index,
                                               const std::string& type_name,
                                               SchemaId schema) {
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  ADEPT_RETURN_IF_ERROR(CheckShardWritable(shard_index));
  Shard& shard = *shards_[shard_index];
  uint64_t lsn = 0;
  Result<InstanceId> created = [&]() -> Result<InstanceId> {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!schema.valid()) {
      ADEPT_ASSIGN_OR_RETURN(schema, shard.system->LatestVersion(type_name));
    }
    auto result =
        shard.system->CreateInstanceWithId(schema, NextIdLocked(shard_index));
    lsn = shard.system->last_enqueued_lsn();
    return result;
  }();
  if (!created.ok()) return created;
  ADEPT_RETURN_IF_ERROR(shard.system->WaitWalDurable(lsn));
  return created;
}

Result<InstanceId> AdeptCluster::CreateInstance(const std::string& type_name) {
  return CreateOnShard(NextCreationShard(), type_name, SchemaId::Invalid());
}

Result<InstanceId> AdeptCluster::CreateInstanceOn(SchemaId schema) {
  return CreateOnShard(NextCreationShard(), std::string(), schema);
}

const ProcessInstance* AdeptCluster::InstanceImpl(InstanceId id) const {
  if (!id.valid()) return nullptr;
  const Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.system->engine().Find(id);
}

Status AdeptCluster::WithInstance(
    InstanceId id,
    const std::function<void(const ProcessInstance&)>& fn) const {
  if (!id.valid()) return Status::NotFound("invalid instance id");
  const Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const ProcessInstance* instance = shard.system->engine().Find(id);
  if (instance == nullptr) return Status::NotFound("no such instance");
  fn(*instance);
  return Status::OK();
}

void AdeptCluster::ForEachInstance(
    const std::function<void(const ProcessInstance&)>& fn) const {
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (InstanceId id : shard.system->engine().InstanceIds()) {
      const ProcessInstance* instance = shard.system->engine().Find(id);
      if (instance != nullptr) fn(*instance);
    }
  }
}

// --- Lock-free read path -----------------------------------------------------

void AdeptCluster::PublishReadView() {
  auto view = std::make_unique<ReadView>();
  view->routing = routing_;
  view->systems.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    view->systems.push_back(shard_ptr->system.get());
  }
  old_views_.push_back(std::move(view));
  read_view_.store(old_views_.back().get(), std::memory_order_release);
}

Result<std::shared_ptr<const InstanceSnapshot>> AdeptCluster::FindSnapshot(
    InstanceId id) const {
  if (!id.valid()) return Status::NotFound("invalid instance id");
  for (;;) {
    // Poison beats retry: a failed resize leaves the epoch odd forever.
    ADEPT_RETURN_IF_ERROR(CheckTopology());
    const uint64_t before = read_epoch_.load(std::memory_order_acquire);
    const ReadView* view = read_view_.load(std::memory_order_acquire);
    std::shared_ptr<const InstanceSnapshot> snapshot =
        view->systems[view->routing.OwnerOf(id)]->SnapshotOf(id);
    // A hit is always safe to return: the snapshot is immutable and was
    // live on its shard at lookup time (at worst it is a bounded-stale
    // pre-move version of an instance that just migrated).
    if (snapshot != nullptr) return snapshot;
    const uint64_t after = read_epoch_.load(std::memory_order_acquire);
    if (before == after && (before & 1) == 0) {
      // Stable topology across the whole lookup: the id is genuinely
      // absent (never created, or evicted by a completed shrink).
      return Status::NotFound("no such instance");
    }
    // A Resize() is repartitioning (or just finished): the instance may
    // sit in the evicted-at-source / published-at-destination window.
    // Retry against the settling view; resizes are rare and bounded.
    std::this_thread::yield();
  }
}

std::shared_ptr<const InstanceSnapshot> AdeptCluster::SnapshotOf(
    InstanceId id) const {
  auto found = FindSnapshot(id);
  return found.ok() ? *found : nullptr;
}

Status AdeptCluster::ReadInstance(
    InstanceId id,
    const std::function<void(const InstanceSnapshot&)>& fn) const {
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const InstanceSnapshot> snapshot,
                         FindSnapshot(id));
  fn(*snapshot);
  return Status::OK();
}

void AdeptCluster::CollectQueryMatches(const CompiledQuery& query,
                                       QueryResult* result) const {
  // The same seqlock discipline as FindSnapshot, extended to a sweep: a
  // resize concurrent with a naive sweep could hide an instance entirely
  // (imported to a shard outside the stale view, then evicted at the
  // source before the sweep arrives) or match its pre- and post-move
  // copies twice. Collect per-shard matches first, accept the batch only
  // after the epoch proved stable across the whole collection — within
  // one stable epoch every instance lives on exactly one shard, so the
  // merge is duplicate-free. Index candidacy is per shard; every hit was
  // re-validated against its shard's current published snapshot.
  for (;;) {
    const bool poisoned = !CheckTopology().ok();
    const uint64_t before = read_epoch_.load(std::memory_order_acquire);
    if (!poisoned && (before & 1) != 0) {
      std::this_thread::yield();  // resize in flight; the view is settling
      continue;
    }
    result->snapshots.clear();
    result->used_index = false;
    result->evaluated = 0;
    const ReadView* view = read_view_.load(std::memory_order_acquire);
    for (AdeptSystem* system : view->systems) {
      system->CollectQueryMatches(query, result);
    }
    const uint64_t after = read_epoch_.load(std::memory_order_acquire);
    // After a failed resize the epoch never stabilizes; sweep the last
    // published view best-effort instead of spinning forever.
    if (poisoned || before == after) break;
  }
  SortQueryResult(result);
}

Result<QueryResult> AdeptCluster::Query(const std::string& query) const {
  ADEPT_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompiledQuery::Compile(query));
  // Surface poisoning as the distinguishing error (like ReadInstance)
  // rather than a silently partial sweep.
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  QueryResult result;
  CollectQueryMatches(compiled, &result);
  // Graceful degradation: snapshots keep serving while a shard lacks its
  // quorum, but the caller is told the data may trail the failed writes.
  result.degraded = ReplicationDegraded();
  return result;
}

void AdeptCluster::ForEachSnapshot(
    const std::function<void(const InstanceSnapshot&)>& fn) const {
  // A match-all query: the sweep is just the degenerate case of the query
  // fan-out (one consolidated epoch-stable read path instead of two).
  QueryResult batch;
  CollectQueryMatches(CompiledQuery::MatchAll(), &batch);
  for (const auto& snapshot : batch) {
    fn(*snapshot);
  }
}

// Pipelined routing: the engine turn and the WAL enqueue happen under the
// shard lock, the durability wait after it — a thread working shard A waits
// for A's writer while a thread on shard B is already inside B's engine.
template <typename Fn>
auto AdeptCluster::RouteDurable(InstanceId id, Fn&& fn)
    -> decltype(fn(std::declval<AdeptSystem&>())) {
  Status topology = CheckTopology();
  if (!topology.ok()) return topology;
  const size_t shard_index = ShardOf(id);
  // Fenced / no-live-quorum shards refuse BEFORE mutating: the caller can
  // safely re-issue elsewhere, which a mid-flight quorum timeout (maybe-
  // applied) never allows.
  Status writable = CheckShardWritable(shard_index);
  if (!writable.ok()) return writable;
  Shard& shard = *shards_[shard_index];
  uint64_t lsn = 0;
  auto result = [&] {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto inner = fn(*shard.system);
    lsn = shard.system->last_enqueued_lsn();
    return inner;
  }();
  if (!result.ok()) return result;
  Status durable = shard.system->WaitWalDurable(lsn);
  if (!durable.ok()) return durable;
  return result;
}

Status AdeptCluster::StartActivity(InstanceId id, NodeId node) {
  return RouteDurable(
      id, [&](AdeptSystem& system) { return system.StartActivity(id, node); });
}

Status AdeptCluster::CompleteActivity(
    InstanceId id, NodeId node,
    const std::vector<ProcessInstance::DataWrite>& writes) {
  return RouteDurable(id, [&](AdeptSystem& system) {
    return system.CompleteActivity(id, node, writes);
  });
}

Status AdeptCluster::FailActivity(InstanceId id, NodeId node,
                                  const std::string& reason) {
  return RouteDurable(id, [&](AdeptSystem& system) {
    return system.FailActivity(id, node, reason);
  });
}

Status AdeptCluster::RetryActivity(InstanceId id, NodeId node) {
  return RouteDurable(
      id, [&](AdeptSystem& system) { return system.RetryActivity(id, node); });
}

Status AdeptCluster::SuspendActivity(InstanceId id, NodeId node) {
  return RouteDurable(id, [&](AdeptSystem& system) {
    return system.SuspendActivity(id, node);
  });
}

Status AdeptCluster::ResumeActivity(InstanceId id, NodeId node) {
  return RouteDurable(
      id, [&](AdeptSystem& system) { return system.ResumeActivity(id, node); });
}

Status AdeptCluster::SelectBranch(InstanceId id, NodeId split,
                                  int branch_value) {
  return RouteDurable(id, [&](AdeptSystem& system) {
    return system.SelectBranch(id, split, branch_value);
  });
}

Status AdeptCluster::SetLoopDecision(InstanceId id, NodeId loop_end,
                                     bool iterate) {
  return RouteDurable(id, [&](AdeptSystem& system) {
    return system.SetLoopDecision(id, loop_end, iterate);
  });
}

Result<bool> AdeptCluster::DriveStep(InstanceId id, SimulationDriver& driver) {
  return RouteDurable(
      id, [&](AdeptSystem& system) { return system.DriveStep(id, driver); });
}

Status AdeptCluster::DriveToCompletion(InstanceId id, SimulationDriver& driver,
                                       int max_steps) {
  return RouteDurable(id, [&](AdeptSystem& system) {
    return system.DriveToCompletion(id, driver, max_steps);
  });
}

Status AdeptCluster::ApplyAdHocChange(InstanceId id, Delta delta) {
  return RouteDurable(
      id, [&, delta = std::move(delta)](AdeptSystem& system) mutable {
        return system.ApplyAdHocChange(id, std::move(delta));
      });
}

// --- Dynamic change (fan-out) ------------------------------------------------

namespace {

// A failed shard turns the whole call into an error, but the message names
// the failed shards and how many instances the successful ones already
// migrated — that migration work is committed (and WAL-logged) per shard.
Result<MigrationReport> MergeReports(
    std::vector<Result<MigrationReport>>& reports) {
  std::string failures;
  size_t migrated_elsewhere = 0;
  for (size_t i = 0; i < reports.size(); ++i) {
    if (reports[i].ok()) {
      migrated_elsewhere += reports[i]->MigratedTotal();
      continue;
    }
    if (!failures.empty()) failures += "; ";
    failures += "shard " + std::to_string(i) + ": " +
                reports[i].status().ToString();
  }
  if (!failures.empty()) {
    return Status::Internal(
        "migration failed on " + failures + " (other shards committed " +
        std::to_string(migrated_elsewhere) + " migrated instances)");
  }
  MigrationReport merged;
  bool first = true;
  for (auto& report : reports) {
    if (first) {
      merged = std::move(*report);
      first = false;
      continue;
    }
    for (auto& result : report->results) {
      merged.results.push_back(std::move(result));
    }
  }
  return merged;
}

}  // namespace

Result<MigrationReport> AdeptCluster::Migrate(SchemaId from, SchemaId to,
                                              const MigrationOptions& options) {
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  std::vector<Result<MigrationReport>> reports(
      shards_.size(), Result<MigrationReport>(Status::Internal("not run")));
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < shards_.size(); ++i) {
    tasks.push_back([this, i, from, to, &options, &reports] {
      Shard& shard = *shards_[i];
      uint64_t lsn = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        reports[i] = shard.system->Migrate(from, to, options);
        lsn = shard.system->last_enqueued_lsn();
      }
      // Each task awaits its own shard's writer with the lock released.
      if (reports[i].ok()) {
        Status durable = shard.system->WaitWalDurable(lsn);
        if (!durable.ok()) reports[i] = durable;
      }
    });
  }
  RunParallel(std::move(tasks));
  auto merged = MergeReports(reports);
  // Resync even when a shard failed: the successful shards' migrations
  // are committed, so their stale items must still be retracted.
  if (!options.dry_run) ResyncClusterWorklist();
  return merged;
}

Result<MigrationReport> AdeptCluster::MigrateToLatest(
    const std::string& type_name, const MigrationOptions& options) {
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  std::vector<Result<MigrationReport>> reports(
      shards_.size(), Result<MigrationReport>(Status::Internal("not run")));
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < shards_.size(); ++i) {
    tasks.push_back([this, i, &type_name, &options, &reports] {
      Shard& shard = *shards_[i];
      uint64_t lsn = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        reports[i] = shard.system->MigrateToLatest(type_name, options);
        lsn = shard.system->last_enqueued_lsn();
      }
      if (reports[i].ok()) {
        Status durable = shard.system->WaitWalDurable(lsn);
        if (!durable.ok()) reports[i] = durable;
      }
    });
  }
  RunParallel(std::move(tasks));
  auto merged = MergeReports(reports);
  // Resync even when a shard failed: the successful shards' migrations
  // are committed, so their stale items must still be retracted.
  if (!options.dry_run) ResyncClusterWorklist();
  return merged;
}

// Per-shard resyncs already ran inside AdeptSystem::Migrate; this one
// reconciles the *cluster* worklist (revoke items whose node vanished in
// the remap, offer what the demotion events could not announce).
void AdeptCluster::ResyncClusterWorklist() {
  worklist_->ResyncAfterMigration(
      [this](const WorklistService::InstanceVisitor& visitor) {
        ForEachInstance(visitor);
      });
}

// --- Durability / observers --------------------------------------------------

Status AdeptCluster::SaveSnapshot() {
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  return SaveSnapshotLocked();
}

Status AdeptCluster::SaveSnapshotLocked() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    ADEPT_RETURN_IF_ERROR(shard.system->SaveSnapshot());
  }
  // The checkpoint also persists the org model and rewrites the claim
  // journal as one record per live claim — both keep Recover() exact
  // while bounding the cluster's durable footprint at O(live state).
  ADEPT_RETURN_IF_ERROR(PersistOrg());
  return worklist_->CompactJournal();
}

// --- Replication -------------------------------------------------------------

Status AdeptCluster::AttachReplication(const ReplicationOptions& options) {
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  if (!replication_.empty()) {
    return Status::FailedPrecondition(
        "replication is already attached; DetachReplication() first");
  }
  if (options_.wal_path.empty() || options_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "replication needs configured WAL and snapshot paths");
  }
  ADEPT_ASSIGN_OR_RETURN(uint64_t epoch,
                         ReadReplicationEpoch(options_.wal_path));

  std::vector<std::unique_ptr<ReplicationPrimary>> primaries;
  for (size_t k = 0; k < shards_.size(); ++k) {
    std::shared_ptr<Shard> shard_ptr = shards_[k];
    WalWriter* writer = shard_ptr->system->wal_writer();
    if (writer == nullptr) {
      return Status::Internal("shard " + std::to_string(k) +
                              " has no WAL writer to replicate");
    }
    ReplicationSource source;
    source.shard = k;
    source.wal_path = ShardRouting::PathFor(options_.wal_path, k);
    source.snapshot_path = ShardRouting::PathFor(options_.snapshot_path, k);
    // The snapshot-transfer path checkpoints the shard so the blob it
    // ships is fresh; the shard lock mirrors SaveSnapshotLocked().
    source.checkpoint = [shard_ptr]() -> Status {
      std::lock_guard<std::mutex> lock(shard_ptr->mu);
      return shard_ptr->system->SaveSnapshot();
    };
    source.epoch = epoch;
    source.start_lsn = writer->durable_lsn();
    ADEPT_ASSIGN_OR_RETURN(auto primary,
                           ReplicationPrimary::Start(source, options));
    primaries.push_back(std::move(primary));
  }

  // All primaries came up — only now arm the commit hooks, so a partial
  // failure above leaves commits purely local.
  for (size_t k = 0; k < shards_.size(); ++k) {
    shards_[k]->system->wal_writer()->SetCommitHook(primaries[k].get());
  }
  replication_ = std::move(primaries);
  replication_epoch_ = epoch;
  return Status::OK();
}

void AdeptCluster::DetachReplication() {
  if (replication_.empty()) return;
  // Disarm the hooks first so no commit can reach a stopping primary.
  for (auto& shard_ptr : shards_) {
    WalWriter* writer = shard_ptr->system->wal_writer();
    if (writer != nullptr) writer->SetCommitHook(nullptr);
  }
  for (auto& primary : replication_) primary->Stop();
  replication_.clear();
  replication_epoch_ = 0;
}

Status AdeptCluster::CheckShardWritable(size_t shard_index) const {
  if (shard_index >= replication_.size()) return Status::OK();
  const ReplicationPrimary* primary = replication_[shard_index].get();
  if (primary == nullptr) return Status::OK();
  return primary->CheckWritable();
}

bool AdeptCluster::ReplicationDegraded() const {
  for (const auto& primary : replication_) {
    if (primary != nullptr && !primary->HasLiveQuorum()) return true;
  }
  return false;
}

ClusterReplicationStatus AdeptCluster::ReplicationStatus() const {
  ClusterReplicationStatus status;
  status.attached = !replication_.empty();
  status.epoch = replication_epoch_;
  for (const auto& primary : replication_) {
    if (primary != nullptr) status.shards.push_back(primary->GetStatus());
  }
  return status;
}

Status AdeptCluster::WaitShardDurable(size_t shard_index, uint64_t lsn) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument(
        StrFormat("no shard %zu in a %zu-shard cluster", shard_index,
                  shards_.size()));
  }
  return shards_[shard_index]->system->WaitWalDurable(lsn);
}

JsonValue ClusterReplicationStatus::ToJson() const {
  JsonValue shard_list = JsonValue::MakeArray();
  for (const PrimaryStatus& shard : shards) {
    shard_list.Append(shard.ToJson());
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("attached", JsonValue(attached));
  j.Set("epoch", JsonValue(epoch));
  j.Set("degraded", JsonValue(degraded()));
  j.Set("shards", std::move(shard_list));
  return j;
}

std::string AdeptCluster::OrgPath() const {
  return options_.wal_path.empty() ? std::string()
                                   : options_.wal_path + ".org";
}

Status AdeptCluster::PersistOrg() {
  const std::string path = OrgPath();
  if (path.empty()) return Status::OK();
  return WriteFileAtomic(path, org_.ToJson().Dump());
}

Status AdeptCluster::RestoreOrg() {
  const std::string path = OrgPath();
  if (path.empty() || !std::filesystem::exists(path)) return Status::OK();
  Status st = [&]() -> Status {
    ADEPT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    ADEPT_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(content));
    return org_.LoadFromJson(json);
  }();
  if (!st.ok()) {
    return Status::Corruption(
        "cannot restore the org model from '" + path + "': " + st.ToString() +
        "; repair: restore the file, or remove it to fall back to "
        "repopulating the org after Recover()");
  }
  return st;
}

void AdeptCluster::AddObserver(InstanceObserver* observer) {
  observers_.push_back(observer);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.system->AddObserver(observer);
  }
}

// --- Elastic resizing --------------------------------------------------------

Status AdeptCluster::Resize(int new_shard_count) {
  if (new_shard_count < 1) {
    return Status::InvalidArgument("cluster needs at least one shard");
  }
  const size_t m = static_cast<size_t>(new_shard_count);
  std::lock_guard<std::mutex> schema_lock(schema_mu_);
  if (schema_poisoned_) return SchemaPoisoned();
  ADEPT_RETURN_IF_ERROR(CheckTopology());
  if (!replication_.empty()) {
    return Status::FailedPrecondition(
        "cannot resize while replication is attached; DetachReplication(), "
        "resize primary and replicas to the same shard count, re-attach");
  }
  const size_t n = shards_.size();
  if (m == n) return Status::OK();

  // Drain every shard's writer so the handover below never interleaves
  // with records still in flight.
  for (auto& shard_ptr : shards_) {
    AdeptSystem& system = *shard_ptr->system;
    ADEPT_RETURN_IF_ERROR(system.WaitWalDurable(system.last_enqueued_lsn()));
  }

  // Grow: fresh shards with fresh ".shard<k>" files, the replicated
  // schema history, and the same observer set as the original shards.
  // A failure here rolls back cleanly — nothing but the fresh shards
  // (and their empty files) exists yet.
  if (m > n) {
    Status grown = [&]() -> Status {
      for (size_t k = n; k < m; ++k) {
        auto shard = std::make_shared<Shard>();
        ADEPT_ASSIGN_OR_RETURN(
            shard->system,
            AdeptSystem::Create(ShardOptions(options_, static_cast<int>(k))));
        ADEPT_ASSIGN_OR_RETURN(shard->driver,
                               MakeShardDriver(options_, static_cast<int>(k)));
        shard->system->AddObserver(worklist_.get());
        for (InstanceObserver* observer : observers_) {
          shard->system->AddObserver(observer);
        }
        shards_.push_back(std::move(shard));
      }
      return ReplicateSchemasToFreshShards({});
    }();
    if (!grown.ok()) {
      while (shards_.size() > n) {
        const size_t k = shards_.size() - 1;
        shards_.pop_back();
        RemoveShardFiles(options_, k);
      }
      return grown;
    }
  }

  // Swap the routing invariant and move what it now places elsewhere. The
  // worklist survives untouched: items (including claims) are keyed by
  // instance id, and the export/import handover fires no instance events.
  // From here on a failure leaves in-memory placement inconsistent with
  // the routing — poison the cluster so every later call fails loudly
  // (the durable state is intact; Recover() rebuilds a consistent one).
  //
  // Lock-free readers keep running throughout (they are the one facade
  // call exempt from the quiescence contract): the epoch goes odd here,
  // so a reader that misses an instance mid-move — evicted at the source,
  // view not yet republished — retries instead of reporting NotFound,
  // and the old ReadView's shared_ptrs keep retired shards alive for
  // readers still inside them.
  read_epoch_.fetch_add(1, std::memory_order_acq_rel);
  routing_ = ShardRouting(m);
  Status applied = [&]() -> Status {
    ADEPT_RETURN_IF_ERROR(MoveMisplacedInstances(nullptr));
    options_.shards = new_shard_count;

    // Checkpoint the new topology before any old file is retired: with
    // snapshots configured the drained shards' durable copies become
    // redundant; without them the WAL-logged moves already carry the new
    // placement.
    if (!options_.snapshot_path.empty()) {
      ADEPT_RETURN_IF_ERROR(SaveSnapshotLocked());
    }

    // Shrink: retire the drained shards and their durability files. The
    // Shard objects are parked, not destroyed: a lock-free reader inside
    // a stale ReadView may still dereference their systems.
    while (shards_.size() > m) {
      const size_t k = shards_.size() - 1;
      retired_shards_.push_back(std::move(shards_.back()));
      shards_.pop_back();
      RemoveShardFiles(options_, k);
    }

    return DeriveShardAllocators(n);
  }();
  if (!applied.ok()) {
    // The epoch stays odd; FindSnapshot's poison check turns retrying
    // readers into kFailedPrecondition instead of a spin.
    topology_poisoned_.store(true, std::memory_order_release);
    return applied;
  }

  // Publish the new topology to lock-free readers, then stabilize the
  // epoch (even again): from here a miss is a genuine miss.
  PublishReadView();
  read_epoch_.fetch_add(1, std::memory_order_acq_rel);

  // Size the worker pool for the new shard count (unless pinned).
  if (options_.worker_threads <= 0) {
    const size_t threads =
        std::min(m, static_cast<size_t>(
                        std::max(1u, std::thread::hardware_concurrency())));
    pool_ = std::make_unique<WorkerPool>(threads);
  }

  // Self-check sweep: reconcile the worklist with engine truth under the
  // new placement (a no-op when the handover was clean).
  ResyncClusterWorklist();
  return Status::OK();
}

// --- Batch execution ---------------------------------------------------------

AdeptCluster::BatchResult AdeptCluster::ExecuteOpLocked(Shard& shard,
                                                        size_t shard_index,
                                                        const BatchOp& op) {
  BatchResult result;
  result.id = op.id;
  result.shard = shard_index;
  AdeptSystem& system = *shard.system;
  // Capture the shard's WAL position right after the op so the result
  // carries its exact LSN (the failover reconciliation key).
  struct LsnStamp {
    AdeptSystem& system;
    BatchResult& result;
    ~LsnStamp() { result.lsn = system.last_enqueued_lsn(); }
  } stamp{system, result};
  switch (op.kind) {
    case BatchOp::Kind::kCreate: {
      SchemaId schema = op.schema;
      if (!schema.valid()) {
        auto latest = system.LatestVersion(op.type_name);
        if (!latest.ok()) {
          result.status = latest.status();
          return result;
        }
        schema = *latest;
      }
      auto created =
          system.CreateInstanceWithId(schema, NextIdLocked(shard_index));
      if (created.ok()) {
        result.id = *created;
      } else {
        result.status = created.status();
      }
      return result;
    }
    case BatchOp::Kind::kStart:
      result.status = system.StartActivity(op.id, op.node);
      return result;
    case BatchOp::Kind::kComplete:
      result.status = system.CompleteActivity(op.id, op.node, op.writes);
      return result;
    case BatchOp::Kind::kFail:
      result.status = system.FailActivity(op.id, op.node, op.reason);
      return result;
    case BatchOp::Kind::kSelectBranch:
      result.status = system.SelectBranch(op.id, op.node, op.branch_value);
      return result;
    case BatchOp::Kind::kLoopDecision:
      result.status = system.SetLoopDecision(op.id, op.node, op.iterate);
      return result;
    case BatchOp::Kind::kDriveStep: {
      auto progressed = system.DriveStep(op.id, *shard.driver);
      if (progressed.ok()) {
        result.progressed = *progressed;
      } else {
        result.status = progressed.status();
      }
      return result;
    }
    case BatchOp::Kind::kAdHocChange: {
      if (op.delta == nullptr) {
        result.status = Status::InvalidArgument("batch ad-hoc op needs delta");
        return result;
      }
      result.status = system.ApplyAdHocChange(op.id, op.delta->Clone());
      return result;
    }
  }
  result.status = Status::Internal("unknown batch op kind");
  return result;
}

std::vector<AdeptCluster::BatchResult> AdeptCluster::SubmitBatch(
    const std::vector<BatchOp>& ops) {
  std::vector<BatchResult> results(ops.size());
  Status topology = CheckTopology();
  if (!topology.ok()) {
    for (size_t i = 0; i < ops.size(); ++i) {
      results[i].status = topology;
      results[i].id = ops[i].id;
    }
    return results;
  }
  // Route every op up front (creates get their round-robin placement here),
  // then run one task per shard that has work.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    size_t shard_index = ops[i].kind == BatchOp::Kind::kCreate
                             ? NextCreationShard()
                             : ShardOf(ops[i].id);
    by_shard[shard_index].push_back(i);
  }
  std::vector<std::function<void()>> tasks;
  for (size_t shard_index = 0; shard_index < by_shard.size(); ++shard_index) {
    if (by_shard[shard_index].empty()) continue;
    tasks.push_back([this, shard_index, &by_shard, &ops, &results] {
      // The fail-fast gate runs per shard group: a no-quorum/fenced shard
      // rejects its whole group before any mutation (definitely-not-
      // applied), while healthy shards of the same batch proceed.
      Status writable = CheckShardWritable(shard_index);
      if (!writable.ok()) {
        for (size_t op_index : by_shard[shard_index]) {
          results[op_index].status = writable;
          results[op_index].id = ops[op_index].id;
          results[op_index].shard = shard_index;
        }
        return;
      }
      Shard& shard = *shards_[shard_index];
      uint64_t lsn = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (size_t op_index : by_shard[shard_index]) {
          results[op_index] =
              ExecuteOpLocked(shard, shard_index, ops[op_index]);
        }
        lsn = shard.system->last_enqueued_lsn();
      }
      // Batch-level group commit: one durability wait covers the whole
      // shard group, after the lock is released. On failure every op that
      // reported success is downgraded — its record may not have survived.
      Status durable = shard.system->WaitWalDurable(lsn);
      if (!durable.ok()) {
        for (size_t op_index : by_shard[shard_index]) {
          if (results[op_index].status.ok()) {
            results[op_index].status = durable;
          }
        }
      }
    });
  }
  RunParallel(std::move(tasks));
  return results;
}

}  // namespace adept
