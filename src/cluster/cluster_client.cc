#include "cluster/cluster_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "repl/replication.h"

namespace adept {

ClusterClient::ClusterClient(PrimaryResolver* resolver, RetryPolicy policy)
    : resolver_(resolver), policy_(policy), rng_state_(policy.jitter_seed) {}

uint64_t ClusterClient::NextRand() {
  // splitmix64 over an atomically advanced counter: deterministic for a
  // given seed, safe under concurrent Submit() calls.
  uint64_t z = rng_state_.fetch_add(0x9e3779b97f4a7c15ull,
                                    std::memory_order_relaxed) +
               0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int ClusterClient::BackoffMs(int round) {
  int64_t backoff = policy_.base_backoff_ms;
  for (int i = 0; i < round && backoff < policy_.backoff_cap_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min<int64_t>(backoff, policy_.backoff_cap_ms);
  const int64_t jitter =
      (backoff / 2) * static_cast<int64_t>(NextRand() % 1024) / 1024;
  return static_cast<int>(backoff + jitter);
}

std::vector<ClusterClient::OpOutcome> ClusterClient::Submit(
    const std::vector<AdeptCluster::BatchOp>& ops) {
  std::vector<OpOutcome> out(ops.size());
  if (ops.empty()) return out;

  // Indices still to (re-)execute, and maybe-applied ops parked until
  // their fate is known (see the header contract).
  std::vector<size_t> pending(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) pending[i] = i;
  struct Limbo {
    size_t index;
    uint64_t view_version;
    size_t shard;
    uint64_t lsn;
    InstanceId id;
    bool progressed;
  };
  std::vector<Limbo> limbo;

  PrimaryView view = resolver_->View();
  for (int round = 0; round < policy_.max_attempts; ++round) {
    if (round > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(round - 1)));
      retry_rounds_.fetch_add(1, std::memory_order_relaxed);
      view = resolver_->View();
    }
    if (!view.cluster) continue;  // mid-promotion window: back off, re-resolve

    // Settle parked ops first — a settled "lost" op re-enters this round's
    // submission, a settled "survived" op is simply done.
    for (auto it = limbo.begin(); it != limbo.end();) {
      OpOutcome& o = out[it->index];
      bool settled = false;
      if (view.version == it->view_version) {
        // Same lineage still primary: the quorum may have healed — re-wait
        // the op's own WAL position instead of re-executing it.
        Status wait = view.cluster->WaitShardDurable(it->shard, it->lsn);
        if (wait.ok()) {
          o.status = Status::OK();
          o.id = it->id;
          o.progressed = it->progressed;
          o.reconciled = true;
          o.view_version = view.version;
          reconciled_ops_.fetch_add(1, std::memory_order_relaxed);
          settled = true;
        }
        // Still unreachable/fenced: keep parked; a later view decides.
      } else {
        // Failover(s) since the ambiguous round: the op survived iff its
        // LSN is inside the prefix that survived every promotion.
        const uint64_t watermark =
            resolver_->SurvivorWatermark(it->view_version, it->shard);
        if (it->lsn > 0 && it->lsn <= watermark) {
          o.status = Status::OK();
          o.id = it->id;
          o.progressed = it->progressed;
          o.reconciled = true;
          o.view_version = view.version;
          reconciled_ops_.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Died with the old lineage — definitely not in the current
          // one, so re-issuing cannot double-apply.
          pending.push_back(it->index);
        }
        settled = true;
      }
      it = settled ? limbo.erase(it) : std::next(it);
    }

    if (!pending.empty()) {
      std::sort(pending.begin(), pending.end());
      std::vector<AdeptCluster::BatchOp> round_ops;
      round_ops.reserve(pending.size());
      for (size_t idx : pending) round_ops.push_back(ops[idx]);
      const std::vector<AdeptCluster::BatchResult> results =
          view.cluster->SubmitBatch(round_ops);

      std::vector<size_t> next_pending;
      for (size_t j = 0; j < pending.size(); ++j) {
        const size_t idx = pending[j];
        const AdeptCluster::BatchResult& r = results[j];
        OpOutcome& o = out[idx];
        ++o.attempts;
        o.view_version = view.version;
        o.status = r.status;
        if (r.status.ok()) {
          o.id = r.id;
          o.progressed = r.progressed;
        } else if (IsFenced(r.status) || IsNoQuorum(r.status)) {
          // Fail-fast gate: rejected before any mutation. Plain retry.
          next_pending.push_back(idx);
        } else if (r.status.code() == StatusCode::kUnavailable) {
          // Submitted but quorum fate unknown: park for settlement.
          limbo.push_back({idx, view.version, r.shard, r.lsn, r.id,
                           r.progressed});
        } else {
          o.id = r.id;  // engine verdict (kNotFound, ...): final, no retry
        }
      }
      pending = std::move(next_pending);
    }

    if (pending.empty() && limbo.empty()) break;
  }

  // Ops that never reached any primary have no status from a round yet.
  for (size_t idx : pending) {
    if (out[idx].status.ok()) {
      out[idx].status = Status::Unavailable(
          "no primary resolvable within the retry budget");
    }
  }
  return out;
}

Result<InstanceId> ClusterClient::Create(const std::string& type_name) {
  auto outcomes = Submit({AdeptCluster::BatchOp::Create(type_name)});
  if (!outcomes[0].status.ok()) return outcomes[0].status;
  return outcomes[0].id;
}

Result<bool> ClusterClient::DriveStep(InstanceId id) {
  auto outcomes = Submit({AdeptCluster::BatchOp::DriveStep(id)});
  if (!outcomes[0].status.ok()) return outcomes[0].status;
  return outcomes[0].progressed;
}

Result<QueryResult> ClusterClient::Query(const std::string& text) {
  for (int round = 0; round < policy_.max_attempts; ++round) {
    if (round > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(round - 1)));
    }
    PrimaryView view = resolver_->View();
    if (!view.cluster) continue;  // mid-promotion: no lineage to read from
    // Degraded shards still serve reads (QueryResult::degraded flags it);
    // only the absence of any primary is worth a retry.
    return view.cluster->Query(text);
  }
  return Status::Unavailable("no primary resolvable within the retry budget");
}

}  // namespace adept
