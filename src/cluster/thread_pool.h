// WorkerPool: a small fixed-size thread pool for shard-parallel execution.
//
// Deliberately minimal: FIFO task queue, no work stealing, no futures.
// Callers that need to join on a set of tasks submit them together with a
// shared BlockingCounter. The pool is owned by AdeptCluster and sized to
// the shard count (more threads cannot help: one mutex per shard).

#ifndef ADEPT_CLUSTER_THREAD_POOL_H_
#define ADEPT_CLUSTER_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adept {

// Counts down to zero; Wait() blocks until it gets there.
class BlockingCounter {
 public:
  explicit BlockingCounter(size_t count) : count_(count) {}

  void DecrementCount() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ == 0) done_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable done_;
  size_t count_;
};

class WorkerPool {
 public:
  explicit WorkerPool(size_t threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  size_t thread_count() const { return workers_.size(); }

  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace adept

#endif  // ADEPT_CLUSTER_THREAD_POOL_H_
