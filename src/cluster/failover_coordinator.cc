#include "cluster/failover_coordinator.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/fs_util.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "storage/wal.h"

namespace adept {

FailoverCoordinator::FailoverCoordinator(const FailoverOptions& options)
    : options_(options) {}

Result<std::unique_ptr<FailoverCoordinator>> FailoverCoordinator::Start(
    const FailoverOptions& options) {
  if (options.cluster.wal_path.empty() ||
      options.cluster.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "failover coordinator needs durable cluster paths");
  }
  if (options.replicas < 1 || options.data_dir.empty()) {
    return Status::InvalidArgument(
        "failover coordinator needs >= 1 standby and a data_dir");
  }
  if (options.quorum < 1 || options.quorum > options.replicas + 1) {
    return Status::InvalidArgument(StrFormat(
        "quorum %d out of range for %d standbys", options.quorum,
        options.replicas));
  }
  std::error_code ec;
  std::filesystem::create_directories(options.data_dir, ec);
  if (ec) {
    return Status::Corruption(
        StrFormat("cannot create %s: %s", options.data_dir.c_str(),
                  ec.message().c_str()));
  }

  auto coordinator =
      std::unique_ptr<FailoverCoordinator>(new FailoverCoordinator(options));

  ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<AdeptCluster> founding,
                         AdeptCluster::Create(options.cluster));
  std::shared_ptr<AdeptCluster> primary(std::move(founding));

  {
    std::lock_guard<std::mutex> lock(coordinator->mu_);
    coordinator->primary_wal_ = options.cluster.wal_path;
    coordinator->primary_snapshot_ = options.cluster.snapshot_path;
    for (int i = 0; i < options.replicas; ++i) {
      Node node;
      node.wal_path =
          (std::filesystem::path(options.data_dir) /
           StrFormat("node%d.wal", i)).string();
      node.snapshot_path =
          (std::filesystem::path(options.data_dir) /
           StrFormat("node%d.snapshot", i)).string();
      coordinator->nodes_.push_back(std::move(node));
      ADEPT_RETURN_IF_ERROR(coordinator->StartNodeLocked(i));
    }
    ADEPT_RETURN_IF_ERROR(
        primary->AttachReplication(coordinator->BuildReplOptionsLocked()));

    coordinator->view_.cluster = primary;
    coordinator->view_.version = 1;
    coordinator->view_.epoch = primary->replication_epoch();
    coordinator->view_.recovered_lsn.assign(
        static_cast<size_t>(options.cluster.shards), 0);
    coordinator->history_.emplace_back(coordinator->view_.version,
                                       coordinator->view_.recovered_lsn);
  }

  if (options.auto_promote) {
    coordinator->monitor_ =
        std::thread([c = coordinator.get()] { c->MonitorLoop(); });
  }
  return coordinator;
}

FailoverCoordinator::~FailoverCoordinator() { Stop(); }

void FailoverCoordinator::Stop() {
  if (stopping_.exchange(true)) {
    if (monitor_.joinable()) monitor_.join();
    return;
  }
  if (monitor_.joinable()) monitor_.join();

  std::shared_ptr<AdeptCluster> primary;
  std::shared_ptr<AdeptCluster> old_primary;
  std::shared_ptr<AdeptCluster> resurrected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    primary = view_.cluster;
    old_primary = std::move(old_primary_);
    resurrected = std::move(resurrected_);
    for (Node& node : nodes_) {
      if (node.replica) node.replica->Stop();
    }
  }
  if (primary) primary->DetachReplication();
  // old_primary / resurrected detach in their destructors.
}

// --- PrimaryResolver --------------------------------------------------------

PrimaryView FailoverCoordinator::View() {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

uint64_t FailoverCoordinator::SurvivorWatermark(uint64_t version,
                                                size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t watermark = ~uint64_t{0};
  for (const auto& [v, recovered] : history_) {
    if (v <= version) continue;
    watermark =
        std::min(watermark, shard < recovered.size() ? recovered[shard] : 0);
  }
  return watermark;
}

// --- Monitor ----------------------------------------------------------------

void FailoverCoordinator::MonitorLoop() {
  int consecutive = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
    if (stopping_.load(std::memory_order_acquire)) break;
    if (!PrimaryAssessedDead()) {
      consecutive = 0;
      continue;
    }
    if (++consecutive < options_.confirm_polls) continue;
    consecutive = 0;
    auto promoted = Promote();
    if (!promoted.ok() && !stopping_.load(std::memory_order_acquire)) {
      ADEPT_LOG(kWarning) << "failover: promotion attempt failed: "
                      << promoted.status();
    }
  }
}

bool FailoverCoordinator::PrimaryAssessedDead() {
  std::lock_guard<std::mutex> lock(mu_);
  int live = 0;
  int dead_votes = 0;
  for (const Node& node : nodes_) {
    if (!node.running || node.promoted || !node.replica) continue;
    ++live;
    if (node.replica->PrimaryHealth() == PeerHealth::kDead) ++dead_votes;
  }
  // The verdict comes from the heartbeat traffic alone: a strict majority
  // of live standbys must have independently timed the primary out.
  return live > 0 && dead_votes * 2 > live;
}

// --- Chaos controls ---------------------------------------------------------

Status FailoverCoordinator::KillPrimary() {
  std::shared_ptr<AdeptCluster> cluster;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!view_.cluster || !primary_alive_) {
      return Status::FailedPrecondition("no live primary to kill");
    }
    primary_alive_ = false;
    cluster = view_.cluster;
  }
  // Simulated crash: heartbeats and shipping cease, in-flight quorum
  // waits fail. The engine object stays alive (in-flight callers), and
  // anything it applies from here on is the divergent unacked suffix.
  for (size_t k = 0; k < cluster->shard_count(); ++k) {
    if (ReplicationPrimary* p = cluster->shard_replication(k)) p->Stop();
  }
  return Status::OK();
}

Status FailoverCoordinator::KillReplica(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument(StrFormat("no such node %d", node));
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (!n.running || !n.replica) {
    return Status::FailedPrecondition(
        StrFormat("node %d is not running", node));
  }
  n.replica->Stop();
  n.replica.reset();
  n.running = false;
  return Status::OK();
}

Status FailoverCoordinator::RestartReplica(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument(StrFormat("no such node %d", node));
  }
  Node& n = nodes_[static_cast<size_t>(node)];
  if (n.running) {
    return Status::FailedPrecondition(
        StrFormat("node %d is already running", node));
  }
  if (n.promoted) {
    return Status::FailedPrecondition(StrFormat(
        "node %d's file set is the current primary", node));
  }
  return StartNodeLocked(node);
}

bool FailoverCoordinator::ReplicaRunning(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return node >= 0 && node < static_cast<int>(nodes_.size()) &&
         nodes_[static_cast<size_t>(node)].running;
}

uint16_t FailoverCoordinator::ReplicaPort(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (node < 0 || node >= static_cast<int>(nodes_.size())) return 0;
  return nodes_[static_cast<size_t>(node)].port;
}

int FailoverCoordinator::replica_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(nodes_.size());
}

void FailoverCoordinator::SetPromotionHook(
    std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  hook_ = std::move(hook);
}

void FailoverCoordinator::RunHook(const std::string& stage) {
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = hook_;
  }
  if (hook) hook(stage);
}

// --- Promotion --------------------------------------------------------------

uint64_t FailoverCoordinator::promotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_.version > 0 ? view_.version - 1 : 0;
}

Result<PrimaryView> FailoverCoordinator::WaitForFailover(uint64_t last_version,
                                                         int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    PrimaryView view = View();
    if (view.version > last_version && view.cluster) return view;
    if (std::chrono::steady_clock::now() > deadline) {
      return Status::Unavailable(StrFormat(
          "no failover past view %llu within %dms",
          static_cast<unsigned long long>(last_version), timeout_ms));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

Result<PrimaryView> FailoverCoordinator::Promote() {
  std::lock_guard<std::mutex> promote_lock(promote_mu_);

  // Phase 1 (under mu_): confirm the promotion should happen, pick the
  // live participants, and quiesce their file sets.
  std::shared_ptr<AdeptCluster> old_cluster;
  std::string old_wal, old_snap;
  uint64_t old_epoch = 0;
  std::vector<int> live;
  int shards = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A call queued behind a completed promotion must not depose the
    // freshly promoted (healthy) primary.
    if (primary_alive_ && view_.cluster) {
      int alive = 0, dead_votes = 0;
      for (const Node& node : nodes_) {
        if (!node.running || node.promoted || !node.replica) continue;
        ++alive;
        if (node.replica->PrimaryHealth() == PeerHealth::kDead) ++dead_votes;
      }
      if (!(alive > 0 && dead_votes * 2 > alive)) return view_;
    }
    for (int i = 0; i < static_cast<int>(nodes_.size()); ++i) {
      const Node& node = nodes_[static_cast<size_t>(i)];
      if (node.running && !node.promoted && node.replica) live.push_back(i);
    }
    // The split-brain guard: a minority island degrades, it never elects.
    if (static_cast<int>(live.size()) < options_.quorum) {
      return Status::Unavailable(StrFormat(
          "refusing to promote: %d live standby(s), need quorum %d",
          static_cast<int>(live.size()), options_.quorum));
    }
    old_cluster = view_.cluster;
    old_wal = primary_wal_;
    old_snap = primary_snapshot_;
    old_epoch = view_.epoch;
    shards = options_.cluster.shards;
    for (int i : live) nodes_[static_cast<size_t>(i)].replica->Stop();
  }

  RunHook("begin");

  // Make sure the deposed lineage has stopped shipping (idempotent when a
  // chaos kill — or the crash being recovered from — already did).
  if (old_cluster) {
    for (size_t k = 0; k < old_cluster->shard_count(); ++k) {
      if (ReplicationPrimary* p = old_cluster->shard_replication(k)) {
        p->Stop();
      }
    }
  }

  // On any failure below, bring the quiesced standbys back up so the
  // cluster stays degraded-but-recoverable instead of headless.
  auto restart_standbys = [&]() {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i : live) {
      Node& node = nodes_[static_cast<size_t>(i)];
      if (!node.running) continue;  // chaos killed it meanwhile: respect that
      node.replica.reset();
      Status st = StartNodeLocked(i);
      if (!st.ok()) {
        ADEPT_LOG(kWarning) << "failover: standby " << i
                        << " failed to restart after aborted promotion: "
                        << st;
      }
    }
  };

  // Phase 2: probe every participant's per-shard durable prefix from its
  // quiesced files and assemble the longest prefix onto the target.
  std::vector<std::vector<uint64_t>> lsn(live.size());
  for (size_t j = 0; j < live.size(); ++j) {
    const Node& node = nodes_[static_cast<size_t>(live[j])];
    lsn[j].resize(static_cast<size_t>(shards), 0);
    for (int k = 0; k < shards; ++k) {
      auto probed = ShardDurableLsnOnDisk(node.wal_path, node.snapshot_path,
                                          static_cast<uint64_t>(k));
      if (!probed.ok()) {
        restart_standbys();
        return probed.status();
      }
      lsn[j][static_cast<size_t>(k)] = *probed;
    }
  }
  size_t target = 0;
  {
    uint64_t best_total = 0;
    for (size_t j = 0; j < live.size(); ++j) {
      uint64_t total = 0;
      for (uint64_t l : lsn[j]) total += l;
      if (j == 0 || total > best_total) {
        best_total = total;
        target = j;
      }
    }
  }
  const Node& target_node = nodes_[static_cast<size_t>(live[target])];
  for (int k = 0; k < shards; ++k) {
    size_t best = target;
    for (size_t j = 0; j < live.size(); ++j) {
      if (lsn[j][static_cast<size_t>(k)] >
          lsn[best][static_cast<size_t>(k)]) {
        best = j;
      }
    }
    if (best == target) continue;
    // Another standby acked more of this shard: take its WAL/snapshot
    // pair wholesale (the pair is internally consistent; mixing one
    // node's snapshot with another's WAL is not).
    const Node& donor = nodes_[static_cast<size_t>(live[best])];
    for (const auto& [from, to] :
         {std::pair<std::string, std::string>(
              ShardFile(donor.wal_path, static_cast<uint64_t>(k)),
              ShardFile(target_node.wal_path, static_cast<uint64_t>(k))),
          std::pair<std::string, std::string>(
              ShardFile(donor.snapshot_path, static_cast<uint64_t>(k)),
              ShardFile(target_node.snapshot_path,
                        static_cast<uint64_t>(k)))}) {
      Status st = CopyFile(from, to);
      if (!st.ok()) {
        restart_standbys();
        return st;
      }
    }
    ADEPT_LOG(kInfo) << "failover: shard " << k << " assembled from node "
                    << live[best] << " (LSN "
                    << lsn[best][static_cast<size_t>(k)] << " > "
                    << lsn[target][static_cast<size_t>(k)] << ")";
  }

  RunHook("selected");

  // Phase 3: epoch bump. at_least = max epoch seen anywhere + 1, so this
  // lineage dominates the deposed one AND any previously promoted one.
  uint64_t max_epoch = old_epoch;
  for (size_t j = 0; j < live.size(); ++j) {
    auto epoch =
        ReadReplicationEpoch(nodes_[static_cast<size_t>(live[j])].wal_path);
    if (!epoch.ok()) {
      restart_standbys();
      return epoch.status();
    }
    max_epoch = std::max(max_epoch, *epoch);
  }
  auto new_epoch = PromoteReplicaFiles(target_node.wal_path, max_epoch + 1);
  if (!new_epoch.ok()) {
    restart_standbys();
    return new_epoch.status();
  }

  RunHook("promoted-files");

  // Phase 4: recover the assembled file set as the new primary.
  ClusterOptions copts = options_.cluster;
  copts.wal_path = target_node.wal_path;
  copts.snapshot_path = target_node.snapshot_path;
  auto recovered = AdeptCluster::Recover(copts);
  if (!recovered.ok()) {
    restart_standbys();
    return recovered.status();
  }
  std::shared_ptr<AdeptCluster> next(std::move(*recovered));
  std::vector<uint64_t> recovered_lsn(static_cast<size_t>(shards), 0);
  for (int k = 0; k < shards; ++k) {
    // The WAL writer's durable LSN is restored from the log on open;
    // last_enqueued_lsn() would read 0 until the first post-recovery
    // append and misjudge every surviving write as lost.
    recovered_lsn[static_cast<size_t>(k)] =
        next->shard(static_cast<size_t>(k)).wal_writer()->durable_lsn();
  }

  RunHook("recovered");

  // Phase 5: restart the other standbys, attach, publish.
  PrimaryView published;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Node& t = nodes_[static_cast<size_t>(live[target])];
    t.promoted = true;
    t.running = false;
    t.replica.reset();
    for (size_t j = 0; j < live.size(); ++j) {
      if (j == target) continue;
      Node& node = nodes_[static_cast<size_t>(live[j])];
      if (!node.running) continue;  // chaos killed it mid-promotion
      node.replica.reset();
      Status st = StartNodeLocked(live[j]);
      if (!st.ok()) {
        ADEPT_LOG(kWarning) << "failover: standby " << live[j]
                        << " failed to restart: " << st;
      }
    }
    Status attach = next->AttachReplication(BuildReplOptionsLocked());
    if (!attach.ok()) return attach;

    old_primary_ = std::move(old_cluster);
    old_primary_wal_ = old_wal;
    old_primary_snapshot_ = old_snap;
    old_primary_epoch_ = old_epoch;
    primary_wal_ = copts.wal_path;
    primary_snapshot_ = copts.snapshot_path;
    view_.cluster = std::move(next);
    view_.version += 1;
    view_.epoch = *new_epoch;
    view_.recovered_lsn = recovered_lsn;
    history_.emplace_back(view_.version, recovered_lsn);
    primary_alive_ = true;
    published = view_;
  }

  RunHook("attached");
  ADEPT_LOG(kInfo) << "failover: promoted node " << live[target]
                  << " as view " << published.version << " epoch "
                  << published.epoch;
  return published;
}

// --- Rejoin paths -----------------------------------------------------------

Result<std::shared_ptr<AdeptCluster>>
FailoverCoordinator::ResurrectOldPrimary() {
  ClusterOptions copts = options_.cluster;
  ReplicationOptions ropts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (old_primary_wal_.empty()) {
      return Status::FailedPrecondition("no deposed lineage to resurrect");
    }
    if (resurrected_) {
      return Status::FailedPrecondition("old primary already resurrected");
    }
    old_primary_.reset();  // release its file handles
    copts.wal_path = old_primary_wal_;
    copts.snapshot_path = old_primary_snapshot_;
    ropts = BuildReplOptionsLocked();
  }
  ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<AdeptCluster> recovered,
                         AdeptCluster::Recover(copts));
  std::shared_ptr<AdeptCluster> cluster(std::move(recovered));
  // Attaching with its persisted (stale) epoch: the standbys reject the
  // HELLO and the lineage self-fences — writes fail with IsFenced().
  ADEPT_RETURN_IF_ERROR(cluster->AttachReplication(ropts));
  std::lock_guard<std::mutex> lock(mu_);
  resurrected_ = cluster;
  return cluster;
}

Status FailoverCoordinator::RejoinOldPrimaryAsReplica() {
  std::shared_ptr<AdeptCluster> current;
  ReplicationOptions ropts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (old_primary_wal_.empty()) {
      return Status::FailedPrecondition("no deposed lineage to rejoin");
    }
    // Release every handle on the old file set (destructors detach).
    resurrected_.reset();
    old_primary_.reset();
    Node node;
    node.wal_path = old_primary_wal_;
    node.snapshot_path = old_primary_snapshot_;
    nodes_.push_back(std::move(node));
    const int index = static_cast<int>(nodes_.size()) - 1;
    Status st = StartNodeLocked(index);
    if (!st.ok()) {
      nodes_.pop_back();
      return st;
    }
    old_primary_wal_.clear();
    old_primary_snapshot_.clear();
    old_primary_epoch_ = 0;
    current = view_.cluster;
    ropts = BuildReplOptionsLocked();
  }
  if (!current) return Status::OK();
  // Fold the new standby into the peer set. Caller has quiesced writes
  // (the Attach/DetachReplication contract). The stale lineage fails the
  // resume epoch check and is snapshot-reset, discarding its divergent
  // unacked suffix.
  current->DetachReplication();
  return current->AttachReplication(ropts);
}

// --- Internals --------------------------------------------------------------

ReplicationOptions FailoverCoordinator::BuildReplOptionsLocked() const {
  ReplicationOptions ropts = options_.repl;
  ropts.replicas.clear();
  ropts.peer_fault_injectors.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (!node.running || node.promoted) continue;
    ropts.replicas.push_back({.host = "127.0.0.1", .port = node.port});
    ropts.peer_fault_injectors.push_back(
        i < options_.node_send_injectors.size()
            ? options_.node_send_injectors[i]
            : nullptr);
  }
  ropts.quorum = options_.quorum;
  return ropts;
}

Status FailoverCoordinator::StartNodeLocked(int i) {
  Node& node = nodes_[static_cast<size_t>(i)];
  ReplicaNodeOptions ropts;
  ropts.listen = {.host = "127.0.0.1", .port = node.port};
  ropts.wal_path = node.wal_path;
  ropts.snapshot_path = node.snapshot_path;
  ropts.sync = options_.replica_sync;
  ropts.io_timeout_ms = options_.repl.io_timeout_ms;
  ropts.suspect_after_ms = options_.repl.suspect_after_ms;
  ropts.dead_after_ms = options_.repl.dead_after_ms;
  if (static_cast<size_t>(i) < options_.node_ack_injectors.size()) {
    ropts.fault_injector = options_.node_ack_injectors[static_cast<size_t>(i)];
  }
  ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<ReplicationReplica> replica,
                         ReplicationReplica::Start(ropts));
  node.replica = std::move(replica);
  node.port = node.replica->port();
  node.running = true;
  return Status::OK();
}

std::string FailoverCoordinator::ShardFile(const std::string& base,
                                           uint64_t shard) {
  return StrFormat("%s.shard%llu", base.c_str(),
                   static_cast<unsigned long long>(shard));
}

Result<uint64_t> FailoverCoordinator::ShardDurableLsnOnDisk(
    const std::string& wal_base, const std::string& snap_base,
    uint64_t shard) {
  uint64_t lsn = 0;
  const std::string snap = ShardFile(snap_base, shard);
  if (std::filesystem::exists(snap)) {
    ADEPT_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(snap));
    ADEPT_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(blob));
    lsn = static_cast<uint64_t>(doc.Get("wal_lsn").as_int());
  }
  ADEPT_ASSIGN_OR_RETURN(
      WalTail tail, WriteAheadLog::ReadTail(ShardFile(wal_base, shard), 0));
  if (!tail.frames.empty()) lsn = std::max(lsn, tail.frames.back().lsn);
  return lsn;
}

Status FailoverCoordinator::CopyFile(const std::string& from,
                                     const std::string& to) {
  std::error_code ec;
  if (!std::filesystem::exists(from)) {
    // Donor has nothing for this file: the pair-replacement rule means
    // the target's must go too.
    std::filesystem::remove(to, ec);
    return Status::OK();
  }
  ADEPT_ASSIGN_OR_RETURN(std::string content, ReadFileToString(from));
  return WriteFileAtomic(to, content);
}

}  // namespace adept
