// FailoverCoordinator: automatic, coordinated promotion for a replicated
// AdeptCluster — the in-process harness form of the control plane a real
// deployment would run as a separate service.
//
// It owns the whole replication topology: the primary AdeptCluster and N
// standby ReplicationReplica nodes (each with its own on-disk file set
// under options.data_dir). A monitor thread polls every live standby's
// PrimaryHealth() verdict — which is driven purely by the heartbeat/
// batch traffic of src/repl, not by coordinator-internal knowledge — and
// when a strict majority of live standbys has assessed the primary dead
// for `confirm_polls` consecutive polls, it runs the promotion protocol:
//
//   1. refuse unless live standbys >= quorum (a minority island must
//      degrade, not elect — this is the split-brain guard);
//   2. stop the live standbys (their file sets quiesce);
//   3. probe each standby's per-shard durable LSN from disk and pick the
//      promotion target = the node with the longest acked prefix overall;
//      for any shard where another standby is longer, copy that shard's
//      WAL + snapshot files onto the target (per-shard longest-prefix
//      assembly — acked writes survive even when no single node saw
//      every shard's maximum);
//   4. PromoteReplicaFiles(target, at_least = max known epoch + 1): the
//      new lineage's epoch dominates every older one, so the old primary
//      is fenced at its first HELLO if it ever comes back;
//   5. AdeptCluster::Recover over the target file set, restart the other
//      standbys, AttachReplication to them;
//   6. publish the new PrimaryView (version + 1, new epoch, the per-shard
//      recovered LSN) — clients re-resolve and reconcile through it.
//
// Chaos controls (KillPrimary / KillReplica / RestartReplica / the
// promotion-stage hook) let a deterministic test script deaths at exact
// protocol points; ResurrectOldPrimary / RejoinOldPrimaryAsReplica
// exercise the two rejoin paths of a dead lineage's file set.
//
// What is NOT replicated (per src/repl/README.md): the org file and the
// worklist claim journal are node-local, so a promotion loses claims and
// re-derives offers from the recovered instance state.

#ifndef ADEPT_CLUSTER_FAILOVER_COORDINATOR_H_
#define ADEPT_CLUSTER_FAILOVER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/adept_cluster.h"
#include "cluster/cluster_client.h"
#include "repl/replica_node.h"
#include "repl/replication.h"

namespace adept {

struct FailoverOptions {
  // Shard count / strategy / sync of every lineage; wal_path and
  // snapshot_path name the FOUNDING primary's file set (standby file sets
  // derive from data_dir).
  ClusterOptions cluster;
  // Standby node count and the commit quorum (copies including the
  // primary's local disk; see ReplicationOptions::quorum).
  int replicas = 3;
  int quorum = 2;
  // Directory for standby file sets: node i lives at
  // "<data_dir>/node<i>.wal" / "<data_dir>/node<i>.snapshot".
  std::string data_dir;
  // Replication transport/health knobs applied to every lineage's
  // primaries (replicas/quorum are overwritten by the coordinator). The
  // suspect/dead thresholds also configure the standby nodes' verdict on
  // their primary, so both sides of the health state machine agree.
  ReplicationOptions repl;
  // Durability of standby appends (an ack is only as strong as this).
  SyncMode replica_sync = SyncMode::kFlush;
  // Per-standby-NODE fault injectors (chaos scripting): index i applies
  // to node i regardless of its position in the current peer list across
  // promotions/rejoins. `send` intercepts the primary's frames toward
  // node i (the coordinator rebuilds repl.peer_fault_injectors from this
  // on every attach — do not set that field directly); `ack` intercepts
  // node i's frames back toward the primary. Injectors must outlive the
  // coordinator.
  std::vector<FaultInjector*> node_send_injectors;
  std::vector<FaultInjector*> node_ack_injectors;
  // Monitor cadence: poll every standby's PrimaryHealth() at this
  // interval, and require this many consecutive all-dead polls before
  // promoting (debounces a single missed heartbeat edge).
  int poll_interval_ms = 50;
  int confirm_polls = 2;
  // When false the monitor only observes; Promote() must be called
  // explicitly (tests that script the exact promotion moment).
  bool auto_promote = true;
};

class FailoverCoordinator : public PrimaryResolver {
 public:
  // Creates the founding primary (AdeptCluster::Create over
  // options.cluster), starts the standby nodes, attaches replication,
  // publishes view version 1, and starts the monitor thread.
  static Result<std::unique_ptr<FailoverCoordinator>> Start(
      const FailoverOptions& options);

  ~FailoverCoordinator() override;
  FailoverCoordinator(const FailoverCoordinator&) = delete;
  FailoverCoordinator& operator=(const FailoverCoordinator&) = delete;

  // Joins the monitor, detaches the current primary's replication and
  // stops every standby. Idempotent; also runs on destruction. The
  // caller must have quiesced client traffic.
  void Stop();

  // --- PrimaryResolver ------------------------------------------------------

  PrimaryView View() override;
  uint64_t SurvivorWatermark(uint64_t version, size_t shard) override;

  // --- Chaos controls (deterministic fault scripting) -----------------------

  // Simulated primary crash: stops the current lineage's shard primaries
  // (heartbeats cease, in-flight quorum waits fail kUnavailable) but
  // keeps the object alive for in-flight callers — writes applied after
  // the kill become the divergent unacked suffix a rejoin discards. The
  // routing view keeps naming the dead lineage until a promotion
  // replaces it (reads against it serve, flagged degraded).
  Status KillPrimary();

  // Stops standby `node` (its health decays to dead at the primaries).
  Status KillReplica(int node);
  // Restarts a killed standby on its original port, so the attached
  // primaries' reconnect loop finds it again without a re-attach.
  Status RestartReplica(int node);

  bool ReplicaRunning(int node) const;
  uint16_t ReplicaPort(int node) const;
  int replica_count() const;

  // Called (without coordinator locks held) at each promotion stage:
  // "begin", "selected", "promoted-files", "recovered", "attached".
  // A test hook may KillReplica() here to script a death mid-promotion.
  void SetPromotionHook(std::function<void(const std::string&)> hook);

  // --- Promotion ------------------------------------------------------------

  // Runs the promotion protocol now (the monitor calls this; tests with
  // auto_promote=false call it directly). kUnavailable without touching
  // anything when live standbys < quorum. Serialized: concurrent calls
  // queue, and a second call after a successful promotion is a no-op
  // returning the current view (the primary it would depose is alive).
  Result<PrimaryView> Promote();

  // Blocks until the view version exceeds `last_version` (a completed
  // promotion) or the timeout elapses (kUnavailable).
  Result<PrimaryView> WaitForFailover(uint64_t last_version, int timeout_ms);

  // Promotions completed so far (view version - 1).
  uint64_t promotions() const;

  // --- Rejoin paths for a deposed lineage's file set ------------------------

  // Restarts the previous primary's file set AS A PRIMARY — recovery +
  // AttachReplication to the current standbys — modelling an operator
  // (or a partition heal) bringing the old node back unaware it was
  // deposed. Its epoch is stale, so the standbys reject its HELLO and it
  // self-fences: writes against the returned cluster fail with
  // IsFenced(). The coordinator keeps the object alive; call
  // RejoinOldPrimaryAsReplica() to convert it to a standby. The caller
  // must not retain the returned pointer past that call.
  Result<std::shared_ptr<AdeptCluster>> ResurrectOldPrimary();

  // Converts the previous primary's file set into a new standby node:
  // releases every handle on it, starts a ReplicationReplica over its
  // paths, and re-attaches the current primary's replication to include
  // it. The stale lineage (epoch check at the resume handshake) is
  // snapshot-reset, which discards its divergent unacked suffix. The
  // caller must have quiesced writes (AttachReplication contract); the
  // node is appended, so replica_count() grows by one.
  Status RejoinOldPrimaryAsReplica();

 private:
  struct Node {
    std::string wal_path;
    std::string snapshot_path;
    std::unique_ptr<ReplicationReplica> replica;  // null while not running
    bool running = false;
    // Assigned at first start; restarts rebind it (SO_REUSEADDR).
    uint16_t port = 0;
    // This node's file set was promoted: it IS the current primary and
    // cannot serve as a standby again until deposed and rejoined.
    bool promoted = false;
  };

  explicit FailoverCoordinator(const FailoverOptions& options);

  void MonitorLoop();
  // Strict majority of live standbys says dead AND live >= quorum.
  bool PrimaryAssessedDead();

  // mu_ held: replication options naming every running standby.
  ReplicationOptions BuildReplOptionsLocked() const;
  // mu_ held: starts (or restarts) node `i`'s ReplicationReplica.
  Status StartNodeLocked(int i);

  // Durable LSN of `shard` in the file set at (wal, snapshot), read from
  // disk: max(snapshot covered LSN, last complete WAL frame). Used on
  // quiesced standby file sets during promotion.
  static Result<uint64_t> ShardDurableLsnOnDisk(const std::string& wal_base,
                                                const std::string& snap_base,
                                                uint64_t shard);
  static std::string ShardFile(const std::string& base, uint64_t shard);
  static Status CopyFile(const std::string& from, const std::string& to);

  void RunHook(const std::string& stage);

  const FailoverOptions options_;

  mutable std::mutex mu_;
  PrimaryView view_;                       // guarded by mu_
  std::vector<Node> nodes_;                // guarded by mu_
  // File-set base paths of the lineage view_ names.
  std::string primary_wal_, primary_snapshot_;  // guarded by mu_
  // Per-promotion (version, recovered_lsn) records backing
  // SurvivorWatermark(). Bounded by the promotion count.
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> history_;
  // The deposed lineage: kept alive (in-flight callers), released when
  // its file set rejoins. paths empty = no deposed lineage outstanding.
  std::shared_ptr<AdeptCluster> old_primary_;          // guarded by mu_
  std::string old_primary_wal_, old_primary_snapshot_; // guarded by mu_
  uint64_t old_primary_epoch_ = 0;                     // guarded by mu_
  std::shared_ptr<AdeptCluster> resurrected_;          // guarded by mu_
  bool primary_alive_ = true;                          // guarded by mu_

  std::mutex hook_mu_;
  std::function<void(const std::string&)> hook_;  // guarded by hook_mu_

  // Serializes the promotion protocol itself (mu_ is released during the
  // slow file/recovery work so chaos controls and View() stay live).
  std::mutex promote_mu_;

  std::atomic<bool> stopping_{false};
  std::thread monitor_;
};

}  // namespace adept

#endif  // ADEPT_CLUSTER_FAILOVER_COORDINATOR_H_
