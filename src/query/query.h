// The process query engine's public surface (see README.md in this
// directory for the language and the staleness contract).
//
//   CompiledQuery  a parsed, immutable, cheaply copyable predicate
//   QueryResult    the matches: a cursor of published snapshots
//   RunQuery*      execution over one system's SnapshotTable, using a
//                  QueryIndex when a conjunct is indexable
//
// Applications normally go through AdeptApi::Query(text), which both
// facades implement: AdeptSystem compiles and runs locally; AdeptCluster
// compiles once and fans the compiled predicate out across the read view
// under the same epoch-stable discipline as ForEachSnapshot.
//
// Staleness contract (mirrors the PR-5 read-view semantics): every
// returned snapshot was the *current published version* of its instance
// at lookup time — staleness is bounded by one in-flight mutation, and a
// returned snapshot always satisfies the predicate (candidates from a
// trailing index are re-evaluated against their current snapshot before
// they can match). A sweep is per-instance consistent, not a global
// point-in-time cut.

#ifndef ADEPT_QUERY_QUERY_H_
#define ADEPT_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/query_ast.h"
#include "query/query_index.h"
#include "runtime/instance_snapshot.h"

namespace adept {

// The result of a query: matching snapshots in ascending instance-id
// order. A cursor over immutable state — iterating holds no lock, and
// each shared_ptr pins the matched version for as long as the caller
// keeps it.
struct QueryResult {
  std::vector<std::shared_ptr<const InstanceSnapshot>> snapshots;
  // True when an index narrowed the candidate set (vs a full table scan).
  bool used_index = false;
  // Index probes the planner executed: 0 on a scan, 1 for a single
  // indexable conjunct, 2 when two conjuncts' candidate sets were
  // intersected before re-validation.
  int index_probes = 0;
  // Candidates fetched and evaluated (a scan evaluates every published
  // snapshot; an indexed run only the probe's candidates).
  size_t evaluated = 0;
  // Graceful degradation (cluster reads only): true when at least one
  // shard's replication primary cannot currently commit (fenced or below
  // a live quorum), so these snapshots may trail writes that are failing
  // fast elsewhere. Single-node queries always report false.
  bool degraded = false;

  using const_iterator =
      std::vector<std::shared_ptr<const InstanceSnapshot>>::const_iterator;
  const_iterator begin() const { return snapshots.begin(); }
  const_iterator end() const { return snapshots.end(); }
  size_t size() const { return snapshots.size(); }
  bool empty() const { return snapshots.empty(); }
};

// A parsed query. Immutable and cheaply copyable (the tree is shared), so
// one compilation serves every shard of a cluster fan-out and every poll
// of a worklist predicate.
class CompiledQuery {
 public:
  // kInvalidArgument (with an offset + caret span) on malformed input.
  static Result<CompiledQuery> Compile(const std::string& text);

  // The predicate every snapshot satisfies (ForEachSnapshot's sweep).
  static CompiledQuery MatchAll();

  bool Matches(const InstanceSnapshot& snapshot) const {
    return root_->Eval(snapshot);
  }

  const std::string& text() const { return text_; }
  // Canonical spelling; Compile(canonical()) is an equivalent query.
  std::string canonical() const { return root_->ToString(); }
  const query::Expr& root() const { return *root_; }

 private:
  CompiledQuery(std::shared_ptr<const query::Expr> root, std::string text)
      : root_(std::move(root)), text_(std::move(text)) {}

  std::shared_ptr<const query::Expr> root_;
  std::string text_;
};

// Executes `query` against one system's published snapshots and appends
// the matches to `result` (unsorted; the caller merges/sorts — see
// RunQuery for the single-system convenience). When `index` is non-null
// and a top-level conjunct is indexable, candidates come from the index;
// otherwise from a full SnapshotTable::Collect. Every candidate is
// re-fetched from `table` and the full predicate re-evaluated, so index
// staleness never yields a stale-wrong match.
void RunQueryInto(const CompiledQuery& query, const SnapshotTable& table,
                  const QueryIndex* index, QueryResult* result);

// Single-system execution: RunQueryInto + ascending-id sort.
QueryResult RunQuery(const CompiledQuery& query, const SnapshotTable& table,
                     const QueryIndex* index);

// Sorts matches by ascending instance id (cluster merges call this once
// after fanning RunQueryInto out across shards).
void SortQueryResult(QueryResult* result);

}  // namespace adept

#endif  // ADEPT_QUERY_QUERY_H_
