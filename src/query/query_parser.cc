#include "query/query_parser.h"

#include <utility>
#include <vector>

#include "query/query_lexer.h"

namespace adept {
namespace query {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Expr>> Run() {
    ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error(Peek().offset, "unexpected trailing input");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  Status Error(size_t offset, const std::string& what) const {
    return QueryError(text_, offset, what);
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> first, ParseAnd());
    if (Peek().kind != TokenKind::kOrOr) return first;
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kOr;
    node->offset = first->offset;
    node->children.push_back(std::move(first));
    while (Accept(TokenKind::kOrOr)) {
      ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseAnd());
      node->children.push_back(std::move(child));
    }
    return std::unique_ptr<Expr>(std::move(node));
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> first, ParseUnary());
    if (Peek().kind != TokenKind::kAndAnd) return first;
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kAnd;
    node->offset = first->offset;
    node->children.push_back(std::move(first));
    while (Accept(TokenKind::kAndAnd)) {
      ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseUnary());
      node->children.push_back(std::move(child));
    }
    return std::unique_ptr<Expr>(std::move(node));
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Peek().kind == TokenKind::kBang) {
      const size_t offset = Next().offset;
      ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> child, ParseUnary());
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kNot;
      node->offset = offset;
      node->children.push_back(std::move(child));
      return std::unique_ptr<Expr>(std::move(node));
    }
    return ParsePrimary();
  }

  // 'activated' / 'running' / 'has': one quoted-string argument.
  // 'activated_since': a quoted name plus an integer sequence threshold.
  Result<std::unique_ptr<Expr>> ParseCall(const Token& name) {
    if (!Accept(TokenKind::kLParen)) {
      return Error(Peek().offset,
                   "expected '(' after '" + name.text + "'");
    }
    if (Peek().kind != TokenKind::kString) {
      return Error(Peek().offset,
                   "expected a quoted name in '" + name.text + "(...)'");
    }
    const Token& arg = Next();
    auto node = std::make_unique<Expr>();
    node->offset = name.offset;
    node->name = arg.text;
    if (name.text == "activated_since") {
      if (!Accept(TokenKind::kComma)) {
        return Error(Peek().offset,
                     "expected ',' and a sequence bound in "
                     "'activated_since(\"name\", k)'");
      }
      if (Peek().kind != TokenKind::kInt) {
        return Error(Peek().offset,
                     "expected an integer sequence bound in "
                     "'activated_since(\"name\", k)'");
      }
      node->kind = ExprKind::kActivatedSince;
      node->literal = Literal::Int(Next().int_value);
    } else if (name.text == "has") {
      node->kind = ExprKind::kHasData;
    } else {
      node->kind = ExprKind::kNodeIn;
      node->node_set =
          name.text == "activated" ? NodeSet::kActivated : NodeSet::kRunning;
    }
    if (!Accept(TokenKind::kRParen)) {
      return Error(Peek().offset, "expected ')'");
    }
    return std::unique_ptr<Expr>(std::move(node));
  }

  bool LookupField(const std::string& word, FieldKind* out) const {
    static const struct {
      const char* name;
      FieldKind field;
    } kFields[] = {
        {"id", FieldKind::kId},
        {"type", FieldKind::kType},
        {"schema", FieldKind::kSchema},
        {"schema_version", FieldKind::kSchemaVersion},
        {"state", FieldKind::kState},
        {"biased", FieldKind::kBiased},
        {"version", FieldKind::kVersion},
        {"trace_length", FieldKind::kTraceLength},
        {"completed_total", FieldKind::kCompletedTotal},
    };
    for (const auto& entry : kFields) {
      if (word == entry.name) {
        *out = entry.field;
        return true;
      }
    }
    return false;
  }

  bool LookupCompareOp(TokenKind kind, CompareOp* out) const {
    switch (kind) {
      case TokenKind::kEq:
        *out = CompareOp::kEq;
        return true;
      case TokenKind::kNe:
        *out = CompareOp::kNe;
        return true;
      case TokenKind::kLt:
        *out = CompareOp::kLt;
        return true;
      case TokenKind::kLe:
        *out = CompareOp::kLe;
        return true;
      case TokenKind::kGt:
        *out = CompareOp::kGt;
        return true;
      case TokenKind::kGe:
        *out = CompareOp::kGe;
        return true;
      default:
        return false;
    }
  }

  Result<Literal> ParseLiteral() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInt:
        Next();
        return Literal::Int(token.int_value);
      case TokenKind::kDouble:
        Next();
        return Literal::Double(token.double_value);
      case TokenKind::kString:
        Next();
        return Literal::String(token.text);
      case TokenKind::kIdentifier:
        Next();
        if (token.text == "true") return Literal::Bool(true);
        if (token.text == "false") return Literal::Bool(false);
        // Bare word: string shorthand (state == running).
        return Literal::String(token.text);
      default:
        return Error(token.offset, "expected a literal value");
    }
  }

  Result<std::unique_ptr<Expr>> ParseComparison(const Token& head,
                                                FieldKind field,
                                                std::string data_name) {
    CompareOp op;
    if (!LookupCompareOp(Peek().kind, &op)) {
      // `biased` may stand alone as a boolean test.
      if (field == FieldKind::kBiased) {
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kCompare;
        node->offset = head.offset;
        node->field = field;
        node->op = CompareOp::kEq;
        node->literal = Literal::Bool(true);
        return std::unique_ptr<Expr>(std::move(node));
      }
      return Error(Peek().offset, "expected a comparison operator");
    }
    Next();
    const size_t literal_offset = Peek().offset;
    ADEPT_ASSIGN_OR_RETURN(Literal literal, ParseLiteral());
    if (field == FieldKind::kState &&
        (op == CompareOp::kEq || op == CompareOp::kNe) &&
        (literal.type != Literal::Type::kString ||
         StateRankOfName(literal.string_value) < 0)) {
      return Error(literal_offset,
                   "state compares against 'created', 'running', or "
                   "'finished'");
    }
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::kCompare;
    node->offset = head.offset;
    node->field = field;
    node->name = std::move(data_name);
    node->op = op;
    node->literal = std::move(literal);
    return std::unique_ptr<Expr>(std::move(node));
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& token = Peek();
    if (Accept(TokenKind::kLParen)) {
      ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr, ParseOr());
      if (!Accept(TokenKind::kRParen)) {
        return Error(Peek().offset, "expected ')'");
      }
      return expr;
    }
    if (token.kind != TokenKind::kIdentifier) {
      return Error(token.offset, "expected a predicate");
    }
    const Token head = Next();
    if (head.text == "true" || head.text == "false") {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kConst;
      node->offset = head.offset;
      node->const_value = head.text == "true";
      return std::unique_ptr<Expr>(std::move(node));
    }
    if (head.text == "activated" || head.text == "running" ||
        head.text == "has" || head.text == "activated_since") {
      return ParseCall(head);
    }
    if (head.text == "data") {
      if (!Accept(TokenKind::kDot)) {
        return Error(Peek().offset, "expected '.' after 'data'");
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error(Peek().offset, "expected a data-element name");
      }
      const Token& field_name = Next();
      return ParseComparison(head, FieldKind::kData, field_name.text);
    }
    FieldKind field;
    if (!LookupField(head.text, &field)) {
      return Error(head.offset, "unknown field '" + head.text + "'");
    }
    return ParseComparison(head, field, "");
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<Expr>> Parse(const std::string& text) {
  ADEPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  return Parser(text, std::move(tokens)).Run();
}

}  // namespace query
}  // namespace adept
