#include "query/query_index.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "model/node.h"

namespace adept {

namespace {

const PersistentSet<NodeId>& NodeSetOf(const InstanceSnapshot& snapshot,
                                       query::NodeSet set) {
  return set == query::NodeSet::kActivated ? snapshot.activated_nodes
                                           : snapshot.running_nodes;
}

// Index key of a node in `snapshot`'s set: its activity name. Non-activity
// residents of the activated set (an XOR split awaiting its decision) and
// unnamed nodes are not indexed — matching the predicate's semantics.
const std::string* IndexedNodeName(const InstanceSnapshot& snapshot,
                                   NodeId id) {
  const Node* node = snapshot.schema->FindNode(id);
  if (node == nullptr || node->type != NodeType::kActivity ||
      node->name.empty()) {
    return nullptr;
  }
  return &node->name;
}

// Activity names in `set`, resolved through the snapshot's own schema (a
// migrated instance's node ids mean nothing outside its schema version).
std::vector<std::string> NodeNames(const InstanceSnapshot& snapshot,
                                   query::NodeSet set) {
  std::vector<std::string> names;
  if (snapshot.schema == nullptr) return names;
  NodeSetOf(snapshot, set).ForEach([&](NodeId id) {
    const std::string* name = IndexedNodeName(snapshot, id);
    if (name != nullptr) names.push_back(*name);
  });
  return names;
}

// (element name, encoded value) pairs of every written data element.
std::vector<std::pair<std::string, std::string>> DataKeys(
    const InstanceSnapshot& snapshot) {
  std::vector<std::pair<std::string, std::string>> keys;
  if (snapshot.schema == nullptr) return keys;
  keys.reserve(snapshot.data_values.size());
  snapshot.data_values.ForEach([&](DataId id, const DataValue& value) {
    const DataElement* element = snapshot.schema->FindData(id);
    if (element == nullptr || element->name.empty()) return;
    keys.emplace_back(element->name, QueryIndex::EncodeDataKey(value));
  });
  return keys;
}

std::vector<InstanceId> ToIds(
    const std::unordered_set<uint64_t>& set) {
  std::vector<InstanceId> ids;
  ids.reserve(set.size());
  for (uint64_t v : set) ids.push_back(InstanceId(v));
  return ids;
}

}  // namespace

std::string QueryIndex::EncodeDataKey(const DataValue& value) {
  switch (value.type()) {
    case DataType::kBool:
      return value.as_bool() ? "b:1" : "b:0";
    case DataType::kInt:
      return "i:" + std::to_string(value.as_int());
    case DataType::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "d:%.17g", value.as_double());
      return buf;
    }
    case DataType::kString:
      return "s:" + value.as_string();
  }
  return "s:";
}

void QueryIndex::ApplyDelta(const InstanceSnapshot* before,
                            const InstanceSnapshot* after) {
  if (before == nullptr && after == nullptr) return;
  const uint64_t id =
      (after != nullptr ? after->id : before->id).value();

  // Schema family.
  {
    const bool same = before != nullptr && after != nullptr &&
                      before->schema_ref == after->schema_ref;
    if (!same) {
      std::lock_guard<std::mutex> lock(schema_.mu);
      if (before != nullptr) {
        auto it = schema_.map.find(before->schema_ref.value());
        if (it != schema_.map.end()) {
          it->second.erase(id);
          if (it->second.empty()) schema_.map.erase(it);
        }
      }
      if (after != nullptr) {
        schema_.map[after->schema_ref.value()].insert(id);
      }
    }
  }

  // State family (lifecycle rank + biased set).
  {
    const int before_rank =
        before != nullptr ? query::SnapshotStateRank(*before) : -1;
    const int after_rank =
        after != nullptr ? query::SnapshotStateRank(*after) : -1;
    const bool before_biased = before != nullptr && before->biased;
    const bool after_biased = after != nullptr && after->biased;
    if (before_rank != after_rank || before_biased != after_biased) {
      std::lock_guard<std::mutex> lock(state_.mu);
      if (before_rank != after_rank) {
        if (before_rank >= 0) state_.by_rank[before_rank].erase(id);
        if (after_rank >= 0) state_.by_rank[after_rank].insert(id);
      }
      if (before_biased != after_biased) {
        if (before_biased) state_.biased.erase(id);
        if (after_biased) state_.biased.insert(id);
      }
    }
  }

  // Node families.
  UpdateNodeFamily(activated_, id, before, after, query::NodeSet::kActivated);
  UpdateNodeFamily(running_, id, before, after, query::NodeSet::kRunning);

  // Data family.
  UpdateDataFamily(id, before, after);

  // Version family (every publication bumps the version, so this is the
  // one family that moves on every delta — one ordered-map erase+insert).
  {
    std::lock_guard<std::mutex> lock(version_.mu);
    if (before != nullptr) {
      auto it = version_.map.find(before->version);
      if (it != version_.map.end()) {
        it->second.erase(id);
        if (it->second.empty()) version_.map.erase(it);
      }
    }
    if (after != nullptr) {
      version_.map[after->version].insert(id);
    }
  }
}

void QueryIndex::UpdateNodeFamily(NodeFamily& family, uint64_t id,
                                  const InstanceSnapshot* before,
                                  const InstanceSnapshot* after,
                                  query::NodeSet set) {
  // Fast path for the common publication: both snapshots resolve names
  // through the same schema, so the structural diff of the persistent set
  // is exactly the set of names that moved. Shared subtrees are skipped —
  // cost is O(changed nodes) per publication, not O(set width).
  if (before != nullptr && after != nullptr &&
      before->schema == after->schema && before->schema != nullptr) {
    const PersistentSet<NodeId>& b = NodeSetOf(*before, set);
    const PersistentSet<NodeId>& a = NodeSetOf(*after, set);
    if (b.SameRoot(a)) return;
    std::vector<std::string> added;
    std::vector<std::string> removed;
    b.DiffTo(a, [&](NodeId node, bool is_add) {
      const std::string* name = IndexedNodeName(*after, node);
      if (name == nullptr) return;
      (is_add ? added : removed).push_back(*name);
    });
    // A removed node's name may survive via another same-named node still
    // in the set; dropping it would make the index miss candidates. Keep
    // any removed name that `after` still contains.
    if (!removed.empty()) {
      a.ForEach([&](NodeId node) {
        const std::string* name = IndexedNodeName(*after, node);
        if (name == nullptr) return;
        removed.erase(std::remove(removed.begin(), removed.end(), *name),
                      removed.end());
      });
    }
    if (added.empty() && removed.empty()) return;
    std::lock_guard<std::mutex> lock(family.mu);
    for (const std::string& name : removed) {
      auto it = family.map.find(name);
      if (it == family.map.end()) continue;
      it->second.erase(id);
      if (it->second.empty()) family.map.erase(it);
    }
    for (const std::string& name : added) {
      family.map[name].insert(id);
    }
    return;
  }

  // Slow path (create, evict, migration/evolution): names re-resolve
  // against a different schema, so compare full name sets.
  std::vector<std::string> before_names =
      before != nullptr ? NodeNames(*before, set) : std::vector<std::string>{};
  std::vector<std::string> after_names =
      after != nullptr ? NodeNames(*after, set) : std::vector<std::string>{};
  std::sort(before_names.begin(), before_names.end());
  std::sort(after_names.begin(), after_names.end());
  if (before_names == after_names) return;
  std::lock_guard<std::mutex> lock(family.mu);
  for (const std::string& name : before_names) {
    auto it = family.map.find(name);
    if (it == family.map.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) family.map.erase(it);
  }
  for (const std::string& name : after_names) {
    family.map[name].insert(id);
  }
}

void QueryIndex::UpdateDataFamily(uint64_t id, const InstanceSnapshot* before,
                                  const InstanceSnapshot* after) {
  using Key = std::pair<std::string, std::string>;
  std::vector<Key> added;
  std::vector<Key> removed;
  if (before != nullptr && after != nullptr &&
      before->schema == after->schema && before->schema != nullptr) {
    // Same-schema publication: structurally diff the value tips. Only
    // elements whose latest value changed are visited.
    if (before->data_values.SameRoot(after->data_values)) return;
    before->data_values.DiffTo(
        after->data_values,
        [&](DataId data, const DataValue* b, const DataValue* a) {
          const DataElement* element = after->schema->FindData(data);
          if (element == nullptr || element->name.empty()) return;
          if (b != nullptr) removed.emplace_back(element->name,
                                                 EncodeDataKey(*b));
          if (a != nullptr) added.emplace_back(element->name,
                                               EncodeDataKey(*a));
        });
    // Duplicate element names: keep a removed (field, key) pair that some
    // other element of `after` still produces.
    if (!removed.empty()) {
      after->data_values.ForEach([&](DataId data, const DataValue& value) {
        const DataElement* element = after->schema->FindData(data);
        if (element == nullptr || element->name.empty()) return;
        const Key live(element->name, EncodeDataKey(value));
        removed.erase(std::remove(removed.begin(), removed.end(), live),
                      removed.end());
      });
    }
  } else {
    std::vector<Key> before_keys =
        before != nullptr ? DataKeys(*before) : std::vector<Key>{};
    std::vector<Key> after_keys =
        after != nullptr ? DataKeys(*after) : std::vector<Key>{};
    std::sort(before_keys.begin(), before_keys.end());
    std::sort(after_keys.begin(), after_keys.end());
    if (before_keys == after_keys) return;
    removed = std::move(before_keys);
    added = std::move(after_keys);
  }
  if (added.empty() && removed.empty()) return;
  std::lock_guard<std::mutex> lock(data_.mu);
  for (const auto& [field, key] : removed) {
    auto field_it = data_.map.find(field);
    if (field_it == data_.map.end()) continue;
    auto key_it = field_it->second.find(key);
    if (key_it == field_it->second.end()) continue;
    key_it->second.erase(id);
    if (key_it->second.empty()) field_it->second.erase(key_it);
    if (field_it->second.empty()) data_.map.erase(field_it);
  }
  for (const auto& [field, key] : added) {
    data_.map[field][key].insert(id);
  }
}

void QueryIndex::Clear() {
  {
    std::lock_guard<std::mutex> lock(schema_.mu);
    schema_.map.clear();
  }
  {
    std::lock_guard<std::mutex> lock(state_.mu);
    for (IdSet& set : state_.by_rank) set.clear();
    state_.biased.clear();
  }
  {
    std::lock_guard<std::mutex> lock(activated_.mu);
    activated_.map.clear();
  }
  {
    std::lock_guard<std::mutex> lock(running_.mu);
    running_.map.clear();
  }
  {
    std::lock_guard<std::mutex> lock(data_.mu);
    data_.map.clear();
  }
  {
    std::lock_guard<std::mutex> lock(version_.mu);
    version_.map.clear();
  }
}

std::vector<InstanceId> QueryIndex::BySchema(uint64_t schema_ref) const {
  std::lock_guard<std::mutex> lock(schema_.mu);
  auto it = schema_.map.find(schema_ref);
  return it == schema_.map.end() ? std::vector<InstanceId>{}
                                 : ToIds(it->second);
}

std::vector<InstanceId> QueryIndex::ByStateRank(int rank) const {
  if (rank < 0 || rank > 2) return {};
  std::lock_guard<std::mutex> lock(state_.mu);
  return ToIds(state_.by_rank[rank]);
}

std::vector<InstanceId> QueryIndex::ByBiased() const {
  std::lock_guard<std::mutex> lock(state_.mu);
  return ToIds(state_.biased);
}

std::vector<InstanceId> QueryIndex::ByNode(query::NodeSet set,
                                           const std::string& name) const {
  const NodeFamily& family =
      set == query::NodeSet::kActivated ? activated_ : running_;
  std::lock_guard<std::mutex> lock(family.mu);
  auto it = family.map.find(name);
  return it == family.map.end() ? std::vector<InstanceId>{}
                                : ToIds(it->second);
}

std::vector<InstanceId> QueryIndex::ByDataValue(const std::string& field,
                                                const DataValue& value) const {
  const std::string key = EncodeDataKey(value);
  std::lock_guard<std::mutex> lock(data_.mu);
  auto field_it = data_.map.find(field);
  if (field_it == data_.map.end()) return {};
  auto key_it = field_it->second.find(key);
  return key_it == field_it->second.end() ? std::vector<InstanceId>{}
                                          : ToIds(key_it->second);
}

std::vector<InstanceId> QueryIndex::ByVersion(query::CompareOp op,
                                              int64_t bound) const {
  using query::CompareOp;
  std::vector<InstanceId> ids;
  std::lock_guard<std::mutex> lock(version_.mu);
  // Versions are unsigned; clamp a negative bound to "below everything".
  if (bound < 0) {
    if (op == CompareOp::kLt || op == CompareOp::kLe ||
        op == CompareOp::kEq) {
      return ids;
    }
    bound = 0;  // kGt/kGe: everything qualifies, fall through with [0, end)
    op = CompareOp::kGe;
  }
  const uint64_t key = static_cast<uint64_t>(bound);
  auto begin = version_.map.begin();
  auto end = version_.map.end();
  switch (op) {
    case CompareOp::kEq: {
      auto it = version_.map.find(key);
      return it == end ? ids : ToIds(it->second);
    }
    case CompareOp::kLt:
      end = version_.map.lower_bound(key);
      break;
    case CompareOp::kLe:
      end = version_.map.upper_bound(key);
      break;
    case CompareOp::kGt:
      begin = version_.map.upper_bound(key);
      break;
    case CompareOp::kGe:
      begin = version_.map.lower_bound(key);
      break;
    case CompareOp::kNe:
      return ids;  // never planned; a != probe would be a full scan
  }
  for (auto it = begin; it != end; ++it) {
    for (uint64_t v : it->second) ids.push_back(InstanceId(v));
  }
  return ids;
}

}  // namespace adept
