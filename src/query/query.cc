#include "query/query.h"

#include <algorithm>
#include <iterator>

#include "query/query_parser.h"

namespace adept {

Result<CompiledQuery> CompiledQuery::Compile(const std::string& text) {
  ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<query::Expr> root,
                         query::Parse(text));
  return CompiledQuery(std::shared_ptr<const query::Expr>(std::move(root)),
                       text);
}

CompiledQuery CompiledQuery::MatchAll() {
  auto root = std::make_shared<query::Expr>();
  root->kind = query::ExprKind::kConst;
  root->const_value = true;
  return CompiledQuery(std::move(root), "true");
}

namespace {

using query::CompareOp;
using query::Expr;
using query::ExprKind;
using query::FieldKind;
using query::Literal;

// Top-level conjuncts of the predicate (the children of an AND chain; the
// whole tree when the root is not an AND). Only these can narrow the
// candidate set — a disjunct or negated term must see every candidate.
void FlattenConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == ExprKind::kAnd) {
    for (const auto& child : expr.children) FlattenConjuncts(*child, out);
    return;
  }
  out->push_back(&expr);
}

// An index probe the planner chose: which family to ask, keyed how.
// Lower `priority` = expected more selective.
struct Probe {
  enum class Kind {
    kNone,
    kById,      // point lookup straight off the SnapshotTable
    kData,      // exact data value
    kNode,      // activated/running node name
    kSchema,    // schema ref
    kState,     // lifecycle rank
    kBiased,    // biased set
    kVersion,   // publication-version range
  };
  Kind kind = Kind::kNone;
  const Expr* expr = nullptr;
  int priority = 1 << 20;
};

DataValue LiteralToDataValue(const Literal& literal) {
  switch (literal.type) {
    case Literal::Type::kBool:
      return DataValue::Bool(literal.bool_value);
    case Literal::Type::kInt:
      return DataValue::Int(literal.int_value);
    case Literal::Type::kDouble:
      return DataValue::Double(literal.double_value);
    case Literal::Type::kString:
      return DataValue::String(literal.string_value);
  }
  return DataValue();
}

Probe ClassifyConjunct(const Expr& conjunct) {
  Probe probe;
  probe.expr = &conjunct;
  if (conjunct.kind == ExprKind::kNodeIn ||
      conjunct.kind == ExprKind::kActivatedSince) {
    // activated_since probes the activated-node family: every match is
    // activated in the named node, so the index candidates are a superset
    // and full evaluation applies the sequence bound. (node_set defaults
    // to kActivated on kActivatedSince exprs.)
    probe.kind = Probe::Kind::kNode;
    probe.priority = 2;
    return probe;
  }
  if (conjunct.kind != ExprKind::kCompare) return probe;
  const bool is_eq = conjunct.op == CompareOp::kEq;
  switch (conjunct.field) {
    case FieldKind::kId:
      if (is_eq && conjunct.literal.type == Literal::Type::kInt) {
        probe.kind = Probe::Kind::kById;
        probe.priority = 0;
      }
      break;
    case FieldKind::kData:
      if (is_eq) {
        probe.kind = Probe::Kind::kData;
        probe.priority = 1;
      }
      break;
    case FieldKind::kSchema:
      if (is_eq && conjunct.literal.type == Literal::Type::kInt) {
        probe.kind = Probe::Kind::kSchema;
        probe.priority = 3;
      }
      break;
    case FieldKind::kState:
      if (is_eq && conjunct.literal.type == Literal::Type::kString &&
          query::StateRankOfName(conjunct.literal.string_value) >= 0) {
        probe.kind = Probe::Kind::kState;
        probe.priority = 4;
      }
      break;
    case FieldKind::kBiased:
      if (is_eq && conjunct.literal.type == Literal::Type::kBool &&
          conjunct.literal.bool_value) {
        probe.kind = Probe::Kind::kBiased;
        probe.priority = 5;
      }
      break;
    case FieldKind::kVersion:
      if (conjunct.op != CompareOp::kNe &&
          conjunct.literal.type == Literal::Type::kInt) {
        probe.kind = Probe::Kind::kVersion;
        probe.priority = 6;
      }
      break;
    default:
      break;
  }
  return probe;
}

// The two cheapest indexable conjuncts, best first (the plan: probe the
// best; when a second exists, intersect its candidates with the first's
// before touching the snapshot table). `id == K` short-circuits to a
// point lookup, so it is never paired.
std::vector<Probe> ChooseProbes(const Expr& root) {
  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(root, &conjuncts);
  std::vector<Probe> probes;
  for (const Expr* conjunct : conjuncts) {
    Probe probe = ClassifyConjunct(*conjunct);
    if (probe.kind == Probe::Kind::kNone) continue;
    probes.push_back(probe);
  }
  std::stable_sort(probes.begin(), probes.end(),
                   [](const Probe& a, const Probe& b) {
                     return a.priority < b.priority;
                   });
  if (!probes.empty() && probes.front().kind == Probe::Kind::kById) {
    probes.resize(1);
  } else if (probes.size() > 2) {
    probes.resize(2);
  }
  return probes;
}

std::vector<InstanceId> ProbeCandidates(const Probe& probe,
                                        const QueryIndex& index) {
  const Expr& e = *probe.expr;
  switch (probe.kind) {
    case Probe::Kind::kData:
      return index.ByDataValue(e.name, LiteralToDataValue(e.literal));
    case Probe::Kind::kNode:
      return index.ByNode(e.node_set, e.name);
    case Probe::Kind::kSchema:
      return index.BySchema(
          static_cast<uint64_t>(e.literal.int_value));
    case Probe::Kind::kState:
      return index.ByStateRank(
          query::StateRankOfName(e.literal.string_value));
    case Probe::Kind::kBiased:
      return index.ByBiased();
    case Probe::Kind::kVersion:
      return index.ByVersion(e.op, e.literal.int_value);
    case Probe::Kind::kNone:
    case Probe::Kind::kById:
      break;
  }
  return {};
}

}  // namespace

void RunQueryInto(const CompiledQuery& query, const SnapshotTable& table,
                  const QueryIndex* index, QueryResult* result) {
  const std::vector<Probe> probes = ChooseProbes(query.root());

  // An `id == K` conjunct needs no index at all: the snapshot table is
  // already a point-lookup structure.
  if (!probes.empty() && probes.front().kind == Probe::Kind::kById) {
    result->used_index = true;
    result->index_probes = 1;
    const int64_t raw = probes.front().expr->literal.int_value;
    if (raw <= 0) return;
    ++result->evaluated;
    std::shared_ptr<const InstanceSnapshot> snapshot =
        table.Get(InstanceId(static_cast<uint64_t>(raw)));
    if (snapshot != nullptr && query.Matches(*snapshot)) {
      result->snapshots.push_back(std::move(snapshot));
    }
    return;
  }

  if (index != nullptr && !probes.empty()) {
    // Candidates from the index, truth from the table: re-fetch the
    // current snapshot and re-evaluate the full predicate, so a trailing
    // index entry can never surface a stale-wrong match. With a second
    // indexable conjunct, intersect the two candidate sets first — the
    // table fetch + full-predicate evaluation (the expensive part) then
    // runs only on ids both indexes agree on.
    result->used_index = true;
    result->index_probes = 1;
    std::vector<InstanceId> candidates = ProbeCandidates(probes[0], *index);
    if (probes.size() > 1 && !candidates.empty()) {
      result->index_probes = 2;
      std::vector<InstanceId> second = ProbeCandidates(probes[1], *index);
      std::sort(candidates.begin(), candidates.end());
      std::sort(second.begin(), second.end());
      std::vector<InstanceId> both;
      both.reserve(std::min(candidates.size(), second.size()));
      std::set_intersection(candidates.begin(), candidates.end(),
                            second.begin(), second.end(),
                            std::back_inserter(both));
      candidates = std::move(both);
    }
    for (InstanceId id : candidates) {
      ++result->evaluated;
      std::shared_ptr<const InstanceSnapshot> snapshot = table.Get(id);
      if (snapshot != nullptr && query.Matches(*snapshot)) {
        result->snapshots.push_back(std::move(snapshot));
      }
    }
    return;
  }

  // No indexable conjunct (or indexes disabled): full scan.
  std::vector<std::shared_ptr<const InstanceSnapshot>> all;
  table.Collect(&all);
  result->evaluated += all.size();
  for (auto& snapshot : all) {
    if (snapshot != nullptr && query.Matches(*snapshot)) {
      result->snapshots.push_back(std::move(snapshot));
    }
  }
}

void SortQueryResult(QueryResult* result) {
  std::sort(result->snapshots.begin(), result->snapshots.end(),
            [](const std::shared_ptr<const InstanceSnapshot>& a,
               const std::shared_ptr<const InstanceSnapshot>& b) {
              return a->id.value() < b->id.value();
            });
}

QueryResult RunQuery(const CompiledQuery& query, const SnapshotTable& table,
                     const QueryIndex* index) {
  QueryResult result;
  RunQueryInto(query, table, index, &result);
  SortQueryResult(&result);
  return result;
}

}  // namespace adept
