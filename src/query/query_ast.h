// Typed predicate tree of the process query language.
//
// A parsed query is a small expression tree evaluated against one
// InstanceSnapshot: comparisons between a snapshot field and a literal,
// node-set membership tests (activated("x") / running("x")), data-element
// presence tests (has("field")), and the boolean connectives. Evaluation
// is pure and lock-free — it touches only the immutable snapshot and the
// SchemaView its shared_ptr pins — so a predicate may run on any thread
// against any published snapshot, exactly like every other consumer of
// the PR-5 read path.
//
// Typed comparison semantics (the contract tests/query_test.cc pins):
//   * equality (==, !=) requires the operand types to match exactly; a
//     type mismatch or a missing data field makes the comparison false —
//     also for !=, so `!=` reads "present, same type, different value".
//     This keeps == exactly as selective as the value index's exact-key
//     probes, which is what makes indexed and scanned execution agree.
//   * ordering (<, <=, >, >=) compares numbers (int coerced to double
//     when mixed with a double) and strings (lexicographic); bools and
//     mismatched kinds never order (false).

#ifndef ADEPT_QUERY_QUERY_AST_H_
#define ADEPT_QUERY_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/instance_snapshot.h"

namespace adept {
namespace query {

// Queryable snapshot fields. Everything except kData is intrinsic to the
// instance; kData resolves `data.<name>` through the snapshot's schema.
enum class FieldKind {
  kId,              // instance id (int)
  kType,            // schema type name (string)
  kSchema,          // execution schema ref (int)
  kSchemaVersion,   // schema version within the type (int)
  kState,           // "created" | "running" | "finished" (string)
  kBiased,          // ad-hoc deviated (bool)
  kVersion,         // last-publication version (int; staleness queries)
  kTraceLength,     // trace event count (int)
  kCompletedTotal,  // sum of per-node completed runs (int)
  kData,            // data.<name>: latest value of the data element
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class NodeSet { kActivated, kRunning };

const char* CompareOpToString(CompareOp op);
const char* FieldKindToString(FieldKind field);

// A literal operand as written in the query text.
struct Literal {
  enum class Type { kBool, kInt, kDouble, kString };

  Type type = Type::kInt;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;

  static Literal Bool(bool v);
  static Literal Int(int64_t v);
  static Literal Double(double v);
  static Literal String(std::string v);

  // Re-parseable spelling (strings quoted + escaped; doubles keep a '.').
  void AppendTo(std::string* out) const;
};

// Lifecycle state reported for `state` comparisons and the state index:
// rank 0 "created" (never started), 1 "running", 2 "finished".
int SnapshotStateRank(const InstanceSnapshot& snapshot);
const char* StateRankName(int rank);
int StateRankOfName(const std::string& name);  // -1 when unknown

enum class ExprKind {
  kConst,
  kCompare,
  kNodeIn,
  // activated_since("node", k): the named node is currently Activated and
  // last entered that state at trace sequence <= k. Combined with
  // trace_next_sequence this answers "blocked in activity X since logical
  // time k" without any wall-clock in the snapshot.
  kActivatedSince,
  kHasData,
  kNot,
  kAnd,
  kOr,
};

struct Expr {
  ExprKind kind = ExprKind::kConst;
  // kAnd/kOr: two or more children; kNot: exactly one.
  std::vector<std::unique_ptr<Expr>> children;
  // kCompare:
  FieldKind field = FieldKind::kId;
  CompareOp op = CompareOp::kEq;
  Literal literal;
  // kCompare(kData): data-element name; kNodeIn / kActivatedSince /
  // kHasData: node resp. data-element name. kActivatedSince also uses
  // `literal` (int) as the sequence threshold.
  std::string name;
  // kNodeIn:
  NodeSet node_set = NodeSet::kActivated;
  // kConst:
  bool const_value = false;
  // Byte offset of the construct in the query text (error reporting).
  size_t offset = 0;

  bool Eval(const InstanceSnapshot& snapshot) const;

  // Canonical re-printable form; parsing ToString() yields an equivalent
  // tree (the parser round-trip contract).
  void AppendTo(std::string* out) const;
  std::string ToString() const;
};

}  // namespace query
}  // namespace adept

#endif  // ADEPT_QUERY_QUERY_AST_H_
