// Recursive-descent parser of the process query language.
//
// Grammar (precedence low to high; '&&'/'||' also spellable 'and'/'or',
// '!' also 'not'):
//
//   query    := or-expr
//   or-expr  := and-expr ( '||' and-expr )*
//   and-expr := unary ( '&&' unary )*
//   unary    := '!' unary | primary
//   primary  := '(' or-expr ')'
//             | 'true' | 'false'
//             | 'activated' '(' string ')'      node currently Activated
//             | 'running'   '(' string ')'      node currently Running
//             | 'has'       '(' string ')'      data element ever written
//             | 'biased'                        sugar for biased == true
//             | field op literal
//   field    := 'id' | 'type' | 'schema' | 'schema_version' | 'state'
//             | 'biased' | 'version' | 'trace_length' | 'completed_total'
//             | 'data' '.' identifier
//   op       := '==' | '!=' | '<' | '<=' | '>' | '>='
//   literal  := int | double | string | 'true' | 'false' | identifier
//
// A bare identifier on the right-hand side of a comparison is shorthand
// for a string literal (`state == running` ≡ `state == "running"`).
// Errors are kInvalidArgument with the offending offset and a caret line
// (query_lexer.h's QueryError format).

#ifndef ADEPT_QUERY_QUERY_PARSER_H_
#define ADEPT_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "query/query_ast.h"

namespace adept {
namespace query {

Result<std::unique_ptr<Expr>> Parse(const std::string& text);

}  // namespace query
}  // namespace adept

#endif  // ADEPT_QUERY_QUERY_PARSER_H_
