// Lexer of the process query language (src/query/README.md).
//
// Tokenizes a query string into operator/literal/identifier tokens, each
// carrying its byte offset into the source text so the parser (and the
// lexer itself) can report errors with an exact span:
//
//   state == runing && data.priority >= 3
//            ^ unknown state name 'runing' at offset 9
//
// The language is tiny on purpose — it has to stay evaluable against an
// immutable InstanceSnapshot with no callbacks into the engine.

#ifndef ADEPT_QUERY_QUERY_LEXER_H_
#define ADEPT_QUERY_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace adept {
namespace query {

enum class TokenKind {
  kIdentifier,  // field / function / bare-word names, true/false
  kInt,         // 64-bit integer literal
  kDouble,      // floating literal (has '.' or exponent)
  kString,      // double-quoted, with \" \\ \n \t escapes
  kEq,          // ==
  kNe,          // !=
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kAndAnd,      // && (or the word 'and')
  kOrOr,        // || (or the word 'or')
  kBang,        // !  (or the word 'not')
  kLParen,      // (
  kRParen,      // )
  kDot,         // .
  kComma,       // ,  (argument separator in two-arg calls)
  kEnd,         // end of input (always the last token)
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  // kIdentifier: the name; kString: the unescaped contents; kInt/kDouble:
  // the literal's spelling; operators: empty.
  std::string text;
  // Byte offset of the token's first character in the query text.
  size_t offset = 0;
  int64_t int_value = 0;
  double double_value = 0.0;
};

// Builds a kInvalidArgument status whose message carries the offset and a
// caret-annotated copy of the query line — the error-span format shared
// by the lexer and the parser.
Status QueryError(const std::string& text, size_t offset,
                  const std::string& what);

// Tokenizes `text`; the result always ends with a kEnd token. Returns
// kInvalidArgument (via QueryError) on unterminated strings, malformed
// numbers, or characters outside the language.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace query
}  // namespace adept

#endif  // ADEPT_QUERY_QUERY_LEXER_H_
