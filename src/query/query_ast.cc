#include "query/query_ast.h"

#include <cstdio>
#include <utility>

#include "model/node.h"

namespace adept {
namespace query {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "==";
}

const char* FieldKindToString(FieldKind field) {
  switch (field) {
    case FieldKind::kId:
      return "id";
    case FieldKind::kType:
      return "type";
    case FieldKind::kSchema:
      return "schema";
    case FieldKind::kSchemaVersion:
      return "schema_version";
    case FieldKind::kState:
      return "state";
    case FieldKind::kBiased:
      return "biased";
    case FieldKind::kVersion:
      return "version";
    case FieldKind::kTraceLength:
      return "trace_length";
    case FieldKind::kCompletedTotal:
      return "completed_total";
    case FieldKind::kData:
      return "data";
  }
  return "id";
}

Literal Literal::Bool(bool v) {
  Literal l;
  l.type = Type::kBool;
  l.bool_value = v;
  return l;
}

Literal Literal::Int(int64_t v) {
  Literal l;
  l.type = Type::kInt;
  l.int_value = v;
  return l;
}

Literal Literal::Double(double v) {
  Literal l;
  l.type = Type::kDouble;
  l.double_value = v;
  return l;
}

Literal Literal::String(std::string v) {
  Literal l;
  l.type = Type::kString;
  l.string_value = std::move(v);
  return l;
}

namespace {

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
        break;
    }
  }
  out->push_back('"');
}

}  // namespace

void Literal::AppendTo(std::string* out) const {
  switch (type) {
    case Type::kBool:
      *out += bool_value ? "true" : "false";
      return;
    case Type::kInt:
      *out += std::to_string(int_value);
      return;
    case Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", double_value);
      std::string s(buf);
      // Keep the literal a double through a re-parse: "%g" drops the
      // point for integral values, which would flip the type to int.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos) {
        s += ".0";
      }
      *out += s;
      return;
    }
    case Type::kString:
      AppendQuoted(string_value, out);
      return;
  }
}

int SnapshotStateRank(const InstanceSnapshot& snapshot) {
  if (snapshot.finished) return 2;
  if (snapshot.started) return 1;
  return 0;
}

const char* StateRankName(int rank) {
  switch (rank) {
    case 0:
      return "created";
    case 1:
      return "running";
    default:
      return "finished";
  }
}

int StateRankOfName(const std::string& name) {
  if (name == "created") return 0;
  if (name == "running") return 1;
  if (name == "finished") return 2;
  return -1;
}

namespace {

// The evaluated value of a snapshot field — Literal's domain plus
// "missing" (unknown data element, or never written).
struct FieldValue {
  enum class Type { kMissing, kBool, kInt, kDouble, kString };
  Type type = Type::kMissing;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
};

FieldValue MissingValue() { return FieldValue(); }

FieldValue IntValue(int64_t v) {
  FieldValue f;
  f.type = FieldValue::Type::kInt;
  f.int_value = v;
  return f;
}

FieldValue BoolValue(bool v) {
  FieldValue f;
  f.type = FieldValue::Type::kBool;
  f.bool_value = v;
  return f;
}

FieldValue StringValue(std::string v) {
  FieldValue f;
  f.type = FieldValue::Type::kString;
  f.string_value = std::move(v);
  return f;
}

FieldValue ExtractField(const InstanceSnapshot& snapshot, FieldKind field,
                        const std::string& name) {
  switch (field) {
    case FieldKind::kId:
      return IntValue(static_cast<int64_t>(snapshot.id.value()));
    case FieldKind::kType:
      if (snapshot.schema == nullptr) return MissingValue();
      return StringValue(snapshot.schema->type_name());
    case FieldKind::kSchema:
      return IntValue(static_cast<int64_t>(snapshot.schema_ref.value()));
    case FieldKind::kSchemaVersion:
      if (snapshot.schema == nullptr) return MissingValue();
      return IntValue(snapshot.schema->version());
    case FieldKind::kState:
      return StringValue(StateRankName(SnapshotStateRank(snapshot)));
    case FieldKind::kBiased:
      return BoolValue(snapshot.biased);
    case FieldKind::kVersion:
      return IntValue(static_cast<int64_t>(snapshot.version));
    case FieldKind::kTraceLength:
      return IntValue(snapshot.trace_length);
    case FieldKind::kCompletedTotal:
      return IntValue(static_cast<int64_t>(snapshot.completed_total));
    case FieldKind::kData: {
      if (snapshot.schema == nullptr) return MissingValue();
      DataId id = snapshot.schema->FindDataByName(name);
      if (!id.valid()) return MissingValue();
      const DataValue* found = snapshot.data_values.Find(id);
      if (found == nullptr) return MissingValue();
      const DataValue& value = *found;
      switch (value.type()) {
        case DataType::kBool:
          return BoolValue(value.as_bool());
        case DataType::kInt:
          return IntValue(value.as_int());
        case DataType::kDouble: {
          FieldValue f;
          f.type = FieldValue::Type::kDouble;
          f.double_value = value.as_double();
          return f;
        }
        case DataType::kString:
          return StringValue(value.as_string());
      }
      return MissingValue();
    }
  }
  return MissingValue();
}

bool SameType(const FieldValue& v, const Literal& lit) {
  switch (lit.type) {
    case Literal::Type::kBool:
      return v.type == FieldValue::Type::kBool;
    case Literal::Type::kInt:
      return v.type == FieldValue::Type::kInt;
    case Literal::Type::kDouble:
      return v.type == FieldValue::Type::kDouble;
    case Literal::Type::kString:
      return v.type == FieldValue::Type::kString;
  }
  return false;
}

bool EqualValues(const FieldValue& v, const Literal& lit) {
  switch (lit.type) {
    case Literal::Type::kBool:
      return v.bool_value == lit.bool_value;
    case Literal::Type::kInt:
      return v.int_value == lit.int_value;
    case Literal::Type::kDouble:
      return v.double_value == lit.double_value;
    case Literal::Type::kString:
      return v.string_value == lit.string_value;
  }
  return false;
}

bool IsNumeric(FieldValue::Type t) {
  return t == FieldValue::Type::kInt || t == FieldValue::Type::kDouble;
}

bool IsNumeric(Literal::Type t) {
  return t == Literal::Type::kInt || t == Literal::Type::kDouble;
}

bool OrderToBool(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
  }
  return false;
}

bool CompareValues(const FieldValue& v, CompareOp op, const Literal& lit) {
  if (v.type == FieldValue::Type::kMissing) return false;
  if (op == CompareOp::kEq || op == CompareOp::kNe) {
    if (!SameType(v, lit)) return false;
    const bool eq = EqualValues(v, lit);
    return op == CompareOp::kEq ? eq : !eq;
  }
  // Ordering.
  if (IsNumeric(v.type) && IsNumeric(lit.type)) {
    if (v.type == FieldValue::Type::kInt && lit.type == Literal::Type::kInt) {
      const int64_t a = v.int_value;
      const int64_t b = lit.int_value;
      return OrderToBool(op, a < b ? -1 : (a > b ? 1 : 0));
    }
    const double a = v.type == FieldValue::Type::kInt
                         ? static_cast<double>(v.int_value)
                         : v.double_value;
    const double b = lit.type == Literal::Type::kInt
                         ? static_cast<double>(lit.int_value)
                         : lit.double_value;
    return OrderToBool(op, a < b ? -1 : (a > b ? 1 : 0));
  }
  if (v.type == FieldValue::Type::kString &&
      lit.type == Literal::Type::kString) {
    const int cmp = v.string_value.compare(lit.string_value);
    return OrderToBool(op, cmp < 0 ? -1 : (cmp > 0 ? 1 : 0));
  }
  return false;
}

bool NodeSetContains(const InstanceSnapshot& snapshot, NodeSet set,
                     const std::string& name) {
  if (snapshot.schema == nullptr) return false;
  const PersistentSet<NodeId>& nodes = set == NodeSet::kActivated
                                           ? snapshot.activated_nodes
                                           : snapshot.running_nodes;
  // The activated set can hold non-activity residents (an XOR split
  // waiting for its decision data); the query predicate keeps its
  // pre-refactor meaning of "activity offered/being worked on".
  bool found = false;
  nodes.ForEach([&](NodeId id) {
    if (found) return;
    const Node* node = snapshot.schema->FindNode(id);
    if (node != nullptr && node->type == NodeType::kActivity &&
        node->name == name) {
      found = true;
    }
  });
  return found;
}

}  // namespace

bool Expr::Eval(const InstanceSnapshot& snapshot) const {
  switch (kind) {
    case ExprKind::kConst:
      return const_value;
    case ExprKind::kCompare:
      // `state` compares by lifecycle rank (created < running < finished),
      // not by the lexicographic order of the state names; the parser
      // guarantees the literal is one of the three names.
      if (field == FieldKind::kState) {
        const int rank = SnapshotStateRank(snapshot);
        const int want = StateRankOfName(literal.type ==
                                                 Literal::Type::kString
                                             ? literal.string_value
                                             : std::string());
        if (want < 0) return false;
        return OrderToBool(op, rank < want ? -1 : (rank > want ? 1 : 0));
      }
      return CompareValues(ExtractField(snapshot, field, name), op, literal);
    case ExprKind::kNodeIn:
      return NodeSetContains(snapshot, node_set, name);
    case ExprKind::kActivatedSince: {
      if (snapshot.schema == nullptr) return false;
      if (literal.type != Literal::Type::kInt) return false;
      bool found = false;
      snapshot.activated_nodes.ForEach([&](NodeId id) {
        if (found) return;
        const Node* node = snapshot.schema->FindNode(id);
        if (node == nullptr || node->type != NodeType::kActivity ||
            node->name != name) {
          return;
        }
        const int64_t* since = snapshot.activated_since.Find(id);
        if (since != nullptr && *since <= literal.int_value) found = true;
      });
      return found;
    }
    case ExprKind::kHasData: {
      if (snapshot.schema == nullptr) return false;
      DataId id = snapshot.schema->FindDataByName(name);
      return id.valid() && snapshot.data_values.Contains(id);
    }
    case ExprKind::kNot:
      return !children[0]->Eval(snapshot);
    case ExprKind::kAnd:
      for (const auto& child : children) {
        if (!child->Eval(snapshot)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const auto& child : children) {
        if (child->Eval(snapshot)) return true;
      }
      return false;
  }
  return false;
}

void Expr::AppendTo(std::string* out) const {
  switch (kind) {
    case ExprKind::kConst:
      *out += const_value ? "true" : "false";
      return;
    case ExprKind::kCompare:
      if (field == FieldKind::kData) {
        *out += "data.";
        *out += name;
      } else {
        *out += FieldKindToString(field);
      }
      *out += ' ';
      *out += CompareOpToString(op);
      *out += ' ';
      literal.AppendTo(out);
      return;
    case ExprKind::kNodeIn:
      *out += node_set == NodeSet::kActivated ? "activated(" : "running(";
      AppendQuoted(name, out);
      *out += ')';
      return;
    case ExprKind::kActivatedSince:
      *out += "activated_since(";
      AppendQuoted(name, out);
      *out += ", ";
      literal.AppendTo(out);
      *out += ')';
      return;
    case ExprKind::kHasData:
      *out += "has(";
      AppendQuoted(name, out);
      *out += ')';
      return;
    case ExprKind::kNot:
      *out += "!(";
      children[0]->AppendTo(out);
      *out += ')';
      return;
    case ExprKind::kAnd:
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) *out += " && ";
        const bool parens = children[i]->kind == ExprKind::kOr;
        if (parens) *out += '(';
        children[i]->AppendTo(out);
        if (parens) *out += ')';
      }
      return;
    case ExprKind::kOr:
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) *out += " || ";
        children[i]->AppendTo(out);
      }
      return;
  }
}

std::string Expr::ToString() const {
  std::string out;
  AppendTo(&out);
  return out;
}

}  // namespace query
}  // namespace adept
