#include "query/query_lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <utility>

namespace adept {
namespace query {

Status QueryError(const std::string& text, size_t offset,
                  const std::string& what) {
  if (offset > text.size()) offset = text.size();
  std::string message = what + " at offset " + std::to_string(offset);
  message += "\n  ";
  message += text;
  message += "\n  ";
  message.append(offset, ' ');
  message += '^';
  return Status::InvalidArgument(message);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    // Two-character operators first.
    if (i + 1 < n) {
      const char d = text[i + 1];
      TokenKind two = TokenKind::kEnd;
      if (c == '=' && d == '=') two = TokenKind::kEq;
      if (c == '!' && d == '=') two = TokenKind::kNe;
      if (c == '<' && d == '=') two = TokenKind::kLe;
      if (c == '>' && d == '=') two = TokenKind::kGe;
      if (c == '&' && d == '&') two = TokenKind::kAndAnd;
      if (c == '|' && d == '|') two = TokenKind::kOrOr;
      if (two != TokenKind::kEnd) {
        token.kind = two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '<':
        token.kind = TokenKind::kLt;
        break;
      case '>':
        token.kind = TokenKind::kGt;
        break;
      case '!':
        token.kind = TokenKind::kBang;
        break;
      case '(':
        token.kind = TokenKind::kLParen;
        break;
      case ')':
        token.kind = TokenKind::kRParen;
        break;
      case '.':
        token.kind = TokenKind::kDot;
        break;
      case ',':
        token.kind = TokenKind::kComma;
        break;
      default:
        token.kind = TokenKind::kEnd;  // not a single-char operator
        break;
    }
    if (token.kind != TokenKind::kEnd) {
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    if (c == '"') {
      // String literal with a small escape set.
      token.kind = TokenKind::kString;
      size_t j = i + 1;
      while (j < n && text[j] != '"') {
        char out = text[j];
        if (out == '\\') {
          if (j + 1 >= n) break;
          ++j;
          switch (text[j]) {
            case 'n':
              out = '\n';
              break;
            case 't':
              out = '\t';
              break;
            case '"':
              out = '"';
              break;
            case '\\':
              out = '\\';
              break;
            default:
              return QueryError(text, j - 1, "unknown string escape");
          }
        }
        token.text += out;
        ++j;
      }
      if (j >= n) return QueryError(text, i, "unterminated string literal");
      tokens.push_back(std::move(token));
      i = j + 1;
      continue;
    }
    if (IsDigit(c) || (c == '-' && i + 1 < n && IsDigit(text[i + 1]))) {
      size_t j = i;
      if (text[j] == '-') ++j;
      while (j < n && IsDigit(text[j])) ++j;
      bool floating = false;
      if (j < n && text[j] == '.' && j + 1 < n && IsDigit(text[j + 1])) {
        floating = true;
        ++j;
        while (j < n && IsDigit(text[j])) ++j;
      }
      token.text = text.substr(i, j - i);
      errno = 0;
      if (floating) {
        token.kind = TokenKind::kDouble;
        token.double_value = std::strtod(token.text.c_str(), nullptr);
      } else {
        token.kind = TokenKind::kInt;
        token.int_value =
            static_cast<int64_t>(std::strtoll(token.text.c_str(), nullptr, 10));
      }
      if (errno == ERANGE) {
        return QueryError(text, i, "numeric literal out of range");
      }
      tokens.push_back(std::move(token));
      i = j;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      token.text = text.substr(i, j - i);
      if (token.text == "and") {
        token.kind = TokenKind::kAndAnd;
      } else if (token.text == "or") {
        token.kind = TokenKind::kOrOr;
      } else if (token.text == "not") {
        token.kind = TokenKind::kBang;
      } else {
        token.kind = TokenKind::kIdentifier;
      }
      tokens.push_back(std::move(token));
      i = j;
      continue;
    }
    return QueryError(text, i,
                      std::string("unexpected character '") + c + "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace query
}  // namespace adept
