// QueryIndex: secondary indexes over published InstanceSnapshots.
//
// Six index families, all keyed to answer the equality/range probes the
// query planner (query.cc) emits:
//
//   schema     execution schema ref        -> instance ids
//   state      lifecycle rank + biased set -> instance ids
//   activated  activated node *name*       -> instance ids
//   running    running node *name*         -> instance ids
//   data       (element name, exact value) -> instance ids
//   version    last-publication version    -> instance ids (ordered map,
//              so staleness queries like `version <= K` are range scans)
//
// Maintenance is a delta update driven from the same snapshot-publication
// hook that feeds the striped SnapshotTable: AdeptSystem::PublishSnapshot
// hands the previous and the new snapshot to ApplyDelta, which touches
// only the families whose keys actually changed. Publication is already
// serialized per system (the shard lock / the single-threaded facade), so
// there is never more than one writer — the per-family mutexes only order
// the writer against concurrent query readers, and no query ever takes a
// shard mutex.
//
// Correctness contract: a lookup returns *candidates*, not results. The
// index trails the snapshot table by one publication (the delta is
// applied right after the table swap), so a candidate set may contain an
// id whose current snapshot no longer matches, or briefly miss one that
// just started matching. The query executor therefore re-fetches every
// candidate's current snapshot and re-evaluates the full predicate
// against it — index staleness can cost a candidate fetch, never a
// stale-wrong result. Index-vs-scan equivalence holds whenever the system
// is quiesced (tests/query_test.cc pins both properties).
//
// Lifecycle: eviction/deletion removes the id (ApplyDelta with a null
// `after`), a cross-shard move re-indexes on the destination through its
// own publication hook, and Recover() rebuilds the whole index via
// PublishAllSnapshots — there is no separate persistence.

#ifndef ADEPT_QUERY_QUERY_INDEX_H_
#define ADEPT_QUERY_QUERY_INDEX_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "query/query_ast.h"
#include "runtime/data_value.h"
#include "runtime/instance_snapshot.h"

namespace adept {

class QueryIndex {
 public:
  QueryIndex() = default;
  QueryIndex(const QueryIndex&) = delete;
  QueryIndex& operator=(const QueryIndex&) = delete;

  // Applies the publication delta `before` -> `after`. `before` is null
  // on an instance's first publication, `after` is null on eviction/
  // deletion; both null is a no-op. Caller: the (serialized) snapshot
  // publisher, right after the SnapshotTable swap.
  void ApplyDelta(const InstanceSnapshot* before,
                  const InstanceSnapshot* after);

  void Clear();

  // --- Candidate lookups (see the correctness contract above) ---------------

  std::vector<InstanceId> BySchema(uint64_t schema_ref) const;
  // `rank`: 0 created, 1 running, 2 finished (query::SnapshotStateRank).
  std::vector<InstanceId> ByStateRank(int rank) const;
  std::vector<InstanceId> ByBiased() const;
  std::vector<InstanceId> ByNode(query::NodeSet set,
                                 const std::string& name) const;
  std::vector<InstanceId> ByDataValue(const std::string& field,
                                      const DataValue& value) const;
  // Ids whose last-publication version satisfies `version <op> bound`
  // (op is never kNe; the planner does not emit it).
  std::vector<InstanceId> ByVersion(query::CompareOp op, int64_t bound) const;

  // Exact-type value encoding shared by maintenance and probes ("i:42",
  // "s:express", "b:1", "d:2.5"); equality's type-strictness means one
  // probe key per literal.
  static std::string EncodeDataKey(const DataValue& value);

 private:
  using IdSet = std::unordered_set<uint64_t>;

  struct SchemaFamily {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, IdSet> map;
  };
  struct StateFamily {
    mutable std::mutex mu;
    IdSet by_rank[3];
    IdSet biased;
  };
  struct NodeFamily {
    mutable std::mutex mu;
    std::unordered_map<std::string, IdSet> map;
  };
  struct DataFamily {
    mutable std::mutex mu;
    // element name -> encoded value -> ids.
    std::unordered_map<std::string, std::unordered_map<std::string, IdSet>>
        map;
  };
  struct VersionFamily {
    mutable std::mutex mu;
    std::map<uint64_t, IdSet> map;
  };

  void UpdateNodeFamily(NodeFamily& family, uint64_t id,
                        const InstanceSnapshot* before,
                        const InstanceSnapshot* after, query::NodeSet set);
  void UpdateDataFamily(uint64_t id, const InstanceSnapshot* before,
                        const InstanceSnapshot* after);

  SchemaFamily schema_;
  StateFamily state_;
  NodeFamily activated_;
  NodeFamily running_;
  DataFamily data_;
  VersionFamily version_;
};

}  // namespace adept

#endif  // ADEPT_QUERY_QUERY_INDEX_H_
