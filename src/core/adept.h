// AdeptSystem: the public facade of the adaptive process management system.
//
// This is the API a downstream application programs against. It composes
// every substrate of the reproduction:
//
//   SchemaRepository   versioned process type storage (+ deltas)
//   Engine             running instances with ADEPT marking semantics
//   InstanceStore      Fig. 2 storage representations (overlay/copy/on-demand)
//   compliance         ad-hoc changes, compliance checks, migration
//   OrgModel/Worklists staff assignment and work items
//   monitor            Fig. 3 reports and visualization (separate headers)
//   WAL + snapshots    durability: every state-changing call is logged via
//                      a group-commit WalWriter (storage/wal_writer.h) with
//                      a configurable SyncMode; Recover() replays the log
//                      tail above the snapshot's covered LSN;
//                      SaveSnapshot() checkpoints and truncates the log
//
// Threading: the facade is single-threaded by design (one engine turn at a
// time), matching the original prototype's per-server execution model.
// Concurrency is layered on top: cluster/adept_cluster.h partitions
// instances across N AdeptSystem shards (one mutex each) behind the same
// AdeptApi interface.

#ifndef ADEPT_CORE_ADEPT_H_
#define ADEPT_CORE_ADEPT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "change/delta.h"
#include "common/status.h"
#include "compliance/migration.h"
#include "core/adept_api.h"
#include "model/schema.h"
#include "org/org_model.h"
#include "org/worklist.h"
#include "runtime/driver.h"
#include "runtime/engine.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"

namespace adept {

struct AdeptOptions {
  // Representation for biased instances (paper Fig. 2; kOverlay = hybrid).
  StorageStrategy default_strategy = StorageStrategy::kOverlay;
  // Write-ahead log path; empty disables durability.
  std::string wal_path;
  // Snapshot path used by SaveSnapshot()/Recover(); empty disables.
  std::string snapshot_path;
  // Durability level applied per group-commit batch (see SyncMode in
  // storage/wal.h). kFlush matches the historical per-append fflush.
  SyncMode sync = SyncMode::kFlush;
  // When true, state-changing calls only *enqueue* their WAL record and
  // return without waiting for durability; callers then await
  // WaitWalDurable(last_enqueued_lsn()) themselves. The cluster layer uses
  // this to overlap engine work with WAL I/O across shards.
  bool defer_wal_sync = false;
  // Maintain the secondary query indexes (src/query/README.md) on every
  // snapshot publication. Disabling trades indexed Query() execution
  // (falls back to full scans) for zero index-delta work on the mutation
  // path — benchmarks price the difference.
  bool query_indexes = true;
};

class AdeptSystem : public AdeptApi {
 public:
  // Fresh system (ignores any existing WAL/snapshot files).
  static Result<std::unique_ptr<AdeptSystem>> Create(
      const AdeptOptions& options = {});

  // Rebuilds a system from the snapshot (if present) plus the WAL tail.
  // Tolerates a truncated WAL (crash mid-append).
  static Result<std::unique_ptr<AdeptSystem>> Recover(
      const AdeptOptions& options);

  AdeptSystem(const AdeptSystem&) = delete;
  AdeptSystem& operator=(const AdeptSystem&) = delete;

  // --- Buildtime ------------------------------------------------------------

  // Verifies and deploys version 1 of a process type.
  Result<SchemaId> DeployProcessType(
      std::shared_ptr<const ProcessSchema> schema) override;

  // Applies a type change, creating the next version (schema evolution).
  Result<SchemaId> EvolveProcessType(SchemaId base, Delta delta) override;

  Result<SchemaId> LatestVersion(const std::string& type_name) const override;
  Result<std::shared_ptr<const ProcessSchema>> Schema(
      SchemaId id) const override;

  // Full verification report of a stored type version, warnings included
  // (Deploy/Evolve reject versions with errors, so the report carries at
  // most warnings — races, duplicate names).
  Result<const VerificationReport*> SchemaReport(SchemaId id) {
    return repository_.ReportFor(id);
  }

  // Verification report of a biased instance's combined schema (the last
  // AddBias/Rebase application). Errors out for unbiased instances — their
  // report is the type schema's (SchemaReport).
  Result<const VerificationReport*> InstanceReport(InstanceId id) const {
    ADEPT_ASSIGN_OR_RETURN(const InstanceStore::Record* record,
                           store_.Get(id));
    if (!record->biased()) {
      return Status::FailedPrecondition(
          "instance is unbiased; use SchemaReport on its type version");
    }
    return &record->report;
  }

  // --- Instance lifecycle ----------------------------------------------------

  // Creates and starts an instance of the latest version of `type_name`.
  Result<InstanceId> CreateInstance(const std::string& type_name) override;
  Result<InstanceId> CreateInstanceOn(SchemaId schema) override;

  // Creates and starts an instance under a caller-chosen id (WAL-logged).
  // The cluster layer uses this for shard-affine id allocation; plain
  // applications should prefer CreateInstance/CreateInstanceOn.
  Result<InstanceId> CreateInstanceWithId(SchemaId schema, InstanceId id);

  // Lock-free read path: current published snapshot of `id` (rebuilt by
  // every mutating facade call; see runtime/instance_snapshot.h). Direct
  // substrate mutation (MutableInstance, engine()) bypasses publication —
  // republish by routing the next change through the facade.
  std::shared_ptr<const InstanceSnapshot> SnapshotOf(
      InstanceId id) const override;

  // The published-snapshot table (cluster sweeps, tests).
  const SnapshotTable& snapshots() const { return snapshots_; }

  // Indexed predicate evaluation over the published snapshots (the
  // AdeptApi::Query contract). Lock-free; safe from any thread.
  Result<QueryResult> Query(const std::string& query) const override;

  // Appends this system's matches for an already compiled query to
  // `result` (unsorted — the cluster's fan-out merges across shards and
  // sorts once). Takes no engine lock.
  void CollectQueryMatches(const CompiledQuery& query,
                           QueryResult* result) const;

  Status StartActivity(InstanceId id, NodeId node) override;
  Status CompleteActivity(
      InstanceId id, NodeId node,
      const std::vector<ProcessInstance::DataWrite>& writes = {}) override;
  Status FailActivity(InstanceId id, NodeId node,
                      const std::string& reason) override;
  Status RetryActivity(InstanceId id, NodeId node) override;
  Status SuspendActivity(InstanceId id, NodeId node) override;
  Status ResumeActivity(InstanceId id, NodeId node) override;
  Status SelectBranch(InstanceId id, NodeId split, int branch_value) override;
  Status SetLoopDecision(InstanceId id, NodeId loop_end,
                         bool iterate) override;

  // Synthetic execution through the facade (WAL-logged, unlike driving the
  // ProcessInstance directly).
  Result<bool> DriveStep(InstanceId id, SimulationDriver& driver) override;
  Status DriveToCompletion(InstanceId id, SimulationDriver& driver,
                           int max_steps = 100000) override;

  // --- Dynamic change --------------------------------------------------------

  // Ad-hoc change of a single instance (paper Sec. 2).
  Status ApplyAdHocChange(InstanceId id, Delta delta) override;

  // Propagates the type change `from` -> `to` to all running instances.
  Result<MigrationReport> Migrate(
      SchemaId from, SchemaId to,
      const MigrationOptions& options = {}) override;
  // Convenience: migrate every predecessor-version instance to the latest.
  Result<MigrationReport> MigrateToLatest(
      const std::string& type_name,
      const MigrationOptions& options = {}) override;

  // --- Cross-shard instance migration (cluster resize) -----------------------
  //
  // The cluster layer hands instances over between shards with these three
  // calls (paper §distributed execution: instances migrate between servers
  // as load and structure change). The move protocol is: Export on the
  // source (pure read), Import on the destination (WAL-logged, waited
  // durable), then Evict on the source (WAL-logged) — so at every crash
  // point the instance is durable on at least one shard, and recovery
  // dedups a both-sides window (import durable, evict lost) back to
  // exactly one owner.

  // Serializes the instance wholesale: base schema ref, storage strategy,
  // bias delta, and full runtime state (marking, trace, data, loops).
  Result<JsonValue> ExportInstance(InstanceId id) const;

  // Adopts an exported instance under its original id. Fails
  // kAlreadyExists when the id is live here; the base schema (and any
  // bias) must resolve against this system's repository.
  Status ImportInstance(const JsonValue& exported);

  // Removes the instance from this system (engine + store). Fires no
  // instance events: the work items of a moving instance must survive the
  // handover untouched.
  Status EvictInstance(InstanceId id);

  // Adopts a full schema repository image (SchemaRepository::ToJson) into
  // this system, which must not have deployed anything yet. WAL-logged.
  // The cluster uses this to bring freshly created shards up to the
  // cluster's identical-schema invariant before importing instances.
  Status ReplicateSchemas(const JsonValue& repo_json);

  // --- Organization ----------------------------------------------------------

  OrgModel& org() { return org_; }
  const OrgModel& org() const { return org_; }
  WorklistManager& worklists() { return worklists_; }

  // Subscribes an additional observer to all instance events (monitoring).
  void AddObserver(InstanceObserver* observer) { fanout_.Add(observer); }

  // --- Durability ------------------------------------------------------------

  // Writes a full snapshot (recording the covered WAL LSN) and truncates
  // the WAL (checkpoint). Recovery skips WAL records at or below the
  // snapshot's LSN, so an interrupted truncation cannot double-apply.
  Status SaveSnapshot() override;

  // LSN of the most recent record this system enqueued (0 when nothing was
  // logged yet). Meaningful for durability waits under defer_wal_sync.
  uint64_t last_enqueued_lsn() const { return last_enqueued_lsn_; }

  // Count of full instance-state serializations performed (checkpoints and
  // exports). Checkpoints reuse the cached serialization of instances whose
  // published version is unchanged since the previous SaveSnapshot, so
  // back-to-back checkpoints of an idle system serialize nothing — the
  // regression tests pin that with this counter.
  uint64_t full_state_serializations() const {
    return full_state_serializations_;
  }

  // Blocks until every WAL record with an LSN <= `lsn` is durable per the
  // configured SyncMode. No-op without a WAL or for lsn 0.
  Status WaitWalDurable(uint64_t lsn);

  // --- Substrate access (benchmarks, monitoring, tests) ----------------------

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }
  // The group-commit WAL writer, or nullptr when no WAL is configured.
  // The replication layer attaches its commit hook here
  // (WalWriter::SetCommitHook); see cluster/adept_cluster.h
  // AttachReplication.
  WalWriter* wal_writer() { return wal_.get(); }
  SchemaRepository& repository() { return repository_; }
  InstanceStore& store() { return store_; }
  MigrationManager& migration_manager() { return migration_manager_; }
  ProcessInstance* MutableInstance(InstanceId id) { return engine_.Find(id); }

 protected:
  const ProcessInstance* InstanceImpl(InstanceId id) const override;

 private:
  explicit AdeptSystem(const AdeptOptions& options);

  // `prescan` (recovery only): the replay pass's parse of the WAL, reused
  // so opening the writer does not rescan the file.
  Status OpenWalIfConfigured(uint64_t min_last_lsn = 0,
                             const WalScan* prescan = nullptr);
  Status Log(const JsonValue& record);
  Status ApplyWalRecord(const JsonValue& record);
  Result<InstanceId> CreateInstanceInternal(SchemaId schema_id,
                                            InstanceId forced_id);
  // Per-instance (de)serialization shared by snapshots and the
  // export/import handover: id, base schema ref, strategy, bias, state.
  Result<JsonValue> InstanceToJson(InstanceId id) const;
  Status AdoptInstanceFromJson(const JsonValue& ij);
  JsonValue SnapshotToJson(uint64_t wal_lsn) const;
  Status LoadSnapshotJson(const JsonValue& json, uint64_t* wal_lsn);
  // Reconciles worklists with engine truth after a migration (bias
  // cancellation rewrites markings without firing instance events).
  void ResyncWorklists();
  // Publishes `id`'s current state into the snapshot table (erases when
  // the instance is gone) and applies the publication delta to the query
  // indexes. No-op during recovery — Recover() bulk-publishes once at
  // the end instead of once per replayed record, which also rebuilds the
  // indexes from scratch.
  void PublishSnapshot(InstanceId id);
  void PublishAllSnapshots();
  // Erases `id`'s published snapshot + index entries (eviction paths).
  void ErasePublishedSnapshot(InstanceId id);

  AdeptOptions options_;
  SchemaRepository repository_;
  Engine engine_;
  InstanceStore store_{&repository_};
  MigrationManager migration_manager_{&engine_, &repository_, &store_};
  OrgModel org_;
  WorklistManager worklists_{&org_};
  ObserverFanout fanout_;
  SnapshotTable snapshots_;
  QueryIndex query_index_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t last_enqueued_lsn_ = 0;
  bool recovering_ = false;

  // Checkpoint serialization cache: the instance JSON written by the last
  // SaveSnapshot, keyed by instance id and fingerprinted by the published
  // snapshot version (every facade mutation republishes, so an unchanged
  // version means unchanged state — the same contract SnapshotOf serves
  // readers under; direct substrate mutation bypasses both). In-memory
  // only: a recovered system starts cold and re-serializes once.
  struct CachedInstanceJson {
    uint64_t version = 0;
    JsonValue json;
  };
  mutable std::unordered_map<uint64_t, CachedInstanceJson> checkpoint_cache_;
  mutable uint64_t full_state_serializations_ = 0;
};

}  // namespace adept

#endif  // ADEPT_CORE_ADEPT_H_
