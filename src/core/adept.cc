#include "core/adept.h"

#include <cstdio>
#include <filesystem>

#include "common/fs_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "compliance/adhoc.h"
#include "model/serialization.h"
#include "storage/state_serialization.h"

namespace adept {

namespace {

JsonValue WritesToJson(const std::vector<ProcessInstance::DataWrite>& writes) {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& w : writes) {
    JsonValue wj = JsonValue::MakeObject();
    wj.Set("d", JsonValue(w.data.value()));
    wj.Set("v", w.value.ToJson());
    arr.Append(std::move(wj));
  }
  return arr;
}

Result<std::vector<ProcessInstance::DataWrite>> WritesFromJson(
    const JsonValue& json) {
  std::vector<ProcessInstance::DataWrite> writes;
  for (const JsonValue& wj : json.as_array()) {
    ADEPT_ASSIGN_OR_RETURN(DataValue value, DataValue::FromJson(wj.Get("v")));
    writes.push_back(
        {DataId(static_cast<uint32_t>(wj.Get("d").as_int())), value});
  }
  return writes;
}

}  // namespace

AdeptSystem::AdeptSystem(const AdeptOptions& options) : options_(options) {
  fanout_.Add(&worklists_);
  engine_.set_observer(&fanout_);
}

Status AdeptSystem::OpenWalIfConfigured(uint64_t min_last_lsn,
                                        const WalScan* prescan) {
  if (options_.wal_path.empty()) return Status::OK();
  WalWriterOptions writer_options;
  writer_options.sync = options_.sync;
  writer_options.min_last_lsn = min_last_lsn;
  ADEPT_ASSIGN_OR_RETURN(
      wal_, WalWriter::Open(options_.wal_path, writer_options, prescan));
  return Status::OK();
}

Result<std::unique_ptr<AdeptSystem>> AdeptSystem::Create(
    const AdeptOptions& options) {
  std::unique_ptr<AdeptSystem> system(new AdeptSystem(options));
  ADEPT_RETURN_IF_ERROR(system->OpenWalIfConfigured());
  // A fresh system starts a fresh history — durably: a stale snapshot left
  // on disk would otherwise be resurrected by a later Recover() (which
  // would also skip this run's WAL records below its covered LSN).
  if (!options.snapshot_path.empty()) {
    std::error_code ec;
    std::filesystem::remove(options.snapshot_path, ec);
    if (ec) {
      return Status::Corruption("cannot discard stale snapshot '" +
                                options.snapshot_path + "': " + ec.message());
    }
  }
  if (system->wal_ != nullptr) {
    ADEPT_RETURN_IF_ERROR(system->wal_->Truncate());
  }
  return system;
}

Result<std::unique_ptr<AdeptSystem>> AdeptSystem::Recover(
    const AdeptOptions& options) {
  std::unique_ptr<AdeptSystem> system(new AdeptSystem(options));
  system->recovering_ = true;

  uint64_t snapshot_lsn = 0;
  if (!options.snapshot_path.empty() &&
      std::filesystem::exists(options.snapshot_path)) {
    ADEPT_ASSIGN_OR_RETURN(std::string content,
                           ReadFileToString(options.snapshot_path));
    ADEPT_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(content));
    ADEPT_RETURN_IF_ERROR(system->LoadSnapshotJson(json, &snapshot_lsn));
  }

  WalScan scan;
  if (!options.wal_path.empty()) {
    // One parse pass serves both the replay below and the writer open at
    // the end (historically Open() rescanned the file a second time).
    ADEPT_ASSIGN_OR_RETURN(scan, WriteAheadLog::Scan(options.wal_path));
    for (const WalRecord& record : scan.records) {
      // Records at or below the snapshot's covered LSN are already part of
      // the snapshot state; replaying them would double-apply (the window
      // exists when a checkpoint wrote the snapshot but failed to truncate).
      if (record.lsn <= snapshot_lsn) continue;
      Status st = system->ApplyWalRecord(record.value);
      if (!st.ok()) {
        return Status::Corruption("WAL replay failed at record " +
                                  record.value.Dump() + ": " + st.message());
      }
    }
  }

  system->recovering_ = false;
  // One bulk snapshot publication instead of one per replayed record: the
  // lock-free read path serves the recovered state from here on.
  system->PublishAllSnapshots();
  // Seed LSN numbering past the snapshot's coverage: after a checkpoint
  // truncated the log, the file alone would restart at 1 and the *next*
  // recovery would skip the new records as already covered.
  ADEPT_RETURN_IF_ERROR(system->OpenWalIfConfigured(snapshot_lsn, &scan));
  return system;
}

Status AdeptSystem::Log(const JsonValue& record) {
  if (wal_ == nullptr || recovering_) return Status::OK();
  last_enqueued_lsn_ = wal_->Enqueue(record);
  if (options_.defer_wal_sync) return Status::OK();
  return wal_->WaitDurable(last_enqueued_lsn_);
}

Status AdeptSystem::WaitWalDurable(uint64_t lsn) {
  if (wal_ == nullptr || lsn == 0) return Status::OK();
  return wal_->WaitDurable(lsn);
}

// --- Buildtime ---------------------------------------------------------------

Result<SchemaId> AdeptSystem::DeployProcessType(
    std::shared_ptr<const ProcessSchema> schema) {
  JsonValue schema_json =
      schema != nullptr ? SchemaToJson(*schema) : JsonValue();
  ADEPT_ASSIGN_OR_RETURN(SchemaId id, repository_.Deploy(std::move(schema)));
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("deploy"));
  record.Set("id", JsonValue(id.value()));
  record.Set("schema", std::move(schema_json));
  ADEPT_RETURN_IF_ERROR(Log(record));
  return id;
}

Result<SchemaId> AdeptSystem::EvolveProcessType(SchemaId base, Delta delta) {
  // The delta is serialized *after* application so pins are captured.
  ADEPT_ASSIGN_OR_RETURN(SchemaId id,
                         repository_.DeriveVersion(base, std::move(delta)));
  ADEPT_ASSIGN_OR_RETURN(const Delta* stored, repository_.DeltaFor(id));
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("evolve"));
  record.Set("base", JsonValue(base.value()));
  record.Set("id", JsonValue(id.value()));
  record.Set("delta", stored->ToJson());
  ADEPT_RETURN_IF_ERROR(Log(record));
  return id;
}

Result<SchemaId> AdeptSystem::LatestVersion(
    const std::string& type_name) const {
  return repository_.Latest(type_name);
}

Result<std::shared_ptr<const ProcessSchema>> AdeptSystem::Schema(
    SchemaId id) const {
  return repository_.Get(id);
}

// --- Instance lifecycle ------------------------------------------------------

Result<InstanceId> AdeptSystem::CreateInstanceInternal(SchemaId schema_id,
                                                       InstanceId forced_id) {
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> schema,
                         repository_.Get(schema_id));
  ProcessInstance* instance = nullptr;
  if (forced_id.valid()) {
    ADEPT_ASSIGN_OR_RETURN(instance,
                           engine_.AdoptInstance(forced_id, schema, schema_id));
  } else {
    ADEPT_ASSIGN_OR_RETURN(instance, engine_.CreateInstance(schema, schema_id));
  }
  Status st = store_.Register(instance->id(), schema_id,
                              options_.default_strategy);
  if (!st.ok()) {
    (void)engine_.Remove(instance->id());
    return st;
  }
  st = instance->Start();
  if (!st.ok()) {
    (void)store_.Unregister(instance->id());
    (void)engine_.Remove(instance->id());
    return st;
  }
  PublishSnapshot(instance->id());
  return instance->id();
}

Result<InstanceId> AdeptSystem::CreateInstance(const std::string& type_name) {
  ADEPT_ASSIGN_OR_RETURN(SchemaId latest, repository_.Latest(type_name));
  return CreateInstanceOn(latest);
}

Result<InstanceId> AdeptSystem::CreateInstanceOn(SchemaId schema) {
  ADEPT_ASSIGN_OR_RETURN(InstanceId id,
                         CreateInstanceInternal(schema, InstanceId::Invalid()));
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("create"));
  record.Set("id", JsonValue(id.value()));
  record.Set("schema", JsonValue(schema.value()));
  ADEPT_RETURN_IF_ERROR(Log(record));
  return id;
}

Result<InstanceId> AdeptSystem::CreateInstanceWithId(SchemaId schema,
                                                     InstanceId forced_id) {
  if (!forced_id.valid()) {
    return Status::InvalidArgument("forced instance id must be valid");
  }
  ADEPT_ASSIGN_OR_RETURN(InstanceId id,
                         CreateInstanceInternal(schema, forced_id));
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("create"));
  record.Set("id", JsonValue(id.value()));
  record.Set("schema", JsonValue(schema.value()));
  ADEPT_RETURN_IF_ERROR(Log(record));
  return id;
}

const ProcessInstance* AdeptSystem::InstanceImpl(InstanceId id) const {
  return engine_.Find(id);
}

std::shared_ptr<const InstanceSnapshot> AdeptSystem::SnapshotOf(
    InstanceId id) const {
  return snapshots_.Get(id);
}

void AdeptSystem::PublishSnapshot(InstanceId id) {
  if (recovering_) return;
  const ProcessInstance* instance = engine_.Find(id);
  if (instance == nullptr) {
    ErasePublishedSnapshot(id);
    return;
  }
  std::shared_ptr<InstanceSnapshot> snapshot = instance->BuildSnapshot();
  // The table swap returns the superseded snapshot: exactly the delta the
  // query indexes need. Publication is serialized per system, so the
  // index trails the table by at most this one call — and the query
  // executor re-validates every candidate against the table anyway.
  std::shared_ptr<const InstanceSnapshot> previous =
      snapshots_.Publish(snapshot);
  if (options_.query_indexes) {
    query_index_.ApplyDelta(previous.get(), snapshot.get());
  }
}

void AdeptSystem::ErasePublishedSnapshot(InstanceId id) {
  std::shared_ptr<const InstanceSnapshot> previous = snapshots_.Erase(id);
  if (options_.query_indexes && previous != nullptr) {
    query_index_.ApplyDelta(previous.get(), nullptr);
  }
  // Snapshot versions restart at 1 if the id is ever re-imported; dropping
  // the cached serialization now keeps the version a valid fingerprint.
  checkpoint_cache_.erase(id.value());
}

void AdeptSystem::PublishAllSnapshots() {
  for (InstanceId id : engine_.InstanceIds()) {
    PublishSnapshot(id);
  }
}

Result<QueryResult> AdeptSystem::Query(const std::string& query) const {
  ADEPT_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompiledQuery::Compile(query));
  return RunQuery(compiled, snapshots_,
                  options_.query_indexes ? &query_index_ : nullptr);
}

void AdeptSystem::CollectQueryMatches(const CompiledQuery& query,
                                      QueryResult* result) const {
  RunQueryInto(query, snapshots_,
               options_.query_indexes ? &query_index_ : nullptr, result);
}

namespace {
Result<ProcessInstance*> RequireInstance(Engine& engine, InstanceId id) {
  ProcessInstance* instance = engine.Find(id);
  if (instance == nullptr) return Status::NotFound("no such instance");
  return instance;
}
}  // namespace

Status AdeptSystem::StartActivity(InstanceId id, NodeId node) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->StartActivity(node));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("start"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(node.value()));
  return Log(record);
}

Status AdeptSystem::CompleteActivity(
    InstanceId id, NodeId node,
    const std::vector<ProcessInstance::DataWrite>& writes) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->CompleteActivity(node, writes));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("complete"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(node.value()));
  record.Set("writes", WritesToJson(writes));
  return Log(record);
}

Status AdeptSystem::FailActivity(InstanceId id, NodeId node,
                                 const std::string& reason) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->FailActivity(node, reason));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("fail"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(node.value()));
  record.Set("detail", JsonValue(reason));
  return Log(record);
}

Status AdeptSystem::RetryActivity(InstanceId id, NodeId node) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->RetryActivity(node));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("retry"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(node.value()));
  return Log(record);
}

Status AdeptSystem::SuspendActivity(InstanceId id, NodeId node) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->SuspendActivity(node));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("suspend"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(node.value()));
  return Log(record);
}

Status AdeptSystem::ResumeActivity(InstanceId id, NodeId node) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->ResumeActivity(node));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("act"));
  record.Set("ev", JsonValue("resume"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(node.value()));
  return Log(record);
}

Status AdeptSystem::SelectBranch(InstanceId id, NodeId split,
                                 int branch_value) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->SelectBranch(split, branch_value));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("branch"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(split.value()));
  record.Set("code", JsonValue(branch_value));
  return Log(record);
}

Status AdeptSystem::SetLoopDecision(InstanceId id, NodeId loop_end,
                                    bool iterate) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  ADEPT_RETURN_IF_ERROR(instance->SetLoopDecision(loop_end, iterate));
  PublishSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("loopdec"));
  record.Set("id", JsonValue(id.value()));
  record.Set("node", JsonValue(loop_end.value()));
  record.Set("iterate", JsonValue(iterate));
  return Log(record);
}

Result<bool> AdeptSystem::DriveStep(InstanceId id, SimulationDriver& driver) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  SimulationDriver::PlannedStep step = driver.PlanStep(*instance);
  if (!step.node.valid()) return false;
  ADEPT_RETURN_IF_ERROR(StartActivity(id, step.node));
  ADEPT_RETURN_IF_ERROR(CompleteActivity(id, step.node, step.writes));
  return true;
}

Status AdeptSystem::DriveToCompletion(InstanceId id, SimulationDriver& driver,
                                      int max_steps) {
  for (int i = 0; i < max_steps; ++i) {
    const ProcessInstance* instance = engine_.Find(id);
    if (instance == nullptr) return Status::NotFound("no such instance");
    if (instance->Finished()) return Status::OK();
    ADEPT_ASSIGN_OR_RETURN(bool progressed, DriveStep(id, driver));
    if (!progressed) {
      return instance->Finished()
                 ? Status::OK()
                 : Status::FailedPrecondition("instance blocked");
    }
  }
  return Status::Internal("step budget exceeded");
}

// --- Dynamic change ----------------------------------------------------------

Status AdeptSystem::ApplyAdHocChange(InstanceId id, Delta delta) {
  ADEPT_ASSIGN_OR_RETURN(ProcessInstance * instance,
                         RequireInstance(engine_, id));
  // The op count before this change marks where the newly pinned tail of
  // the cumulative bias starts — exactly the delta worth logging.
  size_t prior_ops = 0;
  if (auto prior = store_.Get(id); prior.ok()) {
    prior_ops = (*prior)->bias.size();
  }
  ADEPT_RETURN_IF_ERROR(
      adept::ApplyAdHocChange(*instance, store_, std::move(delta)));
  PublishSnapshot(id);
  // Serialize only the *applied* (pinned) ops this change appended — a
  // delta record against the bias the replayed prefix already rebuilt.
  // (Historically the full cumulative bias was logged; replay still
  // accepts those records, see ApplyWalRecord.)
  ADEPT_ASSIGN_OR_RETURN(const InstanceStore::Record* record, store_.Get(id));
  JsonValue ops = JsonValue::MakeArray();
  const auto& bias_ops = record->bias.ops();
  for (size_t i = prior_ops; i < bias_ops.size(); ++i) {
    ops.Append(bias_ops[i]->ToJson());
  }
  JsonValue tail = JsonValue::MakeObject();
  tail.Set("ops", std::move(ops));
  JsonValue wal_record = JsonValue::MakeObject();
  wal_record.Set("t", JsonValue("adhoc"));
  wal_record.Set("id", JsonValue(id.value()));
  wal_record.Set("delta", std::move(tail));
  return Log(wal_record);
}

void AdeptSystem::ResyncWorklists() {
  std::vector<const ProcessInstance*> instances;
  for (InstanceId id : engine_.InstanceIds()) {
    instances.push_back(engine_.Find(id));
  }
  worklists_.Resync(instances);
}

Result<MigrationReport> AdeptSystem::Migrate(SchemaId from, SchemaId to,
                                             const MigrationOptions& options) {
  ADEPT_ASSIGN_OR_RETURN(MigrationReport report,
                         migration_manager_.MigrateAll(from, to, options));
  if (!options.dry_run) {
    // Bias-cancellation migrations rewrite instance markings wholesale
    // (no per-node events), which can strand work items referencing
    // remapped node ids; reconcile before anyone claims a stale item.
    ResyncWorklists();
    // Migration mutates instances below the facade's per-call hooks;
    // republish the touched instances so the read path sees the new
    // schema refs and remapped markings.
    for (const auto& result : report.results) {
      PublishSnapshot(result.id);
    }
    JsonValue record = JsonValue::MakeObject();
    record.Set("t", JsonValue("migrate"));
    record.Set("from", JsonValue(from.value()));
    record.Set("to", JsonValue(to.value()));
    record.Set("use_replay", JsonValue(options.use_replay_checker));
    ADEPT_RETURN_IF_ERROR(Log(record));
  }
  return report;
}

Result<MigrationReport> AdeptSystem::MigrateToLatest(
    const std::string& type_name, const MigrationOptions& options) {
  std::vector<SchemaId> versions = repository_.VersionsOf(type_name);
  if (versions.size() < 2) {
    return Status::FailedPrecondition("type has no newer version");
  }
  MigrationReport merged;
  for (size_t i = 1; i < versions.size(); ++i) {
    ADEPT_ASSIGN_OR_RETURN(MigrationReport step,
                           Migrate(versions[i - 1], versions[i], options));
    if (i == 1) {
      merged = std::move(step);
    } else {
      merged.to = step.to;
      merged.to_version = step.to_version;
      for (auto& r : step.results) merged.results.push_back(std::move(r));
    }
  }
  return merged;
}

// --- Durability --------------------------------------------------------------

Result<JsonValue> AdeptSystem::InstanceToJson(InstanceId id) const {
  const ProcessInstance* instance = engine_.Find(id);
  if (instance == nullptr) return Status::NotFound("no such instance");
  ADEPT_ASSIGN_OR_RETURN(const InstanceStore::Record* record, store_.Get(id));
  ++full_state_serializations_;
  JsonValue ij = JsonValue::MakeObject();
  ij.Set("id", JsonValue(id.value()));
  ij.Set("base", JsonValue(record->base_schema.value()));
  ij.Set("strategy", JsonValue(static_cast<int>(record->strategy)));
  if (record->biased()) ij.Set("bias", record->bias.ToJson());
  ij.Set("state", InstanceStateToJson(*instance));
  return ij;
}

Status AdeptSystem::AdoptInstanceFromJson(const JsonValue& ij) {
  InstanceId id(static_cast<uint64_t>(ij.Get("id").as_int()));
  SchemaId base(static_cast<uint64_t>(ij.Get("base").as_int()));
  auto strategy = static_cast<StorageStrategy>(ij.Get("strategy").as_int());
  ADEPT_RETURN_IF_ERROR(store_.Register(id, base, strategy));
  bool biased = ij.Has("bias");
  if (biased) {
    ADEPT_ASSIGN_OR_RETURN(Delta bias, Delta::FromJson(ij.Get("bias")));
    ADEPT_RETURN_IF_ERROR(store_.AddBias(id, std::move(bias)).status());
  }
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaView> view,
                         store_.ExecutionSchema(id));
  auto adopted = engine_.AdoptInstance(id, view, base);
  if (!adopted.ok()) {
    (void)store_.Unregister(id);
    return adopted.status();
  }
  (*adopted)->set_biased(biased);
  ADEPT_RETURN_IF_ERROR(RestoreInstanceState(**adopted, ij.Get("state")));
  // Live imports (cross-shard handover) must be readable immediately;
  // during recovery PublishSnapshot is a no-op and Recover() bulk-
  // publishes at the end.
  PublishSnapshot(id);
  return Status::OK();
}

JsonValue AdeptSystem::SnapshotToJson(uint64_t wal_lsn) const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("format", JsonValue(1));
  // Every WAL record with an LSN <= wal_lsn is folded into this snapshot;
  // recovery must not replay them again.
  j.Set("wal_lsn", JsonValue(wal_lsn));
  j.Set("repo", repository_.ToJson());
  JsonValue instances = JsonValue::MakeArray();
  // Unchanged instances reuse the serialization the previous checkpoint
  // produced: the published snapshot version is the change fingerprint
  // (every facade mutation republishes before logging), so a long-running
  // system full of idle instances checkpoints in O(changed), not O(all).
  std::unordered_map<uint64_t, CachedInstanceJson> next_cache;
  for (InstanceId id : store_.Ids()) {
    std::shared_ptr<const InstanceSnapshot> published = snapshots_.Get(id);
    if (published != nullptr) {
      auto cached = checkpoint_cache_.find(id.value());
      if (cached != checkpoint_cache_.end() &&
          cached->second.version == published->version) {
        instances.Append(JsonValue(cached->second.json));
        next_cache.emplace(id.value(), std::move(cached->second));
        continue;
      }
    }
    auto ij = InstanceToJson(id);
    if (!ij.ok()) continue;
    if (published != nullptr) {
      next_cache.emplace(id.value(),
                         CachedInstanceJson{published->version, *ij});
    }
    instances.Append(std::move(*ij));
  }
  // Swapping (not merging) also drops entries of evicted instances.
  checkpoint_cache_ = std::move(next_cache);
  j.Set("instances", std::move(instances));
  return j;
}

Status AdeptSystem::LoadSnapshotJson(const JsonValue& json,
                                     uint64_t* wal_lsn) {
  if (json.Get("format").as_int() != 1) {
    return Status::Corruption("unsupported snapshot format");
  }
  // Pre-LSN snapshots carry no "wal_lsn"; Get() then yields null/0, which
  // reproduces the old replay-everything behavior.
  *wal_lsn = static_cast<uint64_t>(json.Get("wal_lsn").as_int());
  ADEPT_RETURN_IF_ERROR(repository_.LoadFromJson(json.Get("repo")));
  for (const JsonValue& ij : json.Get("instances").as_array()) {
    ADEPT_RETURN_IF_ERROR(AdoptInstanceFromJson(ij));
  }
  return Status::OK();
}

// --- Cross-shard instance migration ------------------------------------------

Result<JsonValue> AdeptSystem::ExportInstance(InstanceId id) const {
  return InstanceToJson(id);
}

Status AdeptSystem::ImportInstance(const JsonValue& exported) {
  ADEPT_RETURN_IF_ERROR(AdoptInstanceFromJson(exported));
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("import"));
  record.Set("inst", exported);
  return Log(record);
}

Status AdeptSystem::EvictInstance(InstanceId id) {
  ADEPT_RETURN_IF_ERROR(engine_.Remove(id));
  (void)store_.Unregister(id);
  // The cluster's epoch-checked read path retries a miss while a resize
  // is in flight, so erasing here never turns a live instance invisible:
  // by the time the routing epoch stabilizes, the import side's snapshot
  // (and its index entries) is published.
  ErasePublishedSnapshot(id);
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("evict"));
  record.Set("id", JsonValue(id.value()));
  return Log(record);
}

Status AdeptSystem::ReplicateSchemas(const JsonValue& repo_json) {
  ADEPT_RETURN_IF_ERROR(repository_.LoadFromJson(repo_json));
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue("repo"));
  record.Set("repo", repo_json);
  return Log(record);
}

Status AdeptSystem::SaveSnapshot() {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition("no snapshot path configured");
  }
  // The snapshot is built from in-memory state, which already reflects
  // every enqueued record, so it covers everything up to this LSN — even
  // records the writer thread has not flushed yet.
  const uint64_t cover = wal_ != nullptr ? wal_->last_enqueued_lsn() : 0;
  ADEPT_RETURN_IF_ERROR(
      WriteFileAtomic(options_.snapshot_path, SnapshotToJson(cover).Dump()));
  if (wal_ != nullptr) {
    // If this truncation fails, the stale records stay in the log but carry
    // LSNs <= cover, so recovery skips them: no double-apply.
    ADEPT_RETURN_IF_ERROR(wal_->Truncate());
  }
  return Status::OK();
}

// --- WAL replay --------------------------------------------------------------

Status AdeptSystem::ApplyWalRecord(const JsonValue& record) {
  const std::string& type = record.Get("t").as_string();
  if (type == "deploy") {
    ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<ProcessSchema> schema,
                           SchemaFromJson(record.Get("schema")));
    ADEPT_ASSIGN_OR_RETURN(SchemaId id, repository_.Deploy(std::move(schema)));
    if (id.value() != static_cast<uint64_t>(record.Get("id").as_int())) {
      return Status::Corruption("schema id diverged during replay");
    }
    return Status::OK();
  }
  if (type == "evolve") {
    ADEPT_ASSIGN_OR_RETURN(Delta delta, Delta::FromJson(record.Get("delta")));
    ADEPT_ASSIGN_OR_RETURN(
        SchemaId id,
        repository_.DeriveVersion(
            SchemaId(static_cast<uint64_t>(record.Get("base").as_int())),
            std::move(delta)));
    if (id.value() != static_cast<uint64_t>(record.Get("id").as_int())) {
      return Status::Corruption("schema id diverged during replay");
    }
    return Status::OK();
  }
  if (type == "create") {
    return CreateInstanceInternal(
               SchemaId(static_cast<uint64_t>(record.Get("schema").as_int())),
               InstanceId(static_cast<uint64_t>(record.Get("id").as_int())))
        .status();
  }
  if (type == "repo") {
    return repository_.LoadFromJson(record.Get("repo"));
  }
  if (type == "import") {
    return AdoptInstanceFromJson(record.Get("inst"));
  }
  if (type == "evict") {
    // Tolerate an already-absent instance: an evict whose import side was
    // checkpointed away replays against a shard that never re-created it.
    InstanceId evicted(static_cast<uint64_t>(record.Get("id").as_int()));
    if (engine_.Find(evicted) == nullptr) return Status::OK();
    (void)store_.Unregister(evicted);
    return engine_.Remove(evicted);
  }
  InstanceId id(static_cast<uint64_t>(record.Get("id").as_int()));
  NodeId node(static_cast<uint32_t>(record.Get("node").as_int()));
  if (type == "act") {
    const std::string& ev = record.Get("ev").as_string();
    if (ev == "start") return StartActivity(id, node);
    if (ev == "complete") {
      ADEPT_ASSIGN_OR_RETURN(std::vector<ProcessInstance::DataWrite> writes,
                             WritesFromJson(record.Get("writes")));
      return CompleteActivity(id, node, writes);
    }
    if (ev == "fail") {
      return FailActivity(id, node, record.Get("detail").as_string());
    }
    if (ev == "retry") return RetryActivity(id, node);
    if (ev == "suspend") return SuspendActivity(id, node);
    if (ev == "resume") return ResumeActivity(id, node);
    return Status::Corruption("unknown activity event: " + ev);
  }
  if (type == "branch") {
    return SelectBranch(id, node,
                        static_cast<int>(record.Get("code").as_int()));
  }
  if (type == "loopdec") {
    return SetLoopDecision(id, node, record.Get("iterate").as_bool());
  }
  if (type == "adhoc") {
    ProcessInstance* instance = engine_.Find(id);
    if (instance == nullptr) return Status::NotFound("no such instance");
    if (record.Has("delta")) {
      // Delta record: the ops this change appended, applied on top of the
      // bias the replayed prefix already rebuilt — same pinning order as
      // the original execution.
      ADEPT_ASSIGN_OR_RETURN(Delta ops, Delta::FromJson(record.Get("delta")));
      return adept::ApplyAdHocChange(*instance, store_, std::move(ops));
    }
    // Legacy full-state record: the logged bias is cumulative. When the
    // record's prefix matches the bias the replayed prefix already
    // rebuilt (the common case: each record repeats the previous ops and
    // appends one change), apply only the tail — reconstructing the
    // original incremental application exactly, trace details included.
    ADEPT_ASSIGN_OR_RETURN(Delta bias, Delta::FromJson(record.Get("bias")));
    auto rec = store_.Get(id);
    const size_t have =
        rec.ok() && (*rec)->biased() ? (*rec)->bias.size() : 0;
    bool prefix_matches = have <= bias.size();
    for (size_t i = 0; prefix_matches && i < have; ++i) {
      prefix_matches = (*rec)->bias.ops()[i]->ToJson().Dump() ==
                       bias.ops()[i]->ToJson().Dump();
    }
    if (prefix_matches && have > 0) {
      Delta tail;
      for (size_t i = have; i < bias.size(); ++i) {
        tail.Add(bias.ops()[i]->Clone());
      }
      if (tail.empty()) return Status::OK();  // record fully rebuilt already
      return adept::ApplyAdHocChange(*instance, store_, std::move(tail));
    }
    // Divergent prefix (a hand-edited or partially-compacted log):
    // rebuild the record's bias from scratch by clearing first.
    if (have > 0) {
      ADEPT_RETURN_IF_ERROR(
          store_.ClearBias(id, (*rec)->base_schema).status());
      instance->set_biased(false);
    }
    return adept::ApplyAdHocChange(*instance, store_, std::move(bias));
  }
  if (type == "migrate") {
    MigrationOptions options;
    options.use_replay_checker = record.Get("use_replay").as_bool();
    Status st =
        migration_manager_
            .MigrateAll(
                SchemaId(static_cast<uint64_t>(record.Get("from").as_int())),
                SchemaId(static_cast<uint64_t>(record.Get("to").as_int())),
                options)
            .status();
    if (st.ok()) ResyncWorklists();
    return st;
  }
  return Status::Corruption("unknown WAL record type: " + type);
}

}  // namespace adept
