#include "core/auto_adaptation.h"

namespace adept {

void AutoAdapter::OnNodeStateChange(const ProcessInstance& instance,
                                    NodeId node, NodeState from,
                                    NodeState to) {
  (void)from;
  for (size_t i = 0; i < rules_.size(); ++i) {
    const AdaptationRule& rule = rules_[i];
    if (to != rule.trigger_state) continue;
    if (!rule.activity_name.empty()) {
      const Node* n = instance.schema().FindNode(node);
      if (n == nullptr || n->name != rule.activity_name) continue;
    }
    queue_.push_back(Firing{instance.id(), node, i});
    ++fired_total_;
  }
}

std::vector<AdaptationOutcome> AutoAdapter::Drain() {
  std::vector<AdaptationOutcome> outcomes;
  while (!queue_.empty()) {
    Firing firing = queue_.front();
    queue_.pop_front();
    const AdaptationRule& rule = rules_[firing.rule_index];
    AdaptationOutcome outcome{firing.instance, firing.node, rule.name,
                              Status::OK()};
    // The rule's action reads the live instance under the owner's lock;
    // the derived delta is applied afterwards through the facade.
    Delta delta;
    Status read = system_->WithInstance(
        firing.instance, [&](const ProcessInstance& instance) {
          delta = rule.action(instance, firing.node);
        });
    if (!read.ok()) {
      outcome.status = Status::NotFound("instance vanished before adaptation");
      outcomes.push_back(std::move(outcome));
      continue;
    }
    if (delta.empty()) {
      outcome.status = Status::OK();  // rule chose not to act
      outcomes.push_back(std::move(outcome));
      continue;
    }
    outcome.status =
        system_->ApplyAdHocChange(firing.instance, std::move(delta));
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace adept
