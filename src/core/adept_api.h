// AdeptApi: the abstract process-management facade.
//
// Two implementations exist:
//   * AdeptSystem (core/adept.h)      — one engine, single-threaded, the
//     faithful reproduction of the prototype's per-server execution model
//   * AdeptCluster (cluster/adept_cluster.h) — N independent AdeptSystem
//     shards behind the same API, instances partitioned by id, shards
//     executing in parallel
//
// Application code written against AdeptApi runs unchanged on either; the
// scale-out path is a configuration decision, not a code change. Schema
// management calls (deploy/evolve) affect the whole deployment; instance
// calls are routed to wherever the instance lives.

#ifndef ADEPT_CORE_ADEPT_API_H_
#define ADEPT_CORE_ADEPT_API_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "change/delta.h"
#include "common/ids.h"
#include "common/status.h"
#include "compliance/migration.h"
#include "model/schema.h"
#include "runtime/driver.h"
#include "runtime/instance.h"

namespace adept {

class AdeptApi {
 public:
  virtual ~AdeptApi() = default;

  // --- Buildtime ------------------------------------------------------------

  // Verifies and deploys version 1 of a process type.
  virtual Result<SchemaId> DeployProcessType(
      std::shared_ptr<const ProcessSchema> schema) = 0;

  // Applies a type change, creating the next version (schema evolution).
  virtual Result<SchemaId> EvolveProcessType(SchemaId base, Delta delta) = 0;

  virtual Result<SchemaId> LatestVersion(const std::string& type_name)
      const = 0;
  virtual Result<std::shared_ptr<const ProcessSchema>> Schema(SchemaId id)
      const = 0;

  // --- Instance lifecycle ----------------------------------------------------

  virtual Result<InstanceId> CreateInstance(const std::string& type_name) = 0;
  virtual Result<InstanceId> CreateInstanceOn(SchemaId schema) = 0;

  // DEPRECATED: TOCTOU-prone bare read path — implementations that
  // execute concurrently (AdeptCluster) return a pointer that may be
  // invalidated by other threads the moment the call returns, so any
  // check-then-dereference against it races. Use WithInstance, which runs
  // the read under the owner's lock. Retained for single-threaded
  // substrate access (tests, benchmarks, the single-node AdeptSystem);
  // new call sites should not appear outside those.
  virtual const ProcessInstance* Instance(InstanceId id) const = 0;

  // Runs `fn` with the live instance while it cannot be concurrently
  // mutated (AdeptCluster overrides this to hold the owning shard's lock
  // for the duration of the callback). Returns kNotFound when the instance
  // does not exist. Keep `fn` short: it blocks the instance's engine.
  virtual Status WithInstance(
      InstanceId id,
      const std::function<void(const ProcessInstance&)>& fn) const {
    const ProcessInstance* instance = Instance(id);
    if (instance == nullptr) return Status::NotFound("no such instance");
    fn(*instance);
    return Status::OK();
  }

  virtual Status StartActivity(InstanceId id, NodeId node) = 0;
  virtual Status CompleteActivity(
      InstanceId id, NodeId node,
      const std::vector<ProcessInstance::DataWrite>& writes = {}) = 0;
  virtual Status FailActivity(InstanceId id, NodeId node,
                              const std::string& reason) = 0;
  virtual Status RetryActivity(InstanceId id, NodeId node) = 0;
  virtual Status SuspendActivity(InstanceId id, NodeId node) = 0;
  virtual Status ResumeActivity(InstanceId id, NodeId node) = 0;
  virtual Status SelectBranch(InstanceId id, NodeId split,
                              int branch_value) = 0;
  virtual Status SetLoopDecision(InstanceId id, NodeId loop_end,
                                 bool iterate) = 0;

  // Synthetic execution through the facade (WAL-logged, unlike driving the
  // ProcessInstance directly).
  virtual Result<bool> DriveStep(InstanceId id, SimulationDriver& driver) = 0;
  virtual Status DriveToCompletion(InstanceId id, SimulationDriver& driver,
                                   int max_steps = 100000) = 0;

  // --- Dynamic change --------------------------------------------------------

  // Ad-hoc change of a single instance (paper Sec. 2).
  virtual Status ApplyAdHocChange(InstanceId id, Delta delta) = 0;

  // Propagates the type change `from` -> `to` to all running instances.
  virtual Result<MigrationReport> Migrate(
      SchemaId from, SchemaId to, const MigrationOptions& options = {}) = 0;
  // Convenience: migrate every predecessor-version instance to the latest.
  virtual Result<MigrationReport> MigrateToLatest(
      const std::string& type_name, const MigrationOptions& options = {}) = 0;

  // --- Durability ------------------------------------------------------------

  // Writes a full snapshot and truncates the WAL (checkpoint).
  virtual Status SaveSnapshot() = 0;
};

}  // namespace adept

#endif  // ADEPT_CORE_ADEPT_API_H_
