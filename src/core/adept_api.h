// AdeptApi: the abstract process-management facade.
//
// Two implementations exist:
//   * AdeptSystem (core/adept.h)      — one engine, single-threaded, the
//     faithful reproduction of the prototype's per-server execution model
//   * AdeptCluster (cluster/adept_cluster.h) — N independent AdeptSystem
//     shards behind the same API, instances partitioned by id, shards
//     executing in parallel
//
// Application code written against AdeptApi runs unchanged on either; the
// scale-out path is a configuration decision, not a code change. Schema
// management calls (deploy/evolve) affect the whole deployment; instance
// calls are routed to wherever the instance lives.

#ifndef ADEPT_CORE_ADEPT_API_H_
#define ADEPT_CORE_ADEPT_API_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "change/delta.h"
#include "common/ids.h"
#include "common/status.h"
#include "compliance/migration.h"
#include "model/schema.h"
#include "query/query.h"
#include "runtime/driver.h"
#include "runtime/instance.h"
#include "runtime/instance_snapshot.h"

namespace adept {

class AdeptApi {
 public:
  virtual ~AdeptApi() = default;

  // --- Buildtime ------------------------------------------------------------

  // Verifies and deploys version 1 of a process type.
  virtual Result<SchemaId> DeployProcessType(
      std::shared_ptr<const ProcessSchema> schema) = 0;

  // Applies a type change, creating the next version (schema evolution).
  virtual Result<SchemaId> EvolveProcessType(SchemaId base, Delta delta) = 0;

  virtual Result<SchemaId> LatestVersion(const std::string& type_name)
      const = 0;
  virtual Result<std::shared_ptr<const ProcessSchema>> Schema(SchemaId id)
      const = 0;

  // --- Instance lifecycle ----------------------------------------------------

  virtual Result<InstanceId> CreateInstance(const std::string& type_name) = 0;
  virtual Result<InstanceId> CreateInstanceOn(SchemaId schema) = 0;

  // DEPRECATED: TOCTOU-prone bare read path — implementations that
  // execute concurrently (AdeptCluster) return a pointer that may be
  // invalidated by other threads the moment the call returns, so any
  // check-then-dereference against it races. Use ReadInstance/SnapshotOf
  // for lock-free reads, or WithInstance when the callback needs the live
  // instance under the owner's lock. The accessor is [[deprecated]] and
  // CI builds with -Werror=deprecated-declarations, so new call sites
  // cannot appear; implementations override the protected InstanceImpl.
  [[deprecated(
      "bare Instance() races against concurrent mutation; use "
      "ReadInstance/SnapshotOf (lock-free) or WithInstance "
      "(linearized)")]] const ProcessInstance*
  Instance(InstanceId id) const {
    return InstanceImpl(id);
  }

  // --- Lock-free read path ---------------------------------------------------
  //
  // The versioned-snapshot discipline (runtime/instance_snapshot.h):
  // mutators publish an immutable InstanceSnapshot after every change,
  // readers fetch the current one without touching the lock that
  // serializes the instance's engine turn. Reads therefore scale with the
  // reader count and never block behind CompleteActivity/Migrate on the
  // same shard; staleness is bounded by one in-flight mutation.
  //
  // Choosing a read call (the full guide lives in src/cluster/README.md):
  //   SnapshotOf     one instance by id, lock-free
  //   ReadInstance   same, with a distinguishing error instead of nullptr
  //   Query          all instances matching a predicate, lock-free +
  //                  index-accelerated — the monitoring/worklist sweep
  //   WithInstance   live state under the owner's lock (trace access);
  //                  last resort, blocks the instance's engine

  // Current snapshot of `id`, or nullptr when the instance does not exist
  // (AdeptCluster: also nullptr while the cluster is topology-poisoned —
  // use ReadInstance for the distinguishing error).
  virtual std::shared_ptr<const InstanceSnapshot> SnapshotOf(
      InstanceId id) const = 0;

  // Runs `fn` on the current snapshot. kNotFound when the instance does
  // not exist. `fn` may be arbitrarily slow: it holds no lock, only the
  // snapshot's shared_ptr.
  virtual Status ReadInstance(
      InstanceId id,
      const std::function<void(const InstanceSnapshot&)>& fn) const {
    std::shared_ptr<const InstanceSnapshot> snapshot = SnapshotOf(id);
    if (snapshot == nullptr) return Status::NotFound("no such instance");
    fn(*snapshot);
    return Status::OK();
  }

  // Runs `fn` with the live instance while it cannot be concurrently
  // mutated (AdeptCluster overrides this to hold the owning shard's lock
  // for the duration of the callback). Returns kNotFound when the instance
  // does not exist. Keep `fn` short: it blocks the instance's engine —
  // prefer ReadInstance unless the read needs live-state guarantees a
  // snapshot cannot give (e.g. the full trace).
  virtual Status WithInstance(
      InstanceId id,
      const std::function<void(const ProcessInstance&)>& fn) const {
    const ProcessInstance* instance = InstanceImpl(id);
    if (instance == nullptr) return Status::NotFound("no such instance");
    fn(*instance);
    return Status::OK();
  }

  // Evaluates a textual predicate (grammar + semantics: src/query/
  // README.md) over the published snapshots and returns the matches in
  // ascending instance-id order. Lock-free: takes no shard mutex; when a
  // conjunct is indexable the candidate set comes from the snapshot-
  // maintained secondary indexes, and every hit is re-validated against
  // its current published snapshot (no stale-wrong results). Staleness is
  // bounded exactly like SnapshotOf: each match reflects its instance's
  // latest publication, not a global point in time. kInvalidArgument on a
  // malformed query (message carries the offset and a caret span);
  // AdeptCluster additionally kFailedPrecondition while topology-
  // poisoned.
  virtual Result<QueryResult> Query(const std::string& query) const = 0;

  virtual Status StartActivity(InstanceId id, NodeId node) = 0;
  virtual Status CompleteActivity(
      InstanceId id, NodeId node,
      const std::vector<ProcessInstance::DataWrite>& writes = {}) = 0;
  virtual Status FailActivity(InstanceId id, NodeId node,
                              const std::string& reason) = 0;
  virtual Status RetryActivity(InstanceId id, NodeId node) = 0;
  virtual Status SuspendActivity(InstanceId id, NodeId node) = 0;
  virtual Status ResumeActivity(InstanceId id, NodeId node) = 0;
  virtual Status SelectBranch(InstanceId id, NodeId split,
                              int branch_value) = 0;
  virtual Status SetLoopDecision(InstanceId id, NodeId loop_end,
                                 bool iterate) = 0;

  // Synthetic execution through the facade (WAL-logged, unlike driving the
  // ProcessInstance directly).
  virtual Result<bool> DriveStep(InstanceId id, SimulationDriver& driver) = 0;
  virtual Status DriveToCompletion(InstanceId id, SimulationDriver& driver,
                                   int max_steps = 100000) = 0;

  // --- Dynamic change --------------------------------------------------------

  // Ad-hoc change of a single instance (paper Sec. 2).
  virtual Status ApplyAdHocChange(InstanceId id, Delta delta) = 0;

  // Propagates the type change `from` -> `to` to all running instances.
  virtual Result<MigrationReport> Migrate(
      SchemaId from, SchemaId to, const MigrationOptions& options = {}) = 0;
  // Convenience: migrate every predecessor-version instance to the latest.
  virtual Result<MigrationReport> MigrateToLatest(
      const std::string& type_name, const MigrationOptions& options = {}) = 0;

  // --- Durability ------------------------------------------------------------

  // Writes a full snapshot and truncates the WAL (checkpoint).
  virtual Status SaveSnapshot() = 0;

 protected:
  // Implementation behind the deprecated bare Instance() accessor and the
  // default WithInstance(). Same hazard as Instance(): the pointer is only
  // meaningful while the caller excludes concurrent mutation.
  virtual const ProcessInstance* InstanceImpl(InstanceId id) const = 0;
};

}  // namespace adept

#endif  // ADEPT_CORE_ADEPT_API_H_
