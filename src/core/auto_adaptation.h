// Rule-based automatic workflow adaptation (extension).
//
// The paper notes that AgentWork (Mueller/Greiner/Rahm, ref. [4]) built
// "rule-based workflow adaptation" on this platform: instead of a user
// deciding each ad-hoc deviation, ECA-style rules watch runtime events and
// derive the change automatically — the full correctness machinery
// (state pre-conditions, re-verification, substitution blocks) still
// guards every automatic change.
//
// An AdaptationRule fires when an activity enters `trigger_state` (and its
// name matches, if a pattern is given); its action builds the Delta to
// apply to that instance. Firings are queued by the observer callback and
// applied by Drain() — observers must not re-enter the engine.

#ifndef ADEPT_CORE_AUTO_ADAPTATION_H_
#define ADEPT_CORE_AUTO_ADAPTATION_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/adept.h"

namespace adept {

struct AdaptationRule {
  std::string name;
  // Fire when an activity enters this state...
  NodeState trigger_state = NodeState::kFailed;
  // ...and its name equals this (empty = any activity).
  std::string activity_name;
  // Builds the corrective change; return an empty Delta to skip.
  std::function<Delta(const ProcessInstance&, NodeId)> action;
};

struct AdaptationOutcome {
  InstanceId instance;
  NodeId node;
  std::string rule;
  Status status;  // result of applying the rule's delta
};

class AutoAdapter : public InstanceObserver {
 public:
  explicit AutoAdapter(AdeptSystem* system) : system_(system) {}

  void AddRule(AdaptationRule rule) { rules_.push_back(std::move(rule)); }

  // InstanceObserver: queue matching firings.
  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override;

  // Applies every queued firing through the system API (ad-hoc change with
  // full compliance checking). Rules whose change is rejected report their
  // status in the outcome list; the queue is emptied either way.
  std::vector<AdaptationOutcome> Drain();

  size_t pending() const { return queue_.size(); }
  size_t fired_total() const { return fired_total_; }

 private:
  struct Firing {
    InstanceId instance;
    NodeId node;
    size_t rule_index;
  };

  AdeptSystem* system_;
  std::vector<AdaptationRule> rules_;
  std::deque<Firing> queue_;
  size_t fired_total_ = 0;
};

}  // namespace adept

#endif  // ADEPT_CORE_AUTO_ADAPTATION_H_
